#include "por/resilience/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "por/obs/registry.hpp"
#include "por/resilience/error.hpp"
#include "por/resilience/sync_hooks.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define POR_HAVE_FSYNC 1
#else
#define POR_HAVE_FSYNC 0
#endif

namespace por::resilience {

namespace {

/// Directory part of `path` ("." when the path has no slash).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string make_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  // por-atomic: stat — temp-name uniqueness counter, atomicity only
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
#if POR_HAVE_FSYNC
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." + std::to_string(n);
}

}  // namespace

// Best effort off-POSIX: the stream flush is all we get.
bool fsync_path(const std::string& path) {
#if POR_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string temp = make_temp_path(path);
  // The whole sequence runs under one remove-on-unwind guard: the
  // injection seam (sync_hook_point, see sync_hooks.hpp) may throw at
  // any step to simulate ENOSPC / EINTR / short writes, and every such
  // unwind must leave no temp file behind and the destination
  // untouched — a reader only ever sees the old complete artifact or
  // the new complete one.
  try {
    {
      sync_hook_point(SyncOp::kOpen, temp);
      std::ofstream out(temp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw transient_error("atomic_write_file: cannot open temp file " +
                              temp);
      }
      sync_hook_point(SyncOp::kWrite, temp);
      writer(out);
      sync_hook_point(SyncOp::kFlush, temp);
      out.flush();
      if (!out) {
        out.close();
        throw transient_error("atomic_write_file: write failed for " + temp);
      }
    }
    // Durability before visibility: the temp's bytes must be on stable
    // storage before the rename makes them the official artifact.
    sync_hook_point(SyncOp::kFsync, temp);
    if (!fsync_path(temp)) {
      throw transient_error("atomic_write_file: fsync failed for " + temp);
    }
    sync_hook_point(SyncOp::kRename, temp);
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
      throw transient_error("atomic_write_file: rename " + temp + " -> " +
                            path + " failed");
    }
  } catch (...) {
    std::remove(temp.c_str());
    throw;
  }
  // And the directory entry itself, so the rename survives a crash.
  sync_hook_point(SyncOp::kDirFsync, parent_dir(path));
  (void)fsync_path(parent_dir(path));
  obs::current_registry().counter("resilience.io.atomic_writes").add();
}

}  // namespace por::resilience
