// por/resilience/sync_hooks.hpp
//
// Injectable syscall seam for the durable-write paths (DESIGN.md §15).
// atomic_write_file and the por::journal segment writer call
// sync_hook_point() immediately BEFORE each step of their write
// sequences (open temp, stream write, flush, fsync, rename, directory
// fsync, unlink).  In production the seam is a single relaxed flag
// test — no hook installed, no work.  Tests install a hook to
//
//   * simulate I/O failure (throw transient_error for ENOSPC / EINTR /
//     short-write scenarios and verify no reader ever observes a
//     partial artifact), or
//   * crash the process (raise(SIGKILL)) at a chosen point INSIDE a
//     journal/checkpoint write syscall sequence — the chaos harness
//     (tests/chaos/) drives hundreds of seeded kills through here and
//     verifies the recovery invariants afterwards.
//
// The hook is process-global and test-only: install/clear it only
// while no other thread is inside a durable write.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace por::resilience {

/// The step about to be performed when a hook fires.
enum class SyncOp {
  kOpen,      ///< opening a temp/segment file for writing
  kWrite,     ///< streaming payload bytes into the file
  kFlush,     ///< flushing user-space buffers into the kernel
  kFsync,     ///< fsync of the file's bytes
  kRename,    ///< rename(temp -> final)
  kDirFsync,  ///< fsync of the containing directory entry
  kRemove,    ///< unlinking a temp or retired segment
};

[[nodiscard]] const char* to_string(SyncOp op);

/// Called with the step and the path it is about to touch.  May throw
/// (the write path classifies and unwinds exactly as it would for the
/// real failure) or terminate the process (the crash-injection case).
using SyncHook = std::function<void(SyncOp op, const std::string& path)>;

/// Install (or, with nullptr/empty, clear) the process-wide hook.
/// Test-only; not safe to race against in-flight durable writes.
void set_sync_hook(SyncHook hook);

/// Fire the hook for `op` on `path`.  No-op (one relaxed load) when no
/// hook is installed.
void sync_hook_point(SyncOp op, const std::string& path);

/// RAII installer: sets the hook for a test scope, restores "none" on
/// exit so a failed test cannot leak fault injection into the next.
class ScopedSyncHook {
 public:
  explicit ScopedSyncHook(SyncHook hook) { set_sync_hook(std::move(hook)); }
  ScopedSyncHook(const ScopedSyncHook&) = delete;
  ScopedSyncHook& operator=(const ScopedSyncHook&) = delete;
  ~ScopedSyncHook() { set_sync_hook(nullptr); }
};

}  // namespace por::resilience
