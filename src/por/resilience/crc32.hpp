// por/resilience/crc32.hpp
//
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum tagging
// every checkpoint record so a torn or bit-flipped tail is detected on
// restart instead of being trusted.  Table-driven, byte-at-a-time —
// checkpoint records are tens of bytes, so simplicity beats slicing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace por::resilience {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `bytes` (standard init/final XOR with 0xFFFFFFFF).
[[nodiscard]] inline std::uint32_t crc32(const void* data,
                                         std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace por::resilience
