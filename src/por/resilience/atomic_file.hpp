// por/resilience/atomic_file.hpp
//
// Crash-safe file replacement: write a temporary file in the target's
// directory, flush + fsync it, then rename() over the destination.
// POSIX rename is atomic within a filesystem, so a reader — including
// a restarted run resuming from a checkpoint — sees either the old
// complete artifact or the new complete artifact, never a half-written
// one.  All the writers in por::io (stacks, maps, orientation files)
// and the checkpoint log go through here.
#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace por::resilience {

/// Atomically replace `path` with the bytes `writer` streams out.
/// The writer receives a binary ofstream positioned at offset 0 of a
/// temp file `<path>.tmp.<pid>.<n>` in the same directory; on success
/// the temp is fsync'd and renamed onto `path` (and the directory
/// entry is fsync'd as well).  On any failure the temp file is removed
/// and an Error is thrown: kTransient for OS-level write/rename
/// failures (a retry may succeed on a flaky mount), while exceptions
/// thrown by `writer` itself propagate unchanged.  Increments the
/// "resilience.io.atomic_writes" counter on success.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// fsync an already-written file (or a directory entry) by path.
/// Returns false when the open or fsync fails; best-effort true on
/// platforms without fsync.  Shared by the checkpoint and journal
/// writers so every durability point goes through one audited helper.
bool fsync_path(const std::string& path);

}  // namespace por::resilience
