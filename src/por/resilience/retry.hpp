// por/resilience/retry.hpp
//
// Capped-exponential-backoff retry for transient failures.  The paper's
// production runs stream view files from a shared filesystem for hours
// (§3 master-node I/O model); a single NFS hiccup must cost one backoff
// sleep, not the run.  Only Error{kTransient} is retried — corrupt or
// fatal errors propagate immediately, and so does any foreign exception.
//
//   RetryPolicy policy;           // 1 attempt = retries disabled
//   policy.max_attempts = 4;      // try up to 4 times
//   auto stack = with_retry(policy, "read_stack", [&] {
//     return io::read_stack(path);
//   });
//
// Every performed retry increments the current registry's
// "resilience.io.retries" counter so the run report shows exactly how
// bumpy the storage was.
#pragma once

#include <chrono>
#include <functional>
#include <utility>

#include "por/resilience/error.hpp"

namespace por::resilience {

/// Backoff schedule: attempt k (0-based) sleeps
/// min(base_delay * multiplier^k, max_delay) before the next try —
/// or, with jitter on, the decorrelated-jitter schedule
/// min(max_delay, base_delay + U[0,1) * (3 * prev_sleep - base_delay)).
/// Jitter is what keeps a thundering herd apart: when many workers hit
/// the same NFS flap at once, a deterministic schedule has them all
/// retrying in lockstep at the exact same instants, re-creating the
/// very stampede that knocked the mount over.
struct RetryPolicy {
  int max_attempts = 1;  ///< total tries; 1 means "no retry"
  std::chrono::milliseconds base_delay{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_delay{2000};
  /// Decorrelated jitter (opt-in; off keeps the exact deterministic
  /// schedule long-running configs were tuned against).
  bool jitter = false;
  /// Uniform [0, 1) source for the jitter draw.  Injectable so tests
  /// pin the schedule; null uses a thread-local PRNG.
  std::function<double()> rand01;
};

namespace detail {
/// Out-of-line retry bookkeeping: bump the obs counter, log, sleep.
/// Keeps <thread>, obs and log includes out of this header.
void on_retry(const char* what, int failed_attempt,
              std::chrono::milliseconds sleep_ms, const char* error);

/// Backoff for the given 0-based failed attempt, capped.  `prev_sleep`
/// is the previous attempt's sleep (feeds the decorrelated-jitter
/// recurrence; ignored for the deterministic schedule).
[[nodiscard]] std::chrono::milliseconds backoff_delay(
    const RetryPolicy& policy, int failed_attempt,
    std::chrono::milliseconds prev_sleep);
}  // namespace detail

/// Run `fn`, retrying on Error{kTransient} up to policy.max_attempts
/// total attempts with capped exponential backoff.  Returns fn's value;
/// rethrows the last transient error when attempts are exhausted.
template <typename F>
auto with_retry(const RetryPolicy& policy, const char* what, F&& fn)
    -> decltype(fn()) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  std::chrono::milliseconds prev = policy.base_delay;
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const Error& error) {
      if (!error.retryable() || attempt + 1 >= attempts) throw;
      const std::chrono::milliseconds sleep_ms =
          detail::backoff_delay(policy, attempt, prev);
      prev = sleep_ms;
      detail::on_retry(what, attempt, sleep_ms, error.what());
    }
  }
}

}  // namespace por::resilience
