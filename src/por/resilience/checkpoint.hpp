// por/resilience/checkpoint.hpp
//
// Checkpoint/restart for the distributed refinement loop (paper §4
// steps d-l): the master records every refined view as it completes,
// so a run interrupted hours in — node loss, job preemption, power —
// restarts by refining only the views that are missing.  Per-view
// refinement is deterministic, so a resumed run's orientation file is
// bitwise-identical to an uninterrupted one.
//
// Format ("PORC"): magic | u32 version | records, each the raw
// little-endian CheckpointRecord bytes followed by their CRC-32.  The
// file is replaced atomically on every flush (atomic_file.hpp), and
// the per-record CRC means load_checkpoint() can prove each record
// intact: a torn or bit-flipped tail is dropped, never trusted.
//
// The record is deliberately a plain-old-data mirror of
// por::core::ViewResult (+ the global view index) rather than the type
// itself, so the resilience layer stays below core in the dependency
// order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace por::resilience {

/// One refined view, as persisted.  Trivially copyable; written raw.
struct CheckpointRecord {
  std::uint64_t view_index = 0;
  double theta = 0.0;  ///< Euler angles, degrees
  double phi = 0.0;
  double omega = 0.0;
  double center_x = 0.0;
  double center_y = 0.0;
  double final_distance = 0.0;
  std::uint64_t matchings = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t center_evals = 0;
  std::int32_t window_slides = 0;
  std::uint32_t quarantined = 0;

  bool operator==(const CheckpointRecord&) const = default;
};

/// Master-side append log with atomic, CRC-tagged flushes.
class CheckpointWriter {
 public:
  /// `flush_every` = records buffered between atomic rewrites; the
  /// final records are persisted by flush() (call it, or rely on the
  /// destructor's best-effort flush).  `seed` pre-populates the log
  /// with records restored from a previous run so a flush never
  /// forgets them.
  explicit CheckpointWriter(std::string path, std::size_t flush_every = 8,
                            std::vector<CheckpointRecord> seed = {});
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter();

  /// Buffer one record; rewrites the file when `flush_every` new
  /// records have accumulated.
  void append(const CheckpointRecord& record);

  /// Atomically rewrite the checkpoint with everything appended so
  /// far.  Increments "resilience.checkpoint.writes".  No-op when
  /// nothing changed since the last flush.
  void flush();

  [[nodiscard]] const std::vector<CheckpointRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t flush_every_;
  std::size_t unflushed_ = 0;
  std::vector<CheckpointRecord> records_;
};

/// Read a checkpoint.  A missing file is an empty checkpoint (fresh
/// run).  A present file with a bad magic/version raises
/// Error{kCorrupt}; a valid prefix followed by a torn or CRC-failing
/// tail returns the intact prefix and counts the dropped tail on
/// "resilience.checkpoint.crc_dropped".
[[nodiscard]] std::vector<CheckpointRecord> load_checkpoint(
    const std::string& path);

}  // namespace por::resilience
