#include "por/resilience/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <type_traits>

#include "por/obs/registry.hpp"
#include "por/resilience/atomic_file.hpp"
#include "por/resilience/crc32.hpp"
#include "por/resilience/error.hpp"
#include "por/util/log.hpp"

namespace por::resilience {

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordBytes = sizeof(CheckpointRecord);

static_assert(std::is_trivially_copyable_v<CheckpointRecord>,
              "checkpoint records are written as raw bytes");

}  // namespace

CheckpointWriter::CheckpointWriter(std::string path, std::size_t flush_every,
                                   std::vector<CheckpointRecord> seed)
    : path_(std::move(path)),
      flush_every_(flush_every == 0 ? 1 : flush_every),
      records_(std::move(seed)) {}

CheckpointWriter::~CheckpointWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; the driver's explicit flush()
    // is the one whose failure matters (and throws).
  }
}

void CheckpointWriter::append(const CheckpointRecord& record) {
  records_.push_back(record);
  if (++unflushed_ >= flush_every_) flush();
}

void CheckpointWriter::flush() {
  if (unflushed_ == 0) return;
  atomic_write_file(path_, [&](std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
    for (const CheckpointRecord& record : records_) {
      const std::uint32_t crc = crc32(&record, kRecordBytes);
      out.write(reinterpret_cast<const char*>(&record),
                static_cast<std::streamsize>(kRecordBytes));
      out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    }
  });
  unflushed_ = 0;
  obs::current_registry().counter("resilience.checkpoint.writes").add();
}

std::vector<CheckpointRecord> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no checkpoint yet: a fresh run
  char magic[4];
  in.read(magic, sizeof magic);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw corrupt_error("load_checkpoint: bad magic in " + path);
  }
  if (version != kVersion) {
    throw corrupt_error("load_checkpoint: unsupported version " +
                        std::to_string(version) + " in " + path);
  }
  std::vector<CheckpointRecord> records;
  bool dropped_tail = false;
  while (true) {
    CheckpointRecord record;
    in.read(reinterpret_cast<char*>(&record),
            static_cast<std::streamsize>(kRecordBytes));
    if (in.gcount() == 0) break;  // clean end of log
    std::uint32_t stored_crc = 0;
    if (in.gcount() == static_cast<std::streamsize>(kRecordBytes)) {
      in.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
    }
    if (!in || in.gcount() != static_cast<std::streamsize>(
                                  sizeof stored_crc)) {
      dropped_tail = true;  // torn record: a crash mid-append
      break;
    }
    if (crc32(&record, kRecordBytes) != stored_crc) {
      dropped_tail = true;  // bit rot or torn write caught by the CRC
      break;
    }
    records.push_back(record);
  }
  if (dropped_tail) {
    obs::current_registry().counter("resilience.checkpoint.crc_dropped").add();
    util::log_warn("load_checkpoint: dropped torn/corrupt tail of ", path,
                   "; ", records.size(), " intact records kept");
  }
  return records;
}

}  // namespace por::resilience
