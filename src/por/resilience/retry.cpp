#include "por/resilience/retry.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "por/obs/registry.hpp"
#include "por/util/log.hpp"

namespace por::resilience::detail {

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int failed_attempt) {
  const double factor =
      std::pow(std::max(1.0, policy.multiplier),
               static_cast<double>(std::max(0, failed_attempt)));
  const double raw =
      static_cast<double>(policy.base_delay.count()) * factor;
  const double capped =
      std::min(raw, static_cast<double>(policy.max_delay.count()));
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(std::max(0.0, capped)));
}

void on_retry(const char* what, int failed_attempt,
              std::chrono::milliseconds sleep_ms, const char* error) {
  obs::current_registry().counter("resilience.io.retries").add();
  util::log_warn("retry: ", what, " attempt ", failed_attempt + 1,
                 " failed (", error, "); retrying in ", sleep_ms.count(),
                 " ms");
  if (sleep_ms.count() > 0) std::this_thread::sleep_for(sleep_ms);
}

}  // namespace por::resilience::detail
