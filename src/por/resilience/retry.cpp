#include "por/resilience/retry.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>

#include "por/obs/registry.hpp"
#include "por/util/log.hpp"

namespace por::resilience::detail {

namespace {

/// Fallback jitter source: one cheap PRNG per thread, seeded once from
/// the OS.  Thread-local so concurrent retry loops never share (or
/// contend on) a stream.
double thread_rand01() {
  thread_local std::minstd_rand engine{std::random_device{}()};
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
}

}  // namespace

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int failed_attempt,
                                        std::chrono::milliseconds prev_sleep) {
  const double base = static_cast<double>(policy.base_delay.count());
  const double cap = static_cast<double>(policy.max_delay.count());
  double raw = 0.0;
  if (policy.jitter) {
    // Decorrelated jitter: draw uniformly from [base, 3 * prev], so
    // consecutive sleeps random-walk upward instead of marching every
    // stalled worker through the same instants.
    const double u = policy.rand01 ? policy.rand01() : thread_rand01();
    const double span =
        std::max(0.0, 3.0 * static_cast<double>(prev_sleep.count()) - base);
    raw = base + u * span;
  } else {
    const double factor =
        std::pow(std::max(1.0, policy.multiplier),
                 static_cast<double>(std::max(0, failed_attempt)));
    raw = base * factor;
  }
  const double capped = std::min(raw, cap);
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(std::max(0.0, capped)));
}

void on_retry(const char* what, int failed_attempt,
              std::chrono::milliseconds sleep_ms, const char* error) {
  obs::current_registry().counter("resilience.io.retries").add();
  util::log_warn("retry: ", what, " attempt ", failed_attempt + 1,
                 " failed (", error, "); retrying in ", sleep_ms.count(),
                 " ms");
  if (sleep_ms.count() > 0) std::this_thread::sleep_for(sleep_ms);
}

}  // namespace por::resilience::detail
