#include "por/resilience/sync_hooks.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

namespace por::resilience {

const char* to_string(SyncOp op) {
  switch (op) {
    case SyncOp::kOpen:
      return "open";
    case SyncOp::kWrite:
      return "write";
    case SyncOp::kFlush:
      return "flush";
    case SyncOp::kFsync:
      return "fsync";
    case SyncOp::kRename:
      return "rename";
    case SyncOp::kDirFsync:
      return "dir_fsync";
    case SyncOp::kRemove:
      return "remove";
  }
  return "?";
}

namespace {

// The fast path is the `installed` flag: production code pays one
// relaxed load per hook point and never touches the mutex.  The mutex
// only serializes install/clear against firing hooks in tests (where
// checkpoint writes on scheduler workers race the installing thread).
std::mutex hook_mutex;
std::shared_ptr<const SyncHook> hook_slot;  // guarded by hook_mutex
// por-atomic-file: monitor — the flag is a best-effort fast-path gate;
// a stale read only routes one call through (or past) the mutex, and
// the hook itself is read under the lock.
std::atomic<bool> hook_installed{false};

}  // namespace

void set_sync_hook(SyncHook hook) {
  std::lock_guard<std::mutex> lock(hook_mutex);
  if (hook) {
    hook_slot = std::make_shared<const SyncHook>(std::move(hook));
    hook_installed.store(true, std::memory_order_release);
  } else {
    hook_slot.reset();
    hook_installed.store(false, std::memory_order_release);
  }
}

void sync_hook_point(SyncOp op, const std::string& path) {
  if (!hook_installed.load(std::memory_order_relaxed)) return;
  std::shared_ptr<const SyncHook> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex);
    hook = hook_slot;
  }
  if (hook && *hook) (*hook)(op, path);
}

}  // namespace por::resilience
