// por/resilience/quarantine.hpp
//
// Graceful per-view degradation: a view whose pixels contain NaN/Inf
// (a corrupt read that slipped past the format checks, a detector
// glitch) or whose match score comes back non-finite must not poison
// the reconstruction — one bad image out of thousands should cost one
// view, not the map.  The refiner marks such views quarantined; the
// drivers keep them out of step C and report them on
// "resilience.views.quarantined".
#pragma once

#include <cmath>
#include <cstddef>

namespace por::resilience {

/// Are all `n` doubles finite?  The scan is branch-cheap (single
/// std::isfinite per element) and runs once per view — noise next to
/// the refinement itself.
[[nodiscard]] inline bool all_finite(const double* values, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) return false;
  }
  return true;
}

}  // namespace por::resilience
