// por/resilience/error.hpp
//
// The failure taxonomy of the resilience subsystem (DESIGN.md §10).
// Every I/O and recovery error in the tree is classified into one of
// three kinds, because the three demand different responses from a
// long refinement run:
//
//   kTransient  the operation may succeed if repeated (NFS hiccup,
//               file momentarily locked, mount not yet back) — the
//               retry layer (retry.hpp) backs off and tries again.
//   kCorrupt    the bytes are wrong and will stay wrong (bad magic,
//               truncated payload, failed CRC, overflowing header) —
//               retrying is useless; the artifact must be quarantined
//               or regenerated.
//   kFatal      the program cannot continue regardless (logic error,
//               impossible request) — surface immediately.
//
// Error derives from std::runtime_error so every pre-existing
// catch(const std::runtime_error&) site keeps working; new code
// catches por::resilience::Error and dispatches on kind().
#pragma once

#include <stdexcept>
#include <string>

namespace por::resilience {

/// How a failure should be handled, not merely what went wrong.
enum class ErrorKind {
  kTransient,  ///< retry with backoff may succeed
  kCorrupt,    ///< data is malformed; retry cannot help
  kFatal,      ///< unrecoverable; abort the operation
};

[[nodiscard]] constexpr const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kTransient: return "transient";
    case ErrorKind::kCorrupt: return "corrupt";
    case ErrorKind::kFatal: return "fatal";
  }
  return "unknown";
}

/// A classified failure.  what() carries the kind prefix so logs stay
/// self-describing even through a plain std::exception catch.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string("[") + to_string(kind) + "] " +
                           message),
        kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }
  [[nodiscard]] bool retryable() const {
    return kind_ == ErrorKind::kTransient;
  }

 private:
  ErrorKind kind_;
};

[[nodiscard]] inline Error transient_error(const std::string& message) {
  return Error(ErrorKind::kTransient, message);
}
[[nodiscard]] inline Error corrupt_error(const std::string& message) {
  return Error(ErrorKind::kCorrupt, message);
}
[[nodiscard]] inline Error fatal_error(const std::string& message) {
  return Error(ErrorKind::kFatal, message);
}

}  // namespace por::resilience
