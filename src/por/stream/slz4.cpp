#include "por/stream/slz4.hpp"

#include <cstring>

#include "por/resilience/error.hpp"

namespace por::stream {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kWindow = 65535;  // 16-bit offsets
constexpr std::size_t kHashBits = 14;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;
// The greedy matcher stops this many bytes before the end: the final
// bytes always ship as literals, which keeps the decoder's copy loops
// free of end-of-buffer special cases (same policy as LZ4's
// MFLIMIT/LASTLITERALS pair).
constexpr std::size_t kTailLiterals = 12;

[[nodiscard]] std::uint32_t load32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] std::size_t hash4(std::uint32_t v) {
  // Fibonacci hashing of the 4-byte probe (the 32-bit golden-ratio
  // multiplier), top kHashBits bits.
  return static_cast<std::size_t>((v * 2654435761u) >> (32 - kHashBits));
}

/// Emit a length as nibble + 0xFF extension run.  Returns false when
/// the output head would pass `end`.
bool put_length(unsigned char*& out, const unsigned char* end,
                std::size_t len) {
  while (len >= 255) {
    if (out >= end) return false;
    *out++ = 255;
    len -= 255;
  }
  if (out >= end) return false;
  *out++ = static_cast<unsigned char>(len);
  return true;
}

}  // namespace

std::size_t slz4_compress(const void* src, std::size_t src_bytes, void* dst,
                          std::size_t dst_capacity) {
  const auto* in = static_cast<const unsigned char*>(src);
  auto* out = static_cast<unsigned char*>(dst);
  const unsigned char* const out_end = out + dst_capacity;

  // Table of last positions for each 4-byte hash; +1 biased so the
  // zero-initialized table never aliases position 0.
  std::size_t table[kHashSize] = {};

  std::size_t pos = 0;       // scan head
  std::size_t anchor = 0;    // first unemitted literal
  const std::size_t match_limit =
      src_bytes > kTailLiterals ? src_bytes - kTailLiterals : 0;

  const auto emit_sequence = [&](std::size_t literals, std::size_t match_len,
                                 std::size_t offset) -> bool {
    if (out >= out_end) return false;
    unsigned char* token = out++;
    const std::size_t lit_nibble = literals < 15 ? literals : 15;
    std::size_t match_nibble = 0;
    if (match_len > 0) {
      const std::size_t m = match_len - kMinMatch;
      match_nibble = m < 15 ? m : 15;
    }
    *token = static_cast<unsigned char>((lit_nibble << 4) | match_nibble);
    if (literals >= 15 && !put_length(out, out_end, literals - 15)) {
      return false;
    }
    if (out + literals > out_end) return false;
    std::memcpy(out, in + anchor, literals);
    out += literals;
    if (match_len == 0) return true;  // final literal-only sequence
    if (out + 2 > out_end) return false;
    *out++ = static_cast<unsigned char>(offset & 0xFF);
    *out++ = static_cast<unsigned char>(offset >> 8);
    if (match_len - kMinMatch >= 15 &&
        !put_length(out, out_end, match_len - kMinMatch - 15)) {
      return false;
    }
    return true;
  };

  while (pos + kMinMatch <= match_limit) {
    const std::uint32_t probe = load32(in + pos);
    const std::size_t h = hash4(probe);
    const std::size_t candidate = table[h];
    table[h] = pos + 1;
    if (candidate != 0 && pos - (candidate - 1) <= kWindow &&
        load32(in + (candidate - 1)) == probe) {
      const std::size_t match_pos = candidate - 1;
      // Extend the match forward as far as the limit allows.
      std::size_t len = kMinMatch;
      while (pos + len < match_limit && in[match_pos + len] == in[pos + len]) {
        ++len;
      }
      if (!emit_sequence(pos - anchor, len, pos - match_pos)) return 0;
      pos += len;
      anchor = pos;
    } else {
      ++pos;
    }
  }

  // Trailing literals (always at least kTailLiterals of them unless the
  // input was tiny).
  if (!emit_sequence(src_bytes - anchor, 0, 0)) return 0;
  return static_cast<std::size_t>(out - static_cast<unsigned char*>(dst));
}

void slz4_decompress(const void* src, std::size_t src_bytes, void* dst,
                     std::size_t raw_bytes) {
  const auto* in = static_cast<const unsigned char*>(src);
  const unsigned char* const in_end = in + src_bytes;
  auto* out = static_cast<unsigned char*>(dst);
  unsigned char* const out_begin = out;
  unsigned char* const out_end = out + raw_bytes;

  const auto read_length = [&](std::size_t nibble) -> std::size_t {
    std::size_t len = nibble;
    if (nibble == 15) {
      unsigned char byte;
      do {
        if (in >= in_end) {
          throw resilience::corrupt_error(
              "slz4: truncated length extension");
        }
        byte = *in++;
        len += byte;
      } while (byte == 255);
    }
    return len;
  };

  while (in < in_end) {
    const unsigned char token = *in++;
    // Literals.
    const std::size_t literals = read_length(token >> 4);
    if (static_cast<std::size_t>(in_end - in) < literals) {
      throw resilience::corrupt_error("slz4: literal run past input end");
    }
    if (static_cast<std::size_t>(out_end - out) < literals) {
      throw resilience::corrupt_error("slz4: literal run past output end");
    }
    std::memcpy(out, in, literals);
    in += literals;
    out += literals;
    if (in == in_end) break;  // final literal-only sequence
    // Match.
    if (in_end - in < 2) {
      throw resilience::corrupt_error("slz4: truncated match offset");
    }
    const std::size_t offset =
        static_cast<std::size_t>(in[0]) | (static_cast<std::size_t>(in[1]) << 8);
    in += 2;
    if (offset == 0 || offset > static_cast<std::size_t>(out - out_begin)) {
      throw resilience::corrupt_error("slz4: match offset outside window");
    }
    const std::size_t match_len = read_length(token & 0x0F) + kMinMatch;
    if (static_cast<std::size_t>(out_end - out) < match_len) {
      throw resilience::corrupt_error("slz4: match run past output end");
    }
    // Byte-wise copy on purpose: offsets < match_len overlap (RLE-style
    // matches replicate the window as they go).
    const unsigned char* from = out - offset;
    for (std::size_t i = 0; i < match_len; ++i) out[i] = from[i];
    out += match_len;
  }

  if (out != out_end) {
    throw resilience::corrupt_error("slz4: block decodes to wrong size");
  }
}

}  // namespace por::stream
