#include "por/stream/view_source.hpp"

#include <cstring>
#include <fstream>

#include "por/resilience/error.hpp"

namespace por::stream {

em::Image<double> ViewSource::fetch_image(std::uint64_t index) {
  em::Image<double> view(ny(), nx());
  fetch(index, view.data());
  return view;
}

// ---------------------------------------------------------------------------
// MemoryViewSource
// ---------------------------------------------------------------------------

MemoryViewSource::MemoryViewSource(const std::vector<em::Image<double>>& views)
    : views_(&views) {
  if (!views.empty()) {
    ny_ = views.front().ny();
    nx_ = views.front().nx();
  }
}

std::uint64_t MemoryViewSource::count() const { return views_->size(); }

void MemoryViewSource::fetch(std::uint64_t index, double* dst) {
  const em::Image<double>& view = views_->at(static_cast<std::size_t>(index));
  std::memcpy(dst, view.data(), view.size() * sizeof(double));
}

// ---------------------------------------------------------------------------
// StackViewSource
// ---------------------------------------------------------------------------

StackViewSource::StackViewSource(std::string path,
                                 resilience::RetryPolicy retry)
    : path_(std::move(path)), retry_(retry) {
  reader_ = resilience::with_retry(retry_, "StackViewSource.open", [&] {
    return std::make_unique<io::StackReader>(path_);
  });
}

std::uint64_t StackViewSource::count() const { return reader_->count(); }
std::size_t StackViewSource::ny() const { return reader_->ny(); }
std::size_t StackViewSource::nx() const { return reader_->nx(); }

void StackViewSource::fetch(std::uint64_t index, double* dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  resilience::with_retry(retry_, "StackViewSource.fetch", [&] {
    try {
      reader_->read_view(index, dst);
    } catch (const resilience::Error&) {
      // Reopen before the retry layer re-invokes us: a stale handle
      // stays stale, a fresh one may see the healthy mount again.
      reader_ = std::make_unique<io::StackReader>(path_);
      throw;
    }
  });
}

// ---------------------------------------------------------------------------
// ShardedViewSource
// ---------------------------------------------------------------------------

ShardedViewSource::ShardedViewSource(const std::string& base,
                                     const ShardedStackOptions& options)
    : shards_(base, options) {}

std::uint64_t ShardedViewSource::count() const { return shards_.count(); }
std::size_t ShardedViewSource::ny() const { return shards_.ny(); }
std::size_t ShardedViewSource::nx() const { return shards_.nx(); }

void ShardedViewSource::fetch(std::uint64_t index, double* dst) {
  (void)shards_.read_view(index, dst);  // quarantined views arrive as NaN
}

void ShardedViewSource::will_need(std::uint64_t first, std::size_t n) {
  shards_.will_need(first, n);
}

// ---------------------------------------------------------------------------
// open_view_source
// ---------------------------------------------------------------------------

std::unique_ptr<ViewSource> open_view_source(
    const std::string& path, const ShardedStackOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw resilience::transient_error("open_view_source: cannot open " +
                                      path);
  }
  char magic[4] = {};
  in.read(magic, 4);
  in.close();
  if (std::memcmp(magic, "PORM", 4) == 0) {
    return std::make_unique<ShardedViewSource>(path, options);
  }
  return std::make_unique<StackViewSource>(path);
}

}  // namespace por::stream
