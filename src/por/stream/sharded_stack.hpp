// por/stream/sharded_stack.hpp
//
// Sharded, memory-mapped view-stack store (DESIGN.md §14) — the
// out-of-core container behind paper-scale runs (7,917 Sindbis views
// at 331² ≈ 6.9 GB of f64 pixels; 4,422 reovirus views at 511²).
//
// A sharded stack is a manifest file plus fixed-population shard
// files (`<base>` + `<base>.s0000`, `<base>.s0001`, ...):
//
//   manifest "PORM": magic | u32 version | u64 count, ny, nx,
//                    views_per_shard, shard_count | u8 compressed |
//                    pad[7] | u32 crc(fields)
//   shard    "PORH": magic | u32 version | u64 first_view, view_count,
//                    ny, nx | u8 compressed | pad[7] |
//                    index[view_count] { u64 offset, u64 stored_bytes,
//                                        u32 crc32, u32 flags } |
//                    u32 header_crc | 8-byte-aligned view payloads
//
// Every stored view carries its own CRC-32 and (optionally) its own
// slz4 compression, so any single view is seekable without touching
// its neighbours and any torn/bit-flipped byte is detected on read.
// Corrupt-input policy follows the PR 5 taxonomy: malformed bytes are
// resilience::Error{kCorrupt}; with
// ShardedStackOptions::quarantine_corrupt the reader degrades
// per-shard/per-view instead — the bad view arrives NaN-filled (the
// refiner's quarantine gate then excludes it) and the run survives.
//
// The reader keeps at most `max_resident_bytes` of shard mappings
// resident (LRU), mapping shards on demand via ShardMapping (mmap with
// a read() fallback; both paths are bitwise identical).  Obs:
// stream.shards_mapped / stream.bytes_mapped / stream.resident_bytes /
// stream.shards_quarantined / stream.views_quarantined.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "por/em/grid.hpp"
#include "por/stream/shard_mapping.hpp"

namespace por::stream {

struct ShardedStackOptions {
  /// Views per shard file (the last shard may be short).
  std::size_t views_per_shard = 64;
  /// Writer: compress each view with slz4 when it actually shrinks
  /// (incompressible views are stored raw, flagged per view).
  bool compress = false;
  /// Reader: mmap shards (true) or read() them into heap buffers
  /// (false).  Identical bytes either way — tests assert it.
  bool use_mmap = true;
  /// Reader: unmap least-recently-used shards beyond this budget
  /// (0 = keep everything resident).
  std::size_t max_resident_bytes = 0;
  /// Reader: a corrupt shard/view is quarantined (NaN-filled pixels,
  /// read_view returns false) instead of throwing, so one bad shard
  /// costs its views, not the run.
  bool quarantine_corrupt = false;
};

/// Incremental writer: append views one at a time, then finish().
/// Shards and the manifest are written with atomic (temp+fsync+rename)
/// replacement, so a crash mid-write never leaves a half shard a
/// reader would trust — and no complete manifest without its shards.
class ShardedStackWriter {
 public:
  ShardedStackWriter(std::string base, std::size_t ny, std::size_t nx,
                     const ShardedStackOptions& options = {});
  ~ShardedStackWriter();
  ShardedStackWriter(const ShardedStackWriter&) = delete;
  ShardedStackWriter& operator=(const ShardedStackWriter&) = delete;

  /// Append one ny*nx row-major view.
  void append(const double* pixels);
  void append(const em::Image<double>& view);

  /// Flush the tail shard and write the manifest.  Idempotent; must be
  /// called for the stack to be readable (the destructor does NOT
  /// finish a stack implicitly — an abandoned writer leaves no
  /// manifest, which is exactly the crash story).
  void finish();

  [[nodiscard]] std::uint64_t appended() const { return appended_; }

 private:
  void flush_shard();

  std::string base_;
  ShardedStackOptions options_;
  std::size_t ny_ = 0, nx_ = 0;
  std::uint64_t appended_ = 0;
  std::size_t shards_written_ = 0;
  std::vector<double> pending_;  ///< pixels of the open shard
  bool finished_ = false;
};

/// One-shot writer for an in-memory stack.
void write_sharded_stack(const std::string& base,
                         const std::vector<em::Image<double>>& views,
                         const ShardedStackOptions& options = {});

/// Convert a monolithic PORS stack into shards, streaming one shard's
/// worth of views at a time (never the whole stack) — the `stack_shard`
/// tool and the examples go through here.
void shard_stack_file(const std::string& stack_path, const std::string& base,
                      const ShardedStackOptions& options = {});

/// Convert shards back into a monolithic PORS stack (also streamed).
void unshard_to_stack(const std::string& base, const std::string& stack_path);

/// Path of shard `k` of the stack rooted at `base`.
[[nodiscard]] std::string shard_path(const std::string& base, std::size_t k);

/// Random-access reader.  Thread-safe: concurrent read_view calls are
/// serialized internally (shard I/O is the bottleneck, not the lock).
class ShardedStack {
 public:
  explicit ShardedStack(const std::string& base,
                        const ShardedStackOptions& options = {});

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t view_pixels() const { return ny_ * nx_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t views_per_shard() const {
    return views_per_shard_;
  }
  [[nodiscard]] bool compressed() const { return compressed_; }
  [[nodiscard]] const std::string& base() const { return base_; }

  /// Copy view `index` (ny*nx doubles, row-major) into `dst`.  Returns
  /// true on success; false when the view was quarantined (pixels are
  /// NaN-filled so downstream finiteness gates catch any missed check).
  /// Without quarantine_corrupt a corrupt view/shard throws
  /// resilience::Error{kCorrupt} instead.
  bool read_view(std::uint64_t index, double* dst);

  /// Views [first, first + n) as Images (throws std::out_of_range
  /// beyond count()).
  [[nodiscard]] std::vector<em::Image<double>> read_range(std::uint64_t first,
                                                          std::size_t n);

  /// Arbitrary view subset as Images, in the order given.
  [[nodiscard]] std::vector<em::Image<double>> read_views(
      const std::vector<std::uint64_t>& indices);

  /// madvise(WILLNEED) the payload window of views [first, first + n)
  /// — the prefetcher calls this one batch ahead of the consumer.
  void will_need(std::uint64_t first, std::size_t n);

  // ---- accounting ---------------------------------------------------------
  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] std::size_t resident_shards() const;
  [[nodiscard]] std::uint64_t quarantined_shards() const;
  [[nodiscard]] std::uint64_t quarantined_views() const;

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;        ///< from shard file start
    std::uint64_t stored_bytes = 0;
    std::uint32_t crc = 0;
    std::uint32_t flags = 0;         ///< bit 0: slz4-compressed
  };
  struct Shard {
    std::uint64_t first = 0;
    std::uint64_t views = 0;
    ShardMapping map;                ///< empty until opened
    std::vector<IndexEntry> index;   ///< parsed once per open
    bool open = false;
    bool quarantined = false;
  };

  /// Ensure shard `k` is mapped and parsed; returns nullptr when the
  /// shard is quarantined (only possible with quarantine_corrupt).
  Shard* ensure_open(std::size_t k);
  void parse_shard(std::size_t k, Shard& shard);
  void evict_to_budget(std::size_t keep);
  void touch_lru(std::size_t k);
  void quarantine_shard(std::size_t k, Shard& shard,
                        const std::string& why);

  std::string base_;
  ShardedStackOptions options_;
  std::uint64_t count_ = 0;
  std::size_t ny_ = 0, nx_ = 0;
  std::size_t views_per_shard_ = 0;
  bool compressed_ = false;

  mutable std::mutex mutex_;
  std::vector<Shard> shards_;
  std::list<std::size_t> lru_;  ///< open shards, front = most recent
  std::size_t resident_bytes_ = 0;
  std::uint64_t quarantined_shards_ = 0;
  std::uint64_t quarantined_views_ = 0;
};

}  // namespace por::stream
