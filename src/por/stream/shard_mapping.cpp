#include "por/stream/shard_mapping.hpp"

#include <cstdint>
#include <fstream>
#include <utility>

#include "por/obs/registry.hpp"
#include "por/resilience/error.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define POR_STREAM_HAS_MMAP 1
#else
#define POR_STREAM_HAS_MMAP 0
#endif

namespace por::stream {

namespace {

#if POR_STREAM_HAS_MMAP
constexpr std::size_t kPage = 4096;

/// Round an [offset, offset+bytes) window outward to page boundaries,
/// clamped to the mapping.
void page_window(std::size_t size, std::size_t& offset, std::size_t& bytes) {
  if (offset > size) {
    offset = size;
    bytes = 0;
    return;
  }
  const std::size_t end = offset + bytes > size ? size : offset + bytes;
  offset &= ~(kPage - 1);
  bytes = end - offset;
}
#endif

}  // namespace

ShardMapping::ShardMapping(const std::string& path, bool prefer_mmap) {
#if POR_STREAM_HAS_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw resilience::transient_error("ShardMapping: cannot open " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      throw resilience::corrupt_error("ShardMapping: empty or unstatable " +
                                      path);
    }
    const std::size_t bytes = static_cast<std::size_t>(st.st_size);
    void* p = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (p != MAP_FAILED) {
      data_ = static_cast<const unsigned char*>(p);
      size_ = bytes;
      mapped_ = true;
      obs::MetricsRegistry& registry = obs::current_registry();
      registry.counter("stream.shards_mapped").add();
      registry.counter("stream.bytes_mapped").add(bytes);
      return;
    }
    // mmap failure (exotic filesystem, rlimit): fall through to read().
  }
#else
  (void)prefer_mmap;
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw resilience::transient_error("ShardMapping: cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (end <= 0) {
    throw resilience::corrupt_error("ShardMapping: empty file " + path);
  }
  in.seekg(0, std::ios::beg);
  const std::size_t bytes = static_cast<std::size_t>(end);
  auto* buffer = new unsigned char[bytes];
  in.read(reinterpret_cast<char*>(buffer), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    delete[] buffer;
    throw resilience::corrupt_error("ShardMapping: short read of " + path);
  }
  data_ = buffer;
  size_ = bytes;
  mapped_ = false;
  obs::current_registry().counter("stream.bytes_read").add(bytes);
}

ShardMapping::~ShardMapping() { reset(); }

void ShardMapping::reset() {
  if (data_ == nullptr) return;
#if POR_STREAM_HAS_MMAP
  if (mapped_) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
    obs::current_registry().counter("stream.shards_unmapped").add();
  } else {
    delete[] data_;
  }
#else
  delete[] data_;
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

ShardMapping::ShardMapping(ShardMapping&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

ShardMapping& ShardMapping::operator=(ShardMapping&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void ShardMapping::will_need(std::size_t offset, std::size_t bytes) const {
#if POR_STREAM_HAS_MMAP
  if (!mapped_ || bytes == 0) return;
  page_window(size_, offset, bytes);
  if (bytes == 0) return;
  (void)::madvise(const_cast<unsigned char*>(data_) + offset, bytes,
                  MADV_WILLNEED);
#else
  (void)offset;
  (void)bytes;
#endif
}

void ShardMapping::dont_need(std::size_t offset, std::size_t bytes) const {
#if POR_STREAM_HAS_MMAP
  if (!mapped_ || bytes == 0) return;
  page_window(size_, offset, bytes);
  if (bytes == 0) return;
  (void)::madvise(const_cast<unsigned char*>(data_) + offset, bytes,
                  MADV_DONTNEED);
#else
  (void)offset;
  (void)bytes;
#endif
}

}  // namespace por::stream
