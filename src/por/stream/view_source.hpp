// por/stream/view_source.hpp
//
// ViewSource — the one interface the refinement core reads views
// through (DESIGN.md §14).  Three backings:
//
//   MemoryViewSource   in-core vector<Image> (the historical path —
//                      parallel_refine wraps its input in one)
//   StackViewSource    monolithic PORS file via io::StackReader, with
//                      the PR 5 retry envelope around each fetch
//   ShardedViewSource  sharded stack via stream::ShardedStack (mmap,
//                      LRU resident budget, quarantine)
//
// All three produce bitwise-identical pixels for the same logical
// stack; the streaming tests assert it.  fetch() copies into the
// caller's buffer — sources never hand out interior pointers, so the
// mmap lifetime rule stays inside ShardedStack.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "por/em/grid.hpp"
#include "por/io/stack_io.hpp"
#include "por/resilience/retry.hpp"
#include "por/stream/sharded_stack.hpp"

namespace por::stream {

class ViewSource {
 public:
  virtual ~ViewSource() = default;

  [[nodiscard]] virtual std::uint64_t count() const = 0;
  [[nodiscard]] virtual std::size_t ny() const = 0;
  [[nodiscard]] virtual std::size_t nx() const = 0;
  [[nodiscard]] std::size_t view_pixels() const { return ny() * nx(); }

  /// Copy view `index` (ny*nx doubles, row-major) into `dst`.  A
  /// quarantined view arrives NaN-filled (the refiner's finiteness
  /// gate then skips it); anything else throws.  Implementations must
  /// be safe to call from several threads at once — a ViewCursor's
  /// background fill runs concurrently with direct fetches.
  virtual void fetch(std::uint64_t index, double* dst) = 0;

  /// Advisory: the caller will fetch [first, first + n) soon.
  virtual void will_need(std::uint64_t first, std::size_t n) {
    (void)first;
    (void)n;
  }

  /// Convenience: view `index` as a fresh Image.
  [[nodiscard]] em::Image<double> fetch_image(std::uint64_t index);
};

/// Borrows an in-memory stack (must outlive the source).
class MemoryViewSource final : public ViewSource {
 public:
  explicit MemoryViewSource(const std::vector<em::Image<double>>& views);

  [[nodiscard]] std::uint64_t count() const override;
  [[nodiscard]] std::size_t ny() const override { return ny_; }
  [[nodiscard]] std::size_t nx() const override { return nx_; }
  void fetch(std::uint64_t index, double* dst) override;

 private:
  const std::vector<em::Image<double>>* views_;
  std::size_t ny_ = 0, nx_ = 0;
};

/// Monolithic PORS stack, fetched with seeks through one persistent
/// reader.  Short reads are retried under `retry` (default: the
/// RetryPolicy defaults) by reopening the file — a transient NFS flap
/// costs a reopen, not the run.
class StackViewSource final : public ViewSource {
 public:
  explicit StackViewSource(std::string path,
                           resilience::RetryPolicy retry = {});

  [[nodiscard]] std::uint64_t count() const override;
  [[nodiscard]] std::size_t ny() const override;
  [[nodiscard]] std::size_t nx() const override;
  void fetch(std::uint64_t index, double* dst) override;

 private:
  std::string path_;
  resilience::RetryPolicy retry_;
  std::mutex mutex_;  ///< the reader's seek+read pair is one operation
  std::unique_ptr<io::StackReader> reader_;
};

/// Sharded stack (owns the ShardedStack reader).
class ShardedViewSource final : public ViewSource {
 public:
  explicit ShardedViewSource(const std::string& base,
                             const ShardedStackOptions& options = {});

  [[nodiscard]] std::uint64_t count() const override;
  [[nodiscard]] std::size_t ny() const override;
  [[nodiscard]] std::size_t nx() const override;
  void fetch(std::uint64_t index, double* dst) override;
  void will_need(std::uint64_t first, std::size_t n) override;

  [[nodiscard]] ShardedStack& shards() { return shards_; }

 private:
  ShardedStack shards_;
};

/// Open `path` as whichever source fits: a sharded-stack manifest
/// ("PORM" magic) becomes a ShardedViewSource with `options`, a PORS
/// stack a StackViewSource — callers (examples, benches) accept either
/// file kind with one flag.
[[nodiscard]] std::unique_ptr<ViewSource> open_view_source(
    const std::string& path, const ShardedStackOptions& options = {});

}  // namespace por::stream
