#include "por/stream/view_cursor.hpp"

#include <chrono>

#include "por/obs/registry.hpp"
#include "por/util/contracts.hpp"

namespace por::stream {

namespace {

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ViewCursor::ViewCursor(ViewSource& source, std::uint64_t first,
                       std::uint64_t count, const PrefetchOptions& options)
    : source_(source),
      first_(first),
      count_(count),
      view_px_(source.view_pixels()),
      options_(options),
      next_index_(first) {
  POR_EXPECT(first_ + count_ <= source_.count(),
             "ViewCursor range beyond source");
  if (options_.depth == 0) options_.depth = 1;
  if (options_.batch_views == 0) options_.batch_views = 1;
  if (options_.scheduler != nullptr) {
    scheduler_ = options_.scheduler;
  } else {
    serve::SchedulerOptions sched;
    sched.workers = 1;
    owned_scheduler_ = std::make_unique<serve::Scheduler>(sched);
    scheduler_ = owned_scheduler_.get();
  }
  const std::size_t chunk_doubles = options_.batch_views * view_px_;
  slots_.resize(std::min<std::uint64_t>(options_.depth, chunk_count()));
  for (auto& slot : slots_) {
    // Rule 2: the slot buffer outlives every frame-arena scope the
    // consumer opens between next() calls, so it owns a private arena.
    slot.arena = util::Arena(chunk_doubles * sizeof(double) + 256);
    slot.pixels = slot.arena.alloc_array<double>(chunk_doubles);
  }
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    submit_fill(s, s);
  }
}

ViewCursor::~ViewCursor() {
  // In-flight fills write into the slot arenas; they must land before
  // the arenas die (the owned scheduler, declared earlier, is
  // destroyed after them).
  for (auto& slot : slots_) {
    if (slot.batch) {
      try {
        slot.batch->wait();
      } catch (...) {
        // Fill errors surface through next(); destruction swallows.
      }
    }
  }
}

std::uint64_t ViewCursor::chunk_count() const {
  return (count_ + options_.batch_views - 1) / options_.batch_views;
}

void ViewCursor::submit_fill(std::size_t slot_id, std::uint64_t chunk) {
  Slot& slot = slots_[slot_id];
  const std::uint64_t chunk_first = first_ + chunk * options_.batch_views;
  const std::size_t views = static_cast<std::size_t>(
      std::min<std::uint64_t>(options_.batch_views,
                              first_ + count_ - chunk_first));
  slot.chunk = chunk;
  slot.views = views;
  slot.batch = scheduler_->submit(1, [this, &slot, chunk_first,
                                      views](std::size_t) {
    // One fill at a time: sources are internally locked but keeping
    // fills serial preserves sequential I/O order on spinning storage
    // and makes the will_need window honest.
    std::lock_guard<std::mutex> lock(source_mutex_);
    source_.will_need(chunk_first, views);
    for (std::size_t i = 0; i < views; ++i) {
      source_.fetch(chunk_first + i, slot.pixels + i * view_px_);
    }
  });
}

void ViewCursor::await_chunk(std::uint64_t chunk) {
  Slot& slot = slots_[static_cast<std::size_t>(chunk % slots_.size())];
  POR_EXPECT(slot.chunk == chunk, "ViewCursor slot/chunk mismatch");
  obs::MetricsRegistry& registry = obs::current_registry();
  if (chunk == 0) {
    // Cold start: nothing could have hidden this wait.
    const auto start = std::chrono::steady_clock::now();
    slot.batch->wait();
    stats_.cold_start_seconds = seconds_since(start);
    registry.counter("stream.prefetch.cold_starts").add();
    return;
  }
  if (slot.batch->done()) {
    slot.batch->wait();  // reap (and rethrow a failed fill)
    ++stats_.hits;
    registry.counter("stream.prefetch.hits").add();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  slot.batch->wait();
  const double waited = seconds_since(start);
  ++stats_.stalls;
  stats_.stall_seconds += waited;
  registry.counter("stream.prefetch.stalls").add();
  registry.log_histogram("stream.prefetch.stall_seconds", 1e-6, 10.0, 4)
      .observe(waited);
}

const double* ViewCursor::next() {
  if (next_index_ == first_ + count_) return nullptr;
  if (!started_) {
    await_chunk(0);
    started_ = true;
  } else if (consumed_in_chunk_ ==
             slots_[static_cast<std::size_t>(current_chunk_ % slots_.size())]
                 .views) {
    // Hand the freed slot to the chunk `depth` ahead before blocking on
    // the next one, so the pipeline never drains below depth.
    const std::uint64_t freed = current_chunk_;
    ++current_chunk_;
    if (freed + slots_.size() < chunk_count()) {
      submit_fill(static_cast<std::size_t>(freed % slots_.size()),
                  freed + slots_.size());
    }
    await_chunk(current_chunk_);
    consumed_in_chunk_ = 0;
  }
  const Slot& slot =
      slots_[static_cast<std::size_t>(current_chunk_ % slots_.size())];
  const double* pixels = slot.pixels + consumed_in_chunk_ * view_px_;
  ++consumed_in_chunk_;
  ++next_index_;
  return pixels;
}

}  // namespace por::stream
