// por/stream/view_cursor.hpp
//
// ViewCursor — sequential consumption of a ViewSource range with
// double-buffered background prefetch (DESIGN.md §14).
//
// The cursor carves [first, first + count) into chunks of
// `batch_views` views and keeps a ring of `depth` slots.  Each slot
// owns a private util::Arena whose one array holds a whole chunk of
// pixels (rule 2 of the arena discipline: a buffer outliving
// interleaved frames owns its own arena), filled by a serve::Scheduler
// batch on a background worker while the consumer chews the previous
// chunk.  The fill calls ViewSource::will_need first, so on a
// mmap-backed source the kernel is paging the next window in while the
// current one is being matched.
//
// Consumption is strictly ordered and zero-copy into the compute: the
// pointer next() returns aims into the slot's arena block and stays
// valid until the next next() call.  Steady state allocates nothing on
// the consumer path (arena blocks are reused verbatim; the per-chunk
// refill submit costs one scheduler control block, amortized over
// batch_views views).
//
// Determinism: views arrive in index order whatever `depth` or the
// worker count — the background batches only *fill* slots; the
// consumer drains them in chunk order.  bench_stream gates bitwise
// identity against the in-core path at several depths.
//
// Obs: "stream.prefetch.hits" (chunk ready on arrival) vs
// "stream.prefetch.stalls" (consumer blocked), stall latency in the
// "stream.prefetch.stall_seconds" log histogram.  The first chunk of a
// cursor is a cold start, not a pipeline failure — it counts toward
// neither, and lands in "stream.prefetch.cold_starts" instead.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "por/serve/scheduler.hpp"
#include "por/stream/view_source.hpp"
#include "por/util/arena.hpp"

namespace por::stream {

struct PrefetchOptions {
  /// Chunks in flight (1 = synchronous double-buffer degenerate case:
  /// fetch-then-consume, still bitwise identical).
  std::size_t depth = 2;
  /// Views per chunk.
  std::size_t batch_views = 32;
  /// Scheduler to borrow for fill batches; nullptr → the cursor owns a
  /// single-worker scheduler for its lifetime.
  serve::Scheduler* scheduler = nullptr;
};

class ViewCursor {
 public:
  /// Stream views [first, first + count) of `source`, which must
  /// outlive the cursor.  Prefetch of the first `depth` chunks starts
  /// immediately.
  ViewCursor(ViewSource& source, std::uint64_t first, std::uint64_t count,
             const PrefetchOptions& options = {});
  ~ViewCursor();
  ViewCursor(const ViewCursor&) = delete;
  ViewCursor& operator=(const ViewCursor&) = delete;

  /// Pixels of the next view in index order (ny*nx doubles), or
  /// nullptr when the range is exhausted.  The pointer stays valid
  /// until the next call.  Rethrows any fill-side error (corrupt
  /// shard without quarantine, dead scheduler) on the consumer thread.
  [[nodiscard]] const double* next();

  /// Index of the view most recently returned by next().
  [[nodiscard]] std::uint64_t current_index() const {
    return next_index_ - 1;
  }
  [[nodiscard]] std::uint64_t remaining() const {
    return first_ + count_ - next_index_;
  }

  struct Stats {
    std::uint64_t hits = 0;    ///< chunks ready when the consumer arrived
    std::uint64_t stalls = 0;  ///< chunks the consumer had to wait for
    double stall_seconds = 0;  ///< total blocked time (excl. cold start)
    double cold_start_seconds = 0;  ///< first-chunk wait
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    util::Arena arena;
    double* pixels = nullptr;        ///< capacity batch_views * view_px
    std::uint64_t chunk = 0;         ///< chunk ordinal this slot holds
    std::size_t views = 0;           ///< views filled for that chunk
    std::shared_ptr<serve::Batch> batch;  ///< fill in flight (or done)
  };

  [[nodiscard]] std::uint64_t chunk_count() const;
  void submit_fill(std::size_t slot_id, std::uint64_t chunk);
  void await_chunk(std::uint64_t chunk);

  ViewSource& source_;
  std::uint64_t first_ = 0;
  std::uint64_t count_ = 0;
  std::size_t view_px_ = 0;
  PrefetchOptions options_;
  std::unique_ptr<serve::Scheduler> owned_scheduler_;
  serve::Scheduler* scheduler_ = nullptr;
  std::mutex source_mutex_;  ///< fills serialize their source access

  std::vector<Slot> slots_;
  std::uint64_t next_index_ = 0;    ///< next view to hand out
  std::uint64_t current_chunk_ = 0;
  std::size_t consumed_in_chunk_ = 0;
  bool started_ = false;
  Stats stats_;
};

}  // namespace por::stream
