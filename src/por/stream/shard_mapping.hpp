// por/stream/shard_mapping.hpp
//
// ShardMapping — RAII read-only memory mapping of one shard file with
// madvise(WILLNEED / DONTNEED) windowing (DESIGN.md §14).
//
// The streaming pipeline maps shards instead of read()ing them so that
// a dataset larger than RAM costs page-cache pages, not anonymous
// memory: the kernel reclaims cold shard pages under pressure and the
// prefetcher's WILLNEED window pulls the next batch in ahead of the
// consumer.  On non-Linux/posix builds (or when mmap fails) the class
// degrades to a read()-backed heap buffer with identical bytes — the
// reader layer asserts mmap-vs-read bit equality in tests.
//
// LIFETIME: data() points into the mapping and dies with it.  Never
// store a pointer derived from a ShardMapping beyond the mapping's
// scope — the `mmap-escape` ast_lint rule flags returns/member stores
// of such pointers (tools/lint/ast_lint.py).
//
// Obs: every successful map bumps "stream.shards_mapped" and adds the
// file size to "stream.bytes_mapped"; unmapping adds to
// "stream.shards_unmapped".
#pragma once

#include <cstddef>
#include <string>

namespace por::stream {

class ShardMapping {
 public:
  ShardMapping() = default;
  /// Map `path` read-only in whole.  Throws resilience::Error —
  /// kTransient when the file cannot be opened (mount flap; the retry
  /// layer decides), kCorrupt when it is empty.  `prefer_mmap` = false
  /// forces the read() fallback (the bitwise-equality reference path).
  explicit ShardMapping(const std::string& path, bool prefer_mmap = true);
  ~ShardMapping();

  ShardMapping(const ShardMapping&) = delete;
  ShardMapping& operator=(const ShardMapping&) = delete;
  ShardMapping(ShardMapping&& other) noexcept;
  ShardMapping& operator=(ShardMapping&& other) noexcept;

  [[nodiscard]] const unsigned char* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// True when the bytes come from a live mmap (false: heap fallback).
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Hint the kernel to fault in [offset, offset + bytes) ahead of use.
  /// Best effort; a no-op on the read fallback.
  void will_need(std::size_t offset, std::size_t bytes) const;
  /// Hint that [offset, offset + bytes) will not be touched again soon
  /// (the pages become cheap reclaim targets).  Best effort.
  void dont_need(std::size_t offset, std::size_t bytes) const;

 private:
  void reset();

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  ///< true: munmap on destruction; false: delete[]
};

}  // namespace por::stream
