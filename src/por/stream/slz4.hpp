// por/stream/slz4.hpp
//
// slz4 — a self-contained LZ4-style byte-oriented block codec for cold
// view shards (DESIGN.md §14).  The format is the classic token /
// literal-run / 16-bit-offset match stream:
//
//   token      1 byte: high nibble = literal length (15 = extended),
//              low nibble = match length - 4 (15 = extended)
//   ext bytes  0xFF runs extend either length by 255 per byte
//   literals   `literal length` raw bytes
//   offset     2 bytes little-endian, 1..65535 back from the write head
//   ...        the last sequence is literals-only (no offset/match)
//
// Matches are >= 4 bytes within a 64 KiB window, found with a greedy
// 4-byte hash probe — the proven LZ4 trade: ~GB/s decompression and
// "good enough" ratios for the smooth, noisy view payloads shards
// carry.  View stacks compress per-view so the shard index can still
// seek to any single view without touching its neighbours.
//
// No external dependency: the container bakes no compression library,
// and the format above is simple enough to own (see SNIPPETS.md's
// slz4.h exemplar for the lineage).
//
// Corrupt-input policy: slz4_decompress validates every token, run and
// offset against both buffer bounds and throws
// por::resilience::Error{kCorrupt} on the first malformed byte — a
// truncated or bit-flipped block can never read or write out of
// bounds, and never returns silently-wrong bytes of the right length
// (the shard layer additionally CRCs each stored view).
#pragma once

#include <cstddef>
#include <cstdint>

namespace por::stream {

/// Worst-case compressed size for `raw_bytes` of input (incompressible
/// data expands by the literal-run headers).
[[nodiscard]] constexpr std::size_t slz4_max_compressed_size(
    std::size_t raw_bytes) {
  return raw_bytes + raw_bytes / 255 + 16;
}

/// Compress `src[0, src_bytes)` into `dst[0, dst_capacity)`.  Returns
/// the compressed size, or 0 when the output would not fit in
/// `dst_capacity` (callers then store the block raw).  Deterministic:
/// identical input bytes always produce identical output bytes.
[[nodiscard]] std::size_t slz4_compress(const void* src,
                                        std::size_t src_bytes, void* dst,
                                        std::size_t dst_capacity);

/// Decompress exactly `raw_bytes` into `dst` from the `src_bytes`-long
/// compressed block.  Throws resilience::Error{kCorrupt} if the stream
/// is malformed, truncated, or does not decode to exactly `raw_bytes`.
void slz4_decompress(const void* src, std::size_t src_bytes, void* dst,
                     std::size_t raw_bytes);

}  // namespace por::stream
