#include "por/stream/sharded_stack.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "por/io/stack_io.hpp"
#include "por/obs/registry.hpp"
#include "por/resilience/atomic_file.hpp"
#include "por/resilience/crc32.hpp"
#include "por/resilience/error.hpp"
#include "por/stream/slz4.hpp"

namespace por::stream {

namespace {

constexpr char kManifestMagic[4] = {'P', 'O', 'R', 'M'};
constexpr char kShardMagic[4] = {'P', 'O', 'R', 'H'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kManifestFields = 48;  ///< bytes after magic+version
constexpr std::size_t kManifestBytes = 8 + kManifestFields + 4;
constexpr std::size_t kShardFixed = 48;      ///< magic..pad, before the index
constexpr std::size_t kIndexEntryBytes = 24;
constexpr std::size_t kMaxEdge = std::size_t{1} << 14;  // matches stack_io
constexpr std::uint32_t kFlagCompressed = 1u;

[[nodiscard]] constexpr std::size_t align8(std::size_t n) {
  return (n + 7) & ~std::size_t{7};
}

// Element-wise (not insert(range)): GCC 12's -Warray-bounds misfires
// on char-array ranges inserted into a byte vector.
void put_magic(std::vector<unsigned char>& out, const char (&magic)[4]) {
  for (const char c : magic) out.push_back(static_cast<unsigned char>(c));
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  unsigned char b[4];
  std::memcpy(b, &v, 4);
  out.insert(out.end(), b, b + 4);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  unsigned char b[8];
  std::memcpy(b, &v, 8);
  out.insert(out.end(), b, b + 8);
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[nodiscard]] std::size_t shards_for(std::uint64_t count,
                                     std::size_t views_per_shard) {
  if (count == 0) return 0;
  return static_cast<std::size_t>((count + views_per_shard - 1) /
                                  views_per_shard);
}

void fill_nan(double* dst, std::size_t n) {
  std::fill_n(dst, n, std::numeric_limits<double>::quiet_NaN());
}

}  // namespace

std::string shard_path(const std::string& base, std::size_t k) {
  char suffix[24];
  std::snprintf(suffix, sizeof suffix, ".s%04zu", k);
  return base + suffix;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ShardedStackWriter::ShardedStackWriter(std::string base, std::size_t ny,
                                       std::size_t nx,
                                       const ShardedStackOptions& options)
    : base_(std::move(base)), options_(options), ny_(ny), nx_(nx) {
  if (ny_ == 0 || nx_ == 0 || ny_ > kMaxEdge || nx_ > kMaxEdge) {
    throw resilience::fatal_error("ShardedStackWriter: bad view size");
  }
  if (options_.views_per_shard == 0) {
    throw resilience::fatal_error(
        "ShardedStackWriter: views_per_shard must be positive");
  }
  pending_.reserve(options_.views_per_shard * ny_ * nx_);
}

ShardedStackWriter::~ShardedStackWriter() = default;

void ShardedStackWriter::append(const double* pixels) {
  if (finished_) {
    throw resilience::fatal_error("ShardedStackWriter: append after finish");
  }
  pending_.insert(pending_.end(), pixels, pixels + ny_ * nx_);
  ++appended_;
  if (pending_.size() == options_.views_per_shard * ny_ * nx_) {
    flush_shard();
  }
}

void ShardedStackWriter::append(const em::Image<double>& view) {
  if (view.ny() != ny_ || view.nx() != nx_) {
    throw resilience::fatal_error("ShardedStackWriter: view size mismatch");
  }
  append(view.data());
}

void ShardedStackWriter::flush_shard() {
  const std::size_t view_px = ny_ * nx_;
  const std::size_t view_bytes = view_px * sizeof(double);
  const std::size_t n = pending_.size() / view_px;
  if (n == 0) return;

  const std::uint64_t first = appended_ - n;
  const std::size_t header_bytes = kShardFixed + n * kIndexEntryBytes + 4;

  // Encode every view first so the index offsets are known up front.
  struct Stored {
    const unsigned char* data;
    std::size_t bytes;
    std::uint32_t flags;
  };
  std::vector<Stored> stored(n);
  std::vector<unsigned char> packed;  // compressed payloads, in view order
  if (options_.compress) {
    packed.reserve(n * view_bytes / 2);
    std::vector<unsigned char> scratch(slz4_max_compressed_size(view_bytes));
    std::vector<std::size_t> packed_at(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto* raw =
          reinterpret_cast<const unsigned char*>(pending_.data() + i * view_px);
      const std::size_t c =
          slz4_compress(raw, view_bytes, scratch.data(), view_bytes - 1);
      if (c > 0) {
        packed_at[i] = packed.size();
        packed.insert(packed.end(), scratch.data(), scratch.data() + c);
        stored[i] = {nullptr, c, kFlagCompressed};
      } else {
        stored[i] = {raw, view_bytes, 0};  // incompressible: keep raw
      }
    }
    // `packed` has stopped reallocating; resolve the deferred pointers.
    for (std::size_t i = 0; i < n; ++i) {
      if (stored[i].flags & kFlagCompressed) {
        stored[i].data = packed.data() + packed_at[i];
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      stored[i] = {
          reinterpret_cast<const unsigned char*>(pending_.data() + i * view_px),
          view_bytes, 0};
    }
  }

  std::vector<unsigned char> bytes;
  bytes.reserve(align8(header_bytes) + n * view_bytes);
  put_magic(bytes, kShardMagic);
  put_u32(bytes, kVersion);
  put_u64(bytes, first);
  put_u64(bytes, n);
  put_u64(bytes, ny_);
  put_u64(bytes, nx_);
  bytes.push_back(options_.compress ? 1 : 0);
  bytes.insert(bytes.end(), 7, 0);
  std::size_t offset = align8(header_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    put_u64(bytes, offset);
    put_u64(bytes, stored[i].bytes);
    put_u32(bytes, resilience::crc32(stored[i].data, stored[i].bytes));
    put_u32(bytes, stored[i].flags);
    offset = align8(offset + stored[i].bytes);
  }
  // header_crc covers first_view through the end of the index.
  put_u32(bytes, resilience::crc32(bytes.data() + 8, bytes.size() - 8));
  bytes.resize(align8(bytes.size()), 0);
  for (std::size_t i = 0; i < n; ++i) {
    bytes.insert(bytes.end(), stored[i].data, stored[i].data + stored[i].bytes);
    bytes.resize(align8(bytes.size()), 0);
  }

  resilience::atomic_write_file(
      shard_path(base_, shards_written_), [&](std::ostream& os) {
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
      });
  ++shards_written_;
  pending_.clear();
}

void ShardedStackWriter::finish() {
  if (finished_) return;
  flush_shard();
  std::vector<unsigned char> bytes;
  bytes.reserve(kManifestBytes);
  put_magic(bytes, kManifestMagic);
  put_u32(bytes, kVersion);
  put_u64(bytes, appended_);
  put_u64(bytes, ny_);
  put_u64(bytes, nx_);
  put_u64(bytes, options_.views_per_shard);
  put_u64(bytes, shards_written_);
  bytes.push_back(options_.compress ? 1 : 0);
  bytes.insert(bytes.end(), 7, 0);
  put_u32(bytes, resilience::crc32(bytes.data() + 8, kManifestFields));
  resilience::atomic_write_file(base_, [&](std::ostream& os) {
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  });
  finished_ = true;
}

void write_sharded_stack(const std::string& base,
                         const std::vector<em::Image<double>>& views,
                         const ShardedStackOptions& options) {
  if (views.empty()) {
    throw resilience::fatal_error("write_sharded_stack: empty stack");
  }
  ShardedStackWriter writer(base, views.front().ny(), views.front().nx(),
                            options);
  for (const auto& view : views) writer.append(view);
  writer.finish();
}

void shard_stack_file(const std::string& stack_path, const std::string& base,
                      const ShardedStackOptions& options) {
  const std::size_t total = io::stack_count(stack_path);
  if (total == 0) {
    throw resilience::corrupt_error("shard_stack_file: empty stack " +
                                    stack_path);
  }
  std::unique_ptr<ShardedStackWriter> writer;
  for (std::size_t first = 0; first < total;
       first += options.views_per_shard) {
    const std::size_t n =
        std::min(options.views_per_shard, total - first);
    const auto group = io::read_stack_range(stack_path, first, n);
    if (!writer) {
      writer = std::make_unique<ShardedStackWriter>(
          base, group.front().ny(), group.front().nx(), options);
    }
    for (const auto& view : group) writer->append(view);
  }
  writer->finish();
}

void unshard_to_stack(const std::string& base, const std::string& stack_path) {
  ShardedStack shards(base);
  // Stream shard-sized groups through write_stack-compatible bytes: the
  // PORS writer wants the whole vector, so build the file by hand with
  // the same atomic-replacement discipline io::write_stack uses.
  resilience::atomic_write_file(stack_path, [&](std::ostream& os) {
    const char magic[4] = {'P', 'O', 'R', 'S'};
    os.write(magic, 4);
    const std::uint32_t version = 1;
    os.write(reinterpret_cast<const char*>(&version), 4);
    const std::uint64_t dims[3] = {shards.count(), shards.ny(), shards.nx()};
    os.write(reinterpret_cast<const char*>(dims), sizeof dims);
    std::vector<double> view(shards.view_pixels());
    for (std::uint64_t i = 0; i < shards.count(); ++i) {
      if (!shards.read_view(i, view.data())) {
        throw resilience::corrupt_error("unshard_to_stack: corrupt view " +
                                        std::to_string(i));
      }
      os.write(reinterpret_cast<const char*>(view.data()),
               static_cast<std::streamsize>(view.size() * sizeof(double)));
    }
  });
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

ShardedStack::ShardedStack(const std::string& base,
                           const ShardedStackOptions& options)
    : base_(base), options_(options) {
  std::ifstream in(base, std::ios::binary);
  if (!in) {
    throw resilience::transient_error("ShardedStack: cannot open manifest " +
                                      base);
  }
  unsigned char m[kManifestBytes];
  in.read(reinterpret_cast<char*>(m), kManifestBytes);
  if (in.gcount() != static_cast<std::streamsize>(kManifestBytes)) {
    throw resilience::corrupt_error("ShardedStack: truncated manifest " +
                                    base);
  }
  if (std::memcmp(m, kManifestMagic, 4) != 0) {
    throw resilience::corrupt_error("ShardedStack: bad manifest magic in " +
                                    base);
  }
  if (get_u32(m + 4) != kVersion) {
    throw resilience::corrupt_error("ShardedStack: unsupported version in " +
                                    base);
  }
  if (resilience::crc32(m + 8, kManifestFields) !=
      get_u32(m + 8 + kManifestFields)) {
    throw resilience::corrupt_error("ShardedStack: manifest CRC mismatch in " +
                                    base);
  }
  count_ = get_u64(m + 8);
  ny_ = static_cast<std::size_t>(get_u64(m + 16));
  nx_ = static_cast<std::size_t>(get_u64(m + 24));
  views_per_shard_ = static_cast<std::size_t>(get_u64(m + 32));
  const std::uint64_t shard_count = get_u64(m + 40);
  compressed_ = m[48] != 0;
  if (ny_ == 0 || nx_ == 0 || ny_ > kMaxEdge || nx_ > kMaxEdge ||
      views_per_shard_ == 0 ||
      shard_count != shards_for(count_, views_per_shard_)) {
    throw resilience::corrupt_error(
        "ShardedStack: implausible manifest fields in " + base);
  }
  shards_.resize(static_cast<std::size_t>(shard_count));
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k].first = static_cast<std::uint64_t>(k) * views_per_shard_;
    shards_[k].views =
        std::min<std::uint64_t>(views_per_shard_, count_ - shards_[k].first);
  }
}

void ShardedStack::touch_lru(std::size_t k) {
  lru_.remove(k);
  lru_.push_front(k);
}

void ShardedStack::quarantine_shard(std::size_t k, Shard& shard,
                                    const std::string& why) {
  if (!options_.quarantine_corrupt) {
    throw resilience::corrupt_error("ShardedStack: " + why + " in " +
                                    shard_path(base_, k));
  }
  if (shard.open) {
    resident_bytes_ -= shard.map.size();
    lru_.remove(k);
  }
  shard.map = ShardMapping();
  shard.index.clear();
  shard.open = false;
  shard.quarantined = true;
  ++quarantined_shards_;
  obs::current_registry().counter("stream.shards_quarantined").add();
}

void ShardedStack::parse_shard(std::size_t k, Shard& shard) {
  const unsigned char* p = shard.map.data();
  const std::size_t size = shard.map.size();
  const std::size_t n = static_cast<std::size_t>(shard.views);
  const std::size_t header_bytes = kShardFixed + n * kIndexEntryBytes + 4;
  if (size < header_bytes) {
    throw resilience::corrupt_error("shard header truncated");
  }
  if (std::memcmp(p, kShardMagic, 4) != 0) {
    throw resilience::corrupt_error("bad shard magic");
  }
  if (get_u32(p + 4) != kVersion) {
    throw resilience::corrupt_error("unsupported shard version");
  }
  if (resilience::crc32(p + 8, header_bytes - 12) !=
      get_u32(p + header_bytes - 4)) {
    throw resilience::corrupt_error("shard header CRC mismatch");
  }
  if (get_u64(p + 8) != shard.first || get_u64(p + 16) != shard.views ||
      get_u64(p + 24) != ny_ || get_u64(p + 32) != nx_) {
    throw resilience::corrupt_error("shard header disagrees with manifest");
  }
  const std::size_t view_bytes = view_pixels() * sizeof(double);
  const std::size_t payload_begin = align8(header_bytes);
  shard.index.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char* e = p + kShardFixed + i * kIndexEntryBytes;
    IndexEntry& entry = shard.index[i];
    entry.offset = get_u64(e);
    entry.stored_bytes = get_u64(e + 8);
    entry.crc = get_u32(e + 16);
    entry.flags = get_u32(e + 20);
    const bool packed = (entry.flags & kFlagCompressed) != 0;
    if (entry.offset < payload_begin || entry.offset % 8 != 0 ||
        entry.offset + entry.stored_bytes > size ||
        entry.stored_bytes > slz4_max_compressed_size(view_bytes) ||
        (!packed && entry.stored_bytes != view_bytes) ||
        (packed && !compressed_)) {
      throw resilience::corrupt_error("shard index entry out of bounds");
    }
  }
}

ShardedStack::Shard* ShardedStack::ensure_open(std::size_t k) {
  Shard& shard = shards_[k];
  if (shard.quarantined) return nullptr;
  if (shard.open) {
    touch_lru(k);
    return &shard;
  }
  try {
    shard.map = ShardMapping(shard_path(base_, k), options_.use_mmap);
    parse_shard(k, shard);
  } catch (const resilience::Error&) {
    if (!options_.quarantine_corrupt) throw;
    quarantine_shard(k, shard, "unreadable shard");
    return nullptr;
  }
  shard.open = true;
  resident_bytes_ += shard.map.size();
  lru_.push_front(k);
  evict_to_budget(k);
  obs::current_registry()
      .gauge("stream.resident_bytes")
      .set(static_cast<double>(resident_bytes_));
  return &shard;
}

void ShardedStack::evict_to_budget(std::size_t keep) {
  if (options_.max_resident_bytes == 0) return;
  while (resident_bytes_ > options_.max_resident_bytes && lru_.size() > 1) {
    const std::size_t victim = lru_.back();
    if (victim == keep) break;  // never evict the shard being read
    lru_.pop_back();
    Shard& shard = shards_[victim];
    resident_bytes_ -= shard.map.size();
    shard.map = ShardMapping();
    shard.index.clear();
    shard.open = false;
  }
}

bool ShardedStack::read_view(std::uint64_t index, double* dst) {
  if (index >= count_) {
    throw std::out_of_range("ShardedStack::read_view: index out of range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t px = view_pixels();
  const std::size_t k = static_cast<std::size_t>(index / views_per_shard_);
  Shard* shard = ensure_open(k);
  if (shard == nullptr) {
    fill_nan(dst, px);
    ++quarantined_views_;
    obs::current_registry().counter("stream.views_quarantined").add();
    return false;
  }
  const IndexEntry& entry =
      shard->index[static_cast<std::size_t>(index - shard->first)];
  const unsigned char* stored = shard->map.data() + entry.offset;
  const auto fail = [&](const char* why) -> bool {
    if (!options_.quarantine_corrupt) {
      throw resilience::corrupt_error(std::string("ShardedStack: ") + why +
                                      " for view " + std::to_string(index));
    }
    fill_nan(dst, px);
    ++quarantined_views_;
    obs::current_registry().counter("stream.views_quarantined").add();
    return false;
  };
  if (resilience::crc32(stored, static_cast<std::size_t>(
                                    entry.stored_bytes)) != entry.crc) {
    return fail("view CRC mismatch");
  }
  if (entry.flags & kFlagCompressed) {
    try {
      slz4_decompress(stored, static_cast<std::size_t>(entry.stored_bytes),
                      dst, px * sizeof(double));
    } catch (const resilience::Error&) {
      return fail("undecodable view");
    }
  } else {
    std::memcpy(dst, stored, px * sizeof(double));
  }
  return true;
}

std::vector<em::Image<double>> ShardedStack::read_range(std::uint64_t first,
                                                        std::size_t n) {
  if (first + n > count_) {
    throw std::out_of_range("ShardedStack::read_range: range out of bounds");
  }
  std::vector<em::Image<double>> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    em::Image<double> view(ny_, nx_);
    (void)read_view(first + i, view.data());
    views.push_back(std::move(view));
  }
  return views;
}

std::vector<em::Image<double>> ShardedStack::read_views(
    const std::vector<std::uint64_t>& indices) {
  std::vector<em::Image<double>> views;
  views.reserve(indices.size());
  for (const std::uint64_t index : indices) {
    em::Image<double> view(ny_, nx_);
    (void)read_view(index, view.data());
    views.push_back(std::move(view));
  }
  return views;
}

void ShardedStack::will_need(std::uint64_t first, std::size_t n) {
  if (n == 0 || first >= count_) return;
  const std::uint64_t last = std::min<std::uint64_t>(first + n, count_) - 1;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t k = static_cast<std::size_t>(first / views_per_shard_);
       k <= static_cast<std::size_t>(last / views_per_shard_); ++k) {
    Shard* shard = ensure_open(k);
    if (shard == nullptr) continue;
    const std::uint64_t lo = std::max<std::uint64_t>(first, shard->first);
    const std::uint64_t hi =
        std::min<std::uint64_t>(last, shard->first + shard->views - 1);
    const IndexEntry& a =
        shard->index[static_cast<std::size_t>(lo - shard->first)];
    const IndexEntry& b =
        shard->index[static_cast<std::size_t>(hi - shard->first)];
    shard->map.will_need(
        static_cast<std::size_t>(a.offset),
        static_cast<std::size_t>(b.offset + b.stored_bytes - a.offset));
  }
}

std::size_t ShardedStack::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t ShardedStack::resident_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t ShardedStack::quarantined_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_shards_;
}

std::uint64_t ShardedStack::quarantined_views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_views_;
}

}  // namespace por::stream
