// POR_HOT_PATH
//
// SSE2 (baseline) kernel tier.  Compiled with the default flags, so it
// runs on every x86-64; on non-x86 the same entry points compile to
// the portable scalar bodies.  This tier is the BIT-IDENTICAL
// continuation of the pre-dispatch hot paths: the annulus consume loop
// reproduces por/em/interp.hpp's interp_trilinear_cell SSE2 sequence
// and matcher.cpp's historical accumulation ordering exactly, and the
// butterfly stage reproduces fft1d.cpp's raw-double loop (the
// contiguous twiddle table holds the very same doubles the strided
// root walk used to read).  tests/test_simd.cpp asserts the
// bit-equality against em::interp_trilinear_cell.

#include "por/simd/kernels.hpp"

#include "por/util/contracts.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#define POR_KERNEL_SSE2 1
#include <emmintrin.h>
#endif

namespace por::simd {

namespace {

void stage_sse2(const StageBlock& blk) {
  std::size_t last_line = *blk.last_line;
  for (std::size_t k = 0; k < blk.count; ++k) {
    // q + c >= c - r_max >= 0.5 under the matcher's fast-path guard,
    // so the size_t truncation is a floor.  Left-to-right evaluation
    // matches the pre-dispatch stage lambda bit for bit.
    const double z = blk.ku[k] * blk.euz + blk.kv[k] * blk.evz + blk.c;
    const double y = blk.ku[k] * blk.euy + blk.kv[k] * blk.evy + blk.c;
    const double x = blk.ku[k] * blk.eux + blk.kv[k] * blk.evx + blk.c;
    const std::size_t iz = static_cast<std::size_t>(z);
    const std::size_t iy = static_cast<std::size_t>(y);
    const std::size_t ix = static_cast<std::size_t>(x);
    const std::size_t base = iz * blk.stride_z + iy * blk.stride_y + ix;
    blk.base[k] = base;
    blk.tz[k] = z - static_cast<double>(iz);
    blk.ty[k] = y - static_cast<double>(iy);
    blk.tx[k] = x - static_cast<double>(ix);
#if defined(__GNUC__) || defined(__clang__)
    // Neighboring annulus pixels usually land in the same 64-byte
    // line; when the base line repeats, all corner lines repeat with
    // it, so skip the whole batch instead of burning load-port slots
    // on duplicate prefetches.
    const std::size_t line = (base * blk.pf_scale) >> 3;
    if (line != last_line) {
      last_line = line;
      const std::size_t sy = blk.stride_y * blk.pf_scale;
      const std::size_t sz = blk.stride_z * blk.pf_scale;
      const std::size_t b = base * blk.pf_scale;
      __builtin_prefetch(blk.pf_a + b, 0, 3);
      __builtin_prefetch(blk.pf_a + b + sy, 0, 3);
      __builtin_prefetch(blk.pf_a + b + sz, 0, 3);
      __builtin_prefetch(blk.pf_a + b + sz + sy, 0, 3);
      if (blk.pf_b != nullptr) {
        __builtin_prefetch(blk.pf_b + b, 0, 3);
        __builtin_prefetch(blk.pf_b + b + sy, 0, 3);
        __builtin_prefetch(blk.pf_b + b + sz, 0, 3);
        __builtin_prefetch(blk.pf_b + b + sz + sy, 0, 3);
      }
    }
#endif
  }
  *blk.last_line = last_line;
}

CellSample trilinear_split_sse2(const double* re, const double* im,
                                std::size_t stride_y, std::size_t stride_z,
                                std::size_t base, double tz, double ty,
                                double tx) {
  const std::size_t i000 = base;
  const std::size_t i010 = base + stride_y;
  const std::size_t i100 = base + stride_z;
  const std::size_t i110 = base + stride_z + stride_y;

  // Weight products in the reference's association order ((wz*wy)*wx).
  const double wz0 = 1.0 - tz, wz1 = tz;
  const double wy0 = 1.0 - ty, wy1 = ty;
  const double wx0 = 1.0 - tx, wx1 = tx;
  const double w00 = wz0 * wy0, w01 = wz0 * wy1;
  const double w10 = wz1 * wy0, w11 = wz1 * wy1;

  CellSample s;
#if POR_KERNEL_SSE2
  // The (x, x+1) corner pairs are contiguous in each plane, so the
  // eight corners of a plane are four unaligned 16-byte loads.  This
  // is em::interp_trilinear_cell's SSE2 sequence verbatim — same
  // operations, same association — kept bit-identical by test_simd.
  const __m128d wx = _mm_set_pd(wx1, wx0);  // lane0 = wx0, lane1 = wx1
  const __m128d w00v = _mm_mul_pd(_mm_set1_pd(w00), wx);
  const __m128d w01v = _mm_mul_pd(_mm_set1_pd(w01), wx);
  const __m128d w10v = _mm_mul_pd(_mm_set1_pd(w10), wx);
  const __m128d w11v = _mm_mul_pd(_mm_set1_pd(w11), wx);
  const __m128d re_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(re + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(re + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(re + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(re + i110))));
  const __m128d im_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(im + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(im + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(im + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(im + i110))));
  const __m128d packed = _mm_add_pd(_mm_unpacklo_pd(re_acc, im_acc),
                                    _mm_unpackhi_pd(re_acc, im_acc));
  s.re = _mm_cvtsd_f64(packed);
  s.im = _mm_cvtsd_f64(_mm_unpackhi_pd(packed, packed));
#else
  const double w000 = w00 * wx0, w001 = w00 * wx1;
  const double w010 = w01 * wx0, w011 = w01 * wx1;
  const double w100 = w10 * wx0, w101 = w10 * wx1;
  const double w110 = w11 * wx0, w111 = w11 * wx1;
  s.re = ((w000 * re[i000] + w001 * re[i000 + 1]) +
          (w010 * re[i010] + w011 * re[i010 + 1])) +
         ((w100 * re[i100] + w101 * re[i100 + 1]) +
          (w110 * re[i110] + w111 * re[i110 + 1]));
  s.im = ((w000 * im[i000] + w001 * im[i000 + 1]) +
          (w010 * im[i010] + w011 * im[i010 + 1])) +
         ((w100 * im[i100] + w101 * im[i100 + 1]) +
          (w110 * im[i110] + w111 * im[i110 + 1]));
#endif
  return s;
}

template <bool kTransfer, bool kWeight>
double annulus_split_run(const double* re, const double* im,
                         std::size_t stride_y, std::size_t stride_z,
                         std::size_t lat_size, const AnnulusBlock& blk,
                         double acc) {
  double sum = acc;
  for (std::size_t k = 0; k < blk.count; ++k) {
    // The +1,+1,+1 corner is the largest index the fetch touches; if
    // it is inside the padded plane, all eight corners are.
    POR_BOUNDS(blk.base[k] + stride_z + stride_y + 1, lat_size);
    const CellSample s = trilinear_split_sse2(re, im, stride_y, stride_z,
                                              blk.base[k], blk.tz[k],
                                              blk.ty[k], blk.tx[k]);
    double sre = s.re, sim = s.im;
    if constexpr (kTransfer) {
      const double t = blk.transfer[k];
      sre *= t;
      sim *= t;
    }
    const double* v = blk.view + 2 * static_cast<std::size_t>(blk.index[k]);
    const double dre = v[0] - sre;
    const double dim = v[1] - sim;
    double term = dre * dre + dim * dim;
    if constexpr (kWeight) term *= blk.weight[k];
    sum += term;
  }
  return sum;
}

double annulus_split_sse2(const double* re, const double* im,
                          std::size_t stride_y, std::size_t stride_z,
                          std::size_t lat_size, const AnnulusBlock& blk,
                          double acc) {
  if (blk.transfer != nullptr) {
    return blk.weight != nullptr
               ? annulus_split_run<true, true>(re, im, stride_y, stride_z,
                                               lat_size, blk, acc)
               : annulus_split_run<true, false>(re, im, stride_y, stride_z,
                                                lat_size, blk, acc);
  }
  return blk.weight != nullptr
             ? annulus_split_run<false, true>(re, im, stride_y, stride_z,
                                              lat_size, blk, acc)
             : annulus_split_run<false, false>(re, im, stride_y, stride_z,
                                               lat_size, blk, acc);
}

void fft_stage_sse2(double* d, std::size_t n, std::size_t half,
                    const double* tw) {
  // fft1d.cpp's historical butterfly loop, reading the contiguous
  // per-stage twiddles (identical doubles to the old strided walk).
  const std::size_t len = 2 * half;
  for (std::size_t block = 0; block < n; block += len) {
    double* lo = d + 2 * block;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = tw[2 * k];
      const double wi = tw[2 * k + 1];
      const double xr = hi[2 * k];
      const double xi = hi[2 * k + 1];
      const double odd_r = xr * wr - xi * wi;
      const double odd_i = xr * wi + xi * wr;
      const double er = lo[2 * k];
      const double ei = lo[2 * k + 1];
      lo[2 * k] = er + odd_r;
      lo[2 * k + 1] = ei + odd_i;
      hi[2 * k] = er - odd_r;
      hi[2 * k + 1] = ei - odd_i;
    }
  }
}

void cmul_sse2(double* a, const double* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    a[2 * k] = ar * br - ai * bi;
    a[2 * k + 1] = ar * bi + ai * br;
  }
}

void cmul_conj_sse2(double* dst, const double* src, const double* c,
                    std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double xr = src[2 * k], xi = src[2 * k + 1];
    const double cr = c[2 * k], ci = c[2 * k + 1];
    dst[2 * k] = xr * cr + xi * ci;
    dst[2 * k + 1] = xi * cr - xr * ci;
  }
}

const KernelTable kSse2Table = {
    Isa::kSse2,
    LatticeLayout::kSplit,
    &stage_sse2,
    &annulus_split_sse2,
    nullptr,
    &trilinear_split_sse2,
    nullptr,
    &fft_stage_sse2,
    &cmul_sse2,
    &cmul_conj_sse2,
};

}  // namespace

namespace detail {
const KernelTable* sse2_table() { return &kSse2Table; }
}  // namespace detail

}  // namespace por::simd
