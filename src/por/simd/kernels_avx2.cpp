// POR_HOT_PATH
//
// AVX2 + FMA kernel tier.  Matcher kernels consume the INTERLEAVED
// (re, im) lattice: one 256-bit load covers both components of an
// (x, x+1) corner pair, so a trilinear cell is 4 corner loads instead
// of the split layout's 8 — half the cache lines and prefetches.
//
// Tolerance policy (DESIGN.md §12): this tier uses FMA, a vector
// association inside each cell, and four rotating accumulators in the
// annulus sum (fixed k mod 4 partition — deterministic), so per-term
// rounding and regrouping differ from the scalar reference by last-ulp
// amounts; the whole tier is gated at 1e-12 against the scalar oracle
// by tests/test_simd.cpp and bench_matcher's divergence gate.
//
// This TU is compiled with -mavx2 -mfma (see src/CMakeLists.txt).  If
// the compiler lacks those flags the guard below compiles the TU down
// to a null table and dispatch falls back to SSE2.

#include "por/simd/kernels.hpp"

#include "por/util/contracts.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace por::simd {

namespace {

void stage_avx2(const StageBlock& blk) {
  // Scalar staging (AVX2 lacks the 64-bit int<->double conversions the
  // AVX-512 tier vectorizes with).  The compiler may contract these
  // expressions with FMA; a contraction-flipped truncation boundary
  // moves the sample to the adjacent cell with t ~ 1-ulp, and
  // interpolation continuity bounds the value change to ulp scale —
  // inside the tier's 1e-12 budget.
  //
  // No stage-time prefetch (see the AVX-512 tier): the consume loop
  // prefetches a short distance ahead instead.
  for (std::size_t k = 0; k < blk.count; ++k) {
    const double z = blk.ku[k] * blk.euz + blk.kv[k] * blk.evz + blk.c;
    const double y = blk.ku[k] * blk.euy + blk.kv[k] * blk.evy + blk.c;
    const double x = blk.ku[k] * blk.eux + blk.kv[k] * blk.evx + blk.c;
    const std::size_t iz = static_cast<std::size_t>(z);
    const std::size_t iy = static_cast<std::size_t>(y);
    const std::size_t ix = static_cast<std::size_t>(x);
    const std::size_t base = iz * blk.stride_z + iy * blk.stride_y + ix;
    blk.base[k] = base;
    blk.tz[k] = z - static_cast<double>(iz);
    blk.ty[k] = y - static_cast<double>(iy);
    blk.tx[k] = x - static_cast<double>(ix);
  }
}

/// Fetch one trilinear cell from the interleaved lattice.  Returns the
/// (re, im) accumulator still packed as [re@x0, im@x0, re@x1, im@x1];
/// callers reduce the two 128-bit halves.
inline __m256d cell_acc_ilv(const double* lat, std::size_t stride_y,
                            std::size_t stride_z, std::size_t base, double tz,
                            double ty, double tx) {
  const double* p = lat + 2 * base;
  const __m256d row00 = _mm256_loadu_pd(p);
  const __m256d row01 = _mm256_loadu_pd(p + 2 * stride_y);
  const __m256d row10 = _mm256_loadu_pd(p + 2 * stride_z);
  const __m256d row11 = _mm256_loadu_pd(p + 2 * (stride_z + stride_y));

  const double wz0 = 1.0 - tz, wy0 = 1.0 - ty;
  const double w00 = wz0 * wy0, w01 = wz0 * ty;
  const double w10 = tz * wy0, w11 = tz * ty;
  // Lanes are [x0, x0, x1, x1]; set_pd lists high lane first.
  const __m256d wxv = _mm256_set_pd(tx, tx, 1.0 - tx, 1.0 - tx);

  __m256d acc = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(w11), wxv), row11);
  acc = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_set1_pd(w10), wxv), row10, acc);
  acc = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_set1_pd(w01), wxv), row01, acc);
  acc = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_set1_pd(w00), wxv), row00, acc);
  return acc;
}

inline __m128d reduce_cell(__m256d acc) {
  return _mm_add_pd(_mm256_castpd256_pd128(acc),
                    _mm256_extractf128_pd(acc, 1));
}

CellSample trilinear_ilv_avx2(const double* lat, std::size_t stride_y,
                              std::size_t stride_z, std::size_t base,
                              double tz, double ty, double tx) {
  const __m128d s = reduce_cell(cell_acc_ilv(lat, stride_y, stride_z, base,
                                             tz, ty, tx));
  CellSample out;
  out.re = _mm_cvtsd_f64(s);
  out.im = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  return out;
}

/// Split-layout single-cell fetch: the SSE2 intrinsic sequence compiled
/// in this TU.  Intrinsic muls/adds never contract, so this remains
/// bit-identical to the SSE2 tier (just VEX-encoded) — the test surface
/// relies on that.
CellSample trilinear_split_avx2(const double* re, const double* im,
                                std::size_t stride_y, std::size_t stride_z,
                                std::size_t base, double tz, double ty,
                                double tx) {
  const std::size_t i000 = base;
  const std::size_t i010 = base + stride_y;
  const std::size_t i100 = base + stride_z;
  const std::size_t i110 = base + stride_z + stride_y;
  const double wz0 = 1.0 - tz, wy0 = 1.0 - ty, wx0 = 1.0 - tx;
  const double w00 = wz0 * wy0, w01 = wz0 * ty;
  const double w10 = tz * wy0, w11 = tz * ty;
  const __m128d wx = _mm_set_pd(tx, wx0);
  const __m128d w00v = _mm_mul_pd(_mm_set1_pd(w00), wx);
  const __m128d w01v = _mm_mul_pd(_mm_set1_pd(w01), wx);
  const __m128d w10v = _mm_mul_pd(_mm_set1_pd(w10), wx);
  const __m128d w11v = _mm_mul_pd(_mm_set1_pd(w11), wx);
  const __m128d re_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(re + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(re + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(re + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(re + i110))));
  const __m128d im_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(im + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(im + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(im + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(im + i110))));
  const __m128d packed = _mm_add_pd(_mm_unpacklo_pd(re_acc, im_acc),
                                    _mm_unpackhi_pd(re_acc, im_acc));
  CellSample s;
  s.re = _mm_cvtsd_f64(packed);
  s.im = _mm_cvtsd_f64(_mm_unpackhi_pd(packed, packed));
  return s;
}

/// One pixel of the consume loop, all in xmm [re, im] pairs (see the
/// AVX-512 tier for the rotating-accumulator rationale).
template <bool kTransfer, bool kWeight>
inline void consume_px_ilv(const double* lat, std::size_t stride_y,
                           std::size_t stride_z, const AnnulusBlock& blk,
                           std::size_t k, __m128d& a) {
  __m128d s = reduce_cell(cell_acc_ilv(lat, stride_y, stride_z, blk.base[k],
                                       blk.tz[k], blk.ty[k], blk.tx[k]));
  if constexpr (kTransfer) s = _mm_mul_pd(s, _mm_set1_pd(blk.transfer[k]));
  const __m128d v =
      _mm_loadu_pd(blk.view + 2 * static_cast<std::size_t>(blk.index[k]));
  const __m128d d = _mm_sub_pd(v, s);
  if constexpr (kWeight) {
    a = _mm_fmadd_pd(_mm_mul_pd(d, d), _mm_set1_pd(blk.weight[k]), a);
  } else {
    a = _mm_fmadd_pd(d, d, a);
  }
}

template <bool kTransfer, bool kWeight>
double annulus_ilv_run(const double* lat, std::size_t stride_y,
                       std::size_t stride_z, std::size_t lat_cells,
                       const AnnulusBlock& blk, double acc) {
#if POR_CONTRACTS_ENABLED
  for (std::size_t j = 0; j < blk.count; ++j) {
    POR_BOUNDS(blk.base[j] + stride_z + stride_y + 1, lat_cells);
  }
#else
  (void)lat_cells;
#endif
  // Four rotating [sum dre^2, sum dim^2] accumulators (fixed k mod 4
  // partition — deterministic; regrouping vs the scalar oracle is ulp-
  // level and covered by the 1e-12 gate, DESIGN.md §12).
  __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
  __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
  // Prefetch the four corner lines of the pixel ~16 ahead (see the
  // AVX-512 tier for the distance rationale).
  constexpr std::size_t kPfDist = 16;
  std::size_t k = 0;
  for (; k + 4 <= blk.count; k += 4) {
    const std::size_t pj = k + kPfDist < blk.count ? k + kPfDist : blk.count - 1;
    const double* pp = lat + 2 * blk.base[pj];
    _mm_prefetch(reinterpret_cast<const char*>(pp), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * stride_y), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * stride_z), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * (stride_z + stride_y)),
                 _MM_HINT_T0);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k, a0);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 1,
                                       a1);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 2,
                                       a2);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 3,
                                       a3);
  }
  for (; k < blk.count; ++k) {
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k, a0);
  }
  const __m128d t = _mm_add_pd(_mm_add_pd(a0, a1), _mm_add_pd(a2, a3));
  return acc + _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
}

double annulus_ilv_avx2(const double* lat, std::size_t stride_y,
                        std::size_t stride_z, std::size_t lat_cells,
                        const AnnulusBlock& blk, double acc) {
  if (blk.transfer != nullptr) {
    return blk.weight != nullptr
               ? annulus_ilv_run<true, true>(lat, stride_y, stride_z,
                                             lat_cells, blk, acc)
               : annulus_ilv_run<true, false>(lat, stride_y, stride_z,
                                              lat_cells, blk, acc);
  }
  return blk.weight != nullptr
             ? annulus_ilv_run<false, true>(lat, stride_y, stride_z,
                                            lat_cells, blk, acc)
             : annulus_ilv_run<false, false>(lat, stride_y, stride_z,
                                             lat_cells, blk, acc);
}

void fft_stage_avx2(double* d, std::size_t n, std::size_t half,
                    const double* tw) {
  if (half == 1) {
    // w = 1: pure add/sub over adjacent complex pairs.
    for (std::size_t block = 0; block < n; block += 2) {
      double* p = d + 2 * block;
      const double er = p[0], ei = p[1], xr = p[2], xi = p[3];
      p[0] = er + xr;
      p[1] = ei + xi;
      p[2] = er - xr;
      p[3] = ei - xi;
    }
    return;
  }
  // Two butterflies per ymm.  The complex product uses the fmaddsub
  // idiom: odd = [wr*xr - wi*xi, wr*xi + wi*xr].
  const std::size_t len = 2 * half;
  for (std::size_t block = 0; block < n; block += len) {
    double* lo = d + 2 * block;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; k += 2) {
      const __m256d w = _mm256_loadu_pd(tw + 2 * k);
      const __m256d x = _mm256_loadu_pd(hi + 2 * k);
      const __m256d wr = _mm256_movedup_pd(w);
      const __m256d wi = _mm256_permute_pd(w, 0xF);
      const __m256d xs = _mm256_permute_pd(x, 0x5);
      const __m256d odd = _mm256_fmaddsub_pd(wr, x, _mm256_mul_pd(wi, xs));
      const __m256d e = _mm256_loadu_pd(lo + 2 * k);
      _mm256_storeu_pd(lo + 2 * k, _mm256_add_pd(e, odd));
      _mm256_storeu_pd(hi + 2 * k, _mm256_sub_pd(e, odd));
    }
  }
}

void cmul_avx2(double* a, const double* b, std::size_t n) {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d x = _mm256_loadu_pd(a + 2 * k);
    const __m256d y = _mm256_loadu_pd(b + 2 * k);
    const __m256d br = _mm256_movedup_pd(y);
    const __m256d bi = _mm256_permute_pd(y, 0xF);
    const __m256d xs = _mm256_permute_pd(x, 0x5);
    _mm256_storeu_pd(a + 2 * k,
                     _mm256_fmaddsub_pd(br, x, _mm256_mul_pd(bi, xs)));
  }
  for (; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    a[2 * k] = ar * br - ai * bi;
    a[2 * k + 1] = ar * bi + ai * br;
  }
}

void cmul_conj_avx2(double* dst, const double* src, const double* c,
                    std::size_t n) {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d x = _mm256_loadu_pd(src + 2 * k);
    const __m256d cc = _mm256_loadu_pd(c + 2 * k);
    const __m256d cr = _mm256_movedup_pd(cc);
    const __m256d ci = _mm256_permute_pd(cc, 0xF);
    const __m256d xs = _mm256_permute_pd(x, 0x5);
    // fmsubadd: even lanes cr*xr + ci*xi, odd lanes cr*xi - ci*xr.
    _mm256_storeu_pd(dst + 2 * k,
                     _mm256_fmsubadd_pd(cr, x, _mm256_mul_pd(ci, xs)));
  }
  for (; k < n; ++k) {
    const double xr = src[2 * k], xi = src[2 * k + 1];
    const double rr = c[2 * k], ri = c[2 * k + 1];
    dst[2 * k] = xr * rr + xi * ri;
    dst[2 * k + 1] = xi * rr - xr * ri;
  }
}

const KernelTable kAvx2Table = {
    Isa::kAvx2,
    LatticeLayout::kInterleaved,
    &stage_avx2,
    nullptr,
    &annulus_ilv_avx2,
    &trilinear_split_avx2,
    &trilinear_ilv_avx2,
    &fft_stage_avx2,
    &cmul_avx2,
    &cmul_conj_avx2,
};

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace por::simd

#else  // !(__AVX2__ && __FMA__)

namespace por::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace por::simd::detail

#endif
