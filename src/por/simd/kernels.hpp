// por/simd/kernels.hpp
//
// The dispatch table: per-ISA implementations of the three hot-kernel
// families (DESIGN.md §12).
//
//   * matcher — staging (annulus pixel -> lattice cell addressing +
//     corner-line prefetch) and the fused trilinear-interpolate /
//     correlate / accumulate consume loop, over a 256-cell block.
//   * fft — one radix-2 butterfly stage over the whole buffer against
//     a contiguous per-stage twiddle table, and the Bluestein pointwise
//     complex products.
//   * trilinear — a single-cell fetch, exposed so tests can compare
//     every tier against the scalar reference cell by cell.
//
// Each tier lives in its own translation unit compiled with the
// matching -m flags (kernels_sse2.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp); a tier whose flags the compiler lacks compiles
// to a null table and kernel_table() falls down a tier.  The SSE2 tier
// reproduces the pre-dispatch code paths BIT-IDENTICALLY; the wider
// tiers use FMA and differ by last-ulp rounding only, gated by the
// 1e-12 fast-vs-reference harness (tests/test_simd.cpp, bench_matcher).
//
// Tolerance policy (FMA contraction): see DESIGN.md §12.  The SSE2
// tier sums pixel-sequentially, bit-identical to the pre-dispatch
// code.  The AVX tiers additionally regroup the annulus sum into four
// rotating accumulators with a FIXED k mod 4 partition — deterministic
// for a given tier at any thread/rank count, different from the scalar
// oracle by ulp-level association only, gated at 1e-12.
#pragma once

#include <cstddef>
#include <cstdint>

#include "por/simd/isa.hpp"

namespace por::simd {

/// Which lattice representation a tier's matcher kernels consume.
/// SSE2 keeps the split re/im planes (SplitComplexLattice); the AVX
/// tiers read an interleaved (re, im) pair lattice so one wide load
/// covers both components of an (x, x+1) corner pair — half the cache
/// lines per trilinear cell.
enum class LatticeLayout { kSplit, kInterleaved };

/// One staged block of annulus pixels resolved to lattice cells, SoA
/// so the staging kernel can vectorize.  `base` is in lattice CELLS
/// (split: doubles per plane; interleaved: complex pairs).
struct StageBlock {
  const double* ku = nullptr;  ///< annulus column, block-offset
  const double* kv = nullptr;
  std::size_t count = 0;
  double euz = 0, euy = 0, eux = 0;  ///< rotated u axis
  double evz = 0, evy = 0, evx = 0;  ///< rotated v axis
  double c = 0;                      ///< lattice center offset
  std::size_t stride_y = 0, stride_z = 0;  ///< in lattice cells
  std::size_t* base = nullptr;  ///< out: flat cell index
  double* tz = nullptr;         ///< out: fractional offsets
  double* ty = nullptr;
  double* tx = nullptr;
  /// Corner-line prefetch (SSE2 tier only — the AVX tiers prefetch a
  /// short distance ahead inside their consume loops instead): the
  /// plane(s) backing the lattice (split: re + im; interleaved: data +
  /// nullptr) and the doubles-per-cell scale (1 or 2).  last_line
  /// dedups across consecutive blocks.
  const double* pf_a = nullptr;
  const double* pf_b = nullptr;
  unsigned pf_scale = 1;
  std::size_t* last_line = nullptr;
};

/// Consume half of one staged block: fused trilinear fetch + optional
/// transfer + view diff + optional weight, accumulated pixel-
/// sequentially.  transfer/weight are nullptr when the multiplier is
/// uniformly 1.0 (bit-exact skip, same as the pre-dispatch matcher).
struct AnnulusBlock {
  const std::size_t* base = nullptr;
  const double* tz = nullptr;
  const double* ty = nullptr;
  const double* tx = nullptr;
  std::size_t count = 0;
  const double* view = nullptr;        ///< interleaved (re, im) pixels
  const std::uint32_t* index = nullptr;  ///< view cell index per pixel
  const double* transfer = nullptr;    ///< per-pixel multiplier or null
  const double* weight = nullptr;      ///< per-pixel weight or null
};

/// A single trilinear cell fetch (test/bench surface).
struct CellSample {
  double re = 0.0;
  double im = 0.0;
};

using StageFn = void (*)(const StageBlock& blk);
/// Consume kernels take the RUNNING accumulator and return it updated:
/// the caller's block pipeline then sums terms in exactly the sequence
/// a single continuous loop would (no per-block regrouping), which is
/// what keeps the SSE2 tier bit-identical to the pre-dispatch code.
using AnnulusSplitFn = double (*)(const double* re, const double* im,
                                  std::size_t stride_y, std::size_t stride_z,
                                  std::size_t lat_size, const AnnulusBlock& blk,
                                  double acc);
using AnnulusIlvFn = double (*)(const double* lat, std::size_t stride_y,
                                std::size_t stride_z, std::size_t lat_cells,
                                const AnnulusBlock& blk, double acc);
using TrilinearSplitFn = CellSample (*)(const double* re, const double* im,
                                        std::size_t stride_y,
                                        std::size_t stride_z, std::size_t base,
                                        double tz, double ty, double tx);
using TrilinearIlvFn = CellSample (*)(const double* lat, std::size_t stride_y,
                                      std::size_t stride_z, std::size_t base,
                                      double tz, double ty, double tx);

/// One radix-2 butterfly stage over the whole length-n buffer `d`
/// (interleaved complex doubles): for every block of 2*half complexes,
/// butterfly lanes k in [0, half) against the CONTIGUOUS twiddles
/// tw[2k], tw[2k+1] (the per-stage flattened table in Fft1D).
using FftStageFn = void (*)(double* d, std::size_t n, std::size_t half,
                            const double* tw);

/// Pointwise complex products over interleaved buffers of n complexes:
/// cmul:      a[k] *= b[k]
/// cmul_conj: dst[k] = src[k] * conj(c[k])   (dst may alias src)
using CmulFn = void (*)(double* a, const double* b, std::size_t n);
using CmulConjFn = void (*)(double* dst, const double* src, const double* c,
                            std::size_t n);

/// One tier's complete kernel set.  Exactly one of annulus_split /
/// annulus_ilv is non-null, matching `layout`.
struct KernelTable {
  Isa isa = Isa::kSse2;
  LatticeLayout layout = LatticeLayout::kSplit;
  StageFn stage = nullptr;
  AnnulusSplitFn annulus_split = nullptr;
  AnnulusIlvFn annulus_ilv = nullptr;
  TrilinearSplitFn trilinear_split = nullptr;  ///< every tier provides it
  TrilinearIlvFn trilinear_ilv = nullptr;      ///< AVX tiers only
  FftStageFn fft_stage = nullptr;
  CmulFn cmul = nullptr;
  CmulConjFn cmul_conj = nullptr;
};

/// The table for `isa`, clamped down to the best tier that is BOTH
/// supported by this machine and compiled into this binary.  Never
/// returns null: the SSE2 tier always exists.
[[nodiscard]] const KernelTable& kernel_table(Isa isa);

/// kernel_table(active_isa()) — what process-global dispatch sites
/// (the FFT execute paths) read per call.
[[nodiscard]] const KernelTable& active_kernels();

namespace detail {
/// Per-TU table accessors; a tier compiled without its -m flags
/// returns nullptr and the dispatcher falls down a tier.
[[nodiscard]] const KernelTable* sse2_table();
[[nodiscard]] const KernelTable* avx2_table();
[[nodiscard]] const KernelTable* avx512_table();
}  // namespace detail

}  // namespace por::simd
