// por/simd/isa.hpp
//
// Runtime CPU-feature detection and ISA selection for the dispatched
// hot kernels (DESIGN.md §12).
//
// The matcher's trilinear/correlation loop and the FFT butterfly/
// pointwise loops each exist in three tiers — SSE2 (the baseline every
// x86-64 has; bit-identical to the pre-dispatch code), AVX2+FMA and
// AVX-512 — compiled in separate translation units with the matching
// -m flags and selected ONCE per process:
//
//   1. CPUID (+ XGETBV for OS-enabled AVX/AVX-512 state) finds the
//      best tier the machine supports,
//   2. the POR_FORCE_ISA environment variable ("sse2" | "avx2" |
//      "avx512") caps it process-wide,
//   3. a per-matcher SimdOptions::isa knob caps it per instance
//      (benches measure every tier side by side this way).
//
// A request above what the hardware supports clamps DOWN with a
// one-time stderr notice — forcing never enables an unsupported path.
// The selection is observable via the obs gauge `simd.isa` (numeric
// Isa value) and per-kernel dispatch counters; see kernels.hpp.
#pragma once

#include <optional>
#include <string_view>

namespace por::simd {

/// Instruction-set tiers, ordered: a larger value strictly extends the
/// smaller one's feature set.
enum class Isa : int {
  kSse2 = 0,    ///< baseline x86-64 (portable scalar body elsewhere)
  kAvx2 = 1,    ///< AVX2 + FMA
  kAvx512 = 2,  ///< AVX-512 F + DQ (+ FMA)
};

/// Short lowercase name ("sse2" / "avx2" / "avx512").
[[nodiscard]] const char* isa_name(Isa isa);

/// Parse an ISA name (the POR_FORCE_ISA grammar); nullopt on junk.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name);

/// Best tier this machine supports (CPUID + XGETBV, cached after the
/// first call).  Non-x86 builds report kSse2, which selects the
/// portable scalar kernel bodies.
[[nodiscard]] Isa detect_best_isa();

/// The process-wide selected tier: detect_best_isa() capped by
/// POR_FORCE_ISA.  Resolved once on first use; every dispatch site
/// (FFT plans, matchers built without an explicit knob) reads this.
[[nodiscard]] Isa active_isa();

/// Rebind the process-wide tier (clamped to detect_best_isa()).
/// Test/bench hook: callers must rebind BEFORE constructing the
/// matchers that should use it — a FourierMatcher snapshots its kernel
/// table (and builds the matching lattice layout) at construction and
/// never re-reads the global.  Returns the tier actually selected.
Isa force_isa(Isa isa);

/// Per-instance ISA knob, threaded through MatchOptions.
struct SimdOptions {
  /// Cap for this instance; nullopt = follow active_isa().  Requests
  /// above hardware support clamp down, like POR_FORCE_ISA.
  std::optional<Isa> isa;
};

/// The tier an instance configured with `options` should use.
[[nodiscard]] Isa resolve_isa(const SimdOptions& options);

}  // namespace por::simd
