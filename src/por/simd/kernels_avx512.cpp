// POR_HOT_PATH
//
// AVX-512 F+DQ kernel tier.  Beyond the AVX2 tier's interleaved-
// lattice consume loop (here two corner rows per zmm), this tier
// vectorizes the STAGING pass eight pixels at a time: DQ supplies the
// 64-bit double<->int conversions (_mm512_cvttpd_epi64 /
// _mm512_cvtepi64_pd) and the 64-bit multiply (_mm512_mullo_epi64)
// that cell-address generation needs.
//
// Same tolerance policy as the AVX2 tier (DESIGN.md §12): FMA + vector
// association inside a cell, four rotating annulus accumulators with a
// fixed k mod 4 partition, gated at 1e-12 against the scalar oracle.
//
// Compiled with -mavx512f -mavx512dq -mavx2 -mfma; compiles to a null
// table when the compiler lacks the flags.

#include "por/simd/kernels.hpp"

#include "por/util/contracts.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__FMA__)

#include <immintrin.h>

namespace por::simd {

namespace {

void stage_avx512(const StageBlock& blk) {
  const __m512d euz = _mm512_set1_pd(blk.euz), evz = _mm512_set1_pd(blk.evz);
  const __m512d euy = _mm512_set1_pd(blk.euy), evy = _mm512_set1_pd(blk.evy);
  const __m512d eux = _mm512_set1_pd(blk.eux), evx = _mm512_set1_pd(blk.evx);
  const __m512d cv = _mm512_set1_pd(blk.c);
  const __m512i sy = _mm512_set1_epi64(static_cast<long long>(blk.stride_y));
  const __m512i sz = _mm512_set1_epi64(static_cast<long long>(blk.stride_z));
  std::size_t k = 0;
  for (; k + 8 <= blk.count; k += 8) {
    const __m512d ku = _mm512_loadu_pd(blk.ku + k);
    const __m512d kv = _mm512_loadu_pd(blk.kv + k);
    const __m512d z = _mm512_add_pd(
        _mm512_fmadd_pd(ku, euz, _mm512_mul_pd(kv, evz)), cv);
    const __m512d y = _mm512_add_pd(
        _mm512_fmadd_pd(ku, euy, _mm512_mul_pd(kv, evy)), cv);
    const __m512d x = _mm512_add_pd(
        _mm512_fmadd_pd(ku, eux, _mm512_mul_pd(kv, evx)), cv);
    // Coordinates are >= 0.5 under the fast-path guard, so truncation
    // toward zero IS the floor.
    const __m512i iz = _mm512_cvttpd_epi64(z);
    const __m512i iy = _mm512_cvttpd_epi64(y);
    const __m512i ix = _mm512_cvttpd_epi64(x);
    const __m512i base = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_mullo_epi64(iz, sz),
                         _mm512_mullo_epi64(iy, sy)),
        ix);
    _mm512_storeu_si512(blk.base + k, base);
    _mm512_storeu_pd(blk.tz + k, _mm512_sub_pd(z, _mm512_cvtepi64_pd(iz)));
    _mm512_storeu_pd(blk.ty + k, _mm512_sub_pd(y, _mm512_cvtepi64_pd(iy)));
    _mm512_storeu_pd(blk.tx + k, _mm512_sub_pd(x, _mm512_cvtepi64_pd(ix)));
  }
  for (; k < blk.count; ++k) {
    const double z = blk.ku[k] * blk.euz + blk.kv[k] * blk.evz + blk.c;
    const double y = blk.ku[k] * blk.euy + blk.kv[k] * blk.evy + blk.c;
    const double x = blk.ku[k] * blk.eux + blk.kv[k] * blk.evx + blk.c;
    const std::size_t iz = static_cast<std::size_t>(z);
    const std::size_t iy = static_cast<std::size_t>(y);
    const std::size_t ix = static_cast<std::size_t>(x);
    blk.base[k] = iz * blk.stride_z + iy * blk.stride_y + ix;
    blk.tz[k] = z - static_cast<double>(iz);
    blk.ty[k] = y - static_cast<double>(iy);
    blk.tx[k] = x - static_cast<double>(ix);
  }
  // No stage-time prefetch on this tier: issuing the whole block's
  // corner lines here overran L1 and the prefetch uops competed with
  // the consume loop's demand loads for fill buffers — measurably
  // SLOWER than letting the consume loop prefetch a short distance
  // ahead (see annulus_ilv_run) with the hardware stream prefetchers
  // covering the four forward-strided corner-row streams.
}

/// Trilinear cell on the interleaved lattice, both z-planes in one
/// fused chain: zmm A = [row z0/y0 | row z0/y1], zmm B = [row z1/y0 |
/// row z1/y1], acc = A*wA + B*wB.  The per-lane weights are built with
/// masked subtracts from broadcasts (no 8-element set_pd, no ymm
/// inserts) to keep shuffle-port pressure down — the weight product is
/// associated (wx*wy)*wz here, ulp-level different from the scalar
/// oracle's (wz*wy)*wx and covered by the 1e-12 gate (DESIGN.md §12).
inline __m128d cell_reduce_ilv(const double* lat, std::size_t stride_y,
                               std::size_t stride_z, std::size_t base,
                               double tz, double ty, double tx) {
  const double* p = lat + 2 * base;
  const __m512d rows_a = _mm512_insertf64x4(
      _mm512_zextpd256_pd512(_mm256_loadu_pd(p)),
      _mm256_loadu_pd(p + 2 * stride_y), 1);
  const double* q = p + 2 * stride_z;
  const __m512d rows_b = _mm512_insertf64x4(
      _mm512_zextpd256_pd512(_mm256_loadu_pd(q)),
      _mm256_loadu_pd(q + 2 * stride_y), 1);

  const __m512d ones = _mm512_set1_pd(1.0);
  // wxv: [wx0, wx0, tx, tx | wx0, wx0, tx, tx] — 1-tx in lanes 0,1,4,5.
  const __m512d txv = _mm512_set1_pd(tx);
  const __m512d wxv = _mm512_mask_sub_pd(txv, 0x33, ones, txv);
  // wyv: [wy0 x4 | ty x4] — 1-ty in the low half.
  const __m512d tyv = _mm512_set1_pd(ty);
  const __m512d wyv = _mm512_mask_sub_pd(tyv, 0x0F, ones, tyv);
  const __m512d wxy = _mm512_mul_pd(wxv, wyv);
  // Broadcast tz then take 1-tz as a vector sub: one memory-source
  // broadcast + one sub on the FMA ports, instead of a scalar sub plus
  // two register broadcasts on the shuffle port.
  const __m512d tzv = _mm512_set1_pd(tz);
  const __m512d wzv = _mm512_sub_pd(ones, tzv);

  const __m512d acc =
      _mm512_fmadd_pd(rows_a, _mm512_mul_pd(wxy, wzv),
                      _mm512_mul_pd(rows_b, _mm512_mul_pd(wxy, tzv)));
  const __m256d half = _mm256_add_pd(_mm512_castpd512_pd256(acc),
                                     _mm512_extractf64x4_pd(acc, 1));
  return _mm_add_pd(_mm256_castpd256_pd128(half),
                    _mm256_extractf128_pd(half, 1));
}

CellSample trilinear_ilv_avx512(const double* lat, std::size_t stride_y,
                                std::size_t stride_z, std::size_t base,
                                double tz, double ty, double tx) {
  const __m128d s = cell_reduce_ilv(lat, stride_y, stride_z, base, tz, ty, tx);
  CellSample out;
  out.re = _mm_cvtsd_f64(s);
  out.im = _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  return out;
}

/// Split-layout single-cell fetch — the SSE2 intrinsic sequence, bit-
/// identical to that tier (intrinsics never contract).
CellSample trilinear_split_avx512(const double* re, const double* im,
                                  std::size_t stride_y, std::size_t stride_z,
                                  std::size_t base, double tz, double ty,
                                  double tx) {
  const std::size_t i000 = base;
  const std::size_t i010 = base + stride_y;
  const std::size_t i100 = base + stride_z;
  const std::size_t i110 = base + stride_z + stride_y;
  const double wz0 = 1.0 - tz, wy0 = 1.0 - ty, wx0 = 1.0 - tx;
  const double w00 = wz0 * wy0, w01 = wz0 * ty;
  const double w10 = tz * wy0, w11 = tz * ty;
  const __m128d wx = _mm_set_pd(tx, wx0);
  const __m128d w00v = _mm_mul_pd(_mm_set1_pd(w00), wx);
  const __m128d w01v = _mm_mul_pd(_mm_set1_pd(w01), wx);
  const __m128d w10v = _mm_mul_pd(_mm_set1_pd(w10), wx);
  const __m128d w11v = _mm_mul_pd(_mm_set1_pd(w11), wx);
  const __m128d re_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(re + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(re + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(re + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(re + i110))));
  const __m128d im_acc = _mm_add_pd(
      _mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(im + i000)),
                 _mm_mul_pd(w01v, _mm_loadu_pd(im + i010))),
      _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(im + i100)),
                 _mm_mul_pd(w11v, _mm_loadu_pd(im + i110))));
  const __m128d packed = _mm_add_pd(_mm_unpacklo_pd(re_acc, im_acc),
                                    _mm_unpackhi_pd(re_acc, im_acc));
  CellSample s;
  s.re = _mm_cvtsd_f64(packed);
  s.im = _mm_cvtsd_f64(_mm_unpackhi_pd(packed, packed));
  return s;
}

/// One pixel of the consume loop: trilinear sample, optional transfer
/// scale, view diff and squared-magnitude FMA into `a` — all in xmm
/// [re, im] pairs, never dropping to scalar.
template <bool kTransfer, bool kWeight>
inline void consume_px_ilv(const double* lat, std::size_t stride_y,
                           std::size_t stride_z, const AnnulusBlock& blk,
                           std::size_t k, __m128d& a) {
  __m128d s = cell_reduce_ilv(lat, stride_y, stride_z, blk.base[k], blk.tz[k],
                              blk.ty[k], blk.tx[k]);
  if constexpr (kTransfer) s = _mm_mul_pd(s, _mm_set1_pd(blk.transfer[k]));
  const __m128d v =
      _mm_loadu_pd(blk.view + 2 * static_cast<std::size_t>(blk.index[k]));
  const __m128d d = _mm_sub_pd(v, s);
  if constexpr (kWeight) {
    a = _mm_fmadd_pd(_mm_mul_pd(d, d), _mm_set1_pd(blk.weight[k]), a);
  } else {
    a = _mm_fmadd_pd(d, d, a);
  }
}

template <bool kTransfer, bool kWeight>
double annulus_ilv_run(const double* lat, std::size_t stride_y,
                       std::size_t stride_z, std::size_t lat_cells,
                       const AnnulusBlock& blk, double acc) {
#if POR_CONTRACTS_ENABLED
  for (std::size_t j = 0; j < blk.count; ++j) {
    POR_BOUNDS(blk.base[j] + stride_z + stride_y + 1, lat_cells);
  }
#else
  (void)lat_cells;
#endif
  // Four rotating [sum dre^2, sum dim^2] accumulators: the only serial
  // dependence is one FMA per accumulator every fourth pixel, so the
  // FMA latency never gates throughput.  The partition is fixed (k mod
  // 4), so the result is deterministic; the regrouping relative to the
  // scalar oracle's single running sum is ulp-level and covered by the
  // 1e-12 gate (DESIGN.md §12).
  __m128d a0 = _mm_setzero_pd(), a1 = _mm_setzero_pd();
  __m128d a2 = _mm_setzero_pd(), a3 = _mm_setzero_pd();
  // Prefetch distance in pixels: far enough ahead of the consume loop
  // (~10 ns/px) to cover an L2/L3 hit, near enough that the lines are
  // still resident when reached.
  constexpr std::size_t kPfDist = 16;
  std::size_t k = 0;
  for (; k + 4 <= blk.count; k += 4) {
    const std::size_t pj = k + kPfDist < blk.count ? k + kPfDist : blk.count - 1;
    const double* pp = lat + 2 * blk.base[pj];
    _mm_prefetch(reinterpret_cast<const char*>(pp), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * stride_y), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * stride_z), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(pp + 2 * (stride_z + stride_y)),
                 _MM_HINT_T0);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k, a0);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 1,
                                       a1);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 2,
                                       a2);
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k + 3,
                                       a3);
  }
  for (; k < blk.count; ++k) {
    consume_px_ilv<kTransfer, kWeight>(lat, stride_y, stride_z, blk, k, a0);
  }
  const __m128d t = _mm_add_pd(_mm_add_pd(a0, a1), _mm_add_pd(a2, a3));
  return acc + _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
}

double annulus_ilv_avx512(const double* lat, std::size_t stride_y,
                          std::size_t stride_z, std::size_t lat_cells,
                          const AnnulusBlock& blk, double acc) {
  if (blk.transfer != nullptr) {
    return blk.weight != nullptr
               ? annulus_ilv_run<true, true>(lat, stride_y, stride_z,
                                             lat_cells, blk, acc)
               : annulus_ilv_run<true, false>(lat, stride_y, stride_z,
                                              lat_cells, blk, acc);
  }
  return blk.weight != nullptr
             ? annulus_ilv_run<false, true>(lat, stride_y, stride_z,
                                            lat_cells, blk, acc)
             : annulus_ilv_run<false, false>(lat, stride_y, stride_z,
                                             lat_cells, blk, acc);
}

void fft_stage_avx512(double* d, std::size_t n, std::size_t half,
                      const double* tw) {
  if (half == 1) {
    for (std::size_t block = 0; block < n; block += 2) {
      double* p = d + 2 * block;
      const double er = p[0], ei = p[1], xr = p[2], xi = p[3];
      p[0] = er + xr;
      p[1] = ei + xi;
      p[2] = er - xr;
      p[3] = ei - xi;
    }
    return;
  }
  const std::size_t len = 2 * half;
  if (half == 2) {
    // One 256-bit butterfly pair per block.
    const __m256d w = _mm256_loadu_pd(tw);
    const __m256d wr = _mm256_movedup_pd(w);
    const __m256d wi = _mm256_permute_pd(w, 0xF);
    for (std::size_t block = 0; block < n; block += len) {
      double* lo = d + 2 * block;
      double* hi = lo + 4;
      const __m256d x = _mm256_loadu_pd(hi);
      const __m256d xs = _mm256_permute_pd(x, 0x5);
      const __m256d odd = _mm256_fmaddsub_pd(wr, x, _mm256_mul_pd(wi, xs));
      const __m256d e = _mm256_loadu_pd(lo);
      _mm256_storeu_pd(lo, _mm256_add_pd(e, odd));
      _mm256_storeu_pd(hi, _mm256_sub_pd(e, odd));
    }
    return;
  }
  // half >= 4 (always a multiple of 4): four butterflies per zmm.
  for (std::size_t block = 0; block < n; block += len) {
    double* lo = d + 2 * block;
    double* hi = lo + 2 * half;
    for (std::size_t k = 0; k < half; k += 4) {
      const __m512d w = _mm512_loadu_pd(tw + 2 * k);
      const __m512d x = _mm512_loadu_pd(hi + 2 * k);
      const __m512d wr = _mm512_movedup_pd(w);
      const __m512d wi = _mm512_permute_pd(w, 0xFF);
      const __m512d xs = _mm512_permute_pd(x, 0x55);
      const __m512d odd = _mm512_fmaddsub_pd(wr, x, _mm512_mul_pd(wi, xs));
      const __m512d e = _mm512_loadu_pd(lo + 2 * k);
      _mm512_storeu_pd(lo + 2 * k, _mm512_add_pd(e, odd));
      _mm512_storeu_pd(hi + 2 * k, _mm512_sub_pd(e, odd));
    }
  }
}

void cmul_avx512(double* a, const double* b, std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m512d x = _mm512_loadu_pd(a + 2 * k);
    const __m512d y = _mm512_loadu_pd(b + 2 * k);
    const __m512d br = _mm512_movedup_pd(y);
    const __m512d bi = _mm512_permute_pd(y, 0xFF);
    const __m512d xs = _mm512_permute_pd(x, 0x55);
    _mm512_storeu_pd(a + 2 * k,
                     _mm512_fmaddsub_pd(br, x, _mm512_mul_pd(bi, xs)));
  }
  for (; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    a[2 * k] = ar * br - ai * bi;
    a[2 * k + 1] = ar * bi + ai * br;
  }
}

void cmul_conj_avx512(double* dst, const double* src, const double* c,
                      std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m512d x = _mm512_loadu_pd(src + 2 * k);
    const __m512d cc = _mm512_loadu_pd(c + 2 * k);
    const __m512d cr = _mm512_movedup_pd(cc);
    const __m512d ci = _mm512_permute_pd(cc, 0xFF);
    const __m512d xs = _mm512_permute_pd(x, 0x55);
    _mm512_storeu_pd(dst + 2 * k,
                     _mm512_fmsubadd_pd(cr, x, _mm512_mul_pd(ci, xs)));
  }
  for (; k < n; ++k) {
    const double xr = src[2 * k], xi = src[2 * k + 1];
    const double rr = c[2 * k], ri = c[2 * k + 1];
    dst[2 * k] = xr * rr + xi * ri;
    dst[2 * k + 1] = xi * rr - xr * ri;
  }
}

const KernelTable kAvx512Table = {
    Isa::kAvx512,
    LatticeLayout::kInterleaved,
    &stage_avx512,
    nullptr,
    &annulus_ilv_avx512,
    &trilinear_split_avx512,
    &trilinear_ilv_avx512,
    &fft_stage_avx512,
    &cmul_avx512,
    &cmul_conj_avx512,
};

}  // namespace

namespace detail {
const KernelTable* avx512_table() { return &kAvx512Table; }
}  // namespace detail

}  // namespace por::simd

#else  // !(__AVX512F__ && __AVX512DQ__ && __FMA__)

namespace por::simd::detail {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace por::simd::detail

#endif
