#include "por/simd/isa.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "por/obs/registry.hpp"
#include "por/simd/kernels.hpp"
#include "por/util/contracts.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define POR_SIMD_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace por::simd {

namespace {

#if defined(POR_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))

/// XCR0 via the raw xgetbv encoding — works without -mxsave.
std::uint64_t xgetbv0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

Isa detect_best_isa_uncached() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return Isa::kSse2;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return Isa::kSse2;
  // OS must save the ymm (XCR0 bits 1|2) — and for AVX-512 also the
  // opmask/zmm-hi/hi16-zmm state (bits 5|6|7) — or the wide registers
  // fault at runtime regardless of what CPUID advertises.
  const std::uint64_t xcr0 = xgetbv0();
  if ((xcr0 & 0x6) != 0x6) return Isa::kSse2;
  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) {
    return Isa::kSse2;
  }
  const bool avx2 = (ebx7 & (1u << 5)) != 0;
  if (!avx2) return Isa::kSse2;
  const bool avx512f = (ebx7 & (1u << 16)) != 0;
  const bool avx512dq = (ebx7 & (1u << 17)) != 0;
  if (avx512f && avx512dq && (xcr0 & 0xe6) == 0xe6) return Isa::kAvx512;
  return Isa::kAvx2;
}

#else

Isa detect_best_isa_uncached() { return Isa::kSse2; }

#endif

/// Cap `isa` at the best tier that is hardware-supported AND compiled
/// into this binary (a tier built without its -m flags has a null TU
/// table).
Isa clamp_to_available(Isa isa) {
  Isa capped = isa;
  if (capped > detect_best_isa()) capped = detect_best_isa();
  if (capped == Isa::kAvx512 && detail::avx512_table() == nullptr) {
    capped = Isa::kAvx2;
  }
  if (capped == Isa::kAvx2 && detail::avx2_table() == nullptr) {
    capped = Isa::kSse2;
  }
  return capped;
}

/// Publish the selection: gauge `simd.isa` carries the numeric tier so
/// exports/tests can assert on it (0 = sse2, 1 = avx2, 2 = avx512).
void publish_isa(Isa isa) {
  obs::current_registry().gauge("simd.isa").set(static_cast<double>(isa));
}

std::atomic<int>& active_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

Isa select_initial() {
  Isa isa = detect_best_isa();
  if (const char* forced = std::getenv("POR_FORCE_ISA")) {
    if (const std::optional<Isa> parsed = parse_isa(forced)) {
      const Isa capped = clamp_to_available(*parsed);
      if (capped != *parsed) {
        std::fprintf(stderr,
                     "por::simd: POR_FORCE_ISA=%s not available on this "
                     "machine/build; using %s\n",
                     forced, isa_name(capped));
      }
      isa = capped;
    } else {
      std::fprintf(stderr,
                   "por::simd: ignoring unknown POR_FORCE_ISA=%s "
                   "(expected sse2|avx2|avx512)\n",
                   forced);
    }
  }
  publish_isa(isa);
  return isa;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "sse2" || name == "scalar") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512" || name == "avx512f") return Isa::kAvx512;
  return std::nullopt;
}

Isa detect_best_isa() {
  static const Isa best = detect_best_isa_uncached();
  return best;
}

Isa active_isa() {
  std::atomic<int>& slot = active_slot();
  int current = slot.load(std::memory_order_acquire);
  if (current < 0) {
    const Isa selected = select_initial();
    int expected = -1;
    if (slot.compare_exchange_strong(expected, static_cast<int>(selected),
                                     std::memory_order_acq_rel)) {
      return selected;
    }
    current = expected;  // another thread won the race
  }
  return static_cast<Isa>(current);
}

Isa force_isa(Isa isa) {
  const Isa capped = clamp_to_available(isa);
  active_slot().store(static_cast<int>(capped), std::memory_order_release);
  publish_isa(capped);
  return capped;
}

Isa resolve_isa(const SimdOptions& options) {
  if (options.isa) return clamp_to_available(*options.isa);
  return active_isa();
}

const KernelTable& kernel_table(Isa isa) {
  const Isa capped = clamp_to_available(isa);
  const KernelTable* table = nullptr;
  switch (capped) {
    case Isa::kAvx512: table = detail::avx512_table(); break;
    case Isa::kAvx2: table = detail::avx2_table(); break;
    case Isa::kSse2: table = detail::sse2_table(); break;
  }
  POR_ENSURE(table != nullptr && table->isa == capped,
             "kernel table missing for tier", static_cast<int>(capped));
  return *table;
}

const KernelTable& active_kernels() { return kernel_table(active_isa()); }

}  // namespace por::simd
