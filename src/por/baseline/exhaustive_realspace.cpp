#include "por/baseline/exhaustive_realspace.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/interp.hpp"
#include "por/em/projection.hpp"
#include "por/metrics/distance.hpp"

namespace por::baseline {

em::Image<double> rotate_image(const em::Image<double>& img,
                               double angle_deg) {
  const std::size_t n = img.nx();
  if (img.ny() != n) throw std::invalid_argument("rotate_image: not square");
  const double c = std::floor(static_cast<double>(n) / 2.0);
  const double a = em::deg2rad(angle_deg);
  const double ca = std::cos(a), sa = std::sin(a);
  const em::Image<em::cdouble> source = em::to_complex(img);
  em::Image<double> out(n, n, 0.0);
  for (std::size_t y = 0; y < n; ++y) {
    const double v = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < n; ++x) {
      const double u = static_cast<double>(x) - c;
      // Sample the input at R(angle) * p.
      const double su = ca * u - sa * v;
      const double sv = sa * u + ca * v;
      out(y, x) = em::interp_bilinear(source, sv + c, su + c).real();
    }
  }
  return out;
}

ExhaustiveRealspaceMatcher::ExhaustiveRealspaceMatcher(
    const em::Volume<double>& reference_map, const OldMethodConfig& config)
    : config_(config) {
  if (config_.direction_step_deg <= 0.0 || config_.omega_step_deg <= 0.0) {
    throw std::invalid_argument("ExhaustiveRealspaceMatcher: bad steps");
  }
  if (config_.icosahedral_restricted) {
    const em::IcosahedralAsymmetricUnit asym_unit;
    directions_ = asym_unit.grid(config_.direction_step_deg);
  } else {
    directions_ = global_sphere_grid(config_.direction_step_deg);
  }
  if (directions_.empty()) {
    throw std::runtime_error("ExhaustiveRealspaceMatcher: empty grid");
  }
  templates_.reserve(directions_.size());
  for (const auto& direction : directions_) {
    templates_.push_back(em::project_volume(reference_map, direction,
                                            config_.projector_steps));
  }
  omega_count_ = static_cast<std::size_t>(
      std::ceil(360.0 / config_.omega_step_deg));
}

ExhaustiveRealspaceMatcher::Match ExhaustiveRealspaceMatcher::best_match(
    const em::Image<double>& view) const {
  Match best;
  best.correlation = -2.0;
  for (std::size_t w = 0; w < omega_count_; ++w) {
    const double omega = static_cast<double>(w) * config_.omega_step_deg;
    // Rotating the VIEW by -omega is equivalent to rotating every
    // template by +omega, but costs one rotation instead of
    // direction_count() of them.
    const em::Image<double> rotated_view = rotate_image(view, -omega);
    for (std::size_t d = 0; d < directions_.size(); ++d) {
      const double corr =
          metrics::realspace_correlation(rotated_view, templates_[d]);
      if (corr > best.correlation) {
        best.correlation = corr;
        best.orientation = directions_[d];
        best.orientation.omega = omega;
      }
    }
  }
  return best;
}

std::vector<em::Orientation> global_sphere_grid(double step_deg) {
  if (step_deg <= 0.0) {
    throw std::invalid_argument("global_sphere_grid: step must be > 0");
  }
  std::vector<em::Orientation> grid;
  for (double theta = 0.0; theta <= 180.0 + 1e-9; theta += step_deg) {
    const double sin_theta =
        std::max(std::sin(em::deg2rad(theta)), 1e-6);
    const double phi_step = std::min(360.0, step_deg / sin_theta);
    for (double phi = 0.0; phi < 360.0 - 1e-9; phi += phi_step) {
      grid.push_back(em::Orientation{theta, phi, 0.0});
      if (theta < 1e-9 || theta > 180.0 - 1e-9) break;  // poles: one point
    }
  }
  return grid;
}

std::vector<em::Orientation> ExhaustiveRealspaceMatcher::assign(
    const std::vector<em::Image<double>>& views) const {
  std::vector<em::Orientation> out;
  out.reserve(views.size());
  for (const auto& view : views) out.push_back(best_orientation(view));
  return out;
}

}  // namespace por::baseline
