// por/baseline/exhaustive_realspace.hpp
//
// The "old method" baseline: global real-space projection matching
// over a fixed angular grid restricted to the icosahedral asymmetric
// unit — the strategy of the symmetry-exploiting programs the paper
// compares against (ref [17], and the legacy orientations behind the
// "old" curves of Figs. 2/3/5/6).  It only works for particles whose
// symmetry is KNOWN to be icosahedral and is limited by its fixed grid
// spacing; the paper's refinement starts from its output and improves
// it.
#pragma once

#include <cstddef>
#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/symmetry.hpp"

namespace por::baseline {

struct OldMethodConfig {
  double direction_step_deg = 3.0;  ///< grid over the search domain
  double omega_step_deg = 6.0;      ///< in-plane grid
  int projector_steps = 1;          ///< ray samples per voxel
  /// true: search the icosahedral asymmetric unit only (the legacy
  /// symmetry-exploiting behaviour, Fig. 1b).  false: search the whole
  /// sphere — required for particles of unknown symmetry, and the
  /// reason the asymmetric search space is six orders of magnitude
  /// larger (§3).
  bool icosahedral_restricted = true;
};

/// Precomputes projection templates of a reference map on the
/// asymmetric-unit grid and matches views by maximum real-space
/// cross-correlation.
class ExhaustiveRealspaceMatcher {
 public:
  ExhaustiveRealspaceMatcher(const em::Volume<double>& reference_map,
                             const OldMethodConfig& config);

  /// Best match for one view: orientation plus its correlation score
  /// (used to gate out views that match nothing well).
  struct Match {
    em::Orientation orientation;
    double correlation = -1.0;
  };
  [[nodiscard]] Match best_match(const em::Image<double>& view) const;

  /// Best-correlating (theta, phi, omega) for one view.
  [[nodiscard]] em::Orientation best_orientation(
      const em::Image<double>& view) const {
    return best_match(view).orientation;
  }

  /// Batch version.
  [[nodiscard]] std::vector<em::Orientation> assign(
      const std::vector<em::Image<double>>& views) const;

  [[nodiscard]] std::size_t direction_count() const {
    return templates_.size();
  }
  [[nodiscard]] std::size_t omega_count() const { return omega_count_; }

  /// Total correlations evaluated per view (the baseline's cost).
  [[nodiscard]] std::size_t comparisons_per_view() const {
    return templates_.size() * omega_count_;
  }

 private:
  OldMethodConfig config_;
  std::vector<em::Orientation> directions_;        // omega = 0
  std::vector<em::Image<double>> templates_;       // one per direction
  std::size_t omega_count_ = 0;
};

/// In-plane rotation of an image about its center voxel by
/// `angle_deg` (bilinear; zero outside).  out(p) = in(R(angle) * p).
[[nodiscard]] em::Image<double> rotate_image(const em::Image<double>& img,
                                             double angle_deg);

/// Quasi-uniform view-direction grid over the full sphere with
/// approximately `step_deg` spacing (omega = 0): latitude rings with a
/// phi step widened by 1/sin(theta).
[[nodiscard]] std::vector<em::Orientation> global_sphere_grid(double step_deg);

}  // namespace por::baseline
