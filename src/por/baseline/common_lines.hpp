// por/baseline/common_lines.hpp
//
// The method of common lines (paper §3: "several methods including the
// method of common lines can be used to this end", ref [2]): any two
// central sections of the same 3D transform intersect in a line
// through the origin, so two projections of one particle share a 1D
// line in their 2D transforms.  Locating that line in each view
// constrains their relative orientation; with enough pairs an initial
// orientation set can be bootstrapped.
//
// The reproduction provides the two primitives the method is built
// from — the geometric common line predicted from two orientations,
// and its data-driven estimate — plus a consistency score used as an
// orientation sanity check.  Line samples are computed by direct DFT
// summation over the view pixels (exact to machine precision); the
// peak of the line-correlation landscape of small blob phantoms is
// shallow, so interpolated sampling would bury it in gridding error.
#pragma once

#include <cstddef>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"

namespace por::baseline {

/// A common line, described by its in-plane polar angle (degrees, in
/// [0, 180)) in each of the two views.
struct CommonLine {
  double angle_in_a = 0.0;
  double angle_in_b = 0.0;
};

/// Predicted common line of two views from their orientations: the
/// intersection of the two central-section planes, expressed in each
/// view's in-plane coordinates.  Throws std::invalid_argument when the
/// views are (anti)parallel and every line is common.
[[nodiscard]] CommonLine common_line_from_orientations(
    const em::Orientation& a, const em::Orientation& b);

/// Exact central line of a view's spectrum at polar angle `angle_deg`:
/// samples at radii t = -radius..radius (|t| < 2 excluded, unit
/// steps), phases measured about the image center.
[[nodiscard]] std::vector<em::cdouble> central_line(
    const em::Image<double>& view, double angle_deg, double radius);

/// Estimated common line from data: scan `line_count` polar angles
/// over [0, 180) in each view and return the pair with the highest
/// normalized line correlation (Hermitian reversal handled).
/// `radius` = 0 means the view's information limit (l/2 - 2).
[[nodiscard]] CommonLine estimate_common_line(const em::Image<double>& view_a,
                                              const em::Image<double>& view_b,
                                              std::size_t line_count = 90,
                                              double radius = 0.0);

/// Correlation of the two views along the common line PREDICTED by the
/// given orientations — high when the orientations are consistent with
/// the data, lower when they are wrong.  A cheap cross-check on a
/// refined orientation pair.
[[nodiscard]] double common_line_consistency(const em::Image<double>& view_a,
                                             const em::Image<double>& view_b,
                                             const em::Orientation& a,
                                             const em::Orientation& b,
                                             double radius = 0.0);

}  // namespace por::baseline
