#include "por/baseline/common_lines.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace por::baseline {

namespace {

/// Polar angle of a 3D direction expressed in a view's in-plane basis,
/// folded to [0, 180).
double in_plane_angle_deg(const em::Vec3& direction, const em::Mat3& rotation) {
  const em::Vec3 eu = rotation * em::Vec3{1, 0, 0};
  const em::Vec3 ev = rotation * em::Vec3{0, 1, 0};
  double angle =
      em::rad2deg(std::atan2(direction.dot(ev), direction.dot(eu)));
  angle = std::fmod(angle, 180.0);
  if (angle < 0.0) angle += 180.0;
  return angle;
}

/// Normalized |<a, b>| correlation of two complex lines.  The shared
/// 3D line may be walked in opposite directions by the two views
/// (their in-plane angles are only defined modulo 180 degrees), so the
/// anti-parallel hypothesis a(t) == b(-t) is scored as well and the
/// better of the two returned.
double line_correlation(const std::vector<em::cdouble>& a,
                        const std::vector<em::cdouble>& b) {
  double na = 0.0, nb = 0.0;
  em::cdouble fwd{0.0, 0.0}, rev{0.0, 0.0};
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    na += std::norm(a[i]);
    nb += std::norm(b[i]);
    fwd += a[i] * std::conj(b[i]);
    rev += a[i] * std::conj(b[n - 1 - i]);
  }
  const double denom = std::sqrt(na * nb);
  // por-lint: allow(float-eq) exact-zero guard before division; any
  // nonzero norm, however tiny, is a usable denominator.
  if (denom == 0.0) return 0.0;
  return std::max(std::abs(fwd), std::abs(rev)) / denom;
}

double default_radius(const em::Image<double>& view, double radius) {
  if (radius > 0.0) return radius;
  return static_cast<double>(view.nx()) / 2.0 - 2.0;
}

}  // namespace

CommonLine common_line_from_orientations(const em::Orientation& a,
                                         const em::Orientation& b) {
  const em::Mat3 ra = em::rotation_matrix(a);
  const em::Mat3 rb = em::rotation_matrix(b);
  const em::Vec3 na = ra * em::Vec3{0, 0, 1};
  const em::Vec3 nb = rb * em::Vec3{0, 0, 1};
  const em::Vec3 direction = na.cross(nb);
  if (direction.norm() < 1e-9) {
    throw std::invalid_argument(
        "common_line_from_orientations: parallel views share every line");
  }
  const em::Vec3 unit = direction.normalized();
  return CommonLine{in_plane_angle_deg(unit, ra),
                    in_plane_angle_deg(unit, rb)};
}

std::vector<em::cdouble> central_line(const em::Image<double>& view,
                                      double angle_deg, double radius) {
  const std::size_t n = view.nx();
  if (view.ny() != n) {
    throw std::invalid_argument("central_line: view must be square");
  }
  const double c = std::floor(static_cast<double>(n) / 2.0);
  const double a = em::deg2rad(angle_deg);
  const double dx = std::cos(a), dy = std::sin(a);
  const auto r = static_cast<long>(std::floor(radius));

  std::vector<em::cdouble> line;
  line.reserve(2 * static_cast<std::size_t>(r));
  for (long t = -r; t <= r; ++t) {
    if (std::abs(t) < 2) continue;  // exclude DC neighbourhood
    const double kx = t * dx, ky = t * dy;
    em::cdouble sum{0.0, 0.0};
    for (std::size_t y = 0; y < n; ++y) {
      const double py = static_cast<double>(y) - c;
      for (std::size_t x = 0; x < n; ++x) {
        const double px = static_cast<double>(x) - c;
        const double phase = -2.0 * std::numbers::pi * (kx * px + ky * py) /
                             static_cast<double>(n);
        sum += view(y, x) * em::cdouble(std::cos(phase), std::sin(phase));
      }
    }
    line.push_back(sum);
  }
  return line;
}

CommonLine estimate_common_line(const em::Image<double>& view_a,
                                const em::Image<double>& view_b,
                                std::size_t line_count, double radius) {
  if (line_count < 2) {
    throw std::invalid_argument("estimate_common_line: need >= 2 lines");
  }
  const double ra = default_radius(view_a, radius);
  const double rb = default_radius(view_b, radius);
  const double step = 180.0 / static_cast<double>(line_count);

  std::vector<std::vector<em::cdouble>> lines_a(line_count),
      lines_b(line_count);
  for (std::size_t i = 0; i < line_count; ++i) {
    const double angle = static_cast<double>(i) * step;
    lines_a[i] = central_line(view_a, angle, ra);
    lines_b[i] = central_line(view_b, angle, rb);
  }

  CommonLine best;
  double best_corr = -1.0;
  for (std::size_t i = 0; i < line_count; ++i) {
    for (std::size_t j = 0; j < line_count; ++j) {
      const double corr = line_correlation(lines_a[i], lines_b[j]);
      if (corr > best_corr) {
        best_corr = corr;
        best.angle_in_a = static_cast<double>(i) * step;
        best.angle_in_b = static_cast<double>(j) * step;
      }
    }
  }
  return best;
}

double common_line_consistency(const em::Image<double>& view_a,
                               const em::Image<double>& view_b,
                               const em::Orientation& a,
                               const em::Orientation& b, double radius) {
  const CommonLine predicted = common_line_from_orientations(a, b);
  return line_correlation(
      central_line(view_a, predicted.angle_in_a, default_radius(view_a, radius)),
      central_line(view_b, predicted.angle_in_b,
                   default_radius(view_b, radius)));
}

}  // namespace por::baseline
