#include "por/baseline/single_resolution.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace por::baseline {

std::uint64_t single_resolution_cost(double half_range_deg, double step_deg) {
  if (half_range_deg <= 0.0 || step_deg <= 0.0) {
    throw std::invalid_argument("single_resolution_cost: bad arguments");
  }
  const auto per_angle = static_cast<std::uint64_t>(
      std::floor(2.0 * half_range_deg / step_deg)) + 1;
  return per_angle * per_angle * per_angle;
}

SingleResolutionResult single_resolution_search(
    const core::FourierMatcher& matcher,
    const em::Image<em::cdouble>& view_spectrum, const em::Orientation& center,
    double half_range_deg, double step_deg, std::uint64_t max_matchings) {
  const std::uint64_t cost = single_resolution_cost(half_range_deg, step_deg);
  if (cost > max_matchings) {
    throw std::invalid_argument(
        "single_resolution_search: " + std::to_string(cost) +
        " matchings exceed the limit; this is the blow-up the "
        "multi-resolution schedule avoids");
  }
  const auto per_angle = static_cast<long>(
      std::floor(2.0 * half_range_deg / step_deg)) + 1;

  SingleResolutionResult result;
  result.best_distance = std::numeric_limits<double>::infinity();
  for (long it = 0; it < per_angle; ++it) {
    const double theta = center.theta - half_range_deg + it * step_deg;
    for (long ip = 0; ip < per_angle; ++ip) {
      const double phi = center.phi - half_range_deg + ip * step_deg;
      for (long io = 0; io < per_angle; ++io) {
        const double omega = center.omega - half_range_deg + io * step_deg;
        const double d =
            matcher.distance(view_spectrum, em::Orientation{theta, phi, omega});
        ++result.matchings;
        if (d < result.best_distance) {
          result.best_distance = d;
          result.best = em::Orientation{theta, phi, omega};
        }
      }
    }
  }
  return result;
}

}  // namespace por::baseline
