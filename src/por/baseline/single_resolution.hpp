// por/baseline/single_resolution.hpp
//
// One-step (single-resolution) exhaustive Fourier search — the
// strawman of the paper's §4 worked example: reaching 0.002-degree
// precision over a +-5 degree uncertainty in one pass costs
// (range/step)^3 matchings, versus a handful of w^3 grids for the
// multi-resolution schedule.  Used by bench/ablation_multires to
// reproduce the "5000 vs 35 matchings per angle" comparison and to
// verify both searches land on the same orientation.
#pragma once

#include <cstdint>

#include "por/core/matcher.hpp"
#include "por/core/search_domain.hpp"

namespace por::baseline {

struct SingleResolutionResult {
  em::Orientation best;
  double best_distance = 0.0;
  std::uint64_t matchings = 0;
};

/// Exhaustively search the cube [center - half_range, center +
/// half_range]^3 with spacing `step_deg`.  Throws std::invalid_argument
/// if the grid would exceed `max_matchings` (the whole point of the
/// baseline is that this blows up, so the guard keeps benches honest
/// about when it is infeasible rather than hanging).
[[nodiscard]] SingleResolutionResult single_resolution_search(
    const core::FourierMatcher& matcher,
    const em::Image<em::cdouble>& view_spectrum, const em::Orientation& center,
    double half_range_deg, double step_deg,
    std::uint64_t max_matchings = 50'000'000);

/// The matching count the search WOULD need, without running it.
[[nodiscard]] std::uint64_t single_resolution_cost(double half_range_deg,
                                                   double step_deg);

}  // namespace por::baseline
