// por/serve/service.hpp
//
// RefineService — the multi-tenant refinement server core
// (DESIGN.md §11).  Turns the one-shot batch pipeline into a
// long-running service: clients register density-map models once,
// then submit refinement jobs (a shard of views + initial orientations
// against a named model); the service admits or rejects each job at
// the front door, queues admitted jobs, and executes them on the
// work-stealing Scheduler with many jobs in flight at once.
//
// Admission control is two-layered and O(1) per submit:
//   * per-tenant token buckets (rate + burst) — a noisy tenant is
//     rejected with kQuotaExhausted while the others keep flowing;
//   * a bounded job queue — when the backlog hits queue_capacity the
//     service sheds load with kQueueFull instead of growing an
//     unbounded queue and blowing its latency promise.
//
// Job lifecycle: kQueued -> kRunning -> {kDone, kFailed}; a queued job
// can be cancelled (kCancelled).  Rejected submissions never get a job
// id.  drain() stops admission and waits for the backlog to empty;
// shutdown() drains and joins; the destructor is a shutdown().
//
// Determinism: per-view refinement is deterministic and the Scheduler
// executes every view of a job exactly once, so a job's refined
// orientations are bitwise-identical to a serial single-tenant run of
// the same job, at any worker count and under any tenant mix.
//
// Observability (por::obs, the registry current on the constructing
// thread): serve.jobs.* counters, per-tenant serve.tenant.<name>.*
// counters, queue-depth / running gauges, and the log-bucket
// serve.job_latency_seconds histogram whose p50/p95/p99 land in every
// JSON / Prometheus export.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "por/core/refiner.hpp"
#include "por/serve/scheduler.hpp"
#include "por/serve/token_bucket.hpp"

namespace por::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace por::obs

namespace por::serve {

struct TenantConfig {
  std::string name;
  double rate_per_sec = 0.0;  ///< sustained jobs/s; <= 0 means unlimited
  double burst = 16.0;        ///< instantaneous burst allowance
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

enum class Admission : std::uint8_t {
  kAccepted,
  kQueueFull,       ///< bounded queue at capacity — shed load
  kQuotaExhausted,  ///< tenant token bucket empty
  kUnknownTenant,   ///< tenant not configured (closed tenancy only)
  kUnknownModel,    ///< model name never registered
  kDraining,        ///< service is draining or shut down
  kBadRequest,      ///< empty job or mismatched view/orientation sizes
};

[[nodiscard]] const char* to_string(JobState state);
[[nodiscard]] const char* to_string(Admission admission);

struct ServiceOptions {
  /// Scheduler worker threads (0 → hardware_concurrency).
  std::size_t workers = 0;
  /// Bounded admission queue: jobs admitted but not yet dispatched.
  std::size_t queue_capacity = 64;
  /// Jobs running on the scheduler at once (0 → 2 x workers).  The cap
  /// keeps per-job latency bounded instead of thrashing every job at
  /// once.
  std::size_t max_running = 0;
  /// Configured tenants.  Empty → open tenancy: any tenant name is
  /// admitted with an unlimited quota.
  std::vector<TenantConfig> tenants;
  /// Work-stealing knobs + fault plan; `workers` above wins over
  /// scheduler.workers.
  SchedulerOptions scheduler;
  /// Injectable clock (monotonic nanoseconds) for quota refill and
  /// latency measurement; tests drive it by hand.  Null → steady clock.
  std::function<std::uint64_t()> clock_ns;
};

struct JobRequest {
  std::string tenant;
  std::string model;
  std::vector<em::Image<double>> views;
  std::vector<em::Orientation> initial;
  /// Optional per-view centers (empty → all (0, 0)).
  std::vector<std::pair<double, double>> centers;
};

struct SubmitResult {
  std::uint64_t job = 0;  ///< valid only when accepted
  Admission admission = Admission::kAccepted;
  [[nodiscard]] bool accepted() const {
    return admission == Admission::kAccepted;
  }
};

struct JobStatus {
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string model;
  std::string error;  ///< kFailed only
  /// submit → finish wall time; valid once the job reached a terminal
  /// state.
  double latency_seconds = 0.0;
  /// Refined per-view records, in view order; kDone only.
  std::vector<core::ViewResult> results;
};

class RefineService {
 public:
  explicit RefineService(ServiceOptions options);
  RefineService(const RefineService&) = delete;
  RefineService& operator=(const RefineService&) = delete;
  ~RefineService();  ///< shutdown()

  /// Build and cache the refiner for `name` (padded 3D DFT of `map`,
  /// serial — do it at startup, not on the request path).  Re-register
  /// to replace.  Thread-safe.
  void register_model(const std::string& name, const em::Volume<double>& map,
                      const core::RefinerConfig& config);

  /// Admission-controlled, non-blocking submit.
  SubmitResult submit(JobRequest request);

  /// Snapshot of one job's lifecycle (results included once done).
  [[nodiscard]] JobStatus status(std::uint64_t job) const;

  /// Block until the job reaches a terminal state, then return it.
  JobStatus wait(std::uint64_t job);

  /// Cancel a queued job.  False if unknown or already running/done.
  bool cancel(std::uint64_t job);

  /// Stop admitting and wait until queued == running == 0.
  void drain();

  /// drain() + stop the dispatcher.  Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t workers() const { return scheduler_->workers(); }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

 private:
  struct Tenant {
    TokenBucket bucket;
    obs::Counter* accepted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected_quota = nullptr;
  };

  struct Job {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    std::string tenant;
    std::string model;
    std::string error;
    std::shared_ptr<const core::OrientationRefiner> refiner;
    std::vector<em::Image<double>> views;
    std::vector<em::Orientation> initial;
    std::vector<std::pair<double, double>> centers;
    std::vector<core::ViewResult> results;
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
  };

  void dispatcher_loop();
  void dispatch(const std::shared_ptr<Job>& job);
  void finalize(const std::shared_ptr<Job>& job, Batch& batch);
  Tenant& tenant_entry_locked(const std::string& name);
  [[nodiscard]] JobStatus status_locked(const Job& job) const;
  [[nodiscard]] std::uint64_t now_ns() const { return clock_(); }

  ServiceOptions options_;
  std::function<std::uint64_t()> clock_;
  std::size_t max_running_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_dispatch_;  ///< dispatcher: backlog / slots
  std::condition_variable cv_job_;       ///< waiters: job state changes
  std::map<std::string, Tenant> tenants_;
  bool open_tenancy_ = false;
  std::map<std::string, std::shared_ptr<const core::OrientationRefiner>>
      models_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  bool stopped_ = false;

  std::unique_ptr<JobChannel<std::uint64_t>> queue_;
  std::unique_ptr<Scheduler> scheduler_;

  obs::Counter* submitted_;
  obs::Counter* accepted_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* cancelled_;
  obs::Counter* rejected_queue_;
  obs::Counter* rejected_quota_;
  obs::Counter* rejected_other_;
  obs::Gauge* queue_depth_;
  obs::Gauge* running_gauge_;
  obs::Histogram* latency_;

  std::thread dispatcher_;
};

}  // namespace por::serve
