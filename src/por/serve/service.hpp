// por/serve/service.hpp
//
// RefineService — the multi-tenant refinement server core
// (DESIGN.md §11).  Turns the one-shot batch pipeline into a
// long-running service: clients register density-map models once,
// then submit refinement jobs (a shard of views + initial orientations
// against a named model); the service admits or rejects each job at
// the front door, queues admitted jobs, and executes them on the
// work-stealing Scheduler with many jobs in flight at once.
//
// Admission control is two-layered and O(1) per submit:
//   * per-tenant token buckets (rate + burst) — a noisy tenant is
//     rejected with kQuotaExhausted while the others keep flowing;
//   * a bounded job queue — when the backlog hits queue_capacity the
//     service sheds load with kQueueFull instead of growing an
//     unbounded queue and blowing its latency promise.
//
// Job lifecycle: kQueued -> kRunning -> {kDone, kFailed, kCancelled,
// kTimedOut}.  A queued job cancels immediately; a running job is
// cancelled cooperatively (CancelToken, polled down inside
// sliding_window_search) and lands in exactly one terminal state.
// Per-job deadlines (request.deadline_ns, or the service-wide
// default_deadline_ns) surface as kTimedOut through the same token.
// Rejected submissions never get a job id.  drain() stops admission
// and waits for the backlog to empty; shutdown() drains and joins; the
// destructor is a shutdown().
//
// Crash-only serving (DESIGN.md §15): with ServiceOptions::journal_dir
// set, every submission is appended to a por::journal write-ahead
// journal and fsync'd BEFORE submit() returns — the ack the client
// holds us to — and every lifecycle transition follows it.  Per-view
// progress is checkpointed to <journal_dir>/job-<id>.porc (PR 5 PORC
// format).  After a crash, construct the service on the same
// journal_dir, register the models, then call recover(): incomplete
// jobs are re-admitted (already-checkpointed views restored, the rest
// refined), terminal jobs are rematerialized with their results, and
// duplicate submissions are absorbed by idempotency key.  Per-view
// determinism makes a recovered job's orientations bitwise-identical
// to an uninterrupted run.
//
// Determinism: per-view refinement is deterministic and the Scheduler
// executes every view of a job exactly once, so a job's refined
// orientations are bitwise-identical to a serial single-tenant run of
// the same job, at any worker count and under any tenant mix.
//
// Observability (por::obs, the registry current on the constructing
// thread): serve.jobs.* counters, per-tenant serve.tenant.<name>.*
// counters, queue-depth / running gauges, and the log-bucket
// serve.job_latency_seconds histogram whose p50/p95/p99 land in every
// JSON / Prometheus export.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "por/core/cancel.hpp"
#include "por/core/refiner.hpp"
#include "por/journal/journal.hpp"
#include "por/resilience/checkpoint.hpp"
#include "por/serve/job_record.hpp"
#include "por/serve/scheduler.hpp"
#include "por/serve/token_bucket.hpp"

namespace por::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace por::obs

namespace por::serve {

struct TenantConfig {
  std::string name;
  double rate_per_sec = 0.0;  ///< sustained jobs/s; <= 0 means unlimited
  double burst = 16.0;        ///< instantaneous burst allowance
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kTimedOut,  ///< the per-job deadline fired (structured, not kFailed)
};

enum class Admission : std::uint8_t {
  kAccepted,
  kQueueFull,       ///< bounded queue at capacity — shed load
  kQuotaExhausted,  ///< tenant token bucket empty
  kUnknownTenant,   ///< tenant not configured (closed tenancy only)
  kUnknownModel,    ///< model name never registered
  kDraining,        ///< service is draining or shut down
  kBadRequest,      ///< empty job or mismatched view/orientation sizes
};

[[nodiscard]] const char* to_string(JobState state);
[[nodiscard]] const char* to_string(Admission admission);

struct ServiceOptions {
  /// Scheduler worker threads (0 → hardware_concurrency).
  std::size_t workers = 0;
  /// Bounded admission queue: jobs admitted but not yet dispatched.
  std::size_t queue_capacity = 64;
  /// Jobs running on the scheduler at once (0 → 2 x workers).  The cap
  /// keeps per-job latency bounded instead of thrashing every job at
  /// once.
  std::size_t max_running = 0;
  /// Configured tenants.  Empty → open tenancy: any tenant name is
  /// admitted with an unlimited quota.
  std::vector<TenantConfig> tenants;
  /// Work-stealing knobs + fault plan; `workers` above wins over
  /// scheduler.workers.
  SchedulerOptions scheduler;
  /// Injectable clock (monotonic nanoseconds) for quota refill and
  /// latency measurement; tests drive it by hand.  Null → steady clock.
  std::function<std::uint64_t()> clock_ns;
  /// Write-ahead journal directory (DESIGN.md §15).  Empty → journaling
  /// and recovery disabled (the PR 6 in-memory behaviour).
  std::string journal_dir;
  /// Rotate journal segments at this size.
  std::size_t journal_max_segment_bytes = 4u << 20;
  /// Default per-job deadline as a DURATION in nanoseconds, applied
  /// when a request carries none.  0 → no deadline.
  std::uint64_t default_deadline_ns = 0;
  /// Per-view checkpoint records buffered between atomic rewrites of a
  /// job's PORC file (1 = checkpoint after every view).
  std::size_t checkpoint_flush_every = 8;
};

struct JobRequest {
  std::string tenant;
  std::string model;
  std::vector<em::Image<double>> views;
  std::vector<em::Orientation> initial;
  /// Optional per-view centers (empty → all (0, 0)).
  std::vector<std::pair<double, double>> centers;
  /// Client-supplied dedup key.  A resubmission carrying a key the
  /// service has already journal-acknowledged — including across a
  /// crash/recovery — returns the ORIGINAL job id (deduplicated=true)
  /// instead of admitting a second execution.  Empty → no dedup.
  std::string idempotency_key;
  /// Deadline as a DURATION in nanoseconds from submission (restarted
  /// from re-admission for a recovered job — wall time spent dead is
  /// not charged).  0 → ServiceOptions::default_deadline_ns.
  std::uint64_t deadline_ns = 0;
};

struct SubmitResult {
  std::uint64_t job = 0;  ///< valid only when accepted
  Admission admission = Admission::kAccepted;
  /// True when the idempotency key matched an existing job: `job` is
  /// that original job's id and nothing new was admitted.
  bool deduplicated = false;
  [[nodiscard]] bool accepted() const {
    return admission == Admission::kAccepted;
  }
};

struct JobStatus {
  std::uint64_t job = 0;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string model;
  std::string error;  ///< kFailed only
  /// submit → finish wall time; valid once the job reached a terminal
  /// state.
  double latency_seconds = 0.0;
  /// Refined per-view records, in view order; kDone only.
  std::vector<core::ViewResult> results;
};

class RefineService {
 public:
  explicit RefineService(ServiceOptions options);
  RefineService(const RefineService&) = delete;
  RefineService& operator=(const RefineService&) = delete;
  ~RefineService();  ///< shutdown()

  /// Build and cache the refiner for `name` (padded 3D DFT of `map`,
  /// serial — do it at startup, not on the request path).  Re-register
  /// to replace.  Thread-safe.
  void register_model(const std::string& name, const em::Volume<double>& map,
                      const core::RefinerConfig& config);

  /// Admission-controlled, non-blocking submit.  With journaling on,
  /// the submission record is fsync'd before this returns — an
  /// accepted result is durable against SIGKILL.  Throws
  /// resilience::Error{kTransient} if the journal write itself fails
  /// (the job was NOT admitted; retry).
  SubmitResult submit(JobRequest request);

  /// Crash recovery (journaling only; call once, after register_model):
  /// replays the journal, rematerializes terminal jobs (results from
  /// their checkpoints), re-admits every incomplete job — restored
  /// views are not refined again — and compacts the journal.  A job
  /// whose model is not registered fails with a structured error
  /// rather than blocking recovery.  Returns the number of re-admitted
  /// jobs.
  std::size_t recover();

  /// Snapshot of one job's lifecycle (results included once done).
  [[nodiscard]] JobStatus status(std::uint64_t job) const;

  /// Ids of every job the service knows, ascending — including jobs
  /// rematerialized from the journal by recover(), which is what
  /// recovery tooling enumerates after a restart.
  [[nodiscard]] std::vector<std::uint64_t> job_ids() const;

  /// Block until the job reaches a terminal state, then return it.
  JobStatus wait(std::uint64_t job);

  /// Cancel a job.  A queued job transitions to kCancelled
  /// immediately; a running job has its CancelToken fired and finishes
  /// in exactly one terminal state — kCancelled once a worker observes
  /// the token, or kDone if every view had already completed (the
  /// cancel arrived too late; the returned `true` means "request
  /// delivered", not "job will end cancelled").  False if the job is
  /// unknown or already terminal.
  bool cancel(std::uint64_t job);

  /// Stop admitting and wait until queued == running == 0.
  void drain();

  /// drain() + stop the dispatcher.  Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t workers() const { return scheduler_->workers(); }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

 private:
  struct Tenant {
    TokenBucket bucket;
    obs::Counter* accepted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected_quota = nullptr;
  };

  struct Job {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    std::string tenant;
    std::string model;
    std::string error;
    std::string idempotency_key;
    std::uint64_t deadline_ns = 0;  ///< duration from submit_ns; 0 = none
    std::shared_ptr<const core::OrientationRefiner> refiner;
    std::vector<em::Image<double>> views;
    std::vector<em::Orientation> initial;
    std::vector<std::pair<double, double>> centers;
    std::vector<core::ViewResult> results;
    /// Cooperative cancel/deadline token; created at dispatch, shared
    /// with every batch task of the job.
    std::shared_ptr<core::CancelToken> token;
    /// restored[i] != 0: results[i] came from the recovery checkpoint
    /// and must not be refined (or checkpointed) again.
    std::vector<char> restored;
    /// Per-view PORC checkpoint log (journaling only).  checkpoint_mutex
    /// serializes worker-thread appends; never taken with mutex_ held.
    std::unique_ptr<resilience::CheckpointWriter> checkpoint;
    std::mutex checkpoint_mutex;
    std::size_t views_done = 0;  ///< guarded by checkpoint_mutex
    std::uint64_t submit_ns = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
  };

  /// One journal-replayed job, parked until recover() can look the
  /// model up.
  struct RecoveredJob {
    SubmittedJob request;
    JobState state = JobState::kQueued;  ///< kQueued = incomplete
    std::string error;
  };

  void dispatcher_loop();
  void dispatch(const std::shared_ptr<Job>& job);
  void finalize(const std::shared_ptr<Job>& job, Batch& batch);
  Tenant& tenant_entry_locked(const std::string& name);
  [[nodiscard]] JobStatus status_locked(const Job& job) const;
  [[nodiscard]] std::uint64_t now_ns() const { return clock_(); }
  void journal_append_locked(JobRecordType type, const std::string& payload,
                             bool durable);
  [[nodiscard]] std::string checkpoint_path(std::uint64_t job) const;
  void replay_journal_locked();

  ServiceOptions options_;
  std::function<std::uint64_t()> clock_;
  std::size_t max_running_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_dispatch_;  ///< dispatcher: backlog / slots
  std::condition_variable cv_job_;       ///< waiters: job state changes
  std::map<std::string, Tenant> tenants_;
  bool open_tenancy_ = false;
  std::map<std::string, std::shared_ptr<const core::OrientationRefiner>>
      models_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  bool stopped_ = false;

  std::unique_ptr<JobChannel<std::uint64_t>> queue_;
  std::unique_ptr<Scheduler> scheduler_;

  /// Write-ahead journal (null when options_.journal_dir is empty) and
  /// the replayed-but-not-yet-materialized jobs recover() consumes.
  std::unique_ptr<journal::Journal> journal_;
  std::map<std::uint64_t, RecoveredJob> recovery_plan_;
  bool recovered_ = false;
  /// idempotency key -> job id, spanning live AND terminal jobs (a key
  /// resubmitted after completion still dedups).
  std::map<std::string, std::uint64_t> idempotency_;

  obs::Counter* submitted_;
  obs::Counter* accepted_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* cancelled_;
  obs::Counter* timed_out_;
  obs::Counter* deduplicated_;
  obs::Counter* replayed_jobs_;
  obs::Counter* rejected_queue_;
  obs::Counter* rejected_quota_;
  obs::Counter* rejected_other_;
  obs::Gauge* queue_depth_;
  obs::Gauge* running_gauge_;
  obs::Histogram* latency_;

  std::thread dispatcher_;
};

}  // namespace por::serve
