// por/serve/scheduler.hpp
//
// Lock-free work-stealing scheduler (DESIGN.md §11).  Replaces the
// static view partition of the batch drivers: instead of carving a
// batch of view-match tasks into fixed per-worker blocks up front,
// every worker owns a bounded Chase-Lev deque and steals from victims
// when its own runs dry, so an unlucky worker (slow views, noisy
// machine, a neighbour that died) never strands the rest of the batch.
//
// Topology — the classic injector + per-worker-deque arrangement:
//
//   submit() ──► JobChannel (MPMC injector) ──► worker pops a chunk
//                                               │  lazy binary split:
//                                               │  keep the front task,
//                                               ▼  publish the rest
//                                      own StealDeque ◄── thieves steal
//
// Threads come from util::ThreadPool via its injectable TaskSource —
// the scheduler owns no threads, it owns the work-distribution policy.
// Idle workers block in the pool (no spinning); every publication of
// new work bumps the pool's source epoch so sleepers wake.
//
// Determinism invariant: a batch is `body(i)` for i in [0, n).  Each
// index is executed exactly once, on exactly one worker, no matter the
// worker count or the steal interleaving — each index lives in exactly
// one chunk at any moment, a chunk is consumed by exactly one pop or
// one successful steal, and first-result-wins is enforced (and
// contract-checked) by a per-task done flag.  A body that writes
// result[i] from task i therefore produces output bitwise-identical
// to the serial loop.
//
// Fault model (por::resilience, reusing the PR 5 vmpi::FaultPlan at
// thread scope): KillRule{rank = worker ordinal, at_step = per-worker
// task-attempt ordinal}.  A killed worker stops participating — but
// first its in-flight chunk is requeued through the injector and its
// deque remains stealable, so the batch completes on the survivors
// instead of failing.  Only when *every* worker is dead are the active
// batches failed (resilience::ErrorKind::kFatal territory: there is
// nobody left to run anything).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "por/serve/job_channel.hpp"
#include "por/serve/steal_deque.hpp"
#include "por/util/thread_pool.hpp"
#include "por/vmpi/fault.hpp"

namespace por::obs {
class Counter;
class Gauge;
}  // namespace por::obs

namespace por::serve {

struct SchedulerOptions {
  /// Worker threads (0 → hardware_concurrency).
  std::size_t workers = 0;
  /// Per-worker deque capacity (rounded up to a power of two); a full
  /// deque overflows into the injector channel.
  std::size_t deque_capacity = 256;
  /// Injector channel capacity (rounded up to a power of two).
  std::size_t channel_capacity = 8192;
  /// Deterministic worker-death injection: KillRule::rank names a
  /// worker ordinal, KillRule::at_step its 0-based task-attempt
  /// ordinal.  The drop/delay/corrupt message rules do not apply here.
  vmpi::FaultPlan fault_plan;
};

class Scheduler;

/// One submitted batch of index tasks.  Handles are shared_ptr: the
/// scheduler keeps its own reference until the batch completes, so
/// dropping the handle never cancels or leaks work.
class Batch {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool done() const;
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  /// Block until every task has been accounted for; rethrows the first
  /// task exception (or the all-workers-dead error) if the batch failed.
  void wait();

 private:
  friend class Scheduler;
  Batch(std::size_t n, std::function<void(std::size_t)> body,
        std::function<void(Batch&)> on_complete);
  void fail(std::exception_ptr error);

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  const std::size_t size_;
  std::function<void(std::size_t)> body_;
  std::function<void(Batch&)> on_complete_;
  std::uint32_t slot_ = kNoSlot;  ///< kNoSlot until registered
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> failed_{false};
  // First-result-wins guard: exchange(1) must return 0 exactly once
  // per index (POR_EXPECT in run_task).
  std::unique_ptr<std::atomic<std::uint8_t>[]> done_flags_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool complete_ = false;
  std::exception_ptr error_;
};

class Scheduler final : public util::TaskSource {
 public:
  explicit Scheduler(const SchedulerOptions& options = {});
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  /// Waits for every active batch to finish (or fail), then joins the
  /// pool.  Do not destroy a scheduler from inside one of its tasks.
  ~Scheduler() override;

  /// Asynchronous batch: body(i) for i in [0, n), any worker, exactly
  /// once each.  `on_complete` (optional) runs on the worker that
  /// retires the last task, before wait() unblocks.  Thread-safe; may
  /// be called from task bodies and completion callbacks.
  std::shared_ptr<Batch> submit(std::size_t n,
                                std::function<void(std::size_t)> body,
                                std::function<void(Batch&)> on_complete = {});

  /// submit + wait: the work-stealing drop-in for a serial for-loop.
  /// Rethrows the first task exception.
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

  /// util::TaskSource hook — called by pool workers, not by users.
  bool run_one(std::size_t worker) override;

  [[nodiscard]] std::size_t workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t alive_workers() const {
    return alive_.load(std::memory_order_acquire);
  }
  /// Successful steals across all workers so far.
  [[nodiscard]] std::uint64_t steals() const;
  /// Tasks requeued from killed workers' in-flight chunks.
  [[nodiscard]] std::uint64_t requeued_tasks() const;

 private:
  struct Worker {
    explicit Worker(std::size_t deque_capacity) : deque(deque_capacity) {}
    StealDeque<std::uint64_t> deque;
    std::atomic<bool> dead{false};
    std::uint64_t attempts = 0;  ///< owner-thread only (fault-plan step)
  };

  bool next_chunk(std::size_t worker, std::uint64_t& out);
  void execute_chunk(std::size_t worker, std::uint64_t packed);
  void run_task(Batch& batch, std::uint32_t index);
  void finish_tasks(Batch& batch, std::size_t count);
  void complete_batch(Batch& batch);
  void kill_worker(std::size_t worker, std::uint64_t remaining_chunk);
  void fail_all_active(const std::string& why);
  void release_slot(std::uint32_t slot);
  [[nodiscard]] std::shared_ptr<Batch> batch_at(std::uint32_t slot);
  void inject(std::uint64_t chunk);

  SchedulerOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  JobChannel<std::uint64_t> injector_;
  std::atomic<std::size_t> alive_;

  std::mutex slots_mutex_;
  std::condition_variable drained_cv_;  ///< waits on active_ == 0
  std::vector<std::shared_ptr<Batch>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t active_ = 0;

  obs::Counter* tasks_counter_;
  obs::Counter* batches_counter_;
  obs::Counter* steals_counter_;
  obs::Counter* overflow_counter_;
  obs::Counter* deaths_counter_;
  obs::Counter* requeued_counter_;
  obs::Gauge* alive_gauge_;

  // Last member: worker threads must observe a fully-built scheduler.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace por::serve
