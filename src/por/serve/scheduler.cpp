#include "por/serve/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "por/obs/registry.hpp"
#include "por/util/contracts.hpp"

namespace por::serve {

namespace {

// Chunk encoding: 16-bit batch slot | 24-bit lo | 24-bit hi (exclusive).
// 24 bits bound a batch at ~16.7M tasks — two thousand paper-scale
// view stacks — and keep a chunk a single trivially-copyable word the
// deque and channel cells can carry lock-free.
constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << 24) - 1;
constexpr std::uint32_t kMaxSlots = 1u << 16;

constexpr std::uint64_t pack(std::uint32_t slot, std::uint32_t lo,
                             std::uint32_t hi) {
  return (std::uint64_t{slot} << 48) | (std::uint64_t{lo} << 24) |
         std::uint64_t{hi};
}

struct Unpacked {
  std::uint32_t slot;
  std::uint32_t lo;
  std::uint32_t hi;
};

constexpr Unpacked unpack(std::uint64_t chunk) {
  return Unpacked{static_cast<std::uint32_t>(chunk >> 48),
                  static_cast<std::uint32_t>((chunk >> 24) & kIndexMask),
                  static_cast<std::uint32_t>(chunk & kIndexMask)};
}

}  // namespace

// ---- Batch -----------------------------------------------------------------

Batch::Batch(std::size_t n, std::function<void(std::size_t)> body,
             std::function<void(Batch&)> on_complete)
    : size_(n),
      body_(std::move(body)),
      on_complete_(std::move(on_complete)),
      remaining_(n),
      done_flags_(std::make_unique<std::atomic<std::uint8_t>[]>(
          std::max<std::size_t>(n, 1))) {
  for (std::size_t i = 0; i < size_; ++i) {
    // por-atomic: init — flags zeroed before the batch is published
    done_flags_[i].store(0, std::memory_order_relaxed);
  }
}

bool Batch::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return complete_;
}

void Batch::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return complete_; });
  if (error_) std::rethrow_exception(error_);
}

void Batch::fail(std::exception_ptr error) {
  bool expected = false;
  if (failed_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    error_ = std::move(error);
  }
}

// ---- Scheduler -------------------------------------------------------------

Scheduler::Scheduler(const SchedulerOptions& options)
    : options_(options),
      injector_(options.channel_capacity),
      alive_(0) {
  std::size_t n = options.workers;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(options.deque_capacity));
  }
  alive_.store(n, std::memory_order_release);

  obs::MetricsRegistry& registry = obs::current_registry();
  tasks_counter_ = &registry.counter("serve.sched.tasks");
  batches_counter_ = &registry.counter("serve.sched.batches");
  steals_counter_ = &registry.counter("serve.sched.steals");
  overflow_counter_ = &registry.counter("serve.sched.overflow");
  deaths_counter_ = &registry.counter("serve.sched.worker_deaths");
  requeued_counter_ = &registry.counter("serve.sched.requeued_tasks");
  alive_gauge_ = &registry.gauge("serve.sched.alive_workers");
  alive_gauge_->set(static_cast<double>(n));

  pool_ = std::make_unique<util::ThreadPool>(n);
  pool_->set_task_source(this);
}

Scheduler::~Scheduler() {
  {
    // Abandoned batches still complete (the slot table holds them);
    // wait for the last one so no task outlives the pool.
    std::unique_lock<std::mutex> lock(slots_mutex_);
    drained_cv_.wait(lock, [this] { return active_ == 0; });
  }
  pool_->set_task_source(nullptr);
  pool_.reset();  // joins the workers
}

std::shared_ptr<Batch> Scheduler::submit(
    std::size_t n, std::function<void(std::size_t)> body,
    std::function<void(Batch&)> on_complete) {
  POR_EXPECT(n <= kIndexMask, "batch too large for the chunk encoding:", n);
  auto batch = std::shared_ptr<Batch>(
      new Batch(n, std::move(body), std::move(on_complete)));
  batches_counter_->add();

  if (n == 0) {
    complete_batch(*batch);
    return batch;
  }
  if (alive_.load(std::memory_order_acquire) == 0) {
    batch->fail(std::make_exception_ptr(std::runtime_error(
        "serve::Scheduler: every worker is dead; batch rejected")));
    complete_batch(*batch);
    return batch;
  }

  std::uint32_t slot = 0;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      POR_EXPECT(slots_.size() < kMaxSlots,
                 "too many concurrent batches:", slots_.size());
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_[slot] = batch;
    ++active_;
  }
  batch->slot_ = slot;

  inject(pack(slot, 0, static_cast<std::uint32_t>(n)));
  pool_->notify_source();
  return batch;
}

void Scheduler::run(std::size_t n,
                    const std::function<void(std::size_t)>& body) {
  // The callback lives only for this call, so pass a non-owning ref.
  submit(n, [&body](std::size_t i) { body(i); })->wait();
}

bool Scheduler::run_one(std::size_t worker) {
  POR_EXPECT(worker < workers_.size(), "worker ordinal out of range:", worker);
  if (workers_[worker]->dead.load(std::memory_order_acquire)) return false;
  std::uint64_t chunk = 0;
  if (!next_chunk(worker, chunk)) return false;
  execute_chunk(worker, chunk);
  return true;
}

bool Scheduler::next_chunk(std::size_t worker, std::uint64_t& out) {
  Worker& me = *workers_[worker];
  // 1. Own deque (LIFO: freshest split, hottest cache lines).
  if (me.deque.pop(out)) return true;
  // 2. The injector: new batches and overflow/requeue traffic.
  if (injector_.try_pop(out)) return true;
  // 3. Steal, scanning victims round-robin from our right neighbour.
  //    Dead workers stay in the rotation on purpose: their deques may
  //    still hold work nobody requeued (death leaves the deque intact).
  const std::size_t n = workers_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (workers_[(worker + i) % n]->deque.steal(out)) {
      steals_counter_->add();
      return true;
    }
  }
  return false;
}

void Scheduler::execute_chunk(std::size_t worker, std::uint64_t packed) {
  const Unpacked c = unpack(packed);
  const std::shared_ptr<Batch> batch = batch_at(c.slot);
  // Live schedulers never free a slot while chunks reference it (a
  // batch completes only after all n tasks are accounted for); stale
  // chunks exist only after fail_all_active, which implies no live
  // worker can be here.
  POR_EXPECT(batch != nullptr, "chunk references a freed batch slot");
  POR_EXPECT(c.lo < c.hi && c.hi <= batch->size_, "malformed chunk range");

  Worker& me = *workers_[worker];
  std::uint32_t lo = c.lo;
  std::uint32_t hi = c.hi;

  // Lazy binary splitting: keep the front task, publish the upper half
  // for thieves, repeat.  If both the deque and the injector are full,
  // stop splitting and run the remainder inline — progress is never
  // blocked on queue space.
  bool published = false;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint64_t upper = pack(c.slot, mid, hi);
    if (me.deque.push(upper)) {
      published = true;
      hi = mid;
      continue;
    }
    if (injector_.try_push(upper)) {
      overflow_counter_->add();
      published = true;
      hi = mid;
      continue;
    }
    break;
  }
  if (published) pool_->notify_source();

  for (std::uint32_t i = lo; i < hi; ++i) {
    // Fault hook (PR 5 plan at thread scope): this worker's task-
    // attempt ordinal plays the role of Comm::fault_point's step.
    const std::uint64_t step = me.attempts++;
    if (options_.fault_plan.kills_at(static_cast<int>(worker), step)) {
      kill_worker(worker, pack(c.slot, i, hi));
      return;
    }
    run_task(*batch, i);
  }
}

void Scheduler::run_task(Batch& batch, std::uint32_t index) {
  // CONTRACT: first-result-wins — every index retires exactly once.
  // A double execution would mean a chunk was duplicated somewhere in
  // the deque/channel protocol and the determinism guarantee is gone.
  // por-atomic: published-by-release — exactly-once token; the job payload
  // hand-off is ordered by the deque/channel protocol, not this flag
  const std::uint8_t prev =
      batch.done_flags_[index].exchange(1, std::memory_order_relaxed);
  POR_EXPECT(prev == 0, "task executed twice:", index);
  if (!batch.failed_.load(std::memory_order_acquire)) {
    try {
      batch.body_(index);
    } catch (...) {
      batch.fail(std::current_exception());
    }
  }
  tasks_counter_->add();
  finish_tasks(batch, 1);
}

void Scheduler::finish_tasks(Batch& batch, std::size_t count) {
  const std::size_t before =
      batch.remaining_.fetch_sub(count, std::memory_order_acq_rel);
  POR_EXPECT(before >= count, "batch accounting underflow");
  if (before == count) complete_batch(batch);
}

void Scheduler::complete_batch(Batch& batch) {
  {
    std::lock_guard<std::mutex> lock(batch.mutex_);
    batch.complete_ = true;
  }
  batch.cv_.notify_all();
  if (batch.on_complete_) batch.on_complete_(batch);
  if (batch.slot_ != Batch::kNoSlot) release_slot(batch.slot_);
}

void Scheduler::kill_worker(std::size_t worker,
                            std::uint64_t remaining_chunk) {
  Worker& me = *workers_[worker];
  me.dead.store(true, std::memory_order_release);
  deaths_counter_->add();
  const std::size_t alive =
      alive_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  alive_gauge_->set(static_cast<double>(alive));

  if (alive == 0) {
    // Nobody left to requeue onto: the resilience taxonomy calls this
    // fatal, so every active batch fails instead of hanging waiters.
    fail_all_active("serve::Scheduler: every worker died mid-batch");
    return;
  }

  // The death is transient from the batch's point of view: the work is
  // fine, only the worker is gone.  Requeue the in-flight chunk for
  // the survivors; whatever else sits in our deque stays stealable.
  const Unpacked c = unpack(remaining_chunk);
  requeued_counter_->add(c.hi - c.lo);
  if (!injector_.try_push(remaining_chunk) &&
      !me.deque.push(remaining_chunk)) {
    // Both full — survivors are drowning in work; wait them out (exit
    // if the last survivor dies and fails everything).
    while (alive_.load(std::memory_order_acquire) > 0 &&
           !injector_.try_push(remaining_chunk)) {
      std::this_thread::yield();
    }
  }
  pool_->notify_source();
}

void Scheduler::fail_all_active(const std::string& why) {
  std::vector<std::shared_ptr<Batch>> active;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& batch : slots_) {
      if (batch) active.push_back(batch);
    }
  }
  for (const auto& batch : active) {
    batch->fail(std::make_exception_ptr(std::runtime_error(why)));
    // No worker is alive, so nobody races this accounting: retire all
    // outstanding tasks at once and complete the batch.
    const std::size_t outstanding =
        batch->remaining_.exchange(0, std::memory_order_acq_rel);
    if (outstanding > 0) complete_batch(*batch);
  }
}

void Scheduler::release_slot(std::uint32_t slot) {
  std::shared_ptr<Batch> retired;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    // fail_all_active may have released this slot concurrently with a
    // straggling completion; releasing twice would corrupt the free
    // list, so only the holder of the live reference retires it.
    if (slot >= slots_.size() || !slots_[slot]) return;
    retired = std::move(slots_[slot]);
    slots_[slot].reset();
    free_slots_.push_back(slot);
    --active_;
  }
  drained_cv_.notify_all();
}

std::shared_ptr<Batch> Scheduler::batch_at(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(slots_mutex_);
  return slot < slots_.size() ? slots_[slot] : nullptr;
}

void Scheduler::inject(std::uint64_t chunk) {
  // Blocking injector push, used by submit() only (workers never call
  // this): the channel drains as workers run, so the spin is bounded
  // by the batch backlog; exit early if every worker died.
  while (!injector_.try_push(chunk)) {
    if (alive_.load(std::memory_order_acquire) == 0) return;
    pool_->notify_source();
    std::this_thread::yield();
  }
}

std::uint64_t Scheduler::steals() const { return steals_counter_->value(); }

std::uint64_t Scheduler::requeued_tasks() const {
  return requeued_counter_->value();
}

}  // namespace por::serve
