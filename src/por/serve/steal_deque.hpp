// por/serve/steal_deque.hpp
//
// Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005) in the
// bounded, fence-free formulation: one owner thread pushes and pops at
// the bottom, any number of thief threads steal from the top.  Every
// shared cell is a std::atomic, so the implementation is TSan-clean by
// construction — there is no non-atomic access a fence would have to
// order, and no standalone memory fences (TSan does not model them).
//
// Memory-order argument (DESIGN.md §11):
//
//  * push():  the buffer-cell store is relaxed and published by the
//    release store of bottom_; a thief that observes the new bottom via
//    its seq_cst load also observes the cell contents.
//  * pop():   the owner reserves the bottom slot with a seq_cst store
//    of bottom_ before its seq_cst load of top_.  Together with the
//    thief's seq_cst {load top_, load bottom_, CAS top_} this is the
//    classic SC race resolution: when owner and thief contend for the
//    last element exactly one of them wins the CAS on top_.
//  * steal(): loads top_ then bottom_ (both seq_cst); if the interval
//    is non-empty it reads the cell (relaxed — published by push's
//    release) and claims it by CAS on top_.  A failed CAS means
//    another thief or the owner took the element; the caller treats it
//    as "try elsewhere", not as corruption.
//
// The capacity is fixed at construction (rounded up to a power of
// two): push() reports failure instead of growing, and the caller
// (por::serve::Scheduler) overflows into the MPMC JobChannel.  Fixed
// capacity sidesteps the buffer-reclamation problem that makes the
// growable Chase-Lev deque hard to get right, at zero cost for our
// workload where the per-worker backlog is bounded by the batch size.
//
// POR_MC hook: the second template parameter selects the atomic cell
// type.  Production code uses the default (std::atomic — zero
// overhead, the instantiation is byte-identical to the unparameterized
// class); the por::mc model checker instantiates the SAME template
// with mc::atomic and exhaustively explores every interleaving and
// weak-memory behavior these declared orders permit (DESIGN.md §13,
// tests/test_mc.cpp).  The memory-order argument above is therefore
// machine-checked, not just prose.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>

#include "por/util/contracts.hpp"

namespace por::serve {

/// Round up to the next power of two (minimum 2).
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

template <typename T, template <class> class AtomicT = std::atomic>
class StealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "StealDeque cells are raw atomics; T must be trivially "
                "copyable (use an index or a pointer)");

 public:
  explicit StealDeque(std::size_t capacity)
      : capacity_(next_pow2(capacity)),
        mask_(capacity_ - 1),
        buffer_(std::make_unique<AtomicT<T>[]>(capacity_)) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Owner only.  False when the deque is full (caller overflows into
  /// the shared channel).
  bool push(T value) {
    // por-atomic: owner-exclusive — only the owner writes bottom_
    const std::size_t b = bottom_.load(std::memory_order_relaxed);
    const std::size_t t = top_.load(std::memory_order_acquire);
    if (b - t >= capacity_) return false;
    // por-atomic: published-by-release — ordered by the bottom_ store below
    buffer_[b & mask_].store(value, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only.  LIFO end — the owner works on what it pushed last,
  /// which keeps its working set hot while thieves drain the cold top.
  bool pop(T& out) {
    // por-atomic: owner-exclusive — only the owner writes bottom_
    const std::size_t b = bottom_.load(std::memory_order_relaxed);
    // por-atomic: pre-claim — re-read with seq_cst after the reservation
    const std::size_t t0 = top_.load(std::memory_order_relaxed);
    if (t0 >= b) return false;  // empty, no reservation needed
    // Reserve the bottom slot, then re-read top: the seq_cst ordering
    // of this store against the thieves' top/bottom loads decides who
    // owns the contested last element.
    bottom_.store(b - 1, std::memory_order_seq_cst);
    std::size_t t = top_.load(std::memory_order_seq_cst);
    if (t < b - 1) {
      // More than one element left: the slot is ours uncontested.
      // por-atomic: published-by-release — owner reads its own push's cell
      out = buffer_[(b - 1) & mask_].load(std::memory_order_relaxed);
      return true;
    }
    bool won = false;
    if (t == b - 1) {
      // Exactly one element: race the thieves for it via top_.
      // por-atomic: published-by-release — owner reads its own push's cell
      out = buffer_[(b - 1) & mask_].load(std::memory_order_relaxed);
      // por-atomic: cas-failure — a lost race only means a thief won
      won = top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed);
    }
    bottom_.store(b, std::memory_order_seq_cst);  // restore: deque now empty
    return won;
  }

  /// Any thread.  FIFO end.  False means empty *or* lost a race —
  /// callers must treat it as "nothing here right now".
  bool steal(T& out) {
    std::size_t t = top_.load(std::memory_order_seq_cst);
    const std::size_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    // por-atomic: published-by-release — push's bottom_ store publishes it
    out = buffer_[t & mask_].load(std::memory_order_relaxed);
    // por-atomic: cas-failure — a lost race means "try elsewhere"
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t size_approx() const {
    // por-atomic: monitor — approximate by contract
    const std::size_t b = bottom_.load(std::memory_order_relaxed);
    // por-atomic: monitor — approximate by contract
    const std::size_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  // top_/bottom_ are monotonically increasing indices; the buffer is a
  // power-of-two ring.  Unsigned wraparound is harmless: b - t is the
  // element count as long as fewer than SIZE_MAX pushes happen, and a
  // deque processes nowhere near that.
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<AtomicT<T>[]> buffer_;
  alignas(64) AtomicT<std::size_t> top_{0};
  alignas(64) AtomicT<std::size_t> bottom_{0};
};

}  // namespace por::serve
