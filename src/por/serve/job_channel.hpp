// por/serve/job_channel.hpp
//
// Bounded MPMC channel (Vyukov's array-based queue): any number of
// producers and consumers, lock-free in the practical sense (every
// operation completes in a bounded number of steps unless the queue is
// genuinely full/empty), TSan-clean acquire/release ordering.
//
// Each cell carries a sequence number.  A producer may write a cell's
// value only after observing seq == position (the cell is free for
// this lap); it publishes the value with a release store of
// seq = position + 1, which is exactly what a consumer acquires before
// reading the value.  The value field itself therefore needs no
// atomicity: the seq edge orders every access — this is the standard
// Vyukov protocol and the reason the channel can carry non-trivial T.
//
// The Scheduler uses the channel twice: as the global injector queue
// (external submitters cannot push into a Chase-Lev deque — only the
// owner may — so batches enter here and workers pull them out) and as
// the overflow target when a worker's bounded deque fills up.
//
// POR_MC hook: like StealDeque, the second template parameter selects
// the atomic cell type — std::atomic by default (production,
// byte-identical codegen), por::mc::atomic under the model checker,
// which explores every schedule and weak behavior of this exact source
// (DESIGN.md §13, tests/test_mc.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "por/serve/steal_deque.hpp"  // next_pow2
#include "por/util/contracts.hpp"

namespace por::serve {

template <typename T, template <class> class AtomicT = std::atomic>
class JobChannel {
 public:
  explicit JobChannel(std::size_t capacity)
      : capacity_(next_pow2(capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      // por-atomic: init — pre-publication, the channel is not shared yet
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  JobChannel(const JobChannel&) = delete;
  JobChannel& operator=(const JobChannel&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// False when the channel is full (bounded admission: the caller
  /// rejects or retries, nothing blocks).
  bool try_push(T value) {
    Cell* cell = nullptr;
    // por-atomic: pre-claim — validated against the cell seq before use
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos);
      if (dif == 0) {
        // Cell free for this lap: claim the position.
        // por-atomic: published-by-release — the cell seq edge orders the value
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // a full lap behind: the queue is full
      } else {
        // por-atomic: pre-claim — validated against the cell seq before use
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the channel is empty.
  bool try_pop(T& out) {
    Cell* cell = nullptr;
    // por-atomic: pre-claim — validated against the cell seq before use
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        // por-atomic: published-by-release — the cell seq edge orders the value
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // nothing published at this position yet
      } else {
        // por-atomic: pre-claim — validated against the cell seq before use
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (monitoring / back-pressure hints only).
  [[nodiscard]] std::size_t size_approx() const {
    // por-atomic: monitor — approximate by contract
    const std::size_t h = head_.load(std::memory_order_relaxed);
    // por-atomic: monitor — approximate by contract
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    return h > t ? h - t : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Cell {
    AtomicT<std::size_t> seq{0};
    T value{};
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) AtomicT<std::size_t> head_{0};  ///< next producer position
  alignas(64) AtomicT<std::size_t> tail_{0};  ///< next consumer position
};

}  // namespace por::serve
