#include "por/serve/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/util/contracts.hpp"

namespace por::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kQueueFull:
      return "queue_full";
    case Admission::kQuotaExhausted:
      return "quota_exhausted";
    case Admission::kUnknownTenant:
      return "unknown_tenant";
    case Admission::kUnknownModel:
      return "unknown_model";
    case Admission::kDraining:
      return "draining";
    case Admission::kBadRequest:
      return "bad_request";
  }
  return "?";
}

RefineService::RefineService(ServiceOptions options)
    : options_(std::move(options)) {
  clock_ = options_.clock_ns ? options_.clock_ns
                             : [] { return obs::now_ns(); };

  obs::MetricsRegistry& registry = obs::current_registry();
  submitted_ = &registry.counter("serve.jobs.submitted");
  accepted_ = &registry.counter("serve.jobs.accepted");
  completed_ = &registry.counter("serve.jobs.completed");
  failed_ = &registry.counter("serve.jobs.failed");
  cancelled_ = &registry.counter("serve.jobs.cancelled");
  rejected_queue_ = &registry.counter("serve.jobs.rejected.queue_full");
  rejected_quota_ = &registry.counter("serve.jobs.rejected.quota");
  rejected_other_ = &registry.counter("serve.jobs.rejected.other");
  queue_depth_ = &registry.gauge("serve.queue_depth");
  running_gauge_ = &registry.gauge("serve.jobs_running");
  // Log buckets 100 us .. ~1000 s, 5 per decade: tight enough for a
  // meaningful p99 on sub-millisecond jobs, wide enough for full-size
  // refinements.
  latency_ = &registry.log_histogram("serve.job_latency_seconds", 1e-4, 1e3, 5);

  POR_EXPECT(options_.queue_capacity > 0, "serve: queue_capacity must be > 0");
  queue_ = std::make_unique<JobChannel<std::uint64_t>>(options_.queue_capacity);

  open_tenancy_ = options_.tenants.empty();
  for (const TenantConfig& tenant : options_.tenants) {
    tenant_entry_locked(tenant.name);  // pre-register configured tenants
  }

  SchedulerOptions sched = options_.scheduler;
  if (options_.workers != 0) sched.workers = options_.workers;
  scheduler_ = std::make_unique<Scheduler>(sched);

  max_running_ = options_.max_running != 0 ? options_.max_running
                                           : 2 * scheduler_->workers();

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

RefineService::~RefineService() { shutdown(); }

RefineService::Tenant& RefineService::tenant_entry_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TokenBucket bucket(0.0, 0.0);  // unlimited (open tenancy)
    for (const TenantConfig& config : options_.tenants) {
      if (config.name == name) {
        bucket = TokenBucket(config.rate_per_sec, config.burst);
        break;
      }
    }
    obs::MetricsRegistry& registry = obs::current_registry();
    Tenant entry{std::move(bucket),
                 &registry.counter("serve.tenant." + name + ".accepted"),
                 &registry.counter("serve.tenant." + name + ".completed"),
                 &registry.counter("serve.tenant." + name + ".rejected_quota")};
    it = tenants_.emplace(name, std::move(entry)).first;
  }
  return it->second;
}

void RefineService::register_model(const std::string& name,
                                   const em::Volume<double>& map,
                                   const core::RefinerConfig& config) {
  // Build outside the lock: the padded 3D DFT is the expensive part and
  // must not stall the admission path.
  auto refiner = std::make_shared<const core::OrientationRefiner>(map, config);
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(refiner);
}

SubmitResult RefineService::submit(JobRequest request) {
  submitted_->add();
  const auto reject = [this](Admission why) {
    (why == Admission::kQueueFull
         ? rejected_queue_
         : why == Admission::kQuotaExhausted ? rejected_quota_
                                             : rejected_other_)
        ->add();
    return SubmitResult{0, why};
  };

  if (request.views.empty() ||
      request.views.size() != request.initial.size() ||
      (!request.centers.empty() &&
       request.centers.size() != request.views.size())) {
    return reject(Admission::kBadRequest);
  }

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stop_) return reject(Admission::kDraining);

    auto model = models_.find(request.model);
    if (model == models_.end()) return reject(Admission::kUnknownModel);

    if (!open_tenancy_ && tenants_.find(request.tenant) == tenants_.end()) {
      return reject(Admission::kUnknownTenant);
    }
    Tenant& tenant = tenant_entry_locked(request.tenant);

    // Bounded backlog before the bucket: a queue-full shed is a
    // service-wide condition, so it must not also debit the tenant's
    // tokens (a client retrying through a full queue would otherwise
    // get double-punished with kQuotaExhausted once the queue opens).
    // `queued_` is the exact admitted-not-dispatched count (the channel
    // itself rounds capacity up to a power of two).
    if (queued_ >= options_.queue_capacity) {
      return reject(Admission::kQueueFull);
    }
    if (!tenant.bucket.try_acquire(now_ns())) {
      tenant.rejected_quota->add();
      return reject(Admission::kQuotaExhausted);
    }

    job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->state = JobState::kQueued;
    job->tenant = request.tenant;
    job->model = request.model;
    job->refiner = model->second;
    job->views = std::move(request.views);
    job->initial = std::move(request.initial);
    job->centers = std::move(request.centers);
    job->results.resize(job->views.size());
    job->submit_ns = now_ns();
    jobs_[job->id] = job;

    const bool pushed = queue_->try_push(job->id);
    POR_ENSURE(pushed, "serve: admission accounting allowed an overfull queue",
               "queued =", queued_, "capacity =", options_.queue_capacity);
    ++queued_;
    queue_depth_->set(static_cast<double>(queued_));
    tenant.accepted->add();
  }
  accepted_->add();
  cv_dispatch_.notify_one();
  return SubmitResult{job->id, Admission::kAccepted};
}

void RefineService::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_dispatch_.wait(lock, [this] {
      return stop_ || (queued_ > 0 && running_ < max_running_);
    });
    if (stop_) return;

    std::uint64_t id = 0;
    const bool popped = queue_->try_pop(id);
    POR_ENSURE(popped, "serve: queued_ says backlog but channel is empty",
               "queued =", queued_);
    --queued_;
    queue_depth_->set(static_cast<double>(queued_));

    auto it = jobs_.find(id);
    POR_EXPECT(it != jobs_.end(), "serve: queued job id unknown", "id =", id);
    std::shared_ptr<Job> job = it->second;
    if (job->state == JobState::kCancelled) {
      // No finalize will run for this job; wake drain() waiters in case
      // this pop emptied the backlog.
      cv_job_.notify_all();
      continue;
    }

    job->state = JobState::kRunning;
    job->start_ns = now_ns();
    ++running_;
    running_gauge_->set(static_cast<double>(running_));

    lock.unlock();
    dispatch(job);
    lock.lock();
  }
}

void RefineService::dispatch(const std::shared_ptr<Job>& job) {
  const std::size_t n = job->views.size();
  Job* raw = job.get();  // the batch body/callback keep `job` alive
  scheduler_->submit(
      n,
      [raw](std::size_t i) {
        const auto center = raw->centers.empty()
                                ? std::pair<double, double>{0.0, 0.0}
                                : raw->centers[i];
        raw->results[i] = raw->refiner->refine_view(
            raw->views[i], raw->initial[i], center.first, center.second);
      },
      [this, job](Batch& batch) { finalize(job, batch); });
}

void RefineService::finalize(const std::shared_ptr<Job>& job, Batch& batch) {
  std::string error;
  if (batch.failed()) {
    try {
      batch.wait();  // already complete; rethrows the recorded error
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown refinement error";
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->end_ns = now_ns();
    if (batch.failed()) {
      job->state = JobState::kFailed;
      job->error = error.empty() ? "refinement failed" : error;
      failed_->add();
    } else {
      job->state = JobState::kDone;
      completed_->add();
      tenant_entry_locked(job->tenant).completed->add();
    }
    latency_->observe(static_cast<double>(job->end_ns - job->submit_ns) *
                      1e-9);
    POR_EXPECT(running_ > 0, "serve: finalize without a running job");
    --running_;
    running_gauge_->set(static_cast<double>(running_));
  }
  cv_job_.notify_all();
  cv_dispatch_.notify_all();
}

JobStatus RefineService::status_locked(const Job& job) const {
  JobStatus out;
  out.job = job.id;
  out.state = job.state;
  out.tenant = job.tenant;
  out.model = job.model;
  out.error = job.error;
  if (job.end_ns != 0) {
    out.latency_seconds =
        static_cast<double>(job.end_ns - job.submit_ns) * 1e-9;
  }
  if (job.state == JobState::kDone) out.results = job.results;
  return out;
}

JobStatus RefineService::status(std::uint64_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::out_of_range("serve: unknown job id " + std::to_string(job));
  }
  return status_locked(*it->second);
}

JobStatus RefineService::wait(std::uint64_t job) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::out_of_range("serve: unknown job id " + std::to_string(job));
  }
  std::shared_ptr<Job> entry = it->second;
  cv_job_.wait(lock, [&] {
    return entry->state == JobState::kDone ||
           entry->state == JobState::kFailed ||
           entry->state == JobState::kCancelled;
  });
  return status_locked(*entry);
}

bool RefineService::cancel(std::uint64_t job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job);
    if (it == jobs_.end() || it->second->state != JobState::kQueued) {
      return false;
    }
    // The id stays in the channel; the dispatcher pops and skips it.
    it->second->state = JobState::kCancelled;
    it->second->end_ns = now_ns();
    cancelled_->add();
  }
  cv_job_.notify_all();
  return true;
}

void RefineService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_job_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

void RefineService::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_dispatch_.notify_all();
  dispatcher_.join();
}

}  // namespace por::serve
