#include "por/serve/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/resilience/error.hpp"
#include "por/util/contracts.hpp"
#include "por/util/log.hpp"

namespace por::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kTimedOut:
      return "timed_out";
  }
  return "?";
}

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kQueueFull:
      return "queue_full";
    case Admission::kQuotaExhausted:
      return "quota_exhausted";
    case Admission::kUnknownTenant:
      return "unknown_tenant";
    case Admission::kUnknownModel:
      return "unknown_model";
    case Admission::kDraining:
      return "draining";
    case Admission::kBadRequest:
      return "bad_request";
  }
  return "?";
}

RefineService::RefineService(ServiceOptions options)
    : options_(std::move(options)) {
  clock_ = options_.clock_ns ? options_.clock_ns
                             : [] { return obs::now_ns(); };

  obs::MetricsRegistry& registry = obs::current_registry();
  submitted_ = &registry.counter("serve.jobs.submitted");
  accepted_ = &registry.counter("serve.jobs.accepted");
  completed_ = &registry.counter("serve.jobs.completed");
  failed_ = &registry.counter("serve.jobs.failed");
  cancelled_ = &registry.counter("serve.jobs.cancelled");
  timed_out_ = &registry.counter("serve.jobs.timed_out");
  deduplicated_ = &registry.counter("serve.jobs.deduplicated");
  replayed_jobs_ = &registry.counter("recovery.replayed_jobs");
  rejected_queue_ = &registry.counter("serve.jobs.rejected.queue_full");
  rejected_quota_ = &registry.counter("serve.jobs.rejected.quota");
  rejected_other_ = &registry.counter("serve.jobs.rejected.other");
  queue_depth_ = &registry.gauge("serve.queue_depth");
  running_gauge_ = &registry.gauge("serve.jobs_running");
  // Log buckets 100 us .. ~1000 s, 5 per decade: tight enough for a
  // meaningful p99 on sub-millisecond jobs, wide enough for full-size
  // refinements.
  latency_ = &registry.log_histogram("serve.job_latency_seconds", 1e-4, 1e3, 5);

  POR_EXPECT(options_.queue_capacity > 0, "serve: queue_capacity must be > 0");
  queue_ = std::make_unique<JobChannel<std::uint64_t>>(options_.queue_capacity);

  if (!options_.journal_dir.empty()) {
    journal::JournalOptions journal_options;
    journal_options.max_segment_bytes = options_.journal_max_segment_bytes;
    journal_ = std::make_unique<journal::Journal>(options_.journal_dir,
                                                  journal_options);
    // Parse the replay NOW (not in recover()): next_job_id_ and the
    // idempotency index must be correct before the first submit, even
    // if the caller never recovers.
    replay_journal_locked();
  }

  open_tenancy_ = options_.tenants.empty();
  for (const TenantConfig& tenant : options_.tenants) {
    tenant_entry_locked(tenant.name);  // pre-register configured tenants
  }

  SchedulerOptions sched = options_.scheduler;
  if (options_.workers != 0) sched.workers = options_.workers;
  scheduler_ = std::make_unique<Scheduler>(sched);

  max_running_ = options_.max_running != 0 ? options_.max_running
                                           : 2 * scheduler_->workers();

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

RefineService::~RefineService() { shutdown(); }

RefineService::Tenant& RefineService::tenant_entry_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    TokenBucket bucket(0.0, 0.0);  // unlimited (open tenancy)
    for (const TenantConfig& config : options_.tenants) {
      if (config.name == name) {
        bucket = TokenBucket(config.rate_per_sec, config.burst);
        break;
      }
    }
    obs::MetricsRegistry& registry = obs::current_registry();
    Tenant entry{std::move(bucket),
                 &registry.counter("serve.tenant." + name + ".accepted"),
                 &registry.counter("serve.tenant." + name + ".completed"),
                 &registry.counter("serve.tenant." + name + ".rejected_quota")};
    it = tenants_.emplace(name, std::move(entry)).first;
  }
  return it->second;
}

void RefineService::register_model(const std::string& name,
                                   const em::Volume<double>& map,
                                   const core::RefinerConfig& config) {
  // Build outside the lock: the padded 3D DFT is the expensive part and
  // must not stall the admission path.
  auto refiner = std::make_shared<const core::OrientationRefiner>(map, config);
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(refiner);
}

void RefineService::journal_append_locked(JobRecordType type,
                                          const std::string& payload,
                                          bool durable) {
  if (!journal_) return;
  if (durable) {
    // Durable appends back an acknowledgement — the failure must reach
    // the caller (submit() refuses the job).
    journal_->append(static_cast<std::uint32_t>(type), payload, durable);
    return;
  }
  // Lifecycle records are best-effort: losing one costs a re-execution
  // of idempotent work after a crash, while throwing here would kill
  // the dispatcher thread.
  try {
    journal_->append(static_cast<std::uint32_t>(type), payload, durable);
  } catch (const std::exception& e) {
    util::log_warn("serve: journal append (", to_string(type),
                   ") failed: ", e.what());
  }
}

std::string RefineService::checkpoint_path(std::uint64_t job) const {
  return options_.journal_dir + "/job-" + std::to_string(job) + ".porc";
}

void RefineService::replay_journal_locked() {
  // Fold the journal's record stream into one state per job: the
  // submission payload plus the LAST terminal transition (if any).
  // Records the codec rejects are corruption — the journal CRC proved
  // the bytes are exactly what a past process wrote, so a malformed
  // payload is a logic error worth failing loudly over, not skipping.
  for (const journal::Record& record : journal_->replayed().records) {
    const auto type = static_cast<JobRecordType>(record.type);
    switch (type) {
      case JobRecordType::kSubmitted: {
        SubmittedJob submitted = decode_submitted(record.payload);
        const std::uint64_t id = submitted.job;
        recovery_plan_[id].request = std::move(submitted);
        next_job_id_ = std::max(next_job_id_, id + 1);
        break;
      }
      case JobRecordType::kRunning:
      case JobRecordType::kViewBatchDone:
        // Progress markers; per-view progress is recovered from the
        // job's checkpoint file, not the journal.
        break;
      case JobRecordType::kDone:
      case JobRecordType::kFailed:
      case JobRecordType::kCancelled:
      case JobRecordType::kTimedOut: {
        const LifecycleEvent event = decode_lifecycle(record.payload);
        auto it = recovery_plan_.find(event.job);
        if (it == recovery_plan_.end()) {
          // Terminal for a job whose submission was compacted away or
          // lost to a non-durable append: nothing to rematerialize.
          break;
        }
        it->second.state = type == JobRecordType::kDone ? JobState::kDone
                           : type == JobRecordType::kFailed
                               ? JobState::kFailed
                           : type == JobRecordType::kCancelled
                               ? JobState::kCancelled
                               : JobState::kTimedOut;
        it->second.error = event.error;
        break;
      }
    }
    // Idempotency keys must dedup from the first post-restart submit
    // on, before recover() materializes the jobs.
    // (kSubmitted only; the key lives in the submission payload.)
  }
  for (const auto& [id, recovered] : recovery_plan_) {
    if (!recovered.request.idempotency_key.empty()) {
      idempotency_[recovered.request.idempotency_key] = id;
    }
  }
  journal_->discard_replayed();
}

std::size_t RefineService::recover() {
  std::size_t readmitted = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    POR_EXPECT(journal_ != nullptr, "serve: recover() without a journal_dir");
    if (recovered_) return 0;
    recovered_ = true;

    for (auto& [id, recovered] : recovery_plan_) {
      SubmittedJob& request = recovered.request;
      auto job = std::make_shared<Job>();
      job->id = id;
      job->tenant = request.tenant;
      job->model = request.model;
      job->idempotency_key = request.idempotency_key;
      job->deadline_ns = request.deadline_ns;
      job->error = recovered.error;
      job->submit_ns = now_ns();

      if (recovered.state != JobState::kQueued) {
        // Terminal already: rematerialize so status()/wait()/dedup keep
        // answering for it.  Results of a kDone job live in its
        // checkpoint — the kDone record is only journaled after the
        // final checkpoint flush.
        job->state = recovered.state;
        job->end_ns = job->submit_ns;
        if (recovered.state == JobState::kDone) {
          const std::vector<resilience::CheckpointRecord> records =
              resilience::load_checkpoint(checkpoint_path(id));
          // Size from the checkpoint, not the submission: a compacted
          // snapshot strips a finished job's view pixels.
          std::size_t n_views = request.views.size();
          for (const resilience::CheckpointRecord& cp : records) {
            n_views = std::max<std::size_t>(
                n_views, static_cast<std::size_t>(cp.view_index) + 1);
          }
          job->results.resize(n_views);
          for (const resilience::CheckpointRecord& cp : records) {
            if (cp.view_index >= job->results.size()) continue;
            core::ViewResult& out = job->results[cp.view_index];
            out.orientation = {cp.theta, cp.phi, cp.omega};
            out.center_x = cp.center_x;
            out.center_y = cp.center_y;
            out.final_distance = cp.final_distance;
            out.matchings = cp.matchings;
            out.cache_hits = cp.cache_hits;
            out.center_evals = cp.center_evals;
            out.window_slides = cp.window_slides;
            out.quarantined = cp.quarantined;
          }
        }
        jobs_[id] = job;
        continue;
      }

      // Incomplete: re-admit.  Views already checkpointed are restored
      // verbatim and skipped by the batch body — per-view determinism
      // makes the combined result bitwise-identical to an
      // uninterrupted run.
      job->views = std::move(request.views);
      job->initial = std::move(request.initial);
      job->centers = std::move(request.centers);
      job->results.resize(job->views.size());
      job->restored.assign(job->views.size(), 0);

      std::vector<resilience::CheckpointRecord> seed =
          resilience::load_checkpoint(checkpoint_path(id));
      for (const resilience::CheckpointRecord& cp : seed) {
        if (cp.view_index >= job->results.size()) continue;
        core::ViewResult& out = job->results[cp.view_index];
        out.orientation = {cp.theta, cp.phi, cp.omega};
        out.center_x = cp.center_x;
        out.center_y = cp.center_y;
        out.final_distance = cp.final_distance;
        out.matchings = cp.matchings;
        out.cache_hits = cp.cache_hits;
        out.center_evals = cp.center_evals;
        out.window_slides = cp.window_slides;
        out.quarantined = cp.quarantined;
        job->restored[cp.view_index] = 1;
      }
      job->checkpoint = std::make_unique<resilience::CheckpointWriter>(
          checkpoint_path(id), options_.checkpoint_flush_every,
          std::move(seed));

      auto model = models_.find(job->model);
      if (model == models_.end()) {
        job->state = JobState::kFailed;
        job->error = "model '" + job->model + "' not registered at recovery";
        job->end_ns = job->submit_ns;
        LifecycleEvent event;
        event.job = id;
        event.error = job->error;
        journal_append_locked(JobRecordType::kFailed,
                              encode_lifecycle(event), /*durable=*/false);
        failed_->add();
        jobs_[id] = job;
        continue;
      }
      job->refiner = model->second;

      const bool pushed = queue_->try_push(id);
      if (!pushed) {
        // More incomplete jobs than queue capacity: fail the overflow
        // loudly instead of wedging recovery (sized deployments never
        // hit this — capacity bounds admitted-not-finished jobs).
        job->state = JobState::kFailed;
        job->error = "recovery backlog exceeds queue capacity";
        job->end_ns = job->submit_ns;
        failed_->add();
        jobs_[id] = job;
        continue;
      }
      job->state = JobState::kQueued;
      jobs_[id] = job;
      ++queued_;
      ++readmitted;
      replayed_jobs_->add();
    }
    recovery_plan_.clear();
    queue_depth_->set(static_cast<double>(queued_));

    // Compact: one snapshot segment holding the submission of every
    // live job and the terminal record of every finished one, so the
    // journal does not grow without bound across restarts.
    std::vector<journal::Record> snapshot;
    for (const auto& [id, job] : jobs_) {
      SubmittedJob submitted;
      submitted.job = id;
      submitted.tenant = job->tenant;
      submitted.model = job->model;
      submitted.idempotency_key = job->idempotency_key;
      submitted.deadline_ns = job->deadline_ns;
      submitted.views = job->views;      // empty for terminal jobs
      submitted.initial = job->initial;
      submitted.centers = job->centers;
      snapshot.push_back(
          {static_cast<std::uint32_t>(JobRecordType::kSubmitted),
           encode_submitted(submitted)});
      if (job->state != JobState::kQueued &&
          job->state != JobState::kRunning) {
        LifecycleEvent event;
        event.job = id;
        event.error = job->error;
        const JobRecordType type =
            job->state == JobState::kDone        ? JobRecordType::kDone
            : job->state == JobState::kCancelled ? JobRecordType::kCancelled
            : job->state == JobState::kTimedOut  ? JobRecordType::kTimedOut
                                                 : JobRecordType::kFailed;
        snapshot.push_back({static_cast<std::uint32_t>(type),
                            encode_lifecycle(event)});
      }
    }
    journal_->rewrite(snapshot);
  }
  cv_dispatch_.notify_all();
  cv_job_.notify_all();
  return readmitted;
}

SubmitResult RefineService::submit(JobRequest request) {
  submitted_->add();
  const auto reject = [this](Admission why) {
    (why == Admission::kQueueFull
         ? rejected_queue_
         : why == Admission::kQuotaExhausted ? rejected_quota_
                                             : rejected_other_)
        ->add();
    return SubmitResult{0, why};
  };

  if (request.views.empty() ||
      request.views.size() != request.initial.size() ||
      (!request.centers.empty() &&
       request.centers.size() != request.views.size())) {
    return reject(Admission::kBadRequest);
  }

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);

    // Idempotent resubmission is a read, not an admission: it dedups
    // even while draining, against live and terminal jobs alike, and
    // across a crash (the key replays from the journal).
    if (!request.idempotency_key.empty()) {
      auto hit = idempotency_.find(request.idempotency_key);
      if (hit != idempotency_.end()) {
        deduplicated_->add();
        return SubmitResult{hit->second, Admission::kAccepted,
                            /*deduplicated=*/true};
      }
    }

    if (draining_ || stop_) return reject(Admission::kDraining);

    auto model = models_.find(request.model);
    if (model == models_.end()) return reject(Admission::kUnknownModel);

    if (!open_tenancy_ && tenants_.find(request.tenant) == tenants_.end()) {
      return reject(Admission::kUnknownTenant);
    }
    Tenant& tenant = tenant_entry_locked(request.tenant);

    // Bounded backlog before the bucket: a queue-full shed is a
    // service-wide condition, so it must not also debit the tenant's
    // tokens (a client retrying through a full queue would otherwise
    // get double-punished with kQuotaExhausted once the queue opens).
    // `queued_` is the exact admitted-not-dispatched count (the channel
    // itself rounds capacity up to a power of two).
    if (queued_ >= options_.queue_capacity) {
      return reject(Admission::kQueueFull);
    }
    if (!tenant.bucket.try_acquire(now_ns())) {
      tenant.rejected_quota->add();
      return reject(Admission::kQuotaExhausted);
    }

    job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->state = JobState::kQueued;
    job->tenant = request.tenant;
    job->model = request.model;
    job->idempotency_key = request.idempotency_key;
    job->deadline_ns = request.deadline_ns != 0 ? request.deadline_ns
                                                : options_.default_deadline_ns;
    job->refiner = model->second;
    job->views = std::move(request.views);
    job->initial = std::move(request.initial);
    job->centers = std::move(request.centers);
    job->results.resize(job->views.size());
    job->submit_ns = now_ns();

    // Durability before acknowledgement: the fsync'd submission record
    // is the promise submit() returns on.  A journal failure throws
    // out of here with the job NOT admitted (jobs_/queue_ untouched,
    // no id handed out) — the client retries against a consistent
    // service.
    if (journal_) {
      SubmittedJob submitted;
      submitted.job = job->id;
      submitted.tenant = job->tenant;
      submitted.model = job->model;
      submitted.idempotency_key = job->idempotency_key;
      submitted.deadline_ns = job->deadline_ns;
      submitted.views = job->views;
      submitted.initial = job->initial;
      submitted.centers = job->centers;
      journal_append_locked(JobRecordType::kSubmitted,
                            encode_submitted(submitted), /*durable=*/true);
    }

    jobs_[job->id] = job;
    if (!job->idempotency_key.empty()) {
      idempotency_[job->idempotency_key] = job->id;
    }

    const bool pushed = queue_->try_push(job->id);
    POR_ENSURE(pushed, "serve: admission accounting allowed an overfull queue",
               "queued =", queued_, "capacity =", options_.queue_capacity);
    ++queued_;
    queue_depth_->set(static_cast<double>(queued_));
    tenant.accepted->add();
  }
  accepted_->add();
  cv_dispatch_.notify_one();
  return SubmitResult{job->id, Admission::kAccepted};
}

void RefineService::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_dispatch_.wait(lock, [this] {
      return stop_ || (queued_ > 0 && running_ < max_running_);
    });
    if (stop_) return;

    std::uint64_t id = 0;
    const bool popped = queue_->try_pop(id);
    POR_ENSURE(popped, "serve: queued_ says backlog but channel is empty",
               "queued =", queued_);
    --queued_;
    queue_depth_->set(static_cast<double>(queued_));

    auto it = jobs_.find(id);
    POR_EXPECT(it != jobs_.end(), "serve: queued job id unknown", "id =", id);
    std::shared_ptr<Job> job = it->second;
    if (job->state == JobState::kCancelled) {
      // No finalize will run for this job; wake drain() waiters in case
      // this pop emptied the backlog.
      cv_job_.notify_all();
      continue;
    }

    // A deadline that expired while the job sat in the queue: surface
    // kTimedOut here instead of burning workers on doomed views.
    const std::uint64_t start = now_ns();
    if (job->deadline_ns != 0 && start >= job->submit_ns + job->deadline_ns) {
      job->state = JobState::kTimedOut;
      job->end_ns = start;
      timed_out_->add();
      LifecycleEvent event;
      event.job = job->id;
      journal_append_locked(JobRecordType::kTimedOut, encode_lifecycle(event),
                            /*durable=*/false);
      latency_->observe(static_cast<double>(job->end_ns - job->submit_ns) *
                        1e-9);
      cv_job_.notify_all();
      continue;
    }

    job->state = JobState::kRunning;
    job->start_ns = start;
    job->token = std::make_shared<core::CancelToken>(clock_);
    if (job->deadline_ns != 0) {
      job->token->set_deadline_ns(job->submit_ns + job->deadline_ns);
    }
    if (journal_ && !job->checkpoint) {
      // Recovered jobs arrive with a seeded writer; fresh jobs open
      // theirs here (the constructor only records the path — the first
      // file write happens at the first flush, off this lock's path).
      job->checkpoint = std::make_unique<resilience::CheckpointWriter>(
          checkpoint_path(job->id), options_.checkpoint_flush_every);
    }
    {
      LifecycleEvent event;
      event.job = job->id;
      journal_append_locked(JobRecordType::kRunning, encode_lifecycle(event),
                            /*durable=*/false);
    }
    ++running_;
    running_gauge_->set(static_cast<double>(running_));

    lock.unlock();
    dispatch(job);
    lock.lock();
  }
}

void RefineService::dispatch(const std::shared_ptr<Job>& job) {
  const std::size_t n = job->views.size();
  Job* raw = job.get();  // the batch body/callback keep `job` alive
  scheduler_->submit(
      n,
      [raw](std::size_t i) {
        // Views restored from the recovery checkpoint are already in
        // results[i]; refining them again would be wasted work (the
        // answer is deterministic) and would double-checkpoint them.
        if (!raw->restored.empty() && raw->restored[i] != 0) return;
        const auto center = raw->centers.empty()
                                ? std::pair<double, double>{0.0, 0.0}
                                : raw->centers[i];
        // The chunk-boundary poll: the token is checked here (inside
        // refine_view, before the FFT) and again down inside
        // sliding_window_search, so a cancel/deadline lands within one
        // stride of candidates, not one view.
        raw->results[i] = raw->refiner->refine_view(
            raw->views[i], raw->initial[i], center.first, center.second,
            raw->token.get());
        if (raw->checkpoint) {
          const core::ViewResult& r = raw->results[i];
          resilience::CheckpointRecord cp;
          cp.view_index = i;
          cp.theta = r.orientation.theta;
          cp.phi = r.orientation.phi;
          cp.omega = r.orientation.omega;
          cp.center_x = r.center_x;
          cp.center_y = r.center_y;
          cp.final_distance = r.final_distance;
          cp.matchings = r.matchings;
          cp.cache_hits = r.cache_hits;
          cp.center_evals = r.center_evals;
          cp.window_slides = r.window_slides;
          cp.quarantined = r.quarantined;
          std::lock_guard<std::mutex> guard(raw->checkpoint_mutex);
          raw->checkpoint->append(cp);
          ++raw->views_done;
        }
      },
      [this, job](Batch& batch) { finalize(job, batch); });
}

void RefineService::finalize(const std::shared_ptr<Job>& job, Batch& batch) {
  std::string error;
  bool was_cancelled = false;
  bool was_timeout = false;
  if (batch.failed()) {
    try {
      batch.wait();  // already complete; rethrows the recorded error
    } catch (const core::Cancelled& e) {
      was_cancelled = true;
      was_timeout = e.timed_out();
      error = e.what();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown refinement error";
    }
  }

  // Persist the final per-view state BEFORE journaling the terminal
  // record: a kDone in the journal promises the checkpoint holds every
  // view.  Outside mutex_ (atomic_write_file does real I/O) and under
  // the job's own checkpoint lock.
  std::size_t views_done = 0;
  if (job->checkpoint) {
    std::lock_guard<std::mutex> guard(job->checkpoint_mutex);
    views_done = job->views_done;
    try {
      job->checkpoint->flush();
    } catch (const std::exception& e) {
      util::log_warn("serve: checkpoint flush for job ", job->id,
                     " failed: ", e.what());
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->end_ns = now_ns();
    LifecycleEvent event;
    event.job = job->id;
    event.views_done = views_done;
    if (journal_) {
      journal_append_locked(JobRecordType::kViewBatchDone,
                            encode_lifecycle(event), /*durable=*/false);
    }
    if (batch.failed()) {
      if (was_cancelled && was_timeout) {
        job->state = JobState::kTimedOut;
        job->error = error;
        timed_out_->add();
        journal_append_locked(JobRecordType::kTimedOut,
                              encode_lifecycle(event), /*durable=*/false);
      } else if (was_cancelled) {
        job->state = JobState::kCancelled;
        job->error = error;
        cancelled_->add();
        journal_append_locked(JobRecordType::kCancelled,
                              encode_lifecycle(event), /*durable=*/false);
      } else {
        job->state = JobState::kFailed;
        job->error = error.empty() ? "refinement failed" : error;
        event.error = job->error;
        failed_->add();
        journal_append_locked(JobRecordType::kFailed, encode_lifecycle(event),
                              /*durable=*/false);
      }
    } else {
      job->state = JobState::kDone;
      completed_->add();
      tenant_entry_locked(job->tenant).completed->add();
      journal_append_locked(JobRecordType::kDone, encode_lifecycle(event),
                            /*durable=*/false);
      // The pixels are no longer needed (results carry the answer);
      // dropping them keeps terminal jobs cheap to hold and keeps the
      // recovery compaction snapshot small.
      job->views.clear();
      job->views.shrink_to_fit();
    }
    latency_->observe(static_cast<double>(job->end_ns - job->submit_ns) *
                      1e-9);
    POR_EXPECT(running_ > 0, "serve: finalize without a running job");
    --running_;
    running_gauge_->set(static_cast<double>(running_));
  }
  cv_job_.notify_all();
  cv_dispatch_.notify_all();
}

JobStatus RefineService::status_locked(const Job& job) const {
  JobStatus out;
  out.job = job.id;
  out.state = job.state;
  out.tenant = job.tenant;
  out.model = job.model;
  out.error = job.error;
  if (job.end_ns != 0) {
    out.latency_seconds =
        static_cast<double>(job.end_ns - job.submit_ns) * 1e-9;
  }
  if (job.state == JobState::kDone) out.results = job.results;
  return out;
}

JobStatus RefineService::status(std::uint64_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::out_of_range("serve: unknown job id " + std::to_string(job));
  }
  return status_locked(*it->second);
}

std::vector<std::uint64_t> RefineService::job_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);  // map: ascending
  return ids;
}

JobStatus RefineService::wait(std::uint64_t job) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    throw std::out_of_range("serve: unknown job id " + std::to_string(job));
  }
  std::shared_ptr<Job> entry = it->second;
  cv_job_.wait(lock, [&] {
    return entry->state == JobState::kDone ||
           entry->state == JobState::kFailed ||
           entry->state == JobState::kCancelled ||
           entry->state == JobState::kTimedOut;
  });
  return status_locked(*entry);
}

bool RefineService::cancel(std::uint64_t job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job);
    if (it == jobs_.end()) return false;
    Job& entry = *it->second;
    switch (entry.state) {
      case JobState::kQueued: {
        // The id stays in the channel; the dispatcher pops and skips
        // it.  This transition and the dispatcher's kQueued->kRunning
        // one are serialized by mutex_, so a cancel racing the
        // dequeue lands in exactly one of the two paths.
        entry.state = JobState::kCancelled;
        entry.end_ns = now_ns();
        cancelled_->add();
        LifecycleEvent event;
        event.job = entry.id;
        // Durable: "cancelled" is an acknowledgement too — the job
        // must not rise from the dead and execute after a crash.
        try {
          journal_append_locked(JobRecordType::kCancelled,
                                encode_lifecycle(event), /*durable=*/true);
        } catch (const std::exception& e) {
          util::log_warn("serve: cancel journal append failed: ", e.what());
        }
        break;
      }
      case JobState::kRunning:
        // Cooperative: fire the token; the workers observe it at the
        // next poll and finalize() publishes the single terminal state
        // (kCancelled — or kDone if every view already finished).
        entry.token->cancel();
        break;
      case JobState::kDone:
      case JobState::kFailed:
      case JobState::kCancelled:
      case JobState::kTimedOut:
        return false;
    }
  }
  cv_job_.notify_all();
  return true;
}

void RefineService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_job_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

void RefineService::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_dispatch_.notify_all();
  dispatcher_.join();
}

}  // namespace por::serve
