// por/serve/token_bucket.hpp
//
// Per-tenant admission quota: the classic token bucket.  A tenant may
// burst up to `burst` jobs instantly; sustained throughput is capped
// at `rate_per_sec` jobs per second.  Time is passed in explicitly
// (nanoseconds from any monotonic origin) so tests drive the clock by
// hand and the refill arithmetic stays deterministic.
//
// Not internally synchronized: RefineService consults every bucket
// under its admission mutex, which also orders the bounded-queue
// check — admission is one short critical section either way.
#pragma once

#include <algorithm>
#include <cstdint>

#include "por/util/contracts.hpp"

namespace por::serve {

class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 means "unlimited" (the bucket always grants).
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(std::max(burst, 1.0)), tokens_(burst_) {}

  /// Refill for the elapsed time, then try to take `cost` tokens.
  bool try_acquire(std::uint64_t now_ns, double cost = 1.0) {
    if (rate_ <= 0.0) return true;
    POR_EXPECT(cost >= 0.0, "token cost must be non-negative:", cost);
    refill(now_ns);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Tokens currently available (after refilling to `now_ns`).
  [[nodiscard]] double available(std::uint64_t now_ns) {
    refill(now_ns);
    return tokens_;
  }

  [[nodiscard]] double rate_per_sec() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

 private:
  void refill(std::uint64_t now_ns) {
    if (last_ns_ == 0) {
      last_ns_ = now_ns;  // first observation anchors the clock
      return;
    }
    if (now_ns <= last_ns_) return;  // clock must be monotonic; be safe
    const double elapsed = static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ns_ = now_ns;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
};

}  // namespace por::serve
