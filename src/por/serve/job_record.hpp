// por/serve/job_record.hpp
//
// The wire format the RefineService journals through por::journal
// (DESIGN.md §15).  One record type per job-lifecycle transition; the
// submission record carries the full request (tenant, model,
// idempotency key, deadline, views, initial orientations, centers) so
// a restarted process can re-admit the job from the journal alone.
// Lifecycle records carry only the job id (+ error text for failures):
// per-view progress lives in the job's PORC checkpoint file, results
// of completed jobs are rebuilt from the same checkpoint on replay.
//
// Encoding is little-endian, length-prefixed, and strictly bounds
// checked: decode_* throws resilience::Error{kCorrupt} on any
// truncation or overflow instead of reading past the payload — the
// journal's CRC proves the bytes are what was written, this layer
// proves what was written is a well-formed record (and is one of the
// surfaces the fuzz targets hammer).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"

namespace por::serve {

/// Journal record types (the `type` field of journal::Record).
enum class JobRecordType : std::uint32_t {
  kSubmitted = 1,  ///< full request; fsync'd BEFORE the client ack
  kRunning = 2,    ///< dispatcher picked the job up
  kViewBatchDone = 3,  ///< progress marker: views_done views checkpointed
  kDone = 4,       ///< results live in the job's checkpoint file
  kFailed = 5,     ///< payload carries the error text
  kCancelled = 6,
  kTimedOut = 7,
};

[[nodiscard]] const char* to_string(JobRecordType type);

/// The decoded submission record.
struct SubmittedJob {
  std::uint64_t job = 0;
  std::string tenant;
  std::string model;
  std::string idempotency_key;
  /// Deadline as a DURATION in nanoseconds (0 = none).  Stored as a
  /// duration, not an absolute stamp, so a recovered job gets a fresh
  /// full deadline from its re-admission instant — wall time spent
  /// dead is not charged to the client.
  std::uint64_t deadline_ns = 0;
  std::vector<em::Image<double>> views;
  std::vector<em::Orientation> initial;
  std::vector<std::pair<double, double>> centers;
};

/// A decoded lifecycle record (everything except kSubmitted).
struct LifecycleEvent {
  std::uint64_t job = 0;
  std::uint64_t views_done = 0;  ///< kViewBatchDone only
  std::string error;             ///< kFailed only
};

[[nodiscard]] std::string encode_submitted(const SubmittedJob& job);
[[nodiscard]] SubmittedJob decode_submitted(const std::string& payload);

[[nodiscard]] std::string encode_lifecycle(const LifecycleEvent& event);
[[nodiscard]] LifecycleEvent decode_lifecycle(const std::string& payload);

}  // namespace por::serve
