#include "por/serve/job_record.hpp"

#include <cstring>
#include <limits>

#include "por/resilience/error.hpp"

namespace por::serve {

const char* to_string(JobRecordType type) {
  switch (type) {
    case JobRecordType::kSubmitted: return "submitted";
    case JobRecordType::kRunning: return "running";
    case JobRecordType::kViewBatchDone: return "view_batch_done";
    case JobRecordType::kDone: return "done";
    case JobRecordType::kFailed: return "failed";
    case JobRecordType::kCancelled: return "cancelled";
    case JobRecordType::kTimedOut: return "timed_out";
  }
  return "?";
}

namespace {

// ---- writer ----------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof bytes);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof bytes);
}

void put_f64(std::string& out, double v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof bytes);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// ---- bounds-checked reader -------------------------------------------------

/// Cursor over an untrusted payload.  Every get_* proves the bytes
/// exist before touching them; a journal CRC pass does not make the
/// payload well formed (the fuzz targets feed arbitrary bytes here).
class Reader {
 public:
  explicit Reader(const std::string& payload) : payload_(payload) {}

  [[nodiscard]] std::uint32_t get_u32() {
    std::uint32_t v = 0;
    copy(&v, sizeof v);
    return v;
  }
  [[nodiscard]] std::uint64_t get_u64() {
    std::uint64_t v = 0;
    copy(&v, sizeof v);
    return v;
  }
  [[nodiscard]] double get_f64() {
    double v = 0.0;
    copy(&v, sizeof v);
    return v;
  }
  [[nodiscard]] std::string get_string() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(payload_.data() + offset_, n);
    offset_ += n;
    return s;
  }
  void expect_exhausted() const {
    if (offset_ != payload_.size()) {
      throw resilience::corrupt_error("job_record: trailing bytes");
    }
  }
  void need(std::size_t bytes) const {
    if (payload_.size() - offset_ < bytes) {
      throw resilience::corrupt_error("job_record: truncated payload");
    }
  }
  [[nodiscard]] std::size_t remaining() const {
    return payload_.size() - offset_;
  }

 private:
  void copy(void* dst, std::size_t bytes) {
    need(bytes);
    std::memcpy(dst, payload_.data() + offset_, bytes);
    offset_ += bytes;
  }

  const std::string& payload_;
  std::size_t offset_ = 0;
};

constexpr std::uint32_t kSubmittedVersion = 1;

}  // namespace

std::string encode_submitted(const SubmittedJob& job) {
  std::string out;
  put_u32(out, kSubmittedVersion);
  put_u64(out, job.job);
  put_string(out, job.tenant);
  put_string(out, job.model);
  put_string(out, job.idempotency_key);
  put_u64(out, job.deadline_ns);

  put_u32(out, static_cast<std::uint32_t>(job.views.size()));
  for (const em::Image<double>& view : job.views) {
    put_u32(out, static_cast<std::uint32_t>(view.ny()));
    put_u32(out, static_cast<std::uint32_t>(view.nx()));
    out.append(reinterpret_cast<const char*>(view.data()),
               view.size() * sizeof(double));
  }
  put_u32(out, static_cast<std::uint32_t>(job.initial.size()));
  for (const em::Orientation& o : job.initial) {
    put_f64(out, o.theta);
    put_f64(out, o.phi);
    put_f64(out, o.omega);
  }
  put_u32(out, static_cast<std::uint32_t>(job.centers.size()));
  for (const auto& [cx, cy] : job.centers) {
    put_f64(out, cx);
    put_f64(out, cy);
  }
  return out;
}

SubmittedJob decode_submitted(const std::string& payload) {
  Reader in(payload);
  const std::uint32_t version = in.get_u32();
  if (version != kSubmittedVersion) {
    throw resilience::corrupt_error("job_record: unsupported version " +
                                    std::to_string(version));
  }
  SubmittedJob job;
  job.job = in.get_u64();
  job.tenant = in.get_string();
  job.model = in.get_string();
  job.idempotency_key = in.get_string();
  job.deadline_ns = in.get_u64();

  const std::uint32_t n_views = in.get_u32();
  job.views.reserve(std::min<std::size_t>(n_views, in.remaining() / 8));
  for (std::uint32_t i = 0; i < n_views; ++i) {
    const std::uint32_t ny = in.get_u32();
    const std::uint32_t nx = in.get_u32();
    // Overflow / resource guard: ny*nx doubles must actually be in the
    // payload before the vector is sized — a hostile header must not
    // become a multi-GB allocation.
    const std::uint64_t pixels =
        static_cast<std::uint64_t>(ny) * static_cast<std::uint64_t>(nx);
    if (pixels > std::numeric_limits<std::uint32_t>::max()) {
      throw resilience::corrupt_error("job_record: view dimensions overflow");
    }
    in.need(static_cast<std::size_t>(pixels) * sizeof(double));
    em::Image<double> view(ny, nx);
    for (std::size_t p = 0; p < view.size(); ++p) {
      view.data()[p] = in.get_f64();  // por-lint: allow(naked-subscript) sequential fill of a freshly sized image; in.need() above bounds the payload
    }
    job.views.push_back(std::move(view));
  }

  const std::uint32_t n_initial = in.get_u32();
  in.need(static_cast<std::size_t>(n_initial) * 3 * sizeof(double));
  job.initial.reserve(n_initial);
  for (std::uint32_t i = 0; i < n_initial; ++i) {
    em::Orientation o;
    o.theta = in.get_f64();
    o.phi = in.get_f64();
    o.omega = in.get_f64();
    job.initial.push_back(o);
  }

  const std::uint32_t n_centers = in.get_u32();
  in.need(static_cast<std::size_t>(n_centers) * 2 * sizeof(double));
  job.centers.reserve(n_centers);
  for (std::uint32_t i = 0; i < n_centers; ++i) {
    const double cx = in.get_f64();
    const double cy = in.get_f64();
    job.centers.emplace_back(cx, cy);
  }
  in.expect_exhausted();
  return job;
}

std::string encode_lifecycle(const LifecycleEvent& event) {
  std::string out;
  put_u64(out, event.job);
  put_u64(out, event.views_done);
  put_string(out, event.error);
  return out;
}

LifecycleEvent decode_lifecycle(const std::string& payload) {
  Reader in(payload);
  LifecycleEvent event;
  event.job = in.get_u64();
  event.views_done = in.get_u64();
  event.error = in.get_string();
  in.expect_exhausted();
  return event;
}

}  // namespace por::serve
