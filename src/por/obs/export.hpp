// por/obs/export.hpp
//
// Snapshot serialization: Prometheus text exposition format (for
// scraping a long-running service) and a JSON document (the run-report
// format, also used as the wire format when per-rank snapshots travel
// over vmpi).  `snapshot_from_json` inverts `to_json` exactly, so a
// snapshot round-trips losslessly — the RunReport gather relies on it.
#pragma once

#include <string>

#include "por/obs/registry.hpp"

namespace por::obs {

/// Prometheus text format (version 0.0.4).  Metric names are sanitized
/// (dots and other non-[a-zA-Z0-9_] characters become underscores) and
/// prefixed with "por_".  Histograms emit cumulative `_bucket{le=...}`
/// series plus `_sum` / `_count`; spans emit `_count`, `_seconds_total`
/// and `_seconds_max`.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

/// JSON document with four top-level objects: "counters", "gauges",
/// "histograms", "spans".  Deterministic key order (snapshots are
/// sorted maps), no external dependencies.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Parse a document produced by to_json back into a Snapshot.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Snapshot snapshot_from_json(const std::string& json);

/// Write `content` to `path`, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace por::obs
