// por/obs/span.hpp
//
// Lightweight scoped trace spans.
//
// Two RAII instruments share the same aggregate sink (SpanSeries):
//
//  * ScopedSpan — records the aggregate AND appends a raw SpanRecord
//    (start, duration, parent) to a per-thread buffer, so nested spans
//    reconstruct the call tree.  Use for per-step / per-view scopes.
//  * SpanTimer — aggregate only, no raw record.  Use inside hot loops
//    (one matching operation) where a raw record per occurrence would
//    flood the buffers.
//
// Both are gated on obs::enabled(): when disabled the constructor does
// one relaxed atomic load and nothing else.  Defining POR_OBS_DISABLE
// at compile time turns both types into empty shells that the
// optimizer removes entirely.
//
// Per-thread buffers are registered with the owning registry and
// drained via MetricsRegistry::drain_trace(); parent indices in the
// drained vector are self-contained (they index into the returned
// vector, -1 for roots).
#pragma once

#include <cstdint>
#include <string>

#include "por/obs/registry.hpp"

namespace por::obs {

/// Nanoseconds since the process-wide steady-clock epoch (first use).
[[nodiscard]] std::uint64_t now_ns();

/// "outer > inner" rendering of the calling thread's open ScopedSpan
/// stack in the current registry; empty when no span is open.  This is
/// what por::contracts failure reports print as ambient context (the
/// module registers itself as the contracts context provider), so a
/// contract tripped deep in the matcher names the refinement step that
/// reached it.
[[nodiscard]] std::string active_span_path();

namespace detail {
struct ThreadTrace;
/// The calling thread's trace buffer for `registry` (created and
/// attached on first use).
ThreadTrace* thread_trace_for(MetricsRegistry& registry);
void span_begin(ThreadTrace* trace, const std::string* name,
                std::uint64_t start_ns, std::int32_t& index_out);
void span_end(ThreadTrace* trace, std::int32_t index,
              std::uint64_t duration_ns);
}  // namespace detail

#ifdef POR_OBS_DISABLE

class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSeries&) {}
  explicit ScopedSpan(const char*) {}
};

class SpanTimer {
 public:
  explicit SpanTimer(SpanSeries&) {}
};

#else  // POR_OBS_DISABLE

/// Aggregate + raw-trace span (see file comment).
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSeries& series) {
    if (!obs::enabled()) return;
    begin(series);
  }
  /// Convenience: resolves `name` against current_registry() (a mutex
  /// + map lookup; prefer the SpanSeries& overload on hot paths).
  explicit ScopedSpan(const char* name) {
    if (!obs::enabled()) return;
    begin(current_registry().span_series(name));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (series_ == nullptr) return;
    const std::uint64_t duration = now_ns() - start_ns_;
    series_->record(duration);
    detail::span_end(trace_, index_, duration);
  }

 private:
  void begin(SpanSeries& series);

  SpanSeries* series_ = nullptr;
  detail::ThreadTrace* trace_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int32_t index_ = -1;
};

/// Aggregate-only span for hot loops.
class SpanTimer {
 public:
  explicit SpanTimer(SpanSeries& series) {
    if (!obs::enabled()) return;
    series_ = &series;
    start_ns_ = now_ns();
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() {
    if (series_ != nullptr) series_->record(now_ns() - start_ns_);
  }

 private:
  SpanSeries* series_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#endif  // POR_OBS_DISABLE

}  // namespace por::obs
