// por/obs/registry.hpp
//
// The metrics registry at the heart of the por::obs observability
// subsystem.  Named counters, gauges, fixed-bucket histograms and span
// series live in a registry; the *hot path* (increment / observe /
// record) touches only pre-resolved atomic cells and is lock-free, the
// *registration* path (name -> handle) takes a mutex once.
//
// Registries are rank-aware: the in-process vmpi runtime maps MPI
// ranks to threads, so "per-rank metrics" means "per-thread
// registries".  `current_registry()` returns the thread's installed
// registry (see RegistryScope) and falls back to the process-wide
// `global_registry()`.  Instrumented objects resolve their handles at
// construction time, which naturally binds them to the registry of the
// rank that constructed them.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "por/obs/cells.hpp"

namespace por::obs {

// Memory-order policy (TSan audit, PR 3): every instrument cell below
// uses relaxed atomics ON PURPOSE, and this is race-free by
// construction, not by suppression:
//
//  * Counters/gauges/histogram buckets are independent monotone
//    aggregates.  No thread ever derives an ordering or a pointer from
//    their values, so there is no acquire/release edge to establish —
//    the atomicity alone removes the data race.
//  * Readers are snapshot paths (RunReport, exporters, tests) that run
//    either after the worker threads joined (thread::join provides the
//    happens-before that makes the final values visible) or
//    mid-flight for *approximate* live dashboards, where a stale value
//    is explicitly acceptable.
//  * The CAS loops (atomic_add / atomic_max) only need the RMW to be
//    atomic; relaxed failure order is fine because the loop re-reads.
//
// Anything that IS publication — registration maps, per-thread trace
// buffers (trace_detail.hpp), the ThreadPool queue — stays behind a
// mutex.  If you add an instrument whose readers act on the value
// (e.g. a back-pressure threshold), do NOT copy this pattern; give it
// acquire/release semantics instead.
//
// The relaxed cells themselves live in por/obs/cells.hpp, templated on
// the atomic type so the por::mc model checker can explore the exact
// protocol these instruments run (DESIGN.md §13).  The classes here
// are the std::atomic instantiations plus the non-racing logic
// (histogram bucket selection, span names).

/// Monotonically increasing event count (messages sent, matchings
/// performed, FFT transforms executed, ...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) { cell_.add(delta); }
  [[nodiscard]] std::uint64_t value() const { return cell_.value(); }
  void reset() { cell_.reset(); }

 private:
  BasicCounterCell<std::atomic> cell_;
};

/// Last-value instrument (queue depth, FSC crossing radius, ...).
class Gauge {
 public:
  void set(double value) { cell_.set(value); }
  /// Keep the maximum of the current and the offered value.
  void record_max(double value) { cell_.record_max(value); }
  void add(double delta) { cell_.add(delta); }
  [[nodiscard]] double value() const { return cell_.value(); }
  void reset() { cell_.reset(); }

 private:
  BasicGaugeCell<std::atomic> cell_;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// first N buckets; one implicit +inf overflow bucket follows.  The
/// bucket layout is chosen at registration and never changes.
/// observe() is lock-free: bucket selection plus three relaxed atomic
/// adds.  Geometric (log-spaced) ladders — the constructor detects
/// them — index the bucket in O(1) from one logarithm instead of
/// scanning, so wide latency ladders (decades of dynamic range) cost
/// the same as narrow ones.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Geometric bucket ladder for latency-style data: bounds start at
  /// `min_bound` and multiply by 10^(1/buckets_per_decade) until they
  /// reach (at least) `max_bound`.  Values above the ladder land in
  /// the +inf overflow bucket as usual.
  static std::vector<double> log_bounds(double min_bound, double max_bound,
                                        int buckets_per_decade);

  void observe(double value) {
    cells_.observe_bucket(bucket_index(value), value);
  }

  /// Interpolated quantile estimate (q in [0, 1]) from the bucket
  /// cumulative counts: linear within the containing bucket, the last
  /// finite bound for ranks that fall in the overflow bucket, NaN when
  /// the histogram is empty.  Resolution is the bucket width — for a
  /// log ladder, a constant relative error.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return cells_.bucket(i);
  }
  [[nodiscard]] std::uint64_t count() const { return cells_.count(); }
  [[nodiscard]] double sum() const { return cells_.sum(); }

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const;

  std::vector<double> bounds_;
  BasicHistogramCells<std::atomic> cells_;
  // O(1) index for geometric ladders: i ≈ ceil(log(v / b0) / log(r)),
  // nudged by at most one step to absorb floating-point error at the
  // boundaries.  Zero/false for irregular ladders (linear scan).
  bool geometric_ = false;
  double inv_log_ratio_ = 0.0;
};

/// Aggregated timing series for one span name: how often the span ran,
/// the total and the worst duration.  The raw per-occurrence trace
/// records live in the per-thread buffers (por/obs/span.hpp); this is
/// the always-cheap aggregate that survives in every snapshot.
class SpanSeries {
 public:
  explicit SpanSeries(std::string name) : name_(std::move(name)) {}

  void record(std::uint64_t duration_ns) { cell_.record(duration_ns); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t count() const { return cell_.count(); }
  [[nodiscard]] std::uint64_t total_ns() const { return cell_.total_ns(); }
  [[nodiscard]] std::uint64_t max_ns() const { return cell_.max_ns(); }
  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns()) * 1e-9;
  }

 private:
  std::string name_;
  BasicSpanCell<std::atomic> cell_;
};

/// One completed trace span: raw record with nesting information.
/// `parent` indexes into the same thread's record vector (-1 = root).
struct SpanRecord {
  const std::string* name = nullptr;  ///< points at the SpanSeries name
  std::uint64_t start_ns = 0;         ///< steady-clock, process-relative
  std::uint64_t duration_ns = 0;
  std::int32_t parent = -1;
  std::uint32_t thread = 0;  ///< registry-local thread ordinal
};

/// Immutable copy of a registry's state, suitable for export, wire
/// transfer and cross-rank merging.
struct Snapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    bool operator==(const HistogramData&) const = default;
  };
  struct SpanData {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    bool operator==(const SpanData&) const = default;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, SpanData> spans;

  bool operator==(const Snapshot&) const = default;
};

/// Histogram::quantile over exported/merged data: same estimator, same
/// edge cases (NaN when empty, last finite bound in overflow).
[[nodiscard]] double histogram_quantile(const Snapshot::HistogramData& data,
                                        double q);

namespace detail {
struct ThreadTrace;  // defined in span.cpp
}

/// Thread-safe named-instrument registry.  Handles returned by the
/// registration methods stay valid for the registry's lifetime (the
/// instruments live in deques, which never relocate elements).
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Find-or-create by name.  O(log n) under a mutex — resolve once,
  /// keep the reference, then the hot path is lock-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` must be sorted ascending; it is fixed at first
  /// registration (later calls with the same name ignore the bounds).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  /// histogram() with Histogram::log_bounds(min, max, per_decade) —
  /// the natural ladder for latency metrics (O(1) observe, quantiles
  /// with constant relative error).
  Histogram& log_histogram(const std::string& name, double min_bound,
                           double max_bound, int buckets_per_decade);
  SpanSeries& span_series(const std::string& name);

  /// Point-in-time copy of every instrument.
  [[nodiscard]] Snapshot snapshot() const;

  /// Move every completed raw trace record out of the per-thread
  /// buffers (oldest first per thread).  Open spans stay buffered.
  [[nodiscard]] std::vector<SpanRecord> drain_trace();

  /// Raw trace records currently buffered (completed only).
  [[nodiscard]] std::size_t trace_size() const;

  /// Unique id distinguishing registry instances even across reuse of
  /// the same address (thread-local caches key on this).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  // Internal: span.cpp attaches per-thread trace buffers here.
  std::shared_ptr<detail::ThreadTrace> attach_thread_trace();

 private:
  const std::uint64_t id_;
  mutable std::mutex mutex_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  std::map<std::string, SpanSeries*> spans_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::deque<SpanSeries> span_storage_;
  std::vector<std::shared_ptr<detail::ThreadTrace>> thread_traces_;
};

/// The process-wide default registry.
MetricsRegistry& global_registry();

/// The registry instrumentation resolves against: the innermost
/// RegistryScope installed on this thread, else global_registry().
MetricsRegistry& current_registry();

/// RAII: install `registry` as this thread's current registry.  The
/// vmpi drivers use one scope per rank thread so per-rank metrics stay
/// separate even though ranks share the address space.
class RegistryScope {
 public:
  explicit RegistryScope(MetricsRegistry& registry);
  RegistryScope(const RegistryScope&) = delete;
  RegistryScope& operator=(const RegistryScope&) = delete;
  ~RegistryScope();

 private:
  MetricsRegistry* previous_;
};

/// Global on/off switch for the *timing* hot paths (ScopedSpan /
/// SpanTimer).  Counters and gauges are single relaxed atomics and are
/// not gated.  Defaults to enabled.
void set_enabled(bool on);
[[nodiscard]] bool enabled();

}  // namespace por::obs
