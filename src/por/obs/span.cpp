#include "por/obs/span.hpp"

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "por/obs/trace_detail.hpp"
#include "por/util/contracts.hpp"

namespace por::obs {

std::string active_span_path() {
  detail::ThreadTrace* trace = detail::thread_trace_for(current_registry());
  std::lock_guard<std::mutex> lock(trace->mutex);
  std::string path;
  for (const std::int32_t index : trace->stack) {
    if (index < 0) continue;  // record was dropped (buffer full)
    const SpanRecord& record = trace->records[static_cast<std::size_t>(index)];
    if (record.name == nullptr) continue;
    if (!path.empty()) path += " > ";
    path += *record.name;
  }
  return path;
}

namespace {

/// Register the span stack as ambient context for contract-violation
/// reports.  Namespace-scope initializer: runs once when por_obs is
/// linked into the process, before any contract can fire.
[[maybe_unused]] const bool g_contracts_context_registered = [] {
  por::contracts::set_context_provider(&active_span_path);
  return true;
}();

}  // namespace

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

namespace detail {

namespace {

/// Thread-local cache: (registry id -> its trace buffer).  Entries
/// whose registry died (we are the only owner left) are pruned on the
/// next miss.
thread_local std::vector<std::pair<std::uint64_t, std::shared_ptr<ThreadTrace>>>
    tls_traces;

}  // namespace

ThreadTrace* thread_trace_for(MetricsRegistry& registry) {
  const std::uint64_t id = registry.id();
  for (const auto& [cached_id, trace] : tls_traces) {
    if (cached_id == id) return trace.get();
  }
  // Miss: prune buffers of dead registries, then attach a fresh one.
  std::erase_if(tls_traces,
                [](const auto& entry) { return entry.second.use_count() == 1; });
  std::shared_ptr<ThreadTrace> trace = registry.attach_thread_trace();
  ThreadTrace* raw = trace.get();
  tls_traces.emplace_back(id, std::move(trace));
  return raw;
}

void span_begin(ThreadTrace* trace, const std::string* name,
                std::uint64_t start_ns, std::int32_t& index_out) {
  std::lock_guard<std::mutex> lock(trace->mutex);
  const std::int32_t parent = trace->stack.empty() ? -1 : trace->stack.back();
  if (trace->records.size() < ThreadTrace::kMaxRecords) {
    index_out = static_cast<std::int32_t>(trace->records.size());
    trace->records.push_back(
        SpanRecord{name, start_ns, 0, parent, trace->ordinal});
  } else {
    index_out = -1;  // buffer full: aggregate still counts, record dropped
    ++trace->dropped;
  }
  trace->stack.push_back(index_out);
}

void span_end(ThreadTrace* trace, std::int32_t index,
              std::uint64_t duration_ns) {
  std::lock_guard<std::mutex> lock(trace->mutex);
  if (!trace->stack.empty()) trace->stack.pop_back();
  if (index >= 0) {
    trace->records[static_cast<std::size_t>(index)].duration_ns = duration_ns;
  }
}

}  // namespace detail

#ifndef POR_OBS_DISABLE
void ScopedSpan::begin(SpanSeries& series) {
  series_ = &series;
  trace_ = detail::thread_trace_for(current_registry());
  start_ns_ = now_ns();
  detail::span_begin(trace_, &series.name(), start_ns_, index_);
}
#endif

}  // namespace por::obs
