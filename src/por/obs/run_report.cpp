#include "por/obs/run_report.hpp"

#include <algorithm>

#include "por/obs/export.hpp"

namespace por::obs {

namespace {
constexpr vmpi::Tag kSnapshotTag = 990;
}

void RunReport::merge_in(const Snapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    merged.counters[name] += value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    auto [it, inserted] = merged.gauges.emplace(name, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    auto [it, inserted] = merged.histograms.emplace(name, data);
    if (inserted) continue;
    Snapshot::HistogramData& acc = it->second;
    if (acc.bounds != data.bounds || acc.buckets.size() != data.buckets.size()) {
      continue;  // incompatible layouts: keep the first seen
    }
    for (std::size_t i = 0; i < acc.buckets.size(); ++i) {
      acc.buckets[i] += data.buckets[i];
    }
    acc.count += data.count;
    acc.sum += data.sum;
  }
  for (const auto& [name, data] : snapshot.spans) {
    auto [it, inserted] = merged.spans.emplace(name, data);
    if (inserted) continue;
    it->second.count += data.count;
    it->second.total_ns += data.total_ns;
    it->second.max_ns = std::max(it->second.max_ns, data.max_ns);
  }
}

std::string RunReport::to_json() const {
  std::string out = "{\"merged\":";
  out += obs::to_json(merged);
  out += ",\"ranks\":[";
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    if (r > 0) out += ",";
    out += obs::to_json(per_rank[r]);
  }
  out += "]}";
  return out;
}

RunReport RunReport::gather(vmpi::Comm& comm, const Snapshot& mine) {
  RunReport report;
  if (comm.is_root()) {
    report.per_rank.resize(static_cast<std::size_t>(comm.size()));
    report.per_rank[0] = mine;
    for (int r = 1; r < comm.size(); ++r) {
      const std::vector<char> wire = comm.recv<char>(r, kSnapshotTag);
      report.per_rank[static_cast<std::size_t>(r)] =
          snapshot_from_json(std::string(wire.begin(), wire.end()));
    }
    for (const Snapshot& snapshot : report.per_rank) {
      report.merge_in(snapshot);
    }
  } else {
    const std::string wire = obs::to_json(mine);
    comm.send(0, kSnapshotTag, std::vector<char>(wire.begin(), wire.end()));
    report.per_rank.push_back(mine);
    report.merge_in(mine);
  }
  return report;
}

RunReport merge_snapshots(const std::vector<Snapshot>& snapshots) {
  RunReport report;
  report.per_rank = snapshots;
  for (const Snapshot& snapshot : snapshots) report.merge_in(snapshot);
  return report;
}

}  // namespace por::obs
