#include "por/obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace por::obs {

namespace {

// ---- shared formatting helpers --------------------------------------------

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_sanitize(const std::string& name) {
  std::string out = "por_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

// ---- minimal JSON parser (inverse of to_json) -----------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] double as_double() const {
    return is_integer ? static_cast<double>(integer) : number;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return is_integer ? integer : static_cast<std::uint64_t>(number);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("obs: JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            const unsigned code =
                static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // We only ever emit \u00XX for control characters.
            out += static_cast<char>(code & 0xFF);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      if (!fractional && token[0] != '-') {
        v.integer = std::stoull(token);
        v.is_integer = true;
        v.number = static_cast<double>(v.integer);
      } else {
        v.number = std::stod(token);
      }
    } catch (const std::exception&) {
      fail("bad number '" + token + "'");
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonValue& object, const std::string& key) {
  auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

}  // namespace

// ---- Prometheus ------------------------------------------------------------

std::string to_prometheus(const Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prom_sanitize(name);
    os << "# TYPE " << prom << " counter\n";
    os << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_sanitize(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << " " << fmt_double(value) << "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = prom_sanitize(name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      cumulative += data.buckets[i];
      os << prom << "_bucket{le=\"" << fmt_double(data.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << data.count << "\n";
    os << prom << "_sum " << fmt_double(data.sum) << "\n";
    os << prom << "_count " << data.count << "\n";
    // Pre-computed summary-style quantiles (interpolated from the
    // buckets) so dashboards get p50/p95/p99 without PromQL.  Labels
    // are spelled literally — %.17g would render 0.99 as
    // 0.98999999999999999.
    if (data.count > 0) {
      static constexpr struct {
        const char* label;
        double q;
      } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
      for (const auto& [label, q] : kQuantiles) {
        os << prom << "_quantile{quantile=\"" << label << "\"} "
           << fmt_double(histogram_quantile(data, q)) << "\n";
      }
    }
  }
  for (const auto& [name, data] : snapshot.spans) {
    const std::string prom = prom_sanitize(name);
    os << "# TYPE " << prom << "_seconds_total counter\n";
    os << prom << "_seconds_total "
       << fmt_double(static_cast<double>(data.total_ns) * 1e-9) << "\n";
    os << prom << "_count " << data.count << "\n";
    os << prom << "_seconds_max "
       << fmt_double(static_cast<double>(data.max_ns) * 1e-9) << "\n";
  }
  return os.str();
}

// ---- JSON ------------------------------------------------------------------

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "{";

  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},";

  os << "\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << fmt_double(value);
  }
  os << "},";

  os << "\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      if (i > 0) os << ",";
      os << fmt_double(data.bounds[i]);
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (i > 0) os << ",";
      os << data.buckets[i];
    }
    os << "],\"count\":" << data.count << ",\"sum\":" << fmt_double(data.sum);
    // Derived, not state: snapshot_from_json ignores unknown keys, so
    // round-trip equality is preserved while consumers (BENCH_serve,
    // dashboards) read p50/p95/p99 straight off the export.
    if (data.count > 0) {
      os << ",\"quantiles\":{\"p50\":"
         << fmt_double(histogram_quantile(data, 0.5))
         << ",\"p95\":" << fmt_double(histogram_quantile(data, 0.95))
         << ",\"p99\":" << fmt_double(histogram_quantile(data, 0.99)) << "}";
    }
    os << "}";
  }
  os << "},";

  os << "\"spans\":{";
  first = true;
  for (const auto& [name, data] : snapshot.spans) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << data.count
       << ",\"total_ns\":" << data.total_ns << ",\"max_ns\":" << data.max_ns
       << "}";
  }
  os << "}";

  os << "}";
  return os.str();
}

Snapshot snapshot_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("obs: snapshot JSON must be an object");
  }
  Snapshot snap;
  if (const JsonValue* counters = find(root, "counters")) {
    for (const auto& [name, value] : counters->object) {
      snap.counters.emplace(name, value.as_u64());
    }
  }
  if (const JsonValue* gauges = find(root, "gauges")) {
    for (const auto& [name, value] : gauges->object) {
      snap.gauges.emplace(name, value.as_double());
    }
  }
  if (const JsonValue* histograms = find(root, "histograms")) {
    for (const auto& [name, value] : histograms->object) {
      Snapshot::HistogramData data;
      if (const JsonValue* bounds = find(value, "bounds")) {
        for (const auto& b : bounds->array) data.bounds.push_back(b.as_double());
      }
      if (const JsonValue* buckets = find(value, "buckets")) {
        for (const auto& b : buckets->array) data.buckets.push_back(b.as_u64());
      }
      if (const JsonValue* count = find(value, "count")) {
        data.count = count->as_u64();
      }
      if (const JsonValue* sum = find(value, "sum")) {
        data.sum = sum->as_double();
      }
      snap.histograms.emplace(name, std::move(data));
    }
  }
  if (const JsonValue* spans = find(root, "spans")) {
    for (const auto& [name, value] : spans->object) {
      Snapshot::SpanData data;
      if (const JsonValue* count = find(value, "count")) {
        data.count = count->as_u64();
      }
      if (const JsonValue* total = find(value, "total_ns")) {
        data.total_ns = total->as_u64();
      }
      if (const JsonValue* mx = find(value, "max_ns")) {
        data.max_ns = mx->as_u64();
      }
      snap.spans.emplace(name, data);
    }
  }
  return snap;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open '" + path + "' for writing");
  }
  out << content;
  if (!out) {
    throw std::runtime_error("obs: short write to '" + path + "'");
  }
}

}  // namespace por::obs
