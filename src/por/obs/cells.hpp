// por/obs/cells.hpp
//
// The lock-free instrument cells underneath por::obs (counters,
// gauges, histogram buckets, span aggregates), factored out of
// registry.hpp and templated on the atomic type — the POR_MC hook
// (DESIGN.md §13).  Production code uses the std::atomic default
// through the Counter/Gauge/Histogram/SpanSeries wrappers in
// registry.hpp (byte-identical codegen to the pre-split classes); the
// por::mc model checker instantiates these SAME templates with
// mc::atomic and checks the relaxed-order protocol below across every
// schedule (tests/test_mc.cpp): per-cell monotonicity, no lost
// updates in the CAS loops, and exact totals once writers join.
//
// Memory-order policy (registry.hpp carries the long-form TSan-audit
// rationale): every access is relaxed ON PURPOSE — the cells are
// independent monotone aggregates, nobody derives an ordering or a
// pointer from their values, and the snapshot readers either run after
// a join (which provides the happens-before) or are explicitly
// approximate.  All relaxed sites in this file are covered by:
//
// por-atomic-file: stat
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace por::obs {

namespace detail {

/// fetch_add for an atomic<double> via CAS (portable pre-C++20-TS
/// toolchains; the loop is contention-free in practice).  Relaxed
/// failure order is fine: the loop re-reads.
template <typename AtomicDouble>
inline void atomic_add(AtomicDouble& cell, double delta) {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

template <typename AtomicDouble>
inline void atomic_max(AtomicDouble& cell, double value) {
  double cur = cell.load(std::memory_order_relaxed);
  while (cur < value &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

template <typename AtomicU64>
inline void atomic_max_u64(AtomicU64& cell, std::uint64_t value) {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < value &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotone event count.  add() is one relaxed fetch_add.
template <template <class> class AtomicT = std::atomic>
class BasicCounterCell {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  AtomicT<std::uint64_t> value_{0};
};

/// Last-value / accumulate / running-max cell over a double.
template <template <class> class AtomicT = std::atomic>
class BasicGaugeCell {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void record_max(double value) { detail::atomic_max(value_, value); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  AtomicT<double> value_{0.0};
};

/// The histogram's atomic storage: bucket counts + total count + sum.
/// Bucket *selection* (bounds, geometric indexing) stays in
/// obs::Histogram — this is only the racing part of the protocol.
template <template <class> class AtomicT = std::atomic>
class BasicHistogramCells {
 public:
  explicit BasicHistogramCells(std::size_t bucket_count)
      : buckets_(std::make_unique<AtomicT<std::uint64_t>[]>(bucket_count)) {
    for (std::size_t i = 0; i < bucket_count; ++i) {
      // por-atomic: init — pre-publication, not shared yet
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

  void observe_bucket(std::size_t index, double value) {
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, value);
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<AtomicT<std::uint64_t>[]> buckets_;
  AtomicT<std::uint64_t> count_{0};
  AtomicT<double> sum_{0.0};
};

/// Span aggregate: occurrence count, total and worst duration.
template <template <class> class AtomicT = std::atomic>
class BasicSpanCell {
 public:
  void record(std::uint64_t duration_ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(duration_ns, std::memory_order_relaxed);
    detail::atomic_max_u64(max_ns_, duration_ns);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }

 private:
  AtomicT<std::uint64_t> count_{0};
  AtomicT<std::uint64_t> total_ns_{0};
  AtomicT<std::uint64_t> max_ns_{0};
};

}  // namespace por::obs
