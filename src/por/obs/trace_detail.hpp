// por/obs/trace_detail.hpp
//
// Internal: the per-thread raw trace buffer shared between span.cpp
// (which appends) and registry.cpp (which drains).  Not installed as
// public API — include por/obs/span.hpp instead.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "por/obs/registry.hpp"

namespace por::obs::detail {

struct ThreadTrace {
  static constexpr std::size_t kMaxRecords = 1 << 16;

  std::mutex mutex;  ///< owner thread appends; drain reads cross-thread
  std::vector<SpanRecord> records;
  std::vector<std::int32_t> stack;  ///< open span indices (owner only)
  std::uint64_t dropped = 0;
  std::uint32_t ordinal = 0;
};

}  // namespace por::obs::detail
