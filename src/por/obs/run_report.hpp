// por/obs/run_report.hpp
//
// Cross-rank aggregation of metrics snapshots, mirroring how the paper
// reports its step times: wall times take the max over ranks (the
// slowest rank sets the cycle's wall clock), event counts take the
// sum.  The gather runs over vmpi — each rank serializes its snapshot
// with the JSON exporter and the root merges, so the wire format is
// the exporter format and stays debuggable.
#pragma once

#include <string>
#include <vector>

#include "por/obs/registry.hpp"
#include "por/vmpi/comm.hpp"

namespace por::obs {

/// Merged view of one run plus the per-rank snapshots it came from.
struct RunReport {
  Snapshot merged;                 ///< see merge rules on merge_into()
  std::vector<Snapshot> per_rank;  ///< rank-ordered originals

  /// Fold `snapshot` into `merged`:
  ///  counters    -> sum
  ///  gauges      -> max (paper-style slowest/largest rank)
  ///  histograms  -> element-wise bucket sum when the bucket layouts
  ///                 match; mismatched layouts keep the first seen
  ///  spans       -> count/total sum, max of max
  void merge_in(const Snapshot& snapshot);

  /// JSON document {"merged": <snapshot>, "ranks": [<snapshot>...]}.
  [[nodiscard]] std::string to_json() const;

  /// Collective: every rank contributes `mine`; the root returns the
  /// fully merged report (non-root ranks return a report holding only
  /// their own snapshot).  Must be called by every rank of `comm`.
  static RunReport gather(vmpi::Comm& comm, const Snapshot& mine);
};

/// Standalone merge of already-collected snapshots (e.g. parsed from
/// per-rank JSON files of separate processes).
[[nodiscard]] RunReport merge_snapshots(const std::vector<Snapshot>& snapshots);

}  // namespace por::obs
