#include "por/obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "por/obs/trace_detail.hpp"

namespace por::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};
std::atomic<bool> g_enabled{true};
thread_local MetricsRegistry* t_current_registry = nullptr;

}  // namespace

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() +
                                                              1)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted ascending");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_storage_.emplace_back();
  Counter* cell = &counter_storage_.back();
  counters_.emplace(name, cell);
  return *cell;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  gauge_storage_.emplace_back();
  Gauge* cell = &gauge_storage_.back();
  gauges_.emplace(name, cell);
  return *cell;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_storage_.emplace_back(std::move(upper_bounds));
  Histogram* cell = &histogram_storage_.back();
  histograms_.emplace(name, cell);
  return *cell;
}

SpanSeries& MetricsRegistry::span_series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  span_storage_.emplace_back(name);
  SpanSeries* cell = &span_storage_.back();
  spans_.emplace(name, cell);
  return *cell;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace(name, cell->value());
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace(name, cell->value());
  }
  for (const auto& [name, cell] : histograms_) {
    Snapshot::HistogramData data;
    data.bounds = cell->bounds();
    data.buckets.reserve(data.bounds.size() + 1);
    for (std::size_t i = 0; i <= data.bounds.size(); ++i) {
      data.buckets.push_back(cell->bucket(i));
    }
    data.count = cell->count();
    data.sum = cell->sum();
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, cell] : spans_) {
    snap.spans.emplace(name, Snapshot::SpanData{cell->count(), cell->total_ns(),
                                                cell->max_ns()});
  }
  return snap;
}

std::shared_ptr<detail::ThreadTrace> MetricsRegistry::attach_thread_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto trace = std::make_shared<detail::ThreadTrace>();
  trace->ordinal = static_cast<std::uint32_t>(thread_traces_.size());
  thread_traces_.push_back(trace);
  return trace;
}

std::vector<SpanRecord> MetricsRegistry::drain_trace() {
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = thread_traces_;
  }
  std::vector<SpanRecord> out;
  for (const auto& trace : traces) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    // Buffers with spans still open keep their records (parent indices
    // must stay stable until the whole batch is complete).
    if (!trace->stack.empty()) continue;
    const std::int32_t offset = static_cast<std::int32_t>(out.size());
    for (SpanRecord record : trace->records) {
      if (record.parent >= 0) record.parent += offset;
      out.push_back(record);
    }
    trace->records.clear();
  }
  return out;
}

std::size_t MetricsRegistry::trace_size() const {
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = thread_traces_;
  }
  std::size_t total = 0;
  for (const auto& trace : traces) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    total += trace->records.size();
  }
  return total;
}

// ---- globals ---------------------------------------------------------------

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& current_registry() {
  return t_current_registry != nullptr ? *t_current_registry
                                       : global_registry();
}

RegistryScope::RegistryScope(MetricsRegistry& registry)
    : previous_(t_current_registry) {
  t_current_registry = &registry;
}

RegistryScope::~RegistryScope() { t_current_registry = previous_; }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace por::obs
