#include "por/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "por/obs/trace_detail.hpp"

namespace por::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};
std::atomic<bool> g_enabled{true};
thread_local MetricsRegistry* t_current_registry = nullptr;

/// Shared quantile estimator over cumulative bucket counts.
/// `bucket_at(i)` for i in [0, bounds.size()] (last = overflow).
template <typename BucketAt>
double quantile_impl(const std::vector<double>& bounds, std::size_t n_buckets,
                     const BucketAt& bucket_at, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) total += bucket_at(i);
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // Rank of the q-th sample, 1-based, clamped so q=0 picks the first
  // and q=1 the last.
  const double target = std::max(1.0, q * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const std::uint64_t in_bucket = bucket_at(i);
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket has no finite upper edge; the last finite
      // bound is the best (under-)estimate we can defend.
      return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double frac = in_bucket == 0
                            ? 1.0
                            : (target - static_cast<double>(cumulative)) /
                                  static_cast<double>(in_bucket);
    return lo + frac * (hi - lo);
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

}  // namespace

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), cells_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted ascending");
  }
  // Detect a geometric ladder (what log_bounds produces): positive
  // bounds with a consistent ratio.  Enables the O(1) observe path.
  if (bounds_.size() >= 2 && bounds_.front() > 0.0) {
    const double ratio = bounds_[1] / bounds_[0];
    bool geometric = ratio > 1.0;
    for (std::size_t i = 1; geometric && i < bounds_.size(); ++i) {
      const double step = bounds_[i] / bounds_[i - 1];
      geometric = std::abs(step - ratio) <= 1e-9 * ratio;
    }
    if (geometric) {
      geometric_ = true;
      inv_log_ratio_ = 1.0 / std::log(ratio);
    }
  }
}

std::vector<double> Histogram::log_bounds(double min_bound, double max_bound,
                                          int buckets_per_decade) {
  if (!(min_bound > 0.0) || !(max_bound > min_bound) ||
      buckets_per_decade < 1) {
    throw std::invalid_argument(
        "Histogram::log_bounds: need 0 < min < max and >= 1 bucket/decade");
  }
  const double ratio = std::pow(10.0, 1.0 / buckets_per_decade);
  std::vector<double> bounds;
  // Generate multiplicatively from min_bound: i-th bound is exactly
  // min * ratio^i up to rounding, which the geometric detector and the
  // O(1) indexer both tolerate.
  double bound = min_bound;
  while (true) {
    bounds.push_back(bound);
    if (bound >= max_bound) break;
    bound *= ratio;
  }
  return bounds;
}

std::size_t Histogram::bucket_index(double value) const {
  if (bounds_.empty()) return 0;
  if (geometric_) {
    // !(value > front) also catches NaN (no ordering) — pin it to the
    // first bucket rather than feeding log() garbage.
    if (!(value > bounds_.front())) return 0;
    if (value > bounds_.back()) return bounds_.size();
    double estimate =
        std::ceil(std::log(value / bounds_.front()) * inv_log_ratio_);
    std::size_t i = static_cast<std::size_t>(std::max(0.0, estimate));
    if (i >= bounds_.size()) i = bounds_.size() - 1;
    // One-step nudge absorbs floating-point error at bucket edges.
    while (i > 0 && value <= bounds_[i - 1]) --i;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    return i;
  }
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) return i;
  }
  return bounds_.size();
}

double Histogram::quantile(double q) const {
  return quantile_impl(
      bounds_, bounds_.size() + 1,
      [this](std::size_t i) { return bucket(i); }, q);
}

double histogram_quantile(const Snapshot::HistogramData& data, double q) {
  return quantile_impl(
      data.bounds, data.buckets.size(),
      [&data](std::size_t i) { return data.buckets[i]; }, q);
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    // por-atomic: stat — unique-id allocation, atomicity alone suffices
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  counter_storage_.emplace_back();
  Counter* cell = &counter_storage_.back();
  counters_.emplace(name, cell);
  return *cell;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  gauge_storage_.emplace_back();
  Gauge* cell = &gauge_storage_.back();
  gauges_.emplace(name, cell);
  return *cell;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  histogram_storage_.emplace_back(std::move(upper_bounds));
  Histogram* cell = &histogram_storage_.back();
  histograms_.emplace(name, cell);
  return *cell;
}

Histogram& MetricsRegistry::log_histogram(const std::string& name,
                                          double min_bound, double max_bound,
                                          int buckets_per_decade) {
  return histogram(
      name, Histogram::log_bounds(min_bound, max_bound, buckets_per_decade));
}

SpanSeries& MetricsRegistry::span_series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  span_storage_.emplace_back(name);
  SpanSeries* cell = &span_storage_.back();
  spans_.emplace(name, cell);
  return *cell;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace(name, cell->value());
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace(name, cell->value());
  }
  for (const auto& [name, cell] : histograms_) {
    Snapshot::HistogramData data;
    data.bounds = cell->bounds();
    data.buckets.reserve(data.bounds.size() + 1);
    for (std::size_t i = 0; i <= data.bounds.size(); ++i) {
      data.buckets.push_back(cell->bucket(i));
    }
    data.count = cell->count();
    data.sum = cell->sum();
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, cell] : spans_) {
    snap.spans.emplace(name, Snapshot::SpanData{cell->count(), cell->total_ns(),
                                                cell->max_ns()});
  }
  return snap;
}

std::shared_ptr<detail::ThreadTrace> MetricsRegistry::attach_thread_trace() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto trace = std::make_shared<detail::ThreadTrace>();
  trace->ordinal = static_cast<std::uint32_t>(thread_traces_.size());
  thread_traces_.push_back(trace);
  return trace;
}

std::vector<SpanRecord> MetricsRegistry::drain_trace() {
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = thread_traces_;
  }
  std::vector<SpanRecord> out;
  for (const auto& trace : traces) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    // Buffers with spans still open keep their records (parent indices
    // must stay stable until the whole batch is complete).
    if (!trace->stack.empty()) continue;
    const std::int32_t offset = static_cast<std::int32_t>(out.size());
    for (SpanRecord record : trace->records) {
      if (record.parent >= 0) record.parent += offset;
      out.push_back(record);
    }
    trace->records.clear();
  }
  return out;
}

std::size_t MetricsRegistry::trace_size() const {
  std::vector<std::shared_ptr<detail::ThreadTrace>> traces;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = thread_traces_;
  }
  std::size_t total = 0;
  for (const auto& trace : traces) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    total += trace->records.size();
  }
  return total;
}

// ---- globals ---------------------------------------------------------------

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& current_registry() {
  return t_current_registry != nullptr ? *t_current_registry
                                       : global_registry();
}

RegistryScope::RegistryScope(MetricsRegistry& registry)
    : previous_(t_current_registry) {
  t_current_registry = &registry;
}

RegistryScope::~RegistryScope() { t_current_registry = previous_; }

// por-atomic: monitor — recording gate; samplers may observe it late
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// por-atomic: monitor — best-effort gate read, staleness acceptable
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace por::obs
