// por/core/brick_store.hpp
//
// The paper's rejected design alternative, built for real so it can be
// measured (§6): "On a distributed memory system we choose to
// replicate the electron density map and its 3D DFT on every node
// because we wanted to reduce the communication costs.  The
// alternative is to implement a shared virtual memory where 3D bricks
// of the electron density or its DFT are brought on demand in each
// node when they are needed, a strategy presented in [6]."
//
// BrickStore partitions the padded centered 3D spectrum into cubic
// bricks distributed round-robin across the ranks.  Each rank runs a
// small server thread answering brick requests; a client samples the
// spectrum through a bounded LRU brick cache, fetching remote bricks
// on demand.  TrafficStats plus the per-store counters give the
// communication cost the paper traded replication against.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "por/em/grid.hpp"
#include "por/stream/shard_mapping.hpp"
#include "por/vmpi/comm.hpp"

namespace por::core {

struct BrickStoreConfig {
  std::size_t brick_edge = 8;    ///< voxels per brick edge (must divide edge)
  std::size_t cache_bricks = 64; ///< max non-local bricks kept per rank
  /// Non-empty: after the scatter each rank spills its local bricks to
  /// an mmap-backed file `<spill_dir>/bricks.rank<r>.porb` and frees
  /// the in-memory copies (DESIGN.md §14) — the resident cost of the
  /// store becomes page cache, reclaimable under pressure, instead of
  /// anonymous heap.  The directory must exist.
  std::string spill_dir;
};

/// Distributed, demand-paged complex volume.
///
/// SPMD lifecycle (all ranks):
///   BrickStore store(comm, full_on_root, edge, config);  // scatter bricks
///   store.start_server();
///   ... store.sample(z, y, x) from the rank's own compute thread ...
///   store.stop_server();    // collective; all ranks must call it
class BrickStore {
 public:
  /// Collective: rank 0 supplies the full edge^3 volume; bricks are
  /// scattered round-robin by brick index.
  BrickStore(vmpi::Comm& comm, const em::Volume<em::cdouble>& full_on_root,
             std::size_t edge, const BrickStoreConfig& config);
  BrickStore(const BrickStore&) = delete;
  BrickStore& operator=(const BrickStore&) = delete;
  ~BrickStore();

  /// Launch this rank's request server.
  void start_server();

  /// Collective shutdown: sends a stop token to every server and joins
  /// the local one (each server exits after P stop tokens).
  void stop_server();

  /// Trilinear sample at fractional (z, y, x); zero outside the volume.
  /// Fetches any non-resident bricks from their owners.
  [[nodiscard]] em::cdouble sample(double z, double y, double x);

  [[nodiscard]] std::size_t edge() const { return edge_; }
  [[nodiscard]] std::size_t brick_edge() const { return config_.brick_edge; }
  [[nodiscard]] std::size_t bricks_per_axis() const { return grid_; }

  // ---- accounting --------------------------------------------------------
  [[nodiscard]] std::uint64_t local_hits() const { return local_hits_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t remote_fetches() const { return remote_fetches_; }
  [[nodiscard]] std::uint64_t bytes_fetched() const { return bytes_fetched_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Bytes of local bricks spilled to the mmap file (0 = in-memory).
  [[nodiscard]] std::uint64_t spilled_bytes() const { return spilled_bytes_; }

  /// Rank that owns a brick (round-robin by flat brick index).
  [[nodiscard]] int owner_of(std::size_t brick_index) const {
    return static_cast<int>(brick_index % static_cast<std::size_t>(comm_.size()));
  }

 private:
  void server_loop();
  void spill_local_bricks();
  /// Pointer to the brick's voxels (brick_edge^3 cdoubles).  Valid
  /// until the next brick() call (a remote fetch may evict the cache
  /// entry it pointed into) — callers consume it immediately.
  [[nodiscard]] const em::cdouble* brick(std::size_t index);
  /// Local brick payload whatever the storage (heap map or spill
  /// mapping); nullptr when this rank does not own `index`.
  [[nodiscard]] const em::cdouble* local_brick(std::size_t index) const;
  [[nodiscard]] em::cdouble voxel(long z, long y, long x);

  vmpi::Comm& comm_;
  BrickStoreConfig config_;
  std::size_t edge_ = 0;
  std::size_t grid_ = 0;  ///< bricks per axis

  std::unordered_map<std::size_t, std::vector<em::cdouble>> local_bricks_;

  // Spill state (config_.spill_dir non-empty): local bricks live in
  // the mapped file, `spill_slot_` maps brick index -> slot ordinal.
  stream::ShardMapping spill_map_;
  std::unordered_map<std::size_t, std::size_t> spill_slot_;
  std::uint64_t spilled_bytes_ = 0;
  std::vector<em::cdouble> reply_scratch_;  ///< server-thread send staging

  // LRU cache of remote bricks.
  std::unordered_map<std::size_t, std::vector<em::cdouble>> cache_;
  std::list<std::size_t> lru_;  // front = most recent
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> lru_pos_;

  std::thread server_;
  bool server_running_ = false;

  std::uint64_t local_hits_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t remote_fetches_ = 0;
  std::uint64_t bytes_fetched_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace por::core
