// por/core/cancel.hpp
//
// Cooperative cancellation + deadline propagation (DESIGN.md §15).
// A CancelToken is shared between a controller (the RefineService's
// dispatcher, a driver's watchdog, a client thread) and the refinement
// hot path: the controller flips the flag or arms a deadline, the hot
// path polls check() at natural preemption points — scheduler chunk
// boundaries (one view), sliding-window rounds, and every
// kCancelCheckStride scored candidates inside the w^3 loop — and
// unwinds with the structured Cancelled exception instead of silently
// burning workers on a job nobody wants anymore.
//
// The token is threaded two ways:
//   * MatchOptions::cancel — a matcher-lifetime token for the direct
//     API (one matcher per run, e.g. the examples and drivers);
//   * the explicit CancelToken* parameters of sliding_window_search /
//     OrientationRefiner::refine_view — per-CALL tokens for the
//     serving path, where one shared refiner executes many jobs with
//     different deadlines at once.
// When both are present the per-call token wins.
//
// Cancellation is cooperative and lossless: nothing is torn down
// mid-matching; the exception carries whether the cause was an
// explicit cancel or a deadline so the service can surface kCancelled
// vs kTimedOut as distinct terminal states.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

namespace por::core {

/// Candidates scored between token polls inside the sliding-window
/// scoring loop: frequent enough that a deadline lands within a few
/// hundred microseconds, rare enough to stay invisible in the profile.
inline constexpr std::size_t kCancelCheckStride = 64;

/// Thrown by CancelToken::check() (and thus out of the refinement
/// stack) when the work should stop.  Deliberately NOT a
/// resilience::Error: cancellation is not a failure of the data or the
/// machine, and nothing should retry or quarantine it.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(bool timed_out)
      : std::runtime_error(timed_out ? "cancelled: deadline exceeded"
                                     : "cancelled: cancel requested"),
        timed_out_(timed_out) {}

  /// True when the deadline fired, false for an explicit cancel().
  [[nodiscard]] bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

/// Shared cancel flag + optional absolute deadline.  All mutators and
/// observers are thread-safe; the clock is injectable (monotonic
/// nanoseconds) so deadline tests never sleep.
class CancelToken {
 public:
  CancelToken() = default;
  /// `clock_ns` supplies monotonic nanoseconds; null uses the steady
  /// clock.  The clock is fixed at construction (the hot path reads it
  /// with no synchronization).
  explicit CancelToken(std::function<std::uint64_t()> clock_ns)
      : clock_(std::move(clock_ns)) {}

  /// Request cancellation.  Idempotent; never blocks.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm (or re-arm) an absolute deadline in clock nanoseconds; 0
  /// disarms.
  void set_deadline_ns(std::uint64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  /// True once cancel() was called or the deadline passed.
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return deadline_expired();
  }

  /// True when the stop reason is (or would be) the deadline.  An
  /// explicit cancel() wins over a later deadline expiry.
  [[nodiscard]] bool timed_out() const {
    return !cancelled_.load(std::memory_order_acquire) && deadline_expired();
  }

  /// The cooperative poll: throws Cancelled{timed_out} when stopping
  /// is requested, returns otherwise.
  void check() const {
    if (cancelled_.load(std::memory_order_acquire)) throw Cancelled(false);
    if (deadline_expired()) throw Cancelled(true);
  }

 private:
  [[nodiscard]] bool deadline_expired() const {
    const std::uint64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    return deadline != 0 && now_ns() >= deadline;
  }

  [[nodiscard]] std::uint64_t now_ns() const {
    if (clock_) return clock_();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
  std::function<std::uint64_t()> clock_;  ///< immutable after construction
};

}  // namespace por::core
