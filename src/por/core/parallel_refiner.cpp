#include "por/core/parallel_refiner.hpp"

#include <stdexcept>
#include <string_view>

#include "por/em/pad.hpp"
#include "por/em/projection.hpp"
#include "por/fft/parallel_fft3d.hpp"
#include "por/io/map_io.hpp"
#include "por/io/stack_io.hpp"
#include "por/io/orientation_io.hpp"
#include "por/io/master_io.hpp"
#include "por/obs/registry.hpp"

namespace por::core {

namespace {

constexpr vmpi::Tag kViewBlockTag = 200;
constexpr vmpi::Tag kInitTag = 201;
constexpr vmpi::Tag kResultTag = 202;

/// Reduce a StepTimes with max over ranks so the report reflects the
/// slowest rank, which is what determines the wall clock of the cycle.
util::StepTimes reduce_times_max(vmpi::Comm& comm,
                                 const util::StepTimes& mine) {
  // Fixed step vocabulary keeps the reduction a plain vector allreduce.
  static const char* kSteps[] = {"3D DFT", "Read image", "FFT analysis",
                                 "Orientation refinement",
                                 "Center refinement"};
  std::vector<double> values;
  values.reserve(std::size(kSteps));
  for (const char* step : kSteps) values.push_back(mine.get(step));
  values = comm.allreduce(values, vmpi::ReduceOp::kMax);
  util::StepTimes out;
  for (std::size_t i = 0; i < std::size(kSteps); ++i) {
    out.add(kSteps[i], values[i]);
  }
  return out;
}

/// Rebuild the paper's StepTimes rows from the "step.<name>" span
/// series a rank recorded into its registry — the registry replaces
/// the bespoke per-step WallTimer plumbing this file used to carry.
util::StepTimes step_times_from(const obs::Snapshot& snapshot) {
  constexpr std::string_view kPrefix = "step.";
  util::StepTimes out;
  for (const auto& [name, data] : snapshot.spans) {
    if (std::string_view(name).substr(0, kPrefix.size()) != kPrefix) continue;
    out.add(name.substr(kPrefix.size()),
            static_cast<double>(data.total_ns) * 1e-9);
  }
  return out;
}

/// The shared steps (a)-(o) once the root holds map/views/orientations
/// in memory.
ParallelRefineReport refine_distributed(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config) {
  // Per-rank metrics: ranks are threads, so a rank-local registry
  // installed for the duration of this call keeps each rank's counters
  // and spans separate.  Everything constructed below (matcher,
  // refiner, FFT plans) resolves its handles against this registry.
  obs::MetricsRegistry rank_registry;
  obs::RegistryScope registry_scope(rank_registry);
  obs::SpanSeries& dft_span = rank_registry.span_series("step.3D DFT");
  obs::SpanSeries& read_span = rank_registry.span_series("step.Read image");

  // TrafficStats accumulates over the runtime's whole life (several
  // pipeline cycles may share one vmpi::Runtime); remember the baseline
  // so the report covers this call only.
  const int rank = comm.rank();
  const std::uint64_t messages_before = comm.traffic().rank_messages(rank);
  const std::uint64_t bytes_before = comm.traffic().rank_bytes(rank);

  const std::size_t padded_edge = l * config.match.pad;
  if (padded_edge % static_cast<std::size_t>(comm.size()) != 0) {
    throw std::invalid_argument(
        "parallel_refine: padded edge must divide by the rank count");
  }

  // ---- step (a): slab-parallel 3D DFT, replicated by all-gather ----
  util::WallTimer dft_timer;
  std::vector<em::cdouble> raw;
  if (comm.is_root()) {
    if (map_on_root.nx() != l || !map_on_root.is_cube()) {
      throw std::invalid_argument("parallel_refine: map edge mismatch");
    }
    raw = em::to_complex(em::pad_volume(map_on_root, config.match.pad))
              .storage();
  }
  raw = fft::parallel_fft3d_forward(comm, std::move(raw), padded_edge,
                                    fft::FftOptions{config.match.fft_threads});
  em::Volume<em::cdouble> raw_volume(padded_edge);
  raw_volume.storage() = std::move(raw);
  em::Volume<em::cdouble> spectrum =
      em::centered_from_raw_fft3(std::move(raw_volume));
  dft_span.record(static_cast<std::uint64_t>(dft_timer.seconds() * 1e9));

  // ---- steps (b)+(c): master distributes views and orientations ----
  util::WallTimer read_timer;
  const std::size_t m =
      comm.is_root() ? views_on_root.size() : 0;  // broadcast below
  std::vector<std::size_t> meta{m};
  comm.bcast(0, meta);
  const std::size_t total_views = meta[0];

  struct InitRecord {
    em::Orientation orientation;
    double cx, cy;
  };

  std::vector<em::Image<double>> my_views;
  std::vector<InitRecord> my_init;
  if (comm.is_root()) {
    if (initial_on_root.size() != total_views ||
        (!centers_on_root.empty() && centers_on_root.size() != total_views)) {
      throw std::invalid_argument("parallel_refine: input sizes disagree");
    }
    for (int r = comm.size() - 1; r >= 0; --r) {
      const std::size_t begin = io::block_begin(total_views, comm.size(), r);
      const std::size_t share = io::block_share(total_views, comm.size(), r);
      std::vector<double> flat;
      flat.reserve(share * l * l);
      std::vector<InitRecord> init;
      init.reserve(share);
      for (std::size_t i = begin; i < begin + share; ++i) {
        flat.insert(flat.end(), views_on_root[i].storage().begin(),
                    views_on_root[i].storage().end());
        init.push_back(InitRecord{
            initial_on_root[i],
            centers_on_root.empty() ? 0.0 : centers_on_root[i].first,
            centers_on_root.empty() ? 0.0 : centers_on_root[i].second});
      }
      if (r == 0) {
        my_init = std::move(init);
        my_views.reserve(share);
        for (std::size_t i = 0; i < share; ++i) {
          em::Image<double> img(l, l);
          std::copy(flat.begin() + i * l * l, flat.begin() + (i + 1) * l * l,
                    img.storage().begin());
          my_views.push_back(std::move(img));
        }
      } else {
        comm.send(r, kViewBlockTag, flat);
        comm.send(r, kInitTag, init);
      }
    }
  } else {
    auto flat = comm.recv<double>(0, kViewBlockTag);
    my_init = comm.recv<InitRecord>(0, kInitTag);
    const std::size_t share = my_init.size();
    my_views.reserve(share);
    for (std::size_t i = 0; i < share; ++i) {
      em::Image<double> img(l, l);
      std::copy(flat.begin() + i * l * l, flat.begin() + (i + 1) * l * l,
                img.storage().begin());
      my_views.push_back(std::move(img));
    }
  }
  read_span.record(static_cast<std::uint64_t>(read_timer.seconds() * 1e9));

  // ---- steps (d)-(l): refine my block ----
  OrientationRefiner refiner(
      FourierMatcher(std::move(spectrum), l, config.matcher_options()),
      config);
  std::vector<ViewResult> my_results;
  my_results.reserve(my_views.size());
  for (std::size_t i = 0; i < my_views.size(); ++i) {
    my_results.push_back(refiner.refine_view(my_views[i],
                                             my_init[i].orientation,
                                             my_init[i].cx, my_init[i].cy));
  }
  // The refiner's per-step spans ("step.FFT analysis", ...) landed in
  // rank_registry already; no bespoke StepTimes folding is needed.

  // ---- step (m): wait for all nodes ----
  comm.barrier();

  // ---- step (o): gather results on the master ----
  ParallelRefineReport report;
  report.results = comm.gather(0, my_results);
  std::uint64_t my_matchings = 0, my_slides = 0;
  for (const auto& r : my_results) {
    my_matchings += r.matchings;
    my_slides += static_cast<std::uint64_t>(r.window_slides);
  }
  report.total_matchings =
      comm.allreduce_value(my_matchings, vmpi::ReduceOp::kSum);
  report.total_slides = comm.allreduce_value(my_slides, vmpi::ReduceOp::kSum);

  // Fold this rank's share of the runtime traffic accounting into the
  // registry, then snapshot once: the snapshot both rebuilds the
  // paper's StepTimes table and feeds the cross-rank run report.
  rank_registry.gauge("vmpi.rank").set(static_cast<double>(rank));
  rank_registry.counter("vmpi.sent_messages")
      .add(comm.traffic().rank_messages(rank) - messages_before);
  rank_registry.counter("vmpi.sent_bytes")
      .add(comm.traffic().rank_bytes(rank) - bytes_before);

  const obs::Snapshot snapshot = rank_registry.snapshot();
  report.times = reduce_times_max(comm, step_times_from(snapshot));
  report.obs = obs::RunReport::gather(comm, snapshot);
  return report;
}

}  // namespace

ParallelRefineReport parallel_refine(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config) {
  return refine_distributed(comm, map_on_root, l, views_on_root,
                            initial_on_root, centers_on_root, config);
}

ParallelRefineReport parallel_refine_files(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& stack_path, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config) {
  // Step (a.1): the master reads the density map and the inputs.
  em::Volume<double> map;
  std::vector<em::Image<double>> views;
  std::vector<em::Orientation> initial;
  std::vector<std::pair<double, double>> centers;
  std::size_t l = 0;
  if (comm.is_root()) {
    map = io::read_map(map_path);
    views = io::read_stack(stack_path);
    const auto records = io::read_orientations(orientations_in_path);
    if (records.size() != views.size()) {
      throw std::runtime_error(
          "parallel_refine_files: stack and orientation file disagree");
    }
    initial.reserve(records.size());
    centers.reserve(records.size());
    for (const auto& rec : records) {
      initial.push_back(rec.orientation);
      centers.emplace_back(rec.center_x, rec.center_y);
    }
    l = map.nx();
  }
  std::vector<std::size_t> meta{l};
  comm.bcast(0, meta);
  l = meta[0];

  ParallelRefineReport report = refine_distributed(
      comm, map, l, views, initial, centers, config);

  if (comm.is_root()) {
    std::vector<io::ViewOrientation> out;
    out.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      out.push_back(io::ViewOrientation{i, report.results[i].orientation,
                                        report.results[i].center_x,
                                        report.results[i].center_y});
    }
    io::write_orientations(orientations_out_path, out,
                           "refined by por::core::parallel_refine_files");
  }
  return report;
}

}  // namespace por::core
