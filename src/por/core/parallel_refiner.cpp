#include "por/core/parallel_refiner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "por/em/pad.hpp"
#include "por/em/projection.hpp"
#include "por/fft/parallel_fft3d.hpp"
#include "por/io/map_io.hpp"
#include "por/io/stack_io.hpp"
#include "por/io/orientation_io.hpp"
#include "por/io/master_io.hpp"
#include "por/obs/registry.hpp"
#include "por/resilience/checkpoint.hpp"
#include "por/resilience/retry.hpp"
#include "por/serve/scheduler.hpp"
#include "por/stream/view_cursor.hpp"
#include "por/stream/view_source.hpp"
#include "por/util/log.hpp"

namespace por::core {

namespace {

// Work protocol tags (DESIGN.md §10).  kCtrlTag carries a
// vector<u64> of global view indices from the master: non-empty means
// "refine these" and is followed by matching kInitTag / kViewBlockTag
// payloads; empty means "stop".  kResultTag carries one ResultMsg per
// refined view back to the master — each doubles as a heartbeat — and
// a kDoneIndex sentinel closing a batch.
constexpr vmpi::Tag kViewBlockTag = 200;
constexpr vmpi::Tag kInitTag = 201;
constexpr vmpi::Tag kResultTag = 202;
constexpr vmpi::Tag kCtrlTag = 203;

constexpr std::uint64_t kDoneIndex =
    std::numeric_limits<std::uint64_t>::max();

/// Initial parameters of one view, as shipped to the refining rank.
struct InitRecord {
  em::Orientation orientation;
  double cx = 0.0, cy = 0.0;
};

/// One refined view streamed back to the master (or, with
/// view_index == kDoneIndex, a batch-complete marker).
struct ResultMsg {
  std::uint64_t view_index = kDoneIndex;
  ViewResult result;
};

resilience::CheckpointRecord to_record(std::uint64_t index,
                                       const ViewResult& vr) {
  resilience::CheckpointRecord rec;
  rec.view_index = index;
  rec.theta = vr.orientation.theta;
  rec.phi = vr.orientation.phi;
  rec.omega = vr.orientation.omega;
  rec.center_x = vr.center_x;
  rec.center_y = vr.center_y;
  rec.final_distance = vr.final_distance;
  rec.matchings = vr.matchings;
  rec.cache_hits = vr.cache_hits;
  rec.center_evals = vr.center_evals;
  rec.window_slides = vr.window_slides;
  rec.quarantined = vr.quarantined;
  return rec;
}

ViewResult from_record(const resilience::CheckpointRecord& rec) {
  ViewResult vr;
  vr.orientation = em::Orientation{rec.theta, rec.phi, rec.omega};
  vr.center_x = rec.center_x;
  vr.center_y = rec.center_y;
  vr.final_distance = rec.final_distance;
  vr.matchings = rec.matchings;
  vr.cache_hits = rec.cache_hits;
  vr.center_evals = rec.center_evals;
  vr.window_slides = rec.window_slides;
  vr.quarantined = rec.quarantined;
  return vr;
}

/// Scoped override of the rank's communication deadline
/// (ResilienceOptions::comm_deadline); restores the previous deadline
/// even when the refinement throws.
class DeadlineGuard {
 public:
  DeadlineGuard(vmpi::Comm& comm, std::chrono::milliseconds deadline)
      : comm_(comm), saved_(comm.deadline()) {
    if (deadline.count() > 0) comm_.set_deadline(deadline);
  }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;
  ~DeadlineGuard() { comm_.set_deadline(saved_); }

 private:
  vmpi::Comm& comm_;
  std::chrono::milliseconds saved_;
};

/// Reduce a StepTimes with max over ranks so the report reflects the
/// slowest rank, which is what determines the wall clock of the cycle.
util::StepTimes reduce_times_max(vmpi::Comm& comm,
                                 const util::StepTimes& mine) {
  // Fixed step vocabulary keeps the reduction a plain vector allreduce.
  static const char* kSteps[] = {"3D DFT", "Read image", "FFT analysis",
                                 "Orientation refinement",
                                 "Center refinement"};
  std::vector<double> values;
  values.reserve(std::size(kSteps));
  for (const char* step : kSteps) values.push_back(mine.get(step));
  values = comm.allreduce(values, vmpi::ReduceOp::kMax);
  util::StepTimes out;
  for (std::size_t i = 0; i < std::size(kSteps); ++i) {
    out.add(kSteps[i], values[i]);
  }
  return out;
}

/// Rebuild the paper's StepTimes rows from the "step.<name>" span
/// series a rank recorded into its registry — the registry replaces
/// the bespoke per-step WallTimer plumbing this file used to carry.
util::StepTimes step_times_from(const obs::Snapshot& snapshot) {
  constexpr std::string_view kPrefix = "step.";
  util::StepTimes out;
  for (const auto& [name, data] : snapshot.spans) {
    if (std::string_view(name).substr(0, kPrefix.size()) != kPrefix) continue;
    out.add(name.substr(kPrefix.size()),
            static_cast<double>(data.total_ns) * 1e-9);
  }
  return out;
}

/// Per-worker bookkeeping on the master side.
struct WorkerState {
  std::vector<std::uint64_t> pending;  ///< assigned, no result yet
  bool done = true;   ///< batch-complete marker received (idle)
  bool alive = true;  ///< false once the failure detector fired
};

/// The shared steps (a)-(o) once the root holds the map and the
/// orientations in memory and can reach the views through a
/// stream::ViewSource (in-core vector, monolithic stack, or sharded
/// stack — the protocol below never needs the whole stack resident).
/// `source_on_root` must be non-null on the root rank only.
ParallelRefineReport refine_distributed(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    stream::ViewSource* source_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config) {
  // Per-rank metrics: ranks are threads, so a rank-local registry
  // installed for the duration of this call keeps each rank's counters
  // and spans separate.  Everything constructed below (matcher,
  // refiner, FFT plans) resolves its handles against this registry.
  obs::MetricsRegistry rank_registry;
  obs::RegistryScope registry_scope(rank_registry);
  obs::SpanSeries& dft_span = rank_registry.span_series("step.3D DFT");
  obs::SpanSeries& read_span = rank_registry.span_series("step.Read image");

  // TrafficStats and FaultStats accumulate over the runtime's whole
  // life (several pipeline cycles may share one vmpi::Runtime);
  // remember the baselines so the report covers this call only.
  const int rank = comm.rank();
  const std::uint64_t messages_before = comm.traffic().rank_messages(rank);
  const std::uint64_t bytes_before = comm.traffic().rank_bytes(rank);
  const vmpi::FaultStats faults_before = comm.fault_stats();

  // Blocking receives (and thus collectives) on every rank honor the
  // configured deadline for the duration of this call, so a dead peer
  // yields a typed vmpi::CommTimeout instead of an eternal hang.
  const DeadlineGuard deadline_guard(comm, config.resilience.comm_deadline);

  const std::size_t padded_edge = l * config.match.pad;
  if (padded_edge % static_cast<std::size_t>(comm.size()) != 0) {
    throw std::invalid_argument(
        "parallel_refine: padded edge must divide by the rank count");
  }

  // ---- step (a): slab-parallel 3D DFT, replicated by all-gather ----
  util::WallTimer dft_timer;
  std::vector<em::cdouble> raw;
  if (comm.is_root()) {
    if (map_on_root.nx() != l || !map_on_root.is_cube()) {
      throw std::invalid_argument("parallel_refine: map edge mismatch");
    }
    raw = em::to_complex(em::pad_volume(map_on_root, config.match.pad))
              .storage();
  }
  raw = fft::parallel_fft3d_forward(comm, std::move(raw), padded_edge,
                                    fft::FftOptions{config.match.fft_threads});
  em::Volume<em::cdouble> raw_volume(padded_edge);
  raw_volume.storage() = std::move(raw);
  em::Volume<em::cdouble> spectrum =
      em::centered_from_raw_fft3(std::move(raw_volume));
  dft_span.record(static_cast<std::uint64_t>(dft_timer.seconds() * 1e9));

  // Every rank may be handed work (initially or by reassignment), so
  // every rank builds the refiner.
  const OrientationRefiner refiner(
      FourierMatcher(std::move(spectrum), l, config.matcher_options()),
      config);

  ParallelRefineReport report;
  std::uint64_t my_matchings = 0, my_slides = 0;

  if (comm.is_root()) {
    // ---- master: restore, distribute, listen, recover --------------------
    stream::ViewSource& source = *source_on_root;
    const std::size_t total_views = static_cast<std::size_t>(source.count());
    if (initial_on_root.size() != total_views ||
        (!centers_on_root.empty() && centers_on_root.size() != total_views)) {
      throw std::invalid_argument("parallel_refine: input sizes disagree");
    }
    const auto center_of = [&](std::uint64_t i) {
      return centers_on_root.empty() ? std::pair<double, double>{0.0, 0.0}
                                     : centers_on_root[i];
    };

    report.results.assign(total_views, ViewResult{});
    std::vector<char> recorded(total_views, 0);
    std::size_t n_recorded = 0;

    // Checkpoint restore (step 0 of a resumed run): views already in
    // the log are final — per-view refinement is deterministic, so
    // restoring beats recomputing bit-for-bit.
    std::vector<resilience::CheckpointRecord> seed;
    const ResilienceOptions& res = config.resilience;
    if (!res.checkpoint_path.empty() && res.resume) {
      seed = resilience::load_checkpoint(res.checkpoint_path);
      for (const auto& rec : seed) {
        if (rec.view_index >= total_views) {
          util::log_warn("parallel_refine: checkpoint record for view ",
                         rec.view_index, " outside stack of ", total_views,
                         " views; ignored");
          continue;
        }
        if (recorded[rec.view_index]) continue;
        recorded[rec.view_index] = 1;
        report.results[rec.view_index] = from_record(rec);
        ++n_recorded;
        ++report.restored_views;
      }
    }
    std::optional<resilience::CheckpointWriter> checkpoint;
    if (!res.checkpoint_path.empty()) {
      checkpoint.emplace(res.checkpoint_path, res.checkpoint_flush_every,
                         std::move(seed));
    }

    const auto record_result = [&](std::uint64_t index, const ViewResult& vr) {
      // First result wins.  A rank falsely declared dead may deliver a
      // duplicate after its views were reassigned; the duplicate is
      // bit-identical anyway (deterministic per-view refinement), so
      // dropping it keeps the bookkeeping single-writer.
      if (index >= total_views || recorded[index]) return;
      recorded[index] = 1;
      report.results[index] = vr;
      ++n_recorded;
      if (checkpoint) checkpoint->append(to_record(index, vr));
    };
    // One reused view-sized buffer for every master-local refinement;
    // the stack itself stays out of core.
    em::Image<double> scratch(l, l);
    const auto refine_pixels = [&](std::uint64_t index, const double* pixels) {
      std::copy(pixels, pixels + l * l, scratch.storage().begin());
      ViewResult vr =
          refiner.refine_view(scratch, initial_on_root[index],
                              center_of(index).first, center_of(index).second);
      my_matchings += vr.matchings;
      my_slides += static_cast<std::uint64_t>(vr.window_slides);
      return vr;
    };
    const auto refine_local = [&](std::uint64_t index) {
      source.fetch(index, scratch.data());
      ViewResult vr =
          refiner.refine_view(scratch, initial_on_root[index],
                              center_of(index).first, center_of(index).second);
      my_matchings += vr.matchings;
      my_slides += static_cast<std::uint64_t>(vr.window_slides);
      return vr;
    };

    // ---- steps (b)+(c): distribute the remaining views -------------------
    util::WallTimer read_timer;
    std::vector<std::uint64_t> remaining;
    remaining.reserve(total_views - n_recorded);
    for (std::uint64_t i = 0; i < total_views; ++i) {
      if (!recorded[i]) remaining.push_back(i);
    }

    const auto inits_for = [&](const std::vector<std::uint64_t>& idxs) {
      std::vector<InitRecord> init;
      init.reserve(idxs.size());
      for (const std::uint64_t i : idxs) {
        init.push_back(InitRecord{initial_on_root[i], center_of(i).first,
                                  center_of(i).second});
      }
      return init;
    };
    const auto pixels_for = [&](const std::vector<std::uint64_t>& idxs) {
      // Ranged streaming (satellite of DESIGN.md §14): the master
      // fetches exactly the block being shipped — at no point does it
      // hold more than one assignment's pixels plus its own cursor
      // window.
      if (!idxs.empty()) source.will_need(idxs.front(), idxs.size());
      std::vector<double> flat(idxs.size() * l * l);
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        source.fetch(idxs[k], flat.data() + k * l * l);
      }
      return flat;
    };

    std::vector<WorkerState> workers(comm.size());
    const auto send_assignment = [&](int r, std::vector<std::uint64_t> idxs) {
      comm.send(r, kCtrlTag, idxs);
      comm.send(r, kInitTag, inits_for(idxs));
      comm.send(r, kViewBlockTag, pixels_for(idxs));
      workers[r].done = false;
      workers[r].pending = std::move(idxs);
    };

    std::vector<std::uint64_t> my_block;
    for (int r = 0; r < comm.size(); ++r) {
      const std::size_t begin =
          io::block_begin(remaining.size(), comm.size(), r);
      const std::size_t share =
          io::block_share(remaining.size(), comm.size(), r);
      std::vector<std::uint64_t> idxs(remaining.begin() + begin,
                                      remaining.begin() + begin + share);
      if (r == 0) {
        my_block = std::move(idxs);
      } else if (!idxs.empty()) {
        // A rank with no initial share simply never hears kCtrlTag
        // until the final stop; it stays idle and reassignable.
        send_assignment(r, std::move(idxs));
      }
    }
    read_span.record(static_cast<std::uint64_t>(read_timer.seconds() * 1e9));

    // ---- steps (d)-(l) + failure detection + recovery --------------------
    std::vector<std::uint64_t> orphans;
    const auto erase_pending = [&](std::uint64_t index) {
      // A reassigned view can sit in up to two ranks' pending sets.
      for (auto& w : workers) {
        auto it = std::find(w.pending.begin(), w.pending.end(), index);
        if (it != w.pending.end()) w.pending.erase(it);
      }
    };
    const auto process_msg = [&](int src, const ResultMsg& msg) {
      WorkerState& w = workers[src];
      w.alive = true;  // any message proves life, even post-declaration
      if (msg.view_index == kDoneIndex) {
        w.done = true;
        if (!w.pending.empty()) {
          // The batch closed but some of its results never arrived —
          // they were lost in transit (dropped messages).  Recover
          // them the same way as a dead rank's views.
          orphans.insert(orphans.end(), w.pending.begin(), w.pending.end());
          w.pending.clear();
        }
        return;
      }
      if (msg.view_index >= total_views) {
        util::log_warn("parallel_refine: discarding malformed result for "
                       "view ",
                       msg.view_index, " from rank ", src);
        return;
      }
      record_result(msg.view_index, msg.result);
      erase_pending(msg.view_index);
    };
    const auto dispatch_orphans = [&]() {
      if (orphans.empty()) return;
      report.reassigned_views += orphans.size();
      rank_registry.counter("resilience.reassigned_views")
          .add(orphans.size());
      std::vector<int> idle;
      for (int r = 1; r < comm.size(); ++r) {
        if (workers[r].alive && workers[r].done) idle.push_back(r);
      }
      if (idle.empty()) {
        // Nobody to delegate to: the master is always alive, refine
        // the orphans here so the run is guaranteed to terminate.
        for (const std::uint64_t index : orphans) {
          if (!recorded[index]) record_result(index, refine_local(index));
        }
      } else {
        std::vector<std::vector<std::uint64_t>> shares(idle.size());
        for (std::size_t i = 0; i < orphans.size(); ++i) {
          shares[i % idle.size()].push_back(orphans[i]);
        }
        for (std::size_t k = 0; k < idle.size(); ++k) {
          if (!shares[k].empty()) {
            send_assignment(idle[k], std::move(shares[k]));
          }
        }
      }
      orphans.clear();
    };

    // The master refines its own block first, draining worker results
    // opportunistically between views so the mailbox stays shallow.
    int src = 0;
    const auto drain_mailbox = [&] {
      while (const auto msg = comm.try_recv_any_value<ResultMsg>(
                 kResultTag, src, std::chrono::milliseconds{0})) {
        process_msg(src, *msg);
      }
      dispatch_orphans();
    };
    if (config.refine_workers != 1 && my_block.size() > 1) {
      // Work-stealing over the master's own share.  Sub-batches of one
      // chunk per worker keep the mailbox drains frequent; results are
      // recorded serially on this rank thread (record_result and the
      // checkpoint writer are single-writer), so the protocol state is
      // untouched by the parallelism.
      serve::SchedulerOptions sched_options;
      sched_options.workers =
          config.refine_workers < 0
              ? 1
              : static_cast<std::size_t>(config.refine_workers);
      serve::Scheduler scheduler(sched_options);
      const std::size_t stride = std::max<std::size_t>(scheduler.workers(), 1);
      std::vector<double> flat;
      for (std::size_t lo = 0; lo < my_block.size(); lo += stride) {
        drain_mailbox();
        const std::size_t hi = std::min(my_block.size(), lo + stride);
        // Pre-fetch the sub-batch serially: ViewSource fetches are
        // rank-thread state (seeks, shard LRU), so the scheduler's
        // worker threads only ever touch the flat pixel buffer.
        flat.resize((hi - lo) * l * l);
        for (std::size_t k = 0; k < hi - lo; ++k) {
          source.fetch(my_block[lo + k], flat.data() + k * l * l);
        }
        std::vector<ViewResult> sub(hi - lo);
        scheduler.run(hi - lo, [&](std::size_t k) {
          const std::uint64_t index = my_block[lo + k];
          em::Image<double> img(l, l);
          std::copy(flat.begin() + static_cast<std::ptrdiff_t>(k * l * l),
                    flat.begin() + static_cast<std::ptrdiff_t>((k + 1) * l * l),
                    img.storage().begin());
          sub[k] = refiner.refine_view(img, initial_on_root[index],
                                       center_of(index).first,
                                       center_of(index).second);
        });
        for (std::size_t k = 0; k < sub.size(); ++k) {
          my_matchings += sub[k].matchings;
          my_slides += static_cast<std::uint64_t>(sub[k].window_slides);
          record_result(my_block[lo + k], sub[k]);
        }
      }
    } else if (my_block.size() > 1 &&
               my_block.back() - my_block.front() + 1 == my_block.size()) {
      // Contiguous block (the common non-resume case): stream it
      // through a prefetching cursor so the next chunk's pixels are
      // faulting in while the current view is being matched.
      stream::PrefetchOptions prefetch;
      prefetch.depth = config.stream.prefetch_depth;
      prefetch.batch_views = config.stream.batch_views;
      stream::ViewCursor cursor(source, my_block.front(), my_block.size(),
                                prefetch);
      for (const std::uint64_t index : my_block) {
        drain_mailbox();
        record_result(index, refine_pixels(index, cursor.next()));
      }
    } else {
      for (const std::uint64_t index : my_block) {
        drain_mailbox();
        record_result(index, refine_local(index));
      }
    }

    // Event loop: every incoming result is a heartbeat.  Total silence
    // for heartbeat_timeout while views are still outstanding means
    // the ranks holding them are gone; their views become orphans.
    while (n_recorded < total_views) {
      const auto msg = comm.try_recv_any_value<ResultMsg>(
          kResultTag, src, config.resilience.heartbeat_timeout);
      if (msg) {
        process_msg(src, *msg);
        dispatch_orphans();
        continue;
      }
      bool declared = false;
      for (int r = 1; r < comm.size(); ++r) {
        WorkerState& w = workers[r];
        if (w.alive && !w.done && !w.pending.empty()) {
          util::log_warn("parallel_refine: rank ", r, " silent for ",
                         config.resilience.heartbeat_timeout.count(),
                         " ms with ", w.pending.size(),
                         " views outstanding; declaring it dead");
          w.alive = false;
          ++report.dead_ranks;
          rank_registry.counter("resilience.dead_ranks").add();
          orphans.insert(orphans.end(), w.pending.begin(), w.pending.end());
          w.pending.clear();
          declared = true;
        }
      }
      if (declared) {
        dispatch_orphans();
      } else {
        // Silence with nothing assigned anywhere: unreachable by
        // construction, but never spin — finish locally.
        for (std::uint64_t i = 0; i < total_views; ++i) {
          if (!recorded[i]) record_result(i, refine_local(i));
        }
      }
    }
    if (checkpoint) checkpoint->flush();

    // Release every worker — including zombies, which drain their
    // queue until this empty control message arrives.
    for (int r = 1; r < comm.size(); ++r) {
      comm.send(r, kCtrlTag, std::vector<std::uint64_t>{});
    }

    for (const auto& vr : report.results) {
      if (vr.quarantined != 0) ++report.quarantined_views;
    }
    if (report.restored_views > 0) {
      rank_registry.counter("resilience.checkpoint.restored_views")
          .add(report.restored_views);
    }
  } else {
    // ---- worker: refine batches until the master says stop ---------------
    // `step` numbers the views this rank attempts, monotonically over
    // the whole call; FaultPlan::kill_rank_at_step matches against it.
    std::uint64_t step = 0;
    bool killed = false;
    // Work-stealing within the rank (refine_workers != 1): the rank's
    // batch fans out across a scheduler instead of a serial loop.  The
    // Comm stays on this thread — fault points are consumed up front
    // (kills land at batch granularity) and results are sent after the
    // batch completes, so the wire protocol is byte-identical.
    std::unique_ptr<serve::Scheduler> scheduler;
    if (config.refine_workers != 1) {
      serve::SchedulerOptions sched_options;
      sched_options.workers =
          config.refine_workers < 0
              ? 1
              : static_cast<std::size_t>(config.refine_workers);
      scheduler = std::make_unique<serve::Scheduler>(sched_options);
    }
    while (true) {
      // Waiting for work is waiting on the master; under a configured
      // deadline a dead master surfaces as CommTimeout here instead of
      // an eternal hang.
      // por-lint: allow(vmpi-recv-timeout) bounded by the rank deadline —
      // a dead master surfaces as CommTimeout, see the comment above
      const auto indices = comm.recv<std::uint64_t>(0, kCtrlTag);
      if (indices.empty()) break;  // stop
      // por-lint: allow(vmpi-recv-timeout) same deadline as kCtrlTag above
      const auto init = comm.recv<InitRecord>(0, kInitTag);
      // por-lint: allow(vmpi-recv-timeout) same deadline as kCtrlTag above
      const auto flat = comm.recv<double>(0, kViewBlockTag);
      if (init.size() != indices.size() ||
          flat.size() != indices.size() * l * l) {
        throw std::runtime_error(
            "parallel_refine: assignment payload sizes disagree");
      }
      try {
        if (scheduler && indices.size() > 1) {
          // Fault points for the whole batch first — Comm's fault
          // bookkeeping is rank-thread state.  A kill here means no
          // result of this batch was sent, so the master reassigns the
          // entire batch: same recovery, coarser timing.
          for (std::size_t i = 0; i < indices.size(); ++i) {
            comm.fault_point(step++);
          }
          std::vector<ResultMsg> msgs(indices.size());
          scheduler->run(indices.size(), [&](std::size_t i) {
            em::Image<double> img(l, l);
            std::copy(flat.begin() + i * l * l,
                      flat.begin() + (i + 1) * l * l, img.storage().begin());
            msgs[i].view_index = indices[i];
            msgs[i].result = refiner.refine_view(img, init[i].orientation,
                                                 init[i].cx, init[i].cy);
          });
          for (const ResultMsg& msg : msgs) {
            my_matchings += msg.result.matchings;
            my_slides += static_cast<std::uint64_t>(msg.result.window_slides);
            comm.send_value(0, kResultTag, msg);
          }
        } else {
          em::Image<double> img(l, l);
          for (std::size_t i = 0; i < indices.size(); ++i) {
            comm.fault_point(step++);
            std::copy(flat.begin() + i * l * l, flat.begin() + (i + 1) * l * l,
                      img.storage().begin());
            ResultMsg msg;
            msg.view_index = indices[i];
            msg.result = refiner.refine_view(img, init[i].orientation,
                                             init[i].cx, init[i].cy);
            my_matchings += msg.result.matchings;
            my_slides += static_cast<std::uint64_t>(msg.result.window_slides);
            comm.send_value(0, kResultTag, msg);
          }
        }
        comm.send_value(0, kResultTag, ResultMsg{});  // batch done
      } catch (const vmpi::RankKilled&) {
        killed = true;
      }
      if (killed) {
        // Soft-kill zombie (DESIGN.md §10): the rank is dead to the
        // work protocol — it reports nothing more, so the master's
        // failure detector fires — but its thread still exists, so it
        // silently drains control traffic until the stop and then
        // joins the final collectives like everyone else.
        while (true) {
          // por-lint: allow(vmpi-recv-timeout) zombie drain is bounded by the
          // same rank deadline as the live control loop
          const auto ctrl = comm.recv<std::uint64_t>(0, kCtrlTag);
          if (ctrl.empty()) break;
          // por-lint: allow(vmpi-recv-timeout) deadline-bounded, see above
          (void)comm.recv<InitRecord>(0, kInitTag);
          // por-lint: allow(vmpi-recv-timeout) deadline-bounded, see above
          (void)comm.recv<double>(0, kViewBlockTag);
        }
        break;
      }
    }
  }

  // ---- step (m): wait for all nodes ----
  comm.barrier();

  // Straggler results that arrived after the master finished (a rank
  // falsely declared dead completing its stale batch) would otherwise
  // leak into the next refinement cycle on this runtime.  The barrier
  // guarantees every send is enqueued, so one non-blocking drain
  // empties the channel for good.
  if (comm.is_root()) {
    int src = 0;
    while (comm.try_recv_any_value<ResultMsg>(kResultTag, src,
                                              std::chrono::milliseconds{0})) {
    }
  }

  // ---- step (o): aggregate (results already live on the master) ----
  report.total_matchings =
      comm.allreduce_value(my_matchings, vmpi::ReduceOp::kSum);
  report.total_slides = comm.allreduce_value(my_slides, vmpi::ReduceOp::kSum);

  // Fold this rank's share of the runtime traffic accounting into the
  // registry, then snapshot once: the snapshot both rebuilds the
  // paper's StepTimes table and feeds the cross-rank run report.
  rank_registry.gauge("vmpi.rank").set(static_cast<double>(rank));
  rank_registry.counter("vmpi.sent_messages")
      .add(comm.traffic().rank_messages(rank) - messages_before);
  rank_registry.counter("vmpi.sent_bytes")
      .add(comm.traffic().rank_bytes(rank) - bytes_before);

  // Faults injected during this call, recorded once (root) because the
  // stats are runtime-global, not per-rank.
  if (comm.is_root()) {
    const vmpi::FaultStats now = comm.fault_stats();
    const auto delta = [&](std::uint64_t a, std::uint64_t b) {
      return a - b;
    };
    rank_registry.counter("resilience.faults.dropped")
        .add(delta(now.dropped, faults_before.dropped));
    rank_registry.counter("resilience.faults.delayed")
        .add(delta(now.delayed, faults_before.delayed));
    rank_registry.counter("resilience.faults.corrupted")
        .add(delta(now.corrupted, faults_before.corrupted));
    rank_registry.counter("resilience.faults.kills")
        .add(delta(now.kills, faults_before.kills));
    rank_registry.counter("resilience.comm.timeouts")
        .add(delta(now.timeouts, faults_before.timeouts));
  }

  const obs::Snapshot snapshot = rank_registry.snapshot();
  report.times = reduce_times_max(comm, step_times_from(snapshot));
  report.obs = obs::RunReport::gather(comm, snapshot);
  return report;
}

}  // namespace

ParallelRefineReport parallel_refine(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config) {
  stream::MemoryViewSource source(views_on_root);
  return refine_distributed(comm, map_on_root, l,
                            comm.is_root() ? &source : nullptr,
                            initial_on_root, centers_on_root, config);
}

ParallelRefineReport parallel_refine_files(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& stack_path, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config) {
  // Step (a.1): the master reads the density map and the orientation
  // file, and *opens* the view stack — pixels stream later, block by
  // block, through the ViewSource (DESIGN.md §14).  Reads classified
  // transient (shared-filesystem hiccups) are retried with capped
  // exponential backoff per config.resilience.io_retry; corrupt inputs
  // are never retried — they throw immediately.
  const resilience::RetryPolicy& retry = config.resilience.io_retry;
  em::Volume<double> map;
  std::unique_ptr<stream::ViewSource> source;
  std::vector<em::Orientation> initial;
  std::vector<std::pair<double, double>> centers;
  std::size_t l = 0;
  if (comm.is_root()) {
    map = resilience::with_retry(retry, "read_map",
                                 [&] { return io::read_map(map_path); });
    stream::ShardedStackOptions shard_options;
    shard_options.use_mmap = config.stream.use_mmap;
    shard_options.max_resident_bytes =
        config.stream.max_resident_mb * (std::size_t{1} << 20);
    shard_options.quarantine_corrupt = config.resilience.quarantine_views;
    source = resilience::with_retry(retry, "open_view_source", [&] {
      return stream::open_view_source(stack_path, shard_options);
    });
    const auto records =
        resilience::with_retry(retry, "read_orientations", [&] {
          return io::read_orientations(orientations_in_path);
        });
    if (records.size() != source->count()) {
      throw std::runtime_error(
          "parallel_refine_files: stack and orientation file disagree");
    }
    initial.reserve(records.size());
    centers.reserve(records.size());
    for (const auto& rec : records) {
      initial.push_back(rec.orientation);
      centers.emplace_back(rec.center_x, rec.center_y);
    }
    l = map.nx();
  }
  std::vector<std::size_t> meta{l};
  comm.bcast(0, meta);
  l = meta[0];

  ParallelRefineReport report = refine_distributed(
      comm, map, l, source.get(), initial, centers, config);

  if (comm.is_root()) {
    std::vector<io::ViewOrientation> out;
    out.reserve(report.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      out.push_back(io::ViewOrientation{i, report.results[i].orientation,
                                        report.results[i].center_x,
                                        report.results[i].center_y});
    }
    io::write_orientations(orientations_out_path, out,
                           "refined by por::core::parallel_refine_files");
  }
  return report;
}

ParallelRefineReport parallel_refine_sharded(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& shard_base, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config) {
  // The file driver auto-detects sharded manifests by magic, so the
  // sharded entry point is the same code path with the contract made
  // explicit in the name (and a type error for a non-sharded input).
  if (comm.is_root()) {
    std::ifstream probe(shard_base, std::ios::binary);
    char magic[4] = {};
    probe.read(magic, 4);
    if (!probe || std::memcmp(magic, "PORM", 4) != 0) {
      throw resilience::corrupt_error(
          "parallel_refine_sharded: not a sharded-stack manifest: " +
          shard_base);
    }
  }
  return parallel_refine_files(comm, map_path, shard_base,
                               orientations_in_path, orientations_out_path,
                               config);
}

}  // namespace por::core
