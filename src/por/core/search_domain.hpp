// por/core/search_domain.hpp
//
// The angular search domain of steps (f)-(i) and the multi-resolution
// schedule of §4: "typically we carry out several refinement steps at
// different angular resolutions, e.g. one at r_angular = 1 deg,
// followed by one at 0.1, one at 0.01, and finally one at 0.002."
#pragma once

#include <cstdint>
#include <vector>

#include "por/em/orientation.hpp"

namespace por::core {

/// A regular (theta, phi, omega) grid centered on an orientation.
///
/// The grid has `width` points per angle with spacing `step_deg`
/// (w_theta = w_phi = w_omega = width; the paper's typical value is
/// 10, giving w = 1000 cuts).  Offsets are symmetric about the center
/// for odd width and straddle it by half a step for even width.
struct SearchDomain {
  em::Orientation center;
  double step_deg = 1.0;
  int width = 3;

  /// All width^3 grid orientations, theta-major.
  [[nodiscard]] std::vector<em::Orientation> enumerate() const;

  /// Grid offset (degrees) of point index i in [0, width).
  [[nodiscard]] double offset(int i) const {
    return (static_cast<double>(i) -
            static_cast<double>(width - 1) / 2.0) *
           step_deg;
  }

  /// Does grid index (it, ip, io) touch the domain boundary?  The
  /// sliding-window rule (step i) re-centers the domain when the best
  /// fit lands on an edge.
  [[nodiscard]] bool on_edge(int it, int ip, int io) const {
    auto edge = [this](int i) { return i == 0 || i == width - 1; };
    return edge(it) || edge(ip) || edge(io);
  }

  /// Number of grid points (w = width^3).
  [[nodiscard]] std::uint64_t cardinality() const {
    const auto w = static_cast<std::uint64_t>(width);
    return w * w * w;
  }

  /// A copy of this domain re-centered on `o` (the sliding window).
  [[nodiscard]] SearchDomain recentered(const em::Orientation& o) const {
    return SearchDomain{o, step_deg, width};
  }
};

/// One level of the multi-resolution schedule: an angular grid plus
/// the matching center-refinement grid of step (k).
struct SearchLevel {
  double angular_step_deg = 1.0;  ///< r_angular at this level
  int angular_width = 3;          ///< grid points per angle
  double center_step_px = 1.0;    ///< delta_center at this level
  int center_width = 3;           ///< center box edge in grid points
};

/// The paper's four-level schedule: r_angular = 1, 0.1, 0.01, 0.002
/// with per-level search ranges 3, 9, 9, 10 (Table 1/2 header rows)
/// and delta_center = 1, 0.1, 0.01, 0.002 pixels.
[[nodiscard]] std::vector<SearchLevel> paper_schedule();

/// A truncated schedule for small test problems (levels with angular
/// steps >= `coarsest` down to `finest`).
[[nodiscard]] std::vector<SearchLevel> schedule_down_to(double finest_deg);

/// The size-of-search-space formula of §3 for a single-resolution
/// exhaustive search:
///   |P| = (theta_range/r) * (phi_range/r) * (omega_range/r).
/// Ranges in degrees.
[[nodiscard]] double exhaustive_cardinality(double theta_range_deg,
                                            double phi_range_deg,
                                            double omega_range_deg,
                                            double r_angular_deg);

/// Total matchings a multi-resolution search needs to take an
/// uncertainty of `initial_range_deg` per angle down to
/// `final_step_deg`, refining by `ratio` per level with a grid of
/// `width` points per angle per level (the §4 worked example: 65 +- 5
/// deg at 0.001 precision costs 5000 one-step matchings vs 35
/// multi-resolution for one angle).
[[nodiscard]] std::uint64_t multires_matchings(double initial_range_deg,
                                               double final_step_deg,
                                               int width, double ratio = 10.0,
                                               int angles = 3);

}  // namespace por::core
