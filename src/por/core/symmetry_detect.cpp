#include "por/core/symmetry_detect.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "por/em/rotate.hpp"
#include "por/metrics/fsc.hpp"

namespace por::core {

namespace {

/// Angle (degrees) between two axes, identifying antipodes.
double axis_angle_deg(const em::Vec3& a, const em::Vec3& b) {
  const double c = std::clamp(std::abs(a.normalized().dot(b.normalized())),
                              0.0, 1.0);
  return em::rad2deg(std::acos(c));
}

em::Vec3 from_angles(double theta_deg, double phi_deg) {
  const double theta = em::deg2rad(theta_deg), phi = em::deg2rad(phi_deg);
  return {std::sin(theta) * std::cos(phi), std::sin(theta) * std::sin(phi),
          std::cos(theta)};
}

}  // namespace

SymmetryDetector::SymmetryDetector(const DetectorConfig& config)
    : config_(config) {
  if (config_.coarse_step_deg <= 0.0 || config_.max_fold < 2 ||
      config_.threshold <= 0.0 || config_.threshold >= 1.0) {
    throw std::invalid_argument("SymmetryDetector: bad config");
  }
}

double SymmetryDetector::self_correlation(const em::Volume<double>& map,
                                          const em::Vec3& axis, int fold) {
  const em::Mat3 rot =
      em::Mat3::axis_angle(axis, 2.0 * std::numbers::pi / fold);
  return metrics::volume_correlation(map, em::rotate_volume(map, rot));
}

DetectionResult SymmetryDetector::detect(const em::Volume<double>& map) const {
  std::vector<DetectedAxis> found;

  for (int fold = 2; fold <= config_.max_fold; ++fold) {
    // Coarse hemisphere scan.
    std::vector<DetectedAxis> candidates;
    for (double theta = 0.0; theta <= 90.0 + 1e-9;
         theta += config_.coarse_step_deg) {
      // Shrink the phi sweep near the pole so axis density stays even.
      const double sin_theta =
          std::max(std::sin(em::deg2rad(theta)), 1e-3);
      const double phi_step =
          std::min(120.0, config_.coarse_step_deg / sin_theta);
      for (double phi = 0.0; phi < 360.0 - 1e-9; phi += phi_step) {
        const em::Vec3 axis = from_angles(theta, phi);
        const double corr = self_correlation(map, axis, fold);
        if (corr >= config_.threshold) {
          candidates.push_back(DetectedAxis{axis, fold, corr});
        }
      }
    }
    // Non-maximum suppression, then local refinement of survivors.
    std::sort(candidates.begin(), candidates.end(),
              [](const DetectedAxis& a, const DetectedAxis& b) {
                return a.correlation > b.correlation;
              });
    std::vector<DetectedAxis> kept;
    for (const auto& cand : candidates) {
      bool dominated = false;
      for (const auto& k : kept) {
        if (axis_angle_deg(cand.axis, k.axis) <
            1.8 * config_.coarse_step_deg) {
          dominated = true;
          break;
        }
      }
      if (!dominated) kept.push_back(cand);
    }
    for (auto& axis : kept) {
      // Coarse-to-fine local search of the axis direction.
      double step = config_.coarse_step_deg / 2.0;
      for (int round = 0; round < config_.refine_rounds; ++round) {
        bool improved = true;
        while (improved) {
          improved = false;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0) continue;
              // Perturb in the axis' tangent plane.
              const em::Vec3 t1 =
                  std::abs(axis.axis.z) < 0.9
                      ? axis.axis.cross({0, 0, 1}).normalized()
                      : axis.axis.cross({1, 0, 0}).normalized();
              const em::Vec3 t2 = axis.axis.cross(t1).normalized();
              const double s = em::deg2rad(step);
              const em::Vec3 trial =
                  (axis.axis + (s * dx) * t1 + (s * dy) * t2).normalized();
              const double corr = self_correlation(map, trial, axis.fold);
              if (corr > axis.correlation) {
                axis.correlation = corr;
                axis.axis = trial;
                improved = true;
              }
            }
          }
        }
        step /= 2.0;
      }
      if (axis.axis.z < 0.0) axis.axis = -1.0 * axis.axis;
    }
    found.insert(found.end(), kept.begin(), kept.end());
  }

  std::sort(found.begin(), found.end(),
            [](const DetectedAxis& a, const DetectedAxis& b) {
              return a.correlation > b.correlation;
            });

  // ---- classification ----
  auto count_fold = [&](int fold) {
    return std::count_if(found.begin(), found.end(),
                         [fold](const DetectedAxis& a) {
                           return a.fold == fold;
                         });
  };
  // Classify into a point-group label.  Built in a helper lambda with a
  // single assignment into the returned struct: multiple conditional
  // assignments to the NRVO'd `result.group` made GCC 12 emit a
  // -Wrestrict false positive from the inlined std::string internals
  // (char_traits.h memcpy overlap analysis), which would break the
  // warnings-as-errors build.
  const auto classify = [&]() -> std::string {
    const auto n5 = count_fold(5);
    const auto n4 = count_fold(4);
    const auto n3 = count_fold(3);
    const auto n2 = count_fold(2);

    if (n5 >= 2) return "I";  // icosahedral: six 5-fold axes (two suffice)
    if (n4 >= 2) return "O";  // octahedral: three 4-fold axes
    if (n3 >= 3 && n4 == 0 && n5 == 0 && n2 >= 2) {
      return "T";  // tetrahedral: four 3-folds, three 2-folds
    }
    // Highest-fold principal axis.
    int principal_fold = 0;
    const DetectedAxis* principal = nullptr;
    for (const auto& a : found) {
      if (a.fold > principal_fold) {
        principal_fold = a.fold;
        principal = &a;
      }
    }
    if (principal == nullptr) return "C1";
    // Dn: n 2-fold axes perpendicular to the principal axis.
    long perpendicular_twofolds = 0;
    for (const auto& a : found) {
      if (a.fold != 2 || &a == principal) continue;
      const double angle =
          std::abs(90.0 - axis_angle_deg(a.axis, principal->axis));
      if (angle < 6.0) ++perpendicular_twofolds;
    }
    const char prefix =
        perpendicular_twofolds >= std::max<long>(2, principal_fold / 2) ? 'D'
                                                                        : 'C';
    return prefix + std::to_string(principal_fold);
  };

  DetectionResult result;
  result.group = classify();       // reads `found`; must run before the move
  result.axes = std::move(found);
  return result;
}

}  // namespace por::core
