#include "por/core/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "por/em/interp.hpp"
#include "por/em/projection.hpp"
#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"

namespace por::core {

namespace {

double resolve_padded_radius(double unpadded, std::size_t l, std::size_t pad,
                             double fallback) {
  if (unpadded < 0.0) throw std::invalid_argument("matcher: negative radius");
  if (unpadded == 0.0) return fallback;
  return unpadded * static_cast<double>(pad);
}

}  // namespace

FourierMatcher::FourierMatcher(const em::Volume<double>& density_map,
                               const MatchOptions& options)
    : FourierMatcher(
          em::centered_fft3(em::pad_volume(density_map, options.pad)),
          density_map.nx(), options) {
  if (!density_map.is_cube()) {
    throw std::invalid_argument("FourierMatcher: map must be cubic");
  }
}

FourierMatcher::FourierMatcher(em::Volume<em::cdouble> centered_padded_spectrum,
                               std::size_t l, const MatchOptions& options)
    : l_(l),
      options_(options),
      spectrum_(std::move(centered_padded_spectrum)),
      obs_matchings_(&obs::current_registry().counter("matcher.matchings")),
      obs_interp_fetches_(
          &obs::current_registry().counter("matcher.interp_fetches")),
      obs_prepare_view_(
          &obs::current_registry().span_series("matcher.prepare_view")) {
  if (options_.pad < 1) {
    throw std::invalid_argument("FourierMatcher: pad must be >= 1");
  }
  const std::size_t big = l_ * options_.pad;
  if (spectrum_.nx() != big || !spectrum_.is_cube()) {
    throw std::invalid_argument("FourierMatcher: spectrum size mismatch");
  }
  // Default r_map: the unpadded Nyquist radius.  Stored in padded px.
  const double nyquist_padded = static_cast<double>(big) / 2.0 - 1.0;
  padded_r_map_ = resolve_padded_radius(options_.r_map, l_, options_.pad,
                                        nyquist_padded);
  padded_r_map_ = std::min(padded_r_map_, nyquist_padded);
  padded_r_min_ = options_.r_min * static_cast<double>(options_.pad);

  // Precompute the view-transfer envelope by integer padded radius:
  // what a prepared view's signal amplitude retains relative to the
  // pristine cut after CTF + correction.
  if (options_.ctf) {
    const std::size_t table_size = big / 2 + 2;
    transfer_table_.resize(table_size);
    const double physical_scale =
        1.0 / (static_cast<double>(big) * options_.ctf->pixel_size_a);
    for (std::size_t r = 0; r < table_size; ++r) {
      const double s = static_cast<double>(r) * physical_scale;
      const double c = em::ctf_value(*options_.ctf, s);
      switch (options_.ctf_correction) {
        case em::CtfCorrection::kPhaseFlip:
          transfer_table_[r] = std::abs(c);
          break;
        case em::CtfCorrection::kWiener:
          transfer_table_[r] = c * c / (c * c + 1.0 / options_.wiener_snr);
          break;
      }
    }
  }
}

double FourierMatcher::cut_transfer(double padded_radius) const {
  if (transfer_table_.empty()) return 1.0;
  const double clamped = std::clamp(
      padded_radius, 0.0, static_cast<double>(transfer_table_.size() - 1));
  const std::size_t lo = static_cast<std::size_t>(std::floor(clamped));
  const std::size_t hi = std::min(lo + 1, transfer_table_.size() - 1);
  const double t = clamped - static_cast<double>(lo);
  return (1.0 - t) * transfer_table_[lo] + t * transfer_table_[hi];
}

em::Image<em::cdouble> FourierMatcher::prepare_view(
    const em::Image<double>& view) const {
  if (view.nx() != l_ || view.ny() != l_) {
    throw std::invalid_argument("prepare_view: view edge mismatch");
  }
  const obs::SpanTimer timer(*obs_prepare_view_);
  em::Image<em::cdouble> spectrum =
      em::centered_fft2(em::pad_image(view, options_.pad));
  if (options_.ctf) {
    em::correct_ctf(spectrum, *options_.ctf, options_.ctf_correction,
                    options_.wiener_snr);
  }
  return spectrum;
}

double FourierMatcher::distance(const em::Image<em::cdouble>& view_spectrum,
                                const em::Orientation& o) const {
  const std::size_t big = l_ * options_.pad;
  if (view_spectrum.nx() != big || view_spectrum.ny() != big) {
    throw std::invalid_argument("distance: view spectrum size mismatch");
  }
  ++matchings_;
  obs_matchings_->add();

  const em::Mat3 r = em::rotation_matrix(o);
  const em::Vec3 eu = r * em::Vec3{1, 0, 0};
  const em::Vec3 ev = r * em::Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(big) / 2.0);
  const double r_max = padded_r_map_;
  const double r_min = padded_r_min_;

  // Restrict the loops to the bounding box of the r_map disk: this is
  // where the paper's "the number of operations is reduced
  // accordingly" comes from.
  const long lo = std::max<long>(0, static_cast<long>(std::floor(c - r_max)));
  const long hi =
      std::min<long>(static_cast<long>(big) - 1,
                     static_cast<long>(std::ceil(c + r_max)));

  double sum = 0.0;
  std::uint64_t fetches = 0;
  for (long y = lo; y <= hi; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (long x = lo; x <= hi; ++x) {
      const double ku = static_cast<double>(x) - c;
      const double radius = std::sqrt(ku * ku + kv * kv);
      if (radius > r_max || radius < r_min) continue;
      ++fetches;
      const em::Vec3 q = ku * eu + kv * ev;
      const em::cdouble cut_sample =
          cut_transfer(radius) *
          em::interp_trilinear(spectrum_, q.z + c, q.y + c, q.x + c);
      const em::cdouble diff =
          view_spectrum(static_cast<std::size_t>(y),
                        static_cast<std::size_t>(x)) -
          cut_sample;
      const double weight = options_.weighting == metrics::Weighting::kRadial
                                ? radius / r_max
                                : 1.0;
      sum += weight * std::norm(diff);
    }
  }
  obs_interp_fetches_->add(fetches);
  return sum / static_cast<double>(big * big);
}

em::Image<em::cdouble> FourierMatcher::cut(const em::Orientation& o) const {
  em::Image<em::cdouble> slice = em::extract_central_slice(spectrum_, o);
  if (!transfer_table_.empty()) {
    const std::size_t big = slice.nx();
    const double center = std::floor(static_cast<double>(big) / 2.0);
    for (std::size_t y = 0; y < big; ++y) {
      for (std::size_t x = 0; x < big; ++x) {
        const double radius = std::hypot(static_cast<double>(y) - center,
                                         static_cast<double>(x) - center);
        slice(y, x) *= cut_transfer(radius);
      }
    }
  }
  return slice;
}

}  // namespace por::core
