// POR_HOT_PATH
//
// distance() is the per-matching kernel driver: steady-state scratch
// is stack arrays only (hot-path-alloc lint; build_tables runs once
// per matcher and is waived where it allocates).
#include "por/core/matcher.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "por/em/interp.hpp"
#include "por/em/projection.hpp"
#include "por/simd/kernels.hpp"
#include "por/util/contracts.hpp"
#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/util/thread_pool.hpp"
#include "por/util/timer.hpp"

namespace por::core {

namespace {

double resolve_padded_radius(double unpadded, std::size_t pad,
                             double fallback) {
  if (unpadded < 0.0) throw std::invalid_argument("matcher: negative radius");
  // por-lint: allow(float-eq) 0.0 is the documented "use default"
  // sentinel for MatchOptions radii, compared exactly by design.
  if (unpadded == 0.0) return fallback;
  return unpadded * static_cast<double>(pad);
}

}  // namespace

FourierMatcher::FourierMatcher(const em::Volume<double>& density_map,
                               const MatchOptions& options)
    : FourierMatcher(
          em::centered_fft3(em::pad_volume(density_map, options.pad),
                            fft::FftOptions{options.fft_threads}),
          density_map.nx(), options) {
  if (!density_map.is_cube()) {
    throw std::invalid_argument("FourierMatcher: map must be cubic");
  }
}

FourierMatcher::FourierMatcher(em::Volume<em::cdouble> centered_padded_spectrum,
                               std::size_t l, const MatchOptions& options)
    : l_(l),
      options_(options),
      spectrum_(std::move(centered_padded_spectrum)),
      obs_matchings_(&obs::current_registry().counter("matcher.matchings")),
      obs_interp_fetches_(
          &obs::current_registry().counter("matcher.interp_fetches")),
      obs_simd_dispatch_(
          &obs::current_registry().counter("simd.matcher_dispatch")),
      obs_prepare_view_(
          &obs::current_registry().span_series("matcher.prepare_view")) {
  if (options_.pad < 1) {
    throw std::invalid_argument("FourierMatcher: pad must be >= 1");
  }
  const std::size_t big = l_ * options_.pad;
  if (spectrum_.nx() != big || !spectrum_.is_cube()) {
    throw std::invalid_argument("FourierMatcher: spectrum size mismatch");
  }
  // Default r_map: the unpadded Nyquist radius.  Stored in padded px.
  const double nyquist_padded = static_cast<double>(big) / 2.0 - 1.0;
  padded_r_map_ =
      resolve_padded_radius(options_.r_map, options_.pad, nyquist_padded);
  padded_r_map_ = std::min(padded_r_map_, nyquist_padded);
  padded_r_min_ = options_.r_min * static_cast<double>(options_.pad);

  // Precompute the view-transfer envelope by integer padded radius:
  // what a prepared view's signal amplitude retains relative to the
  // pristine cut after CTF + correction.
  if (options_.ctf) {
    const std::size_t table_size = big / 2 + 2;
    transfer_table_.resize(table_size);
    const double physical_scale =
        1.0 / (static_cast<double>(big) * options_.ctf->pixel_size_a);
    for (std::size_t r = 0; r < table_size; ++r) {
      const double s = static_cast<double>(r) * physical_scale;
      const double c = em::ctf_value(*options_.ctf, s);
      switch (options_.ctf_correction) {
        case em::CtfCorrection::kPhaseFlip:
          transfer_table_[r] = std::abs(c);
          break;
        case em::CtfCorrection::kWiener:
          transfer_table_[r] = c * c / (c * c + 1.0 / options_.wiener_snr);
          break;
      }
    }
  }

  build_tables();

  if (options_.search_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.search_threads);
  }
}

FourierMatcher::FourierMatcher(FourierMatcher&&) noexcept = default;
FourierMatcher& FourierMatcher::operator=(FourierMatcher&&) noexcept = default;
FourierMatcher::~FourierMatcher() = default;

void FourierMatcher::build_tables() {
  util::WallTimer build_timer;
  const std::size_t big = l_ * options_.pad;
  const double c = std::floor(static_cast<double>(big) / 2.0);
  const double r_max = padded_r_map_;
  const double r_min = padded_r_min_;

  // Per-pixel cut transfer for the big x big padded view grid, shared
  // by the annulus table below and by cut(): one lerp per pixel at
  // construction instead of one per pixel per matching / per cut.
  if (!transfer_table_.empty()) {
    transfer_image_ = em::Image<double>(big, big);
    for (std::size_t y = 0; y < big; ++y) {
      const double kv = static_cast<double>(y) - c;
      for (std::size_t x = 0; x < big; ++x) {
        const double ku = static_cast<double>(x) - c;
        transfer_image_(y, x) = cut_transfer(std::sqrt(ku * ku + kv * kv));
      }
    }
  }

  // Flatten the [r_min, r_max] ring.  Iteration order (y-major,
  // x-minor over the disk bounding box) matches distance_reference, so
  // the fast loop accumulates pixel terms in the identical order.
  const long lo = std::max<long>(0, static_cast<long>(std::floor(c - r_max)));
  const long hi =
      std::min<long>(static_cast<long>(big) - 1,
                     static_cast<long>(std::ceil(c + r_max)));
  const bool radial = options_.weighting == metrics::Weighting::kRadial;
  for (long y = lo; y <= hi; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (long x = lo; x <= hi; ++x) {
      const double ku = static_cast<double>(x) - c;
      const double radius = std::sqrt(ku * ku + kv * kv);
      if (radius > r_max || radius < r_min) continue;
      annulus_.ku.push_back(ku);
      annulus_.kv.push_back(kv);
      annulus_.transfer.push_back(
          transfer_image_.empty()
              ? 1.0
              : transfer_image_(static_cast<std::size_t>(y),
                                static_cast<std::size_t>(x)));
      annulus_.weight.push_back(radial ? radius / r_max : 1.0);
      // CONTRACT: every flattened view index must address a pixel of
      // the big x big padded view grid — checked here, once per
      // construction, so distance() can fetch without per-pixel
      // guards.
      POR_BOUNDS(static_cast<std::size_t>(y) * big +
                     static_cast<std::size_t>(x),
                 big * big);
      annulus_.index.push_back(
          static_cast<std::uint32_t>(y) * static_cast<std::uint32_t>(big) +
          static_cast<std::uint32_t>(x));
    }
  }
  POR_ENSURE(annulus_.kv.size() == annulus_.ku.size() &&
                 annulus_.transfer.size() == annulus_.ku.size() &&
                 annulus_.weight.size() == annulus_.ku.size() &&
                 annulus_.index.size() == annulus_.ku.size(),
             "annulus table columns out of sync");

  // Snapshot the dispatched kernel tier for this instance (process-
  // wide selection capped by options_.simd), then build ONLY the
  // lattice layout that tier consumes: split re/im planes for the
  // SSE2 tier, the interleaved copy for the AVX tiers.
  isa_ = simd::resolve_isa(options_.simd);
  kernels_ = &simd::kernel_table(isa_);
  std::size_t lattice_edge = 0;
  if (kernels_->layout == simd::LatticeLayout::kInterleaved) {
    ilv_ = em::InterleavedComplexLattice(spectrum_);
    soa_ = em::SplitComplexLattice();
    lattice_edge = ilv_.edge;
  } else {
    soa_ = em::SplitComplexLattice(spectrum_);
    ilv_ = em::InterleavedComplexLattice();
    lattice_edge = soa_.edge;
  }

  // Radius-vs-lattice guard, hoisted out of the per-sample loop: every
  // cut sample coordinate is q_component + c with |q_component| <=
  // radius <= r_max, so when r_max <= c - 0.5 every 2x2x2 base cell
  // lies in [0, big-1]^3 (with >= 0.5 px margin against rounding) and
  // the staged cell fetch needs no bounds checks.  The constructor
  // clamps r_map to Nyquist = big/2 - 1 <= c - 0.5, so this holds for
  // every reachable configuration; the check stays as a defensive
  // fallback to the scalar path.
  fast_path_ = r_max <= c - 0.5 && !annulus_.empty();
  // Hoisted radius-vs-lattice guard: on the fast path every base cell
  // the annulus can reach must satisfy the interp contract.  q + c
  // with |q| <= r_max <= c - 0.5 gives coordinates in
  // [0.5, 2c - 0.5] subset [0, big - 1], whose truncation lies in
  // [0, big - 1] = [0, lattice_edge - 1].
  POR_ENSURE(!fast_path_ || (padded_r_map_ <= c - 0.5 && lattice_edge == big),
             "fast-path guard violated: r_max =", padded_r_map_, "c =", c,
             "edge =", lattice_edge);

  obs::MetricsRegistry& registry = obs::current_registry();
  registry.gauge("matcher.annulus_pixels")
      .set(static_cast<double>(annulus_.size()));
  registry.span_series("matcher.table_build")
      .record(static_cast<std::uint64_t>(build_timer.seconds() * 1e9));
}

double FourierMatcher::cut_transfer(double padded_radius) const {
  if (transfer_table_.empty()) return 1.0;
  const double clamped = std::clamp(
      padded_radius, 0.0, static_cast<double>(transfer_table_.size() - 1));
  const std::size_t lo = static_cast<std::size_t>(std::floor(clamped));
  const std::size_t hi = std::min(lo + 1, transfer_table_.size() - 1);
  const double t = clamped - static_cast<double>(lo);
  return (1.0 - t) * transfer_table_[lo] + t * transfer_table_[hi];
}

em::Image<em::cdouble> FourierMatcher::prepare_view(
    const em::Image<double>& view) const {
  if (view.nx() != l_ || view.ny() != l_) {
    throw std::invalid_argument("prepare_view: view edge mismatch");
  }
  const obs::SpanTimer timer(*obs_prepare_view_);
  em::Image<em::cdouble> spectrum =
      em::centered_fft2(em::pad_image(view, options_.pad),
                        fft::FftOptions{options_.fft_threads});
  if (options_.ctf) {
    em::correct_ctf(spectrum, *options_.ctf, options_.ctf_correction,
                    options_.wiener_snr);
  }
  return spectrum;
}

double FourierMatcher::distance(const em::Image<em::cdouble>& view_spectrum,
                                const em::Orientation& o) const {
  if (!fast_path_) return distance_reference(view_spectrum, o);

  const std::size_t big = l_ * options_.pad;
  if (view_spectrum.nx() != big || view_spectrum.ny() != big) {
    throw std::invalid_argument("distance: view spectrum size mismatch");
  }
  // por-atomic: stat — matching counter; no ordering claims derive from it
  matchings_.v.fetch_add(1, std::memory_order_relaxed);
  obs_matchings_->add();

  const em::Mat3 r = em::rotation_matrix(o);
  const em::Vec3 eu = r * em::Vec3{1, 0, 0};
  const em::Vec3 ev = r * em::Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(big) / 2.0);

  const std::size_t n = annulus_.size();
  const simd::KernelTable& kt = *kernels_;
  const bool interleaved = kt.layout == simd::LatticeLayout::kInterleaved;

  // The 2x2x2 fetches land on a rotated plane through a lattice far
  // larger than cache (~34 MiB at L=64 pad=2), so the loop is memory-
  // latency-bound.  Software-pipeline it in blocks through the
  // dispatched kernel pair: the STAGE kernel resolves the NEXT block's
  // cells (q = ku*eu + kv*ev, truncation floor, flat base index —
  // exactly the arithmetic the scalar path's Vec3 + interp_trilinear
  // perform); the SSE2 tier also issues its corner-line prefetches
  // here, while the AVX tiers prefetch a short fixed distance ahead
  // inside their consume loops instead (a whole block's lines overran
  // L1 — see por/simd/kernels_avx512.cpp).  Pixels are processed
  // strictly in annulus order and the consume kernel continues the
  // RUNNING accumulator, so the summation sequence is identical to a
  // straight loop (bit-identical on the SSE2 tier; the AVX tiers
  // differ by FMA/association rounding only — see por/simd/kernels.hpp).
  // Block size trades the stage/consume switch overhead against the
  // staged-coordinate footprint (4 arrays x 2 slots, ~8 KiB at 256):
  // with prefetch moved into the consume loop the block no longer
  // bounds prefetch flight time, and 256 measured faster than 96.
  constexpr std::size_t kBlock = 256;
  std::size_t cell_base[2][kBlock];
  double cell_tz[2][kBlock];
  double cell_ty[2][kBlock];
  double cell_tx[2][kBlock];
  std::size_t last_line = ~std::size_t{0};

  simd::StageBlock sb;
  sb.euz = eu.z;
  sb.euy = eu.y;
  sb.eux = eu.x;
  sb.evz = ev.z;
  sb.evy = ev.y;
  sb.evx = ev.x;
  sb.c = c;
  sb.last_line = &last_line;
  const double* soa_re = nullptr;
  const double* soa_im = nullptr;
  const double* ilv_data = nullptr;
  std::size_t lat_size = 0;
  if (interleaved) {
    ilv_data = ilv_.data.data();
    lat_size = ilv_.cells();
    sb.stride_y = ilv_.stride_y;
    sb.stride_z = ilv_.stride_z;
    sb.pf_a = ilv_data;
    sb.pf_b = nullptr;
    sb.pf_scale = 2;  // doubles per interleaved complex cell
  } else {
    soa_re = soa_.re.data();
    soa_im = soa_.im.data();
    lat_size = soa_.re.size();
    sb.stride_y = soa_.stride_y;
    sb.stride_z = soa_.stride_z;
    sb.pf_a = soa_re;
    sb.pf_b = soa_im;
    sb.pf_scale = 1;
  }

  simd::AnnulusBlock ab;
  // std::complex<double> is layout-compatible with double[2]
  // ([complex.numbers]); the kernels read the view as interleaved
  // por-lint: allow(reinterpret-cast) (re, im) doubles, per the above.
  ab.view = reinterpret_cast<const double*>(view_spectrum.data());
  // Without a CTF every transfer is exactly 1.0, and with uniform
  // weighting every weight is exactly 1.0; a null column tells the
  // kernel to skip the load+multiply — a bit-exact no-op elision.
  const double* transfer_col =
      transfer_table_.empty() ? nullptr : annulus_.transfer.data();
  const double* weight_col = options_.weighting == metrics::Weighting::kRadial
                                 ? annulus_.weight.data()
                                 : nullptr;

  auto stage = [&](std::size_t start, std::size_t count, std::size_t slot) {
    sb.ku = annulus_.ku.data() + start;
    sb.kv = annulus_.kv.data() + start;
    sb.count = count;
    sb.base = cell_base[slot];
    sb.tz = cell_tz[slot];
    sb.ty = cell_ty[slot];
    sb.tx = cell_tx[slot];
    kt.stage(sb);
  };

  double sum = 0.0;
  std::size_t cur = 0;
  std::size_t cur_count = std::min(kBlock, n);
  stage(0, cur_count, 0);
  for (std::size_t start = 0; start < n;) {
    const std::size_t next_start = start + cur_count;
    const std::size_t next_count =
        next_start < n ? std::min(kBlock, n - next_start) : 0;
    if (next_count > 0) stage(next_start, next_count, cur ^ 1);
    ab.base = cell_base[cur];
    ab.tz = cell_tz[cur];
    ab.ty = cell_ty[cur];
    ab.tx = cell_tx[cur];
    ab.count = cur_count;
    ab.index = annulus_.index.data() + start;
    ab.transfer = transfer_col != nullptr ? transfer_col + start : nullptr;
    ab.weight = weight_col != nullptr ? weight_col + start : nullptr;
    sum = interleaved
              ? kt.annulus_ilv(ilv_data, sb.stride_y, sb.stride_z, lat_size,
                               ab, sum)
              : kt.annulus_split(soa_re, soa_im, sb.stride_y, sb.stride_z,
                                 lat_size, ab, sum);
    start = next_start;
    cur_count = next_count;
    cur ^= 1;
  }
  obs_interp_fetches_->add(n);
  obs_simd_dispatch_->add();
  return sum / static_cast<double>(big * big);
}

double FourierMatcher::distance_reference(
    const em::Image<em::cdouble>& view_spectrum, const em::Orientation& o)
    const {
  const std::size_t big = l_ * options_.pad;
  if (view_spectrum.nx() != big || view_spectrum.ny() != big) {
    throw std::invalid_argument("distance: view spectrum size mismatch");
  }
  // por-atomic: stat — matching counter; no ordering claims derive from it
  matchings_.v.fetch_add(1, std::memory_order_relaxed);
  obs_matchings_->add();

  const em::Mat3 r = em::rotation_matrix(o);
  const em::Vec3 eu = r * em::Vec3{1, 0, 0};
  const em::Vec3 ev = r * em::Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(big) / 2.0);
  const double r_max = padded_r_map_;
  const double r_min = padded_r_min_;

  // Restrict the loops to the bounding box of the r_map disk: this is
  // where the paper's "the number of operations is reduced
  // accordingly" comes from.
  const long lo = std::max<long>(0, static_cast<long>(std::floor(c - r_max)));
  const long hi =
      std::min<long>(static_cast<long>(big) - 1,
                     static_cast<long>(std::ceil(c + r_max)));

  double sum = 0.0;
  std::uint64_t fetches = 0;
  for (long y = lo; y <= hi; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (long x = lo; x <= hi; ++x) {
      const double ku = static_cast<double>(x) - c;
      const double radius = std::sqrt(ku * ku + kv * kv);
      if (radius > r_max || radius < r_min) continue;
      ++fetches;
      const em::Vec3 q = ku * eu + kv * ev;
      const em::cdouble cut_sample =
          cut_transfer(radius) *
          em::interp_trilinear(spectrum_, q.z + c, q.y + c, q.x + c);
      const em::cdouble diff =
          view_spectrum(static_cast<std::size_t>(y),
                        static_cast<std::size_t>(x)) -
          cut_sample;
      const double weight = options_.weighting == metrics::Weighting::kRadial
                                ? radius / r_max
                                : 1.0;
      sum += weight * std::norm(diff);
    }
  }
  obs_interp_fetches_->add(fetches);
  return sum / static_cast<double>(big * big);
}

em::Image<em::cdouble> FourierMatcher::cut(const em::Orientation& o) const {
  em::Image<em::cdouble> slice = em::extract_central_slice(spectrum_, o);
  if (!transfer_image_.empty()) {
    // One precomputed multiplier per pixel (shared with the annulus
    // table) instead of a hypot + lerp per pixel per cut.
    const std::size_t count = slice.size();
    em::cdouble* out = slice.data();
    const double* t = transfer_image_.data();
    for (std::size_t i = 0; i < count; ++i) out[i] *= t[i];
  }
  return slice;
}

}  // namespace por::core
