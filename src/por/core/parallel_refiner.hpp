// por/core/parallel_refiner.hpp
//
// The distributed-memory orientation refinement program (paper §4,
// steps a-o, complete):
//
//   a. slab-parallel 3D DFT of the density map, replicated everywhere
//   b. the master distributes the views in blocks of m/P
//   c. the master distributes the matching initial orientations
//   d-l. every rank refines its own views (embarrassingly parallel)
//   m. barrier
//   n. (the multi-resolution loop is inside the per-view refiner)
//   o. the master collects and writes the refined orientation file
//
// Per-step wall times are recorded under the same step names as the
// paper's Tables 1 and 2 ("3D DFT", "Read image", "FFT analysis",
// "Orientation refinement"), reduced with a max across ranks.
#pragma once

#include <string>
#include <vector>

#include "por/core/refiner.hpp"
#include "por/obs/run_report.hpp"
#include "por/vmpi/comm.hpp"

namespace por::core {

/// Result of a distributed refinement run.
struct ParallelRefineReport {
  /// Refined records for every view, in global view order.  Complete
  /// on the root rank; empty on the others.
  std::vector<ViewResult> results;
  /// Max-over-ranks wall time per step (valid on every rank).  Derived
  /// from the per-rank "step.<name>" span series in `obs`.
  util::StepTimes times;
  /// Matching operations summed over ranks (valid on every rank).
  std::uint64_t total_matchings = 0;
  /// Window slides summed over ranks (valid on every rank).
  std::uint64_t total_slides = 0;
  /// Cross-rank metrics aggregation: every rank runs its refinement
  /// under a rank-local obs::MetricsRegistry; the per-rank snapshots
  /// (matcher counters, step spans, FFT counts, vmpi traffic) are
  /// gathered and merged here.  Complete on the root rank; non-root
  /// ranks hold only their own snapshot.
  obs::RunReport obs;
};

/// In-memory SPMD driver: the root rank supplies the map, all views
/// and all initial orientations; other ranks pass empty containers.
/// `l` is the map/view edge; l * config.match.pad must be divisible by
/// comm.size().
[[nodiscard]] ParallelRefineReport parallel_refine(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config);

/// File-based SPMD driver covering the paper's I/O model: the master
/// reads the map, the view stack and the orientation file, distributes
/// work, and writes the refined orientation file at the end.
[[nodiscard]] ParallelRefineReport parallel_refine_files(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& stack_path, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config);

}  // namespace por::core
