// por/core/parallel_refiner.hpp
//
// The distributed-memory orientation refinement program (paper §4,
// steps a-o, complete):
//
//   a. slab-parallel 3D DFT of the density map, replicated everywhere
//   b. the master distributes the views in blocks of m/P
//   c. the master distributes the matching initial orientations
//   d-l. every rank refines its own views (embarrassingly parallel)
//   m. barrier
//   n. (the multi-resolution loop is inside the per-view refiner)
//   o. the master collects and writes the refined orientation file
//
// Per-step wall times are recorded under the same step names as the
// paper's Tables 1 and 2 ("3D DFT", "Read image", "FFT analysis",
// "Orientation refinement"), reduced with a max across ranks.
//
// Resilience (DESIGN.md §10): steps (b)-(l) run as a master-worker
// protocol rather than a fire-and-forget block split.  Each refined
// view streams back to the master as its own message, doubling as a
// heartbeat; when every rank still holding work stays silent for
// config.resilience.heartbeat_timeout the silent ranks are declared
// dead and their unfinished views are redistributed to idle live
// workers (or refined by the master itself).  Per-view refinement is
// deterministic, so the recovered run's orientation file is
// bitwise-identical to a fault-free one.  With
// config.resilience.checkpoint_path set, the master appends each
// refined view to an atomic CRC-tagged checkpoint; with .resume it
// restores finished views from that file and distributes only the
// remainder.
#pragma once

#include <string>
#include <vector>

#include "por/core/refiner.hpp"
#include "por/obs/run_report.hpp"
#include "por/vmpi/comm.hpp"

namespace por::core {

/// Result of a distributed refinement run.
struct ParallelRefineReport {
  /// Refined records for every view, in global view order.  Complete
  /// on the root rank; empty on the others.
  std::vector<ViewResult> results;
  /// Max-over-ranks wall time per step (valid on every rank).  Derived
  /// from the per-rank "step.<name>" span series in `obs`.
  util::StepTimes times;
  /// Matching operations summed over ranks (valid on every rank).
  std::uint64_t total_matchings = 0;
  /// Window slides summed over ranks (valid on every rank).
  std::uint64_t total_slides = 0;
  /// Cross-rank metrics aggregation: every rank runs its refinement
  /// under a rank-local obs::MetricsRegistry; the per-rank snapshots
  /// (matcher counters, step spans, FFT counts, vmpi traffic) are
  /// gathered and merged here.  Complete on the root rank; non-root
  /// ranks hold only their own snapshot.
  obs::RunReport obs;

  // ---- resilience outcome (valid on the root rank only) -----------------
  /// Views restored from the checkpoint instead of being refined.
  std::uint64_t restored_views = 0;
  /// Views taken away from a silent rank and refined elsewhere.
  std::uint64_t reassigned_views = 0;
  /// Worker ranks the failure detector declared dead this run.
  std::uint64_t dead_ranks = 0;
  /// Views quarantined by the per-view degradation path (their records
  /// carry the initial parameters and quarantined != 0).
  std::uint64_t quarantined_views = 0;
};

/// In-memory SPMD driver: the root rank supplies the map, all views
/// and all initial orientations; other ranks pass empty containers.
/// `l` is the map/view edge; l * config.match.pad must be divisible by
/// comm.size().
[[nodiscard]] ParallelRefineReport parallel_refine(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& config);

/// File-based SPMD driver covering the paper's I/O model: the master
/// reads the map and the orientation file, *streams* the view stack in
/// ranged groups (paper step b — the stack is never loaded whole), and
/// writes the refined orientation file at the end.  `stack_path` may
/// be a monolithic PORS stack or a sharded-stack manifest; either is
/// consumed through a stream::ViewSource with config.stream's
/// prefetch/residency knobs.
[[nodiscard]] ParallelRefineReport parallel_refine_files(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& stack_path, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config);

/// Out-of-core SPMD driver over a sharded stack produced by the
/// stack_shard tool or stream::shard_stack_file.  Identical protocol
/// and bitwise-identical results to parallel_refine_files on the
/// equivalent monolithic stack; the master's working set is bounded by
/// config.stream.max_resident_mb instead of the stack size.
[[nodiscard]] ParallelRefineReport parallel_refine_sharded(
    vmpi::Comm& comm, const std::string& map_path,
    const std::string& shard_base, const std::string& orientations_in_path,
    const std::string& orientations_out_path, const RefinerConfig& config);

}  // namespace por::core
