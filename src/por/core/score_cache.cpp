// POR_HOT_PATH
//
// Probed once per candidate; the table lives in a private arena
// (hot-path-alloc lint enforces the zero-allocation steady state).
#include "por/core/score_cache.hpp"

#include <cmath>
#include <stdexcept>

#include "por/util/contracts.hpp"

namespace por::core {

namespace {

/// Round `capacity` up to a power of two (min 16).
std::size_t round_up_pow2(std::size_t capacity) {
  std::size_t p = 16;
  while (p < capacity) p <<= 1;
  return p;
}

/// splitmix64 finalizer — cheap, well-mixed avalanche for table keys.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ScoreCache::ScoreCache(double quantum_deg, std::size_t initial_capacity)
    : quantum_deg_(quantum_deg),
      // Size the first chunk for the initial table plus one doubling so
      // a typical search warms up with a single upstream allocation.
      arena_(round_up_pow2(initial_capacity) * 3 * sizeof(Entry)) {
  if (!(quantum_deg > 0.0)) {
    throw std::invalid_argument("ScoreCache: quantum must be positive");
  }
  capacity_ = round_up_pow2(initial_capacity);
  entries_ = arena_.alloc_array<Entry>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) entries_[i] = Entry{};
}

ScoreCache::Key ScoreCache::quantize(const em::Orientation& o) const {
  const double inv = 1.0 / quantum_deg_;
  return Key{std::llround(o.theta * inv), std::llround(o.phi * inv),
             std::llround(o.omega * inv)};
}

std::size_t ScoreCache::hash(const Key& k) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(k.qt));
  h = mix64(h ^ static_cast<std::uint64_t>(k.qp));
  h = mix64(h ^ static_cast<std::uint64_t>(k.qo));
  return static_cast<std::size_t>(h);
}

std::size_t ScoreCache::probe(const Key& key) const {
  // CONTRACT: the probe loop terminates only if the table has at least
  // one free slot; insert() grows at 0.7 load so this always holds,
  // but a future resize bug would otherwise spin forever.
  POR_EXPECT(size_ < capacity_,
             "open-addressing probe requires a free slot: size =", size_,
             "capacity =", capacity_);
  const std::size_t mask = capacity_ - 1;
  const contracts::checked_span<const Entry> entries(entries_, capacity_);
  std::size_t slot = hash(key) & mask;
  while (entries[slot].used && !(entries[slot].key == key)) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

std::optional<double> ScoreCache::lookup(const em::Orientation& o) const {
  const std::size_t slot = probe(quantize(o));
  if (entries_[slot].used) {
    ++hits_;
    return entries_[slot].value;
  }
  ++misses_;
  return std::nullopt;
}

void ScoreCache::insert(const em::Orientation& o, double distance) {
  const Key key = quantize(o);
  const std::size_t slot = probe(key);
  if (!entries_[slot].used) {
    entries_[slot].used = true;
    entries_[slot].key = key;
    ++size_;
    // Keep the load factor under ~0.7 so probe chains stay short.
    if (size_ * 10 >= capacity_ * 7) grow();
  }
  // Post-insert load-factor invariant: the grow above restores
  // size/capacity < 0.7, which is what keeps probe chains short AND
  // guarantees probe() termination (a free slot always exists).
  POR_ENSURE(size_ * 10 < capacity_ * 7,
             "load factor invariant violated: size =", size_,
             "capacity =", capacity_);
  // Re-probe after a potential grow (slot indices change).
  entries_[probe(key)].value = distance;
}

void ScoreCache::clear() {
  for (std::size_t i = 0; i < capacity_; ++i) entries_[i].used = false;
  size_ = 0;
}

void ScoreCache::grow() {
  const Entry* old = entries_;
  const std::size_t old_capacity = capacity_;
  // Bump-allocate the doubled table out of the private arena; the old
  // table is abandoned in place (monotonic — see score_cache.hpp).
  capacity_ = old_capacity * 2;
  entries_ = arena_.alloc_array<Entry>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) entries_[i] = Entry{};
  // Power-of-two capacity is what makes `hash & (capacity - 1)` a
  // valid slot map; doubling preserves it.
  POR_ENSURE((capacity_ & (capacity_ - 1)) == 0,
             "capacity must stay a power of two:", capacity_);
  for (std::size_t i = 0; i < old_capacity; ++i) {
    if (!old[i].used) continue;
    const std::size_t slot = probe(old[i].key);
    entries_[slot] = old[i];
  }
}

}  // namespace por::core
