// por/core/score_cache.hpp
//
// Memoization of matching scores by orientation.
//
// The sliding window re-scores every orientation shared between the
// pre-slide and post-slide domains (a width^2 * (width-1) overlap per
// slide), and refine_view's orientation<->center alternation re-runs
// the whole w^3 window against an unchanged view spectrum whenever a
// pass leaves the center where it was.  ScoreCache turns both into
// O(1) table hits.
//
// Key quantization: orientations are hashed by llround(angle/quantum).
// Search-grid orientations are center + k*step with step >= 4*quantum
// (callers pass quantum = step/4), so distinct grid points always land
// >= 4 quanta apart — no two different candidates can collide on one
// key.  Recomputing "the same" grid point after a slide produces a
// double within ~1e-11 deg of the original ((a+s)-s vs a), i.e. many
// orders of magnitude under half a quantum, so re-encounters hit the
// same key except in the measure-zero case where the true angle sits
// exactly on a rounding boundary — which degrades to a harmless extra
// miss, never to a wrong score.  That is why the cache is *exact* for
// grid orientations: a hit can only ever return the score of the very
// same grid point.
//
// Lifetime: one cache per (view spectrum, angular step) pair.  The
// refiner clears it whenever the center correction changes the
// matching spectrum; sliding_window_search keeps filling it across
// slides within one search.
#pragma once

#include <cstdint>
#include <optional>

#include "por/em/orientation.hpp"
#include "por/util/arena.hpp"

namespace por::core {

/// Open-addressing (linear-probe, power-of-two capacity) map from a
/// quantized (theta, phi, omega) key to a matching distance.
///
/// CONTRACT: the table always keeps at least one free slot (load
/// factor < 0.7 after every insert) and its capacity stays a power of
/// two — both enforced by POR_EXPECT / POR_ENSURE in score_cache.cpp;
/// probe termination and the `hash & mask` slot map depend on them.
class ScoreCache {
 public:
  /// `quantum_deg` must be positive and at most 1/4 of the angular
  /// grid step the cached search uses (see file comment).
  explicit ScoreCache(double quantum_deg, std::size_t initial_capacity = 2048);

  /// Score previously inserted for `o`, if any.  Counts a hit or miss.
  [[nodiscard]] std::optional<double> lookup(const em::Orientation& o) const;

  /// Record the score for `o` (last write wins on re-insert).
  void insert(const em::Orientation& o, double distance);

  /// Drop every entry (hit/miss statistics survive).  Called when the
  /// view spectrum the scores were computed against changes.
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] double quantum_deg() const { return quantum_deg_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Key {
    std::int64_t qt = 0, qp = 0, qo = 0;
    bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    double value = 0.0;
    bool used = false;
  };

  [[nodiscard]] Key quantize(const em::Orientation& o) const;
  [[nodiscard]] static std::size_t hash(const Key& k);
  /// Probe slot of `key`: its entry if present, else the first free
  /// slot of its probe chain.
  [[nodiscard]] std::size_t probe(const Key& key) const;
  void grow();

  double quantum_deg_;
  // The table lives in a PRIVATE arena (arena ownership rule 2,
  // DESIGN.md §12): the cache grows mid-search, interleaved with the
  // sliding window's frame-arena scopes, so borrowing frame_arena()
  // would break the LIFO discipline.  grow() bump-allocates the doubled
  // table and abandons the old one — monotonic waste bounded by the
  // geometric series (< 1x the final table), reclaimed only when the
  // cache itself dies, in exchange for zero general-heap traffic after
  // the arena's chunks warm up.
  util::Arena arena_;
  Entry* entries_ = nullptr;   ///< `capacity_` slots, arena-backed
  std::size_t capacity_ = 0;   ///< always a power of two
  std::size_t size_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace por::core
