#include "por/core/brick_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ostream>
#include <stdexcept>

#include "por/obs/registry.hpp"
#include "por/resilience/atomic_file.hpp"

namespace por::core {

namespace {

constexpr vmpi::Tag kBrickRequestTag = 300;
constexpr vmpi::Tag kBrickReplyTag = 301;
constexpr vmpi::Tag kBrickScatterTag = 302;

// Request payload: brick index, or kStopToken for shutdown.
constexpr std::uint64_t kStopToken = ~std::uint64_t{0};

}  // namespace

BrickStore::BrickStore(vmpi::Comm& comm,
                       const em::Volume<em::cdouble>& full_on_root,
                       std::size_t edge, const BrickStoreConfig& config)
    : comm_(comm), config_(config), edge_(edge) {
  if (config_.brick_edge == 0 || edge_ % config_.brick_edge != 0) {
    throw std::invalid_argument(
        "BrickStore: brick edge must divide the volume edge");
  }
  grid_ = edge_ / config_.brick_edge;
  const std::size_t brick_count = grid_ * grid_ * grid_;
  const std::size_t be = config_.brick_edge;
  const std::size_t brick_voxels = be * be * be;

  // Root slices the volume into bricks and deals them out; every rank
  // keeps only its own share (that is the whole point of the design).
  if (comm_.is_root()) {
    if (full_on_root.nx() != edge_ || !full_on_root.is_cube()) {
      throw std::invalid_argument("BrickStore: root volume edge mismatch");
    }
    for (std::size_t index = 0; index < brick_count; ++index) {
      const std::size_t bz = index / (grid_ * grid_);
      const std::size_t by = (index / grid_) % grid_;
      const std::size_t bx = index % grid_;
      std::vector<em::cdouble> payload;
      payload.reserve(brick_voxels);
      for (std::size_t z = 0; z < be; ++z) {
        for (std::size_t y = 0; y < be; ++y) {
          for (std::size_t x = 0; x < be; ++x) {
            payload.push_back(
                full_on_root(bz * be + z, by * be + y, bx * be + x));
          }
        }
      }
      const int owner = owner_of(index);
      if (owner == comm_.rank()) {
        local_bricks_.emplace(index, std::move(payload));
      } else {
        comm_.send(owner, kBrickScatterTag, payload);
      }
    }
  } else {
    for (std::size_t index = 0; index < brick_count; ++index) {
      if (owner_of(index) == comm_.rank()) {
        local_bricks_.emplace(index,
                              comm_.recv<em::cdouble>(0, kBrickScatterTag));
      }
    }
  }
  if (!config_.spill_dir.empty()) spill_local_bricks();
  comm_.barrier();
}

void BrickStore::spill_local_bricks() {
  // Deterministic slot order (sorted brick index), raw cdouble payload
  // — no header; the in-memory slot map is rebuilt from the same sort
  // on every rank, so the file needs no self-description.
  std::vector<std::size_t> indices;
  indices.reserve(local_bricks_.size());
  for (const auto& [index, payload] : local_bricks_) indices.push_back(index);
  std::sort(indices.begin(), indices.end());
  const std::string path = config_.spill_dir + "/bricks.rank" +
                           std::to_string(comm_.rank()) + ".porb";
  resilience::atomic_write_file(path, [&](std::ostream& os) {
    for (const std::size_t index : indices) {
      const auto& payload = local_bricks_.at(index);
      os.write(reinterpret_cast<const char*>(payload.data()),
               static_cast<std::streamsize>(payload.size() *
                                            sizeof(em::cdouble)));
    }
  });
  for (std::size_t slot = 0; slot < indices.size(); ++slot) {
    spill_slot_.emplace(indices[slot], slot);
  }
  const std::size_t be = config_.brick_edge;
  spilled_bytes_ = indices.size() * be * be * be * sizeof(em::cdouble);
  obs::current_registry().counter("stream.brick_spill.bytes")
      .add(spilled_bytes_);
  local_bricks_.clear();
  local_bricks_.rehash(0);  // actually release the heap copies
  if (!indices.empty()) {
    spill_map_ = stream::ShardMapping(path);
  }
}

const em::cdouble* BrickStore::local_brick(std::size_t index) const {
  const auto slot = spill_slot_.find(index);
  if (slot != spill_slot_.end()) {
    const std::size_t be = config_.brick_edge;
    const std::size_t brick_bytes = be * be * be * sizeof(em::cdouble);
    // Spill payloads are raw cdouble arrays at 16-aligned offsets and
    // the mapping is a member, so it outlives every reader.
    // por-lint: allow(reinterpret-cast) mmap'd spill bytes are cdouble payloads
    return reinterpret_cast<const em::cdouble*>(spill_map_.data() +
                                                slot->second * brick_bytes);
  }
  const auto local = local_bricks_.find(index);
  if (local != local_bricks_.end()) return local->second.data();
  return nullptr;
}

BrickStore::~BrickStore() {
  // stop_server() is collective and must be called explicitly; a live
  // server here means a protocol bug, but avoid deadlocking the whole
  // process on teardown.
  if (server_.joinable()) server_.detach();
}

void BrickStore::start_server() {
  if (server_running_) throw std::logic_error("BrickStore: server running");
  server_running_ = true;
  server_ = std::thread([this] { server_loop(); });
}

void BrickStore::stop_server() {
  if (!server_running_) throw std::logic_error("BrickStore: server not running");
  // Every rank tells every server it is done; a server exits after
  // collecting P tokens, so it keeps serving until ALL clients finish.
  for (int r = 0; r < comm_.size(); ++r) {
    comm_.send_value(r, kBrickRequestTag, kStopToken);
  }
  server_.join();
  server_running_ = false;
  comm_.barrier();
}

void BrickStore::server_loop() {
  int stops_seen = 0;
  while (stops_seen < comm_.size()) {
    int requester = -1;
    const auto raw = comm_.recv_any_bytes(kBrickRequestTag, requester);
    std::uint64_t index = 0;
    std::memcpy(&index, raw.data(), sizeof index);
    if (index == kStopToken) {
      ++stops_seen;
      continue;
    }
    const em::cdouble* payload = local_brick(static_cast<std::size_t>(index));
    if (payload == nullptr) {
      throw std::logic_error("BrickStore: asked for a brick I do not own");
    }
    // Spilled bricks live in the read-only mapping; stage the reply in
    // the server's scratch vector (send wants a vector either way).
    const std::size_t be = config_.brick_edge;
    reply_scratch_.assign(payload, payload + be * be * be);
    comm_.send(requester, kBrickReplyTag, reply_scratch_);
  }
}

const em::cdouble* BrickStore::brick(std::size_t index) {
  // Local bricks are free (heap map or spill mapping).
  if (const em::cdouble* local = local_brick(index)) {
    ++local_hits_;
    return local;
  }
  // Cached remote bricks: refresh LRU position.
  auto cached = cache_.find(index);
  if (cached != cache_.end()) {
    ++cache_hits_;
    lru_.erase(lru_pos_[index]);
    lru_.push_front(index);
    lru_pos_[index] = lru_.begin();
    return cached->second.data();
  }
  // Remote fetch.
  const int owner = owner_of(index);
  comm_.send_value(owner, kBrickRequestTag, static_cast<std::uint64_t>(index));
  std::vector<em::cdouble> payload = comm_.recv<em::cdouble>(owner, kBrickReplyTag);
  ++remote_fetches_;
  bytes_fetched_ += payload.size() * sizeof(em::cdouble);
  // Insert with eviction.
  if (cache_.size() >= config_.cache_bricks && !lru_.empty()) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    cache_.erase(victim);
    ++evictions_;
  }
  auto [it, inserted] = cache_.emplace(index, std::move(payload));
  lru_.push_front(index);
  lru_pos_[index] = lru_.begin();
  return it->second.data();
}

em::cdouble BrickStore::voxel(long z, long y, long x) {
  if (z < 0 || y < 0 || x < 0 || z >= static_cast<long>(edge_) ||
      y >= static_cast<long>(edge_) || x >= static_cast<long>(edge_)) {
    return {0.0, 0.0};
  }
  const std::size_t be = config_.brick_edge;
  const std::size_t bz = static_cast<std::size_t>(z) / be;
  const std::size_t by = static_cast<std::size_t>(y) / be;
  const std::size_t bx = static_cast<std::size_t>(x) / be;
  const std::size_t index = (bz * grid_ + by) * grid_ + bx;
  const em::cdouble* data = brick(index);
  const std::size_t lz = static_cast<std::size_t>(z) % be;
  const std::size_t ly = static_cast<std::size_t>(y) % be;
  const std::size_t lx = static_cast<std::size_t>(x) % be;
  return data[(lz * be + ly) * be + lx];
}

em::cdouble BrickStore::sample(double z, double y, double x) {
  const double fz = std::floor(z), fy = std::floor(y), fx = std::floor(x);
  const long iz = static_cast<long>(fz), iy = static_cast<long>(fy),
             ix = static_cast<long>(fx);
  const double tz = z - fz, ty = y - fy, tx = x - fx;
  em::cdouble acc{0.0, 0.0};
  for (int dz = 0; dz < 2; ++dz) {
    const double wz = dz ? tz : 1.0 - tz;
    // por-lint: allow(float-eq) exact-zero weight skip, bit-exact
    // no-op (same convention as por/em/interp.hpp); also both below.
    if (wz == 0.0) continue;
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy ? ty : 1.0 - ty;
      if (wy == 0.0) continue;  // por-lint: allow(float-eq) exact-zero skip
      for (int dx = 0; dx < 2; ++dx) {
        const double wx = dx ? tx : 1.0 - tx;
        if (wx == 0.0) continue;  // por-lint: allow(float-eq) exact-zero skip
        acc += wz * wy * wx * voxel(iz + dz, iy + dy, ix + dx);
      }
    }
  }
  return acc;
}

}  // namespace por::core
