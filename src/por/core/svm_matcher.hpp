// por/core/svm_matcher.hpp
//
// The matching kernel running against a demand-paged BrickStore
// instead of a replicated spectrum — the complete realization of the
// paper's §6 alternative, used by bench/ablation_replication to put
// numbers on the replicate-vs-fetch trade-off.
#pragma once

#include "por/core/brick_store.hpp"
#include "por/core/matcher.hpp"

namespace por::core {

/// Same matching semantics as FourierMatcher::distance, but every cut
/// sample is read through a BrickStore (local bricks, LRU-cached
/// remote bricks, on-demand fetches).
class SvmMatcher {
 public:
  /// `store` must hold the padded centered spectrum of edge
  /// l * options.pad.  CTF options are honoured exactly as in
  /// FourierMatcher.
  SvmMatcher(BrickStore& store, std::size_t l, const MatchOptions& options);

  /// One matching operation through the brick store.
  [[nodiscard]] double distance(const em::Image<em::cdouble>& view_spectrum,
                                const em::Orientation& o);

  [[nodiscard]] std::uint64_t matchings() const { return matchings_; }
  [[nodiscard]] const BrickStore& store() const { return store_; }
  [[nodiscard]] double padded_r_map() const { return padded_r_map_; }

 private:
  BrickStore& store_;
  std::size_t l_;
  MatchOptions options_;
  double padded_r_map_;
  double padded_r_min_;
  std::vector<double> transfer_table_;
  std::uint64_t matchings_ = 0;
};

}  // namespace por::core
