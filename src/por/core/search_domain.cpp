#include "por/core/search_domain.hpp"

#include <cmath>
#include <stdexcept>

namespace por::core {

std::vector<em::Orientation> SearchDomain::enumerate() const {
  std::vector<em::Orientation> grid;
  grid.reserve(cardinality());
  for (int it = 0; it < width; ++it) {
    for (int ip = 0; ip < width; ++ip) {
      for (int io = 0; io < width; ++io) {
        grid.push_back(em::Orientation{center.theta + offset(it),
                                       center.phi + offset(ip),
                                       center.omega + offset(io)});
      }
    }
  }
  return grid;
}

std::vector<SearchLevel> paper_schedule() {
  return {
      SearchLevel{1.0, 3, 1.0, 3},
      SearchLevel{0.1, 9, 0.1, 3},
      SearchLevel{0.01, 9, 0.01, 3},
      SearchLevel{0.002, 10, 0.002, 3},
  };
}

std::vector<SearchLevel> schedule_down_to(double finest_deg) {
  std::vector<SearchLevel> schedule;
  for (const auto& level : paper_schedule()) {
    if (level.angular_step_deg >= finest_deg - 1e-12) schedule.push_back(level);
  }
  if (schedule.empty()) {
    throw std::invalid_argument("schedule_down_to: no level that coarse");
  }
  return schedule;
}

double exhaustive_cardinality(double theta_range_deg, double phi_range_deg,
                              double omega_range_deg, double r_angular_deg) {
  if (r_angular_deg <= 0.0) {
    throw std::invalid_argument("exhaustive_cardinality: step must be > 0");
  }
  return (theta_range_deg / r_angular_deg) * (phi_range_deg / r_angular_deg) *
         (omega_range_deg / r_angular_deg);
}

std::uint64_t multires_matchings(double initial_range_deg,
                                 double final_step_deg, int width,
                                 double ratio, int angles) {
  if (initial_range_deg <= 0.0 || final_step_deg <= 0.0 || width < 2 ||
      ratio <= 1.0 || angles < 1) {
    throw std::invalid_argument("multires_matchings: bad arguments");
  }
  // Level 0 covers the initial range with `width` points; every later
  // level shrinks the step by `ratio` until it reaches final_step_deg.
  std::uint64_t levels = 1;
  double step = initial_range_deg / static_cast<double>(width - 1);
  while (step > final_step_deg * (1.0 + 1e-12)) {
    step /= ratio;
    ++levels;
  }
  // Matchings per level: width^angles.
  std::uint64_t per_level = 1;
  for (int a = 0; a < angles; ++a) per_level *= static_cast<std::uint64_t>(width);
  return levels * per_level;
}

}  // namespace por::core
