#include "por/core/refiner.hpp"

#include "por/em/projection.hpp"
#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/resilience/quarantine.hpp"
#include "por/serve/scheduler.hpp"
#include "por/stream/view_cursor.hpp"
#include "por/stream/view_source.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

namespace por::core {

void OrientationRefiner::bind_observability() {
  obs::MetricsRegistry& registry = obs::current_registry();
  obs_view_span_ = &registry.span_series("refiner.view");
  // The "step.<name>" series mirror the paper's step vocabulary so the
  // parallel driver can rebuild StepTimes rows from a registry
  // snapshot (see parallel_refiner.cpp).
  obs_fft_span_ = &registry.span_series("step.FFT analysis");
  obs_orient_span_ = &registry.span_series("step.Orientation refinement");
  obs_center_span_ = &registry.span_series("step.Center refinement");
  obs_quarantined_ = &registry.counter("resilience.views.quarantined");
}

OrientationRefiner::OrientationRefiner(const em::Volume<double>& density_map,
                                       const RefinerConfig& config)
    : matcher_(density_map, config.matcher_options()), config_(config) {
  if (config_.schedule.empty()) {
    throw std::invalid_argument("OrientationRefiner: empty schedule");
  }
  bind_observability();
}

OrientationRefiner::OrientationRefiner(FourierMatcher matcher,
                                       const RefinerConfig& config)
    : matcher_(std::move(matcher)), config_(config) {
  if (config_.schedule.empty()) {
    throw std::invalid_argument("OrientationRefiner: empty schedule");
  }
  bind_observability();
}

ViewResult OrientationRefiner::refine_view(const em::Image<double>& view,
                                           const em::Orientation& initial,
                                           double center_x, double center_y,
                                           const CancelToken* cancel) const {
  const obs::SpanTimer view_timer(*obs_view_span_);

  // Poll before any per-view work: a job whose deadline already passed
  // while queued must not pay for the FFT below.
  if (cancel != nullptr) cancel->check();

  // Graceful per-view degradation (DESIGN.md §10): a view with
  // NaN/Inf pixels would drive every matching distance non-finite and
  // poison the whole run's statistics.  Quarantine it — return the
  // initial parameters untouched, flagged, so the drivers can keep it
  // out of the reconstruction and the run report can count it.
  if (config_.resilience.quarantine_views &&
      !resilience::all_finite(view.data(), view.size())) {
    obs_quarantined_->add();
    ViewResult bad;
    bad.orientation = initial;
    bad.center_x = center_x;
    bad.center_y = center_y;
    bad.quarantined = 1;
    return bad;
  }

  // Step (d)+(e): 2D DFT of the view and CTF correction.
  util::WallTimer fft_timer;
  em::Image<em::cdouble> spectrum = matcher_.prepare_view(view);
  {
    const double seconds = fft_timer.seconds();
    times_.add("FFT analysis", seconds);
    obs_fft_span_->record(static_cast<std::uint64_t>(seconds * 1e9));
  }

  ViewResult result;
  result.orientation = initial;
  result.center_x = center_x;
  result.center_y = center_y;

  // The spectrum used for matching carries the current center
  // correction: translate by (-cx, -cy) so the particle sits exactly
  // on the box center, as the cuts assume.  Offsets are in pixels,
  // which are the same physical units on the padded grid.  With a zero
  // offset the prepared spectrum is used directly (no copy); otherwise
  // the phase ramp is written into one reused buffer.
  em::Image<em::cdouble> translated;
  const em::Image<em::cdouble>* centered = &spectrum;
  const auto apply_center = [&](double cx, double cy) {
    // por-lint: allow(float-eq) exact-zero center means "no phase
    // ramp": reuse the untranslated spectrum bit-identically.
    if (cx == 0.0 && cy == 0.0) {
      centered = &spectrum;
    } else {
      em::translate_phase_into(translated, spectrum, -cx, -cy);
      centered = &translated;
    }
  };
  apply_center(center_x, center_y);

  // Step (n): iterate the levels of the multi-resolution schedule.
  const int passes =
      config_.refine_centers ? std::max(1, config_.max_passes_per_level) : 1;
  for (const SearchLevel& level : config_.schedule) {
    // Score cache for this level's angular grid: the
    // orientation<->center passes below re-visit the same grid points
    // against the same matching spectrum, and the sliding window
    // overlaps itself.  quantum = step/4 keeps distinct grid points
    // on distinct keys (see score_cache.hpp).  Invalidated whenever
    // the center correction changes the matching spectrum.
    std::optional<ScoreCache> cache;
    if (level.angular_step_deg > 0.0) {
      cache.emplace(level.angular_step_deg / 4.0);
    }
    for (int pass = 0; pass < passes; ++pass) {
      // Steps (f)-(j): sliding-window angular search at this resolution.
      util::WallTimer refine_timer;
      const SearchDomain domain{result.orientation, level.angular_step_deg,
                                level.angular_width};
      const WindowResult window =
          sliding_window_search(matcher_, *centered, domain,
                                config_.max_slides,
                                cache ? &*cache : nullptr, cancel);
      const double moved_deg =
          em::geodesic_deg(result.orientation, window.best);
      result.orientation = window.best;
      result.final_distance = window.best_distance;
      result.matchings += window.matchings;
      result.cache_hits += window.cache_hits;
      result.window_slides += window.slides;
      {
        const double seconds = refine_timer.seconds();
        times_.add("Orientation refinement", seconds);
        obs_orient_span_->record(static_cast<std::uint64_t>(seconds * 1e9));
      }

      if (!config_.refine_centers) break;

      // Pass boundary: the center search below is the other long leg
      // of a pass, so poll between the two.
      if (cancel != nullptr) cancel->check();

      // Steps (k)-(l): center refinement against the best cut.
      util::WallTimer center_timer;
      const em::Image<em::cdouble> best_cut = matcher_.cut(result.orientation);
      const CenterResult center = refine_center(
          matcher_, spectrum, best_cut, result.center_x, result.center_y,
          level.center_step_px, level.center_width, config_.max_slides);
      const double center_moved = std::hypot(center.dx - result.center_x,
                                             center.dy - result.center_y);
      const bool center_changed =
          center.dx != result.center_x || center.dy != result.center_y;
      result.center_x = center.dx;
      result.center_y = center.dy;
      result.center_evals += center.evaluations;
      if (center_changed) {
        // Re-apply the improved center to the matching spectrum; the
        // cached scores were measured against the old spectrum.
        apply_center(result.center_x, result.center_y);
        if (cache) cache->clear();
      }
      {
        const double seconds = center_timer.seconds();
        times_.add("Center refinement", seconds);
        obs_center_span_->record(static_cast<std::uint64_t>(seconds * 1e9));
      }

      // The angular search and the center search are coupled; stop
      // alternating once a pass changes neither appreciably.
      if (moved_deg < 0.25 * level.angular_step_deg &&
          center_moved < 0.25 * level.center_step_px) {
        break;
      }
    }
  }

  // Second quarantine gate: finite pixels can still drive the matching
  // distance non-finite (overflow in a pathological spectrum).  Such a
  // "refined" orientation is meaningless — flag the view instead of
  // letting the non-finite score propagate into run statistics.
  if (config_.resilience.quarantine_views &&
      !std::isfinite(result.final_distance)) {
    obs_quarantined_->add();
    ViewResult bad;
    bad.orientation = initial;
    bad.center_x = center_x;
    bad.center_y = center_y;
    bad.quarantined = 1;
    return bad;
  }
  return result;
}

std::vector<ViewResult> OrientationRefiner::refine(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& initial_orientations,
    const std::vector<std::pair<double, double>>& initial_centers) const {
  if (views.size() != initial_orientations.size()) {
    throw std::invalid_argument("refine: views/orientations size mismatch");
  }
  if (!initial_centers.empty() && initial_centers.size() != views.size()) {
    throw std::invalid_argument("refine: centers size mismatch");
  }
  std::vector<ViewResult> results(views.size());
  const auto refine_one = [&](std::size_t i) {
    const double cx = initial_centers.empty() ? 0.0 : initial_centers[i].first;
    const double cy = initial_centers.empty() ? 0.0 : initial_centers[i].second;
    results[i] = refine_view(views[i], initial_orientations[i], cx, cy);
  };
  if (config_.refine_workers != 1 && views.size() > 1) {
    // Work-stealing batch: each view index runs exactly once, writes
    // only results[i], and refine_view is deterministic — so this is
    // bitwise-identical to the serial loop below at any worker count.
    serve::SchedulerOptions options;
    options.workers = config_.refine_workers < 0
                          ? 1
                          : static_cast<std::size_t>(config_.refine_workers);
    serve::Scheduler scheduler(options);
    scheduler.run(views.size(), refine_one);
  } else {
    for (std::size_t i = 0; i < views.size(); ++i) refine_one(i);
  }
  return results;
}

std::vector<ViewResult> OrientationRefiner::refine_stream(
    stream::ViewSource& source, std::uint64_t first, std::uint64_t count,
    const std::vector<em::Orientation>& initial_orientations,
    const std::vector<std::pair<double, double>>& initial_centers) const {
  if (initial_orientations.size() != count) {
    throw std::invalid_argument(
        "refine_stream: views/orientations size mismatch");
  }
  if (!initial_centers.empty() && initial_centers.size() != count) {
    throw std::invalid_argument("refine_stream: centers size mismatch");
  }
  const std::size_t l = source.ny();
  if (source.nx() != l) {
    throw std::invalid_argument("refine_stream: views must be square");
  }
  stream::PrefetchOptions prefetch;
  prefetch.depth = config_.stream.prefetch_depth;
  prefetch.batch_views = config_.stream.batch_views;
  stream::ViewCursor cursor(source, first, count, prefetch);

  std::vector<ViewResult> results(static_cast<std::size_t>(count));
  em::Image<double> scratch(l, l);  // one reused view-sized buffer
  for (std::size_t i = 0; i < count; ++i) {
    const double* pixels = cursor.next();
    std::copy(pixels, pixels + l * l, scratch.storage().begin());
    const double cx = initial_centers.empty() ? 0.0 : initial_centers[i].first;
    const double cy = initial_centers.empty() ? 0.0 : initial_centers[i].second;
    results[i] = refine_view(scratch, initial_orientations[i], cx, cy);
  }
  return results;
}

}  // namespace por::core
