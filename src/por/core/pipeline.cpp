#include "por/core/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/util/log.hpp"

namespace por::core {

RefinementPipeline::RefinementPipeline(const PipelineConfig& config)
    : config_(config) {
  if (config_.cycles < 1) {
    throw std::invalid_argument("RefinementPipeline: cycles must be >= 1");
  }
  if (config_.r_map_growth < 1.0) {
    throw std::invalid_argument("RefinementPipeline: r_map_growth < 1");
  }
}

metrics::FscCurve RefinementPipeline::odd_even_fsc(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& orientations,
    const std::vector<std::pair<double, double>>& centers,
    const recon::ReconOptions& options) {
  std::vector<em::Image<double>> odd_views, even_views;
  std::vector<em::Orientation> odd_orients, even_orients;
  std::vector<std::pair<double, double>> odd_centers, even_centers;
  for (std::size_t i = 0; i < views.size(); ++i) {
    auto& v = (i % 2 == 0) ? even_views : odd_views;
    auto& o = (i % 2 == 0) ? even_orients : odd_orients;
    auto& c = (i % 2 == 0) ? even_centers : odd_centers;
    v.push_back(views[i]);
    o.push_back(orientations[i]);
    if (!centers.empty()) c.push_back(centers[i]);
  }
  const em::Volume<double> odd_map =
      recon::fourier_reconstruct(odd_views, odd_orients, odd_centers, options);
  const em::Volume<double> even_map = recon::fourier_reconstruct(
      even_views, even_orients, even_centers, options);
  return metrics::fourier_shell_correlation(odd_map, even_map);
}

PipelineResult RefinementPipeline::run(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& initial_orientations,
    const std::optional<em::Volume<double>>& initial_map,
    const std::optional<GroundTruth>& truth) const {
  if (views.empty() || views.size() != initial_orientations.size()) {
    throw std::invalid_argument("pipeline: bad views/orientations");
  }
  const std::size_t l = views.front().nx();
  const double nyquist = static_cast<double>(l) / 2.0 - 1.0;

  PipelineResult result;
  result.orientations = initial_orientations;
  result.centers.assign(views.size(), {0.0, 0.0});
  result.map = initial_map.has_value()
                   ? *initial_map
                   : recon::fourier_reconstruct(views, result.orientations,
                                                result.centers, config_.recon);

  double r_map = config_.initial_r_map > 0.0 ? config_.initial_r_map
                                             : std::max(3.0, nyquist / 3.0);

  obs::MetricsRegistry& registry = obs::current_registry();
  obs::SpanSeries& cycle_span = registry.span_series("pipeline.cycle");
  obs::Counter& cycle_counter = registry.counter("pipeline.cycles");
  obs::Gauge& fsc_gauge = registry.gauge("pipeline.fsc_radius");
  obs::Gauge& resolution_gauge = registry.gauge("pipeline.resolution_a");
  obs::Gauge& r_map_gauge = registry.gauge("pipeline.r_map");

  for (int cycle = 1; cycle <= config_.cycles; ++cycle) {
    const obs::SpanTimer cycle_timer(cycle_span);
    cycle_counter.add();
    CycleReport report;
    report.cycle = cycle;
    report.r_map = std::min(r_map, nyquist);
    r_map_gauge.set(report.r_map);

    // ---- Step B: refine orientations against the current map ----
    RefinerConfig rc = config_.refiner;
    rc.match.r_map = report.r_map;
    OrientationRefiner refiner(result.map, rc);
    const std::vector<ViewResult> refined =
        refiner.refine(views, result.orientations, result.centers);
    for (std::size_t i = 0; i < refined.size(); ++i) {
      result.orientations[i] = refined[i].orientation;
      result.centers[i] = {refined[i].center_x, refined[i].center_y};
      report.matchings += refined[i].matchings;
    }
    report.times = refiner.times();

    // ---- Step C: reconstruct from the refined orientations ----
    util::WallTimer recon_timer;
    result.map = recon::fourier_reconstruct(views, result.orientations,
                                            result.centers, config_.recon);
    report.times.add("3D reconstruction", recon_timer.seconds());

    // ---- Fig. 4 protocol: odd/even FSC ----
    const metrics::FscCurve curve =
        odd_even_fsc(views, result.orientations, result.centers, config_.recon);
    report.fsc_radius = metrics::crossing_radius(curve, 0.5);
    report.resolution_a = metrics::radius_to_resolution_a(
        report.fsc_radius, l, config_.pixel_size_a);
    // Export the per-cycle quality figures; set() keeps the latest
    // cycle's values, which is what a run report should show.
    fsc_gauge.set(report.fsc_radius);
    resolution_gauge.set(report.resolution_a);

    if (truth.has_value()) {
      report.orientation_error = metrics::orientation_error_stats(
          result.orientations, truth->orientations, truth->symmetry);
      if (!truth->centers.empty()) {
        double sum = 0.0;
        for (std::size_t i = 0; i < result.centers.size(); ++i) {
          const double dx = result.centers[i].first - truth->centers[i].first;
          const double dy =
              result.centers[i].second - truth->centers[i].second;
          sum += std::hypot(dx, dy);
        }
        report.mean_center_error_px =
            sum / static_cast<double>(result.centers.size());
      }
    }

    util::log_info("pipeline cycle ", cycle, ": r_map=", report.r_map,
                   " fsc0.5 radius=", report.fsc_radius,
                   " resolution=", report.resolution_a, " A");
    result.cycles.push_back(std::move(report));

    // Raise the working resolution toward Nyquist for the next cycle.
    r_map = std::min(nyquist, r_map * config_.r_map_growth);
  }
  return result;
}

}  // namespace por::core
