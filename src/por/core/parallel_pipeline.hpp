// por/core/parallel_pipeline.hpp
//
// One full distributed structure-determination cycle: Step B
// (parallel_refine, steps a-o) followed by Step C (the vmpi-parallel
// Fourier reconstruction), as the paper ran them back to back on the
// SP2 — "The execution time for 3D reconstruction for the Sindbis
// virus is 4,575 seconds ... The 3D reconstruction time represents
// less than 5% of the total time per cycle."
#pragma once

#include "por/core/parallel_refiner.hpp"
#include "por/recon/parallel_recon.hpp"

namespace por::core {

struct ParallelCycleReport {
  ParallelRefineReport refine;     ///< step-B report (times, matchings)
  double reconstruction_seconds = 0.0;  ///< step-C wall time (max over ranks)
  /// Refined per-view records in global order (root only).
  std::vector<ViewResult> results;
  /// The new map, complete and identical on EVERY rank (replication,
  /// ready for the next cycle's step a).
  em::Volume<double> map;
};

/// SPMD collective: refine all views against `map_on_root`, then
/// reconstruct the next map from the refined orientations/centers.
[[nodiscard]] ParallelCycleReport parallel_cycle(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& refiner_config,
    const recon::ReconOptions& recon_options = {});

}  // namespace por::core
