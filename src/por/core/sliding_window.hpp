// por/core/sliding_window.hpp
//
// Steps (f)-(i): search the angular grid for the minimum-distance cut
// and, whenever the minimum lands on the edge of the domain, re-center
// the domain there and search again — "this sliding-window approach
// increases the number of matching operations, but at the same time
// improves the quality of the solution" (§4).
#pragma once

#include <cstdint>

#include "por/core/matcher.hpp"
#include "por/core/search_domain.hpp"

namespace por::core {

struct WindowResult {
  em::Orientation best;         ///< O_mu, the minimum-distance orientation
  double best_distance = 0.0;   ///< d_mu
  int slides = 0;               ///< n_window: times the window moved
  std::uint64_t matchings = 0;  ///< matching operations spent
};

/// Run the grid search with the sliding-window rule.  `max_slides`
/// bounds runaway sliding on pathological (e.g. featureless) data;
/// the paper's tables observe 0-2 slides in practice.
[[nodiscard]] WindowResult sliding_window_search(
    const FourierMatcher& matcher, const em::Image<em::cdouble>& view_spectrum,
    const SearchDomain& initial_domain, int max_slides = 8);

}  // namespace por::core
