// por/core/sliding_window.hpp
//
// Steps (f)-(i): search the angular grid for the minimum-distance cut
// and, whenever the minimum lands on the edge of the domain, re-center
// the domain there and search again — "this sliding-window approach
// increases the number of matching operations, but at the same time
// improves the quality of the solution" (§4).
#pragma once

#include <cstdint>

#include "por/core/matcher.hpp"
#include "por/core/score_cache.hpp"
#include "por/core/search_domain.hpp"

namespace por::core {

struct WindowResult {
  em::Orientation best;         ///< O_mu, the minimum-distance orientation
  double best_distance = 0.0;   ///< d_mu
  int slides = 0;               ///< n_window: times the window moved
  std::uint64_t matchings = 0;  ///< matching operations spent
  std::uint64_t cache_hits = 0; ///< candidates served from the score cache
};

/// Run the grid search with the sliding-window rule.  `max_slides`
/// bounds runaway sliding on pathological (e.g. featureless) data;
/// the paper's tables observe 0-2 slides in practice.
///
/// `cache`, when non-null, memoizes scores across rounds (and across
/// calls, for as long as the caller keeps the cache alive and the view
/// spectrum unchanged): orientations shared between overlapping slide
/// windows are never re-scored.  The result is identical with and
/// without a cache — hits return the very score the matcher produced.
/// When the matcher was built with options().search_threads > 1, the
/// uncached candidates of each round are fanned across its pool.
///
/// `cancel` (or, when null, matcher.options().cancel) is polled
/// cooperatively — at every round start and every kCancelCheckStride
/// scored candidates of the serial loop — and throws core::Cancelled
/// the moment cancellation or the deadline is observed, so a service
/// job with an expired deadline stops mid-search instead of finishing
/// the w^3 grid (see por/core/cancel.hpp).
///
/// CONTRACT: initial_domain.width > 0 (the w^3 grid must be
/// non-empty) and every candidate score must be finite — both checked
/// by POR_EXPECT / POR_FINITE in sliding_window.cpp so a NaN distance
/// cannot silently drop a candidate from the strict-< argmin.
[[nodiscard]] WindowResult sliding_window_search(
    const FourierMatcher& matcher, const em::Image<em::cdouble>& view_spectrum,
    const SearchDomain& initial_domain, int max_slides = 8,
    ScoreCache* cache = nullptr, const CancelToken* cancel = nullptr);

}  // namespace por::core
