// por/core/symmetry_detect.hpp
//
// Symmetry-group determination from a refined density map.
//
// The paper emphasizes that, because the refinement never assumes a
// symmetry, "if the virus exhibits any symmetry this method allows us
// to determine its symmetry group" (§1, §6).  The detector makes that
// concrete: it scans a grid of candidate rotation axes, scores each
// (axis, fold) by the real-space correlation between the map and the
// map rotated by 2*pi/fold about that axis, keeps high-scoring axes
// (with a local multi-resolution refinement of the axis direction —
// the same coarse-to-fine idea as the orientation search), and
// classifies the surviving axis set as C1, Cn, Dn, T, O or I.
#pragma once

#include <string>
#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"

namespace por::core {

struct DetectorConfig {
  double coarse_step_deg = 8.0;  ///< axis-grid spacing for the scan
  double threshold = 0.75;       ///< min self-correlation to accept an axis
  int max_fold = 6;              ///< folds 2..max_fold are tested
  int refine_rounds = 3;         ///< local axis-refinement rounds (step/2 each)
};

/// One detected rotational symmetry axis.
struct DetectedAxis {
  em::Vec3 axis;            ///< unit direction (hemisphere z >= 0 preferred)
  int fold = 1;             ///< n of the n-fold rotation
  double correlation = 0.0; ///< self-correlation under the rotation
};

struct DetectionResult {
  std::string group;               ///< "C1", "C5", "D7", "T", "O", "I"
  std::vector<DetectedAxis> axes;  ///< surviving axes, best first
};

class SymmetryDetector {
 public:
  explicit SymmetryDetector(const DetectorConfig& config = {});

  /// Correlation of `map` with itself rotated by 2*pi/fold about axis.
  [[nodiscard]] static double self_correlation(const em::Volume<double>& map,
                                               const em::Vec3& axis, int fold);

  /// Scan, refine and classify.
  [[nodiscard]] DetectionResult detect(const em::Volume<double>& map) const;

 private:
  DetectorConfig config_;
};

}  // namespace por::core
