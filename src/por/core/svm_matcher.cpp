#include "por/core/svm_matcher.hpp"

#include <cmath>
#include <stdexcept>

namespace por::core {

SvmMatcher::SvmMatcher(BrickStore& store, std::size_t l,
                       const MatchOptions& options)
    : store_(store), l_(l), options_(options) {
  if (options_.pad < 1) {
    throw std::invalid_argument("SvmMatcher: pad must be >= 1");
  }
  const std::size_t big = l_ * options_.pad;
  if (store_.edge() != big) {
    throw std::invalid_argument("SvmMatcher: store edge mismatch");
  }
  const double nyquist_padded = static_cast<double>(big) / 2.0 - 1.0;
  padded_r_map_ = options_.r_map > 0.0
                      ? std::min(options_.r_map * options_.pad, nyquist_padded)
                      : nyquist_padded;
  padded_r_min_ = options_.r_min * static_cast<double>(options_.pad);

  if (options_.ctf) {
    const std::size_t table_size = big / 2 + 2;
    transfer_table_.resize(table_size);
    const double physical_scale =
        1.0 / (static_cast<double>(big) * options_.ctf->pixel_size_a);
    for (std::size_t r = 0; r < table_size; ++r) {
      const double s = static_cast<double>(r) * physical_scale;
      const double c = em::ctf_value(*options_.ctf, s);
      transfer_table_[r] =
          options_.ctf_correction == em::CtfCorrection::kPhaseFlip
              ? std::abs(c)
              : c * c / (c * c + 1.0 / options_.wiener_snr);
    }
  }
}

double SvmMatcher::distance(const em::Image<em::cdouble>& view_spectrum,
                            const em::Orientation& o) {
  const std::size_t big = l_ * options_.pad;
  if (view_spectrum.nx() != big || view_spectrum.ny() != big) {
    throw std::invalid_argument("SvmMatcher: view spectrum size mismatch");
  }
  ++matchings_;

  const em::Mat3 r = em::rotation_matrix(o);
  const em::Vec3 eu = r * em::Vec3{1, 0, 0};
  const em::Vec3 ev = r * em::Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(big) / 2.0);
  const long lo =
      std::max<long>(0, static_cast<long>(std::floor(c - padded_r_map_)));
  const long hi =
      std::min<long>(static_cast<long>(big) - 1,
                     static_cast<long>(std::ceil(c + padded_r_map_)));

  double sum = 0.0;
  for (long y = lo; y <= hi; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (long x = lo; x <= hi; ++x) {
      const double ku = static_cast<double>(x) - c;
      const double radius = std::sqrt(ku * ku + kv * kv);
      if (radius > padded_r_map_ || radius < padded_r_min_) continue;
      const em::Vec3 q = ku * eu + kv * ev;
      double transfer = 1.0;
      if (!transfer_table_.empty()) {
        const double clamped = std::min(
            radius, static_cast<double>(transfer_table_.size() - 1));
        const auto lo_idx = static_cast<std::size_t>(std::floor(clamped));
        const std::size_t hi_idx =
            std::min(lo_idx + 1, transfer_table_.size() - 1);
        const double t = clamped - static_cast<double>(lo_idx);
        transfer =
            (1.0 - t) * transfer_table_[lo_idx] + t * transfer_table_[hi_idx];
      }
      const em::cdouble cut_sample =
          transfer * store_.sample(q.z + c, q.y + c, q.x + c);
      const em::cdouble diff =
          view_spectrum(static_cast<std::size_t>(y),
                        static_cast<std::size_t>(x)) -
          cut_sample;
      const double weight = options_.weighting == metrics::Weighting::kRadial
                                ? radius / padded_r_map_
                                : 1.0;
      sum += weight * std::norm(diff);
    }
  }
  return sum / static_cast<double>(big * big);
}

}  // namespace por::core
