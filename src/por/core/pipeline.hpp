// por/core/pipeline.hpp
//
// The iterative structure-determination loop (paper §2/§3): "Steps B
// and C are executed iteratively until the 3D electron density map
// cannot be further improved at a given resolution; then the
// resolution is increased gradually."
//
// Each cycle refines orientations against the current map, then
// reconstructs a new map from the refined orientations; resolution is
// assessed with the odd/even split + FSC 0.5 protocol of Fig. 4, and
// the matching radius r_map for the next cycle is raised toward the
// measured resolution.
#pragma once

#include <optional>
#include <vector>

#include "por/core/refiner.hpp"
#include "por/metrics/fsc.hpp"
#include "por/metrics/orientation_error.hpp"
#include "por/recon/fourier_recon.hpp"

namespace por::core {

struct PipelineConfig {
  int cycles = 3;
  RefinerConfig refiner;
  recon::ReconOptions recon;
  double pixel_size_a = 2.8;      ///< for reporting resolutions in Angstrom
  double initial_r_map = 0.0;     ///< starting matching radius (unpadded px);
                                  ///< 0 = third of Nyquist
  double r_map_growth = 1.5;      ///< per-cycle growth toward Nyquist
};

/// Everything measured in one cycle.
struct CycleReport {
  int cycle = 0;
  double r_map = 0.0;              ///< matching radius used (unpadded px)
  double fsc_radius = 0.0;         ///< odd/even FSC 0.5 crossing (Fourier px)
  double resolution_a = 0.0;       ///< same, in Angstrom
  metrics::ErrorStats orientation_error;  ///< vs truth if provided
  double mean_center_error_px = 0.0;      ///< vs truth if provided
  util::StepTimes times;
  std::uint64_t matchings = 0;
};

/// Final state of a pipeline run.
struct PipelineResult {
  em::Volume<double> map;                      ///< final reconstruction
  std::vector<em::Orientation> orientations;   ///< final per-view angles
  std::vector<std::pair<double, double>> centers;
  std::vector<CycleReport> cycles;
};

/// Optional ground truth for error reporting.
struct GroundTruth {
  std::vector<em::Orientation> orientations;
  std::vector<std::pair<double, double>> centers;
  em::SymmetryGroup symmetry = em::SymmetryGroup::identity();
};

class RefinementPipeline {
 public:
  explicit RefinementPipeline(const PipelineConfig& config);

  /// Run `config.cycles` alternations of refine + reconstruct,
  /// starting from `initial_map` (e.g. a coarse reconstruction from
  /// the initial orientations — pass std::nullopt to build exactly
  /// that as cycle 0's map).
  [[nodiscard]] PipelineResult run(
      const std::vector<em::Image<double>>& views,
      const std::vector<em::Orientation>& initial_orientations,
      const std::optional<em::Volume<double>>& initial_map = std::nullopt,
      const std::optional<GroundTruth>& truth = std::nullopt) const;

  /// The odd/even split reconstruction + FSC of Fig. 4, exposed for
  /// the figure benches: returns the shell curve of the two half maps.
  [[nodiscard]] static metrics::FscCurve odd_even_fsc(
      const std::vector<em::Image<double>>& views,
      const std::vector<em::Orientation>& orientations,
      const std::vector<std::pair<double, double>>& centers,
      const recon::ReconOptions& options);

 private:
  PipelineConfig config_;
};

}  // namespace por::core
