// por/core/refiner.hpp
//
// The sliding-window multi-resolution orientation refinement algorithm
// (paper §4, steps a-o) for one node: given the current density map
// and a set of experimental views with rough initial orientations,
// produce refined orientations and centers.
//
// The distributed-memory SPMD driver that wraps this with the paper's
// steps (a)-(c) and (m)-(o) lives in por/core/parallel_refiner.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "por/core/center_refine.hpp"
#include "por/core/matcher.hpp"
#include "por/core/search_domain.hpp"
#include "por/core/sliding_window.hpp"
#include "por/resilience/retry.hpp"
#include "por/util/timer.hpp"

namespace por::stream {
class ViewSource;
}  // namespace por::stream

namespace por::core {

/// Fault-tolerance knobs for the refinement drivers (DESIGN.md §10).
/// The defaults reproduce the pre-resilience behavior exactly: no
/// checkpoint, no communication deadline, no retries.
struct ResilienceOptions {
  /// Master-side checkpoint log ("PORC"): every refined view is
  /// appended (atomic temp+rename, CRC-tagged) so an interrupted run
  /// can restart without repeating finished work.  Empty = disabled.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path`: views already recorded there are
  /// restored and only the remainder is distributed and refined.
  bool resume = false;
  /// Records buffered between atomic checkpoint rewrites.
  std::size_t checkpoint_flush_every = 8;
  /// Master-side failure detector: if no worker message (result /
  /// heartbeat / done) arrives for this long while views are still
  /// outstanding, silent ranks holding work are declared dead and
  /// their unfinished views are reassigned.  The default is generous
  /// next to per-view refinement times; tests shrink it.
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// Default deadline installed on every rank's Comm for the duration
  /// of the call: blocking receives (and thus collectives) throw
  /// vmpi::CommTimeout instead of hanging forever on a dead peer.
  /// Zero = block forever (the pre-resilience behavior).
  std::chrono::milliseconds comm_deadline{0};
  /// Retry policy for the file driver's reads (map, stack,
  /// orientations).  max_attempts = 1 disables retries.
  resilience::RetryPolicy io_retry{};
  /// Quarantine views with non-finite pixels / match scores instead of
  /// letting them poison the run (see por/resilience/quarantine.hpp).
  bool quarantine_views = true;
};

/// Out-of-core streaming knobs (DESIGN.md §14): how the drivers read
/// view stacks too large for memory.  The defaults stream with a
/// two-deep prefetch pipeline and no residency cap — identical results
/// to in-core at any setting (the pipeline only changes *when* pixels
/// arrive, never *what* they are).
struct StreamOptions {
  /// Chunks in flight in each ViewCursor (1 = synchronous).
  std::size_t prefetch_depth = 2;
  /// Views per prefetched chunk.
  std::size_t batch_views = 32;
  /// Cap on resident (mmapped) shard bytes, in MiB; 0 = unlimited.
  /// The "Sindbis on a 2 GB box" knob.
  std::size_t max_resident_mb = 0;
  /// mmap shards (true) or read() them (false); bitwise identical.
  bool use_mmap = true;
};

/// Full refinement configuration.
struct RefinerConfig {
  std::vector<SearchLevel> schedule;  ///< multi-resolution levels, coarse->fine
  MatchOptions match;                 ///< pad / r_map / weighting
  int max_slides = 8;                 ///< sliding-window cap per level
  bool refine_centers = true;         ///< run step (k) at each level
  /// Angular search and center refinement are coupled (a wrong center
  /// skews the angular minimum and vice versa); each level alternates
  /// the two until they agree, up to this many passes.
  int max_passes_per_level = 3;
  std::optional<em::CtfParams> ctf;   ///< CTF of the views' micrograph
  em::CtfCorrection ctf_correction = em::CtfCorrection::kPhaseFlip;
  double wiener_snr = 10.0;
  ResilienceOptions resilience;       ///< checkpoint / recovery / retry
  StreamOptions stream;               ///< out-of-core stack streaming
  /// Shared-memory workers for refine() batches: 1 = serial loop (the
  /// historical behavior), N > 1 = the por::serve work-stealing
  /// scheduler, 0 = hardware_concurrency.  Per-view refinement is
  /// deterministic and views are independent, so the batch result is
  /// bitwise-identical at any worker count.
  int refine_workers = 1;

  RefinerConfig() : schedule(paper_schedule()) {}

  /// The match options with the CTF settings folded in (the matcher
  /// needs them to keep view and cut amplitudes comparable).
  [[nodiscard]] MatchOptions matcher_options() const {
    MatchOptions merged = match;
    if (ctf && !merged.ctf) {
      merged.ctf = ctf;
      merged.ctf_correction = ctf_correction;
      merged.wiener_snr = wiener_snr;
    }
    return merged;
  }
};

/// Refined parameters of one view (the paper's O_refined record:
/// angles + center).
struct ViewResult {
  em::Orientation orientation;
  double center_x = 0.0;
  double center_y = 0.0;
  double final_distance = 0.0;
  std::uint64_t matchings = 0;       ///< angular matchings spent
  std::uint64_t cache_hits = 0;      ///< matchings avoided by the score cache
  std::uint64_t center_evals = 0;    ///< center positions tried
  int window_slides = 0;             ///< total slides over all levels
  /// Non-zero when the view was quarantined (non-finite pixels or a
  /// non-finite match score): the record carries the *initial*
  /// orientation/center untouched and the view must be excluded from
  /// reconstruction (see ResilienceOptions::quarantine_views).
  std::uint32_t quarantined = 0;
};

/// Orientation refinement against a fixed density map.
class OrientationRefiner {
 public:
  /// Builds the padded centered 3D DFT of `density_map` (step a, serial).
  OrientationRefiner(const em::Volume<double>& density_map,
                     const RefinerConfig& config);

  /// Adopts a matcher whose spectrum was produced elsewhere (e.g. by
  /// the slab-parallel 3D DFT).
  OrientationRefiner(FourierMatcher matcher, const RefinerConfig& config);

  /// Steps (d)-(l) for one view.  `cancel`, when non-null, is polled
  /// cooperatively between passes and inside sliding_window_search
  /// (por/core/cancel.hpp); a fired token unwinds with core::Cancelled
  /// — the serving layer maps it to the kCancelled / kTimedOut job
  /// states.  The refiner is shared across jobs, so the token is a
  /// per-call parameter, not configuration.
  [[nodiscard]] ViewResult refine_view(const em::Image<double>& view,
                                       const em::Orientation& initial,
                                       double center_x = 0.0,
                                       double center_y = 0.0,
                                       const CancelToken* cancel =
                                           nullptr) const;

  /// Refine a batch; also accumulates per-step wall times into
  /// `times()` under the paper's step names ("FFT analysis",
  /// "Orientation refinement", "Center refinement").
  [[nodiscard]] std::vector<ViewResult> refine(
      const std::vector<em::Image<double>>& views,
      const std::vector<em::Orientation>& initial_orientations,
      const std::vector<std::pair<double, double>>& initial_centers = {}) const;

  /// refine() over views [first, first + count) of a ViewSource,
  /// consumed through a prefetching ViewCursor (config().stream) with
  /// one reused scratch image — the whole stack is never resident.
  /// `initial_orientations[i]` / `initial_centers[i]` describe view
  /// `first + i`.  Bitwise-identical to fetching the range in-core and
  /// calling refine() serially.
  [[nodiscard]] std::vector<ViewResult> refine_stream(
      stream::ViewSource& source, std::uint64_t first, std::uint64_t count,
      const std::vector<em::Orientation>& initial_orientations,
      const std::vector<std::pair<double, double>>& initial_centers = {}) const;

  [[nodiscard]] const FourierMatcher& matcher() const { return matcher_; }
  [[nodiscard]] const RefinerConfig& config() const { return config_; }
  [[nodiscard]] util::StepTimes& times() const { return times_; }

 private:
  /// Resolve observability handles against the registry current on the
  /// constructing thread (shared by both constructors).
  void bind_observability();

  FourierMatcher matcher_;
  RefinerConfig config_;
  mutable util::StepTimes times_;

  // Span series mirroring the StepTimes vocabulary ("step.<name>")
  // plus a whole-view series; the parallel driver rebuilds its
  // StepTimes report from these through the metrics registry.
  obs::SpanSeries* obs_view_span_ = nullptr;
  obs::SpanSeries* obs_fft_span_ = nullptr;
  obs::SpanSeries* obs_orient_span_ = nullptr;
  obs::SpanSeries* obs_center_span_ = nullptr;
  obs::Counter* obs_quarantined_ = nullptr;  ///< resilience.views.quarantined
};

}  // namespace por::core
