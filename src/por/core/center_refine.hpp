// por/core/center_refine.hpp
//
// Step (k)-(l): refine the particle center of a view.  The view's
// spectrum is compared against the minimum-distance cut C_mu under
// trial sub-pixel translations (phase ramps) on a center_width x
// center_width grid of spacing delta_center, with the same sliding-
// box rule as the angular search.
#pragma once

#include <cstdint>

#include "por/core/matcher.hpp"

namespace por::core {

struct CenterResult {
  double dx = 0.0;              ///< refined center offset (pixels)
  double dy = 0.0;
  double best_distance = 0.0;
  int slides = 0;
  std::uint64_t evaluations = 0;  ///< center positions tried (n_center total)
};

/// Search translations of the view against the fixed cut.  `start_dx/y`
/// is the current center estimate (the search box is centered there),
/// `step_px` is delta_center and `box_width` the grid edge (paper
/// example: a 3 x 3 box, n_center = 9).
[[nodiscard]] CenterResult refine_center(
    const FourierMatcher& matcher, const em::Image<em::cdouble>& view_spectrum,
    const em::Image<em::cdouble>& best_cut, double start_dx, double start_dy,
    double step_px, int box_width = 3, int max_slides = 8);

}  // namespace por::core
