#include "por/core/center_refine.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace por::core {

namespace {

/// d(translate(F, -dx, -dy), C) over the matching annulus, with the
/// translation folded into the loop as a per-sample phase ramp (no
/// spectrum copies).
double translated_distance(const em::Image<em::cdouble>& f,
                           const em::Image<em::cdouble>& c, double dx,
                           double dy, double r_max, double r_min,
                           metrics::Weighting weighting) {
  const std::size_t n = f.nx();
  const double center = std::floor(static_cast<double>(n) / 2.0);
  const long lo =
      std::max<long>(0, static_cast<long>(std::floor(center - r_max)));
  const long hi = std::min<long>(static_cast<long>(n) - 1,
                                 static_cast<long>(std::ceil(center + r_max)));
  double sum = 0.0;
  for (long y = lo; y <= hi; ++y) {
    const double ky = static_cast<double>(y) - center;
    for (long x = lo; x <= hi; ++x) {
      const double kx = static_cast<double>(x) - center;
      const double radius = std::sqrt(kx * kx + ky * ky);
      if (radius > r_max || radius < r_min) continue;
      // Translating the image by (-dx, -dy) multiplies F by
      // exp(+2*pi*i*(kx*dx + ky*dy)/n).
      const double angle = 2.0 * std::numbers::pi *
                           (kx * dx + ky * dy) / static_cast<double>(n);
      const em::cdouble shifted =
          f(static_cast<std::size_t>(y), static_cast<std::size_t>(x)) *
          em::cdouble(std::cos(angle), std::sin(angle));
      const em::cdouble diff =
          shifted - c(static_cast<std::size_t>(y), static_cast<std::size_t>(x));
      const double weight =
          weighting == metrics::Weighting::kRadial ? radius / r_max : 1.0;
      sum += weight * std::norm(diff);
    }
  }
  return sum / static_cast<double>(n * n);
}

}  // namespace

CenterResult refine_center(const FourierMatcher& matcher,
                           const em::Image<em::cdouble>& view_spectrum,
                           const em::Image<em::cdouble>& best_cut,
                           double start_dx, double start_dy, double step_px,
                           int box_width, int max_slides) {
  if (box_width < 2 || step_px <= 0.0) {
    throw std::invalid_argument("refine_center: bad box");
  }
  const double r_max = matcher.padded_r_map();
  const double r_min =
      matcher.options().r_min * static_cast<double>(matcher.options().pad);

  CenterResult result;
  result.dx = start_dx;
  result.dy = start_dy;
  double cx = start_dx, cy = start_dy;

  for (int round = 0;; ++round) {
    double best = std::numeric_limits<double>::infinity();
    int best_iy = 0, best_ix = 0;
    for (int iy = 0; iy < box_width; ++iy) {
      const double dy =
          cy + (static_cast<double>(iy) -
                static_cast<double>(box_width - 1) / 2.0) *
                   step_px;
      for (int ix = 0; ix < box_width; ++ix) {
        const double dx =
            cx + (static_cast<double>(ix) -
                  static_cast<double>(box_width - 1) / 2.0) *
                     step_px;
        const double d =
            translated_distance(view_spectrum, best_cut, dx, dy, r_max, r_min,
                                matcher.options().weighting);
        ++result.evaluations;
        if (d < best) {
          best = d;
          best_iy = iy;
          best_ix = ix;
          result.dx = dx;
          result.dy = dy;
          result.best_distance = d;
        }
      }
    }
    const bool on_edge = best_iy == 0 || best_iy == box_width - 1 ||
                         best_ix == 0 || best_ix == box_width - 1;
    if (!on_edge || round >= max_slides) break;
    cx = result.dx;
    cy = result.dy;
    ++result.slides;
  }
  return result;
}

}  // namespace por::core
