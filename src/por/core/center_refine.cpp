#include "por/core/center_refine.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace por::core {

namespace {

/// d(translate(F, -dx, -dy), C) over the matching annulus, with the
/// translation folded into the loop as a per-sample phase ramp (no
/// spectrum copies).  Walks the matcher's precomputed AnnulusTable —
/// frequencies, ring membership and weights are table lookups, so the
/// per-evaluation work is one sincos + one complex multiply per ring
/// pixel (no sqrt, no branch tests).
double translated_distance(const em::Image<em::cdouble>& f,
                           const em::Image<em::cdouble>& c,
                           const AnnulusTable& ring, double dx, double dy) {
  const std::size_t n = f.nx();
  const std::size_t count = ring.size();
  const em::cdouble* fp = f.data();
  const em::cdouble* cp = c.data();
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Translating the image by (-dx, -dy) multiplies F by
    // exp(+2*pi*i*(kx*dx + ky*dy)/n).
    const double angle = 2.0 * std::numbers::pi *
                         (ring.ku[i] * dx + ring.kv[i] * dy) /
                         static_cast<double>(n);
    const em::cdouble shifted =
        fp[ring.index[i]] * em::cdouble(std::cos(angle), std::sin(angle));
    const em::cdouble diff = shifted - cp[ring.index[i]];
    sum += ring.weight[i] * std::norm(diff);
  }
  return sum / static_cast<double>(n * n);
}

}  // namespace

CenterResult refine_center(const FourierMatcher& matcher,
                           const em::Image<em::cdouble>& view_spectrum,
                           const em::Image<em::cdouble>& best_cut,
                           double start_dx, double start_dy, double step_px,
                           int box_width, int max_slides) {
  if (box_width < 2 || step_px <= 0.0) {
    throw std::invalid_argument("refine_center: bad box");
  }
  const AnnulusTable& ring = matcher.annulus();
  const std::size_t big = matcher.edge() * matcher.options().pad;
  if (view_spectrum.nx() != big || view_spectrum.ny() != big ||
      best_cut.nx() != big || best_cut.ny() != big) {
    throw std::invalid_argument("refine_center: spectrum size mismatch");
  }

  CenterResult result;
  result.dx = start_dx;
  result.dy = start_dy;
  double cx = start_dx, cy = start_dy;

  for (int round = 0;; ++round) {
    double best = std::numeric_limits<double>::infinity();
    int best_iy = 0, best_ix = 0;
    for (int iy = 0; iy < box_width; ++iy) {
      const double dy =
          cy + (static_cast<double>(iy) -
                static_cast<double>(box_width - 1) / 2.0) *
                   step_px;
      for (int ix = 0; ix < box_width; ++ix) {
        const double dx =
            cx + (static_cast<double>(ix) -
                  static_cast<double>(box_width - 1) / 2.0) *
                     step_px;
        const double d =
            translated_distance(view_spectrum, best_cut, ring, dx, dy);
        ++result.evaluations;
        if (d < best) {
          best = d;
          best_iy = iy;
          best_ix = ix;
          result.dx = dx;
          result.dy = dy;
          result.best_distance = d;
        }
      }
    }
    const bool on_edge = best_iy == 0 || best_iy == box_width - 1 ||
                         best_ix == 0 || best_ix == box_width - 1;
    if (!on_edge || round >= max_slides) break;
    cx = result.dx;
    cy = result.dy;
    ++result.slides;
  }
  return result;
}

}  // namespace por::core
