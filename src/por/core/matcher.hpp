// por/core/matcher.hpp
//
// The matching kernel: "a matching operation consists of two steps:
// (1) construct a cut into the 3D DFT with a given orientation and
// (2) compute the distance between the 2D DFT of the experimental
// view and the cut" (§4).  FourierMatcher fuses the two steps — it
// samples the cut point-by-point inside the r_map disk and accumulates
// the weighted distance without materializing the cut image, which is
// what makes the O(l^2) per matching of §3 achievable.
//
// Hot-path layout (see DESIGN.md §"Matcher data layout"): the inner
// loop runs over an immutable precomputed AnnulusTable (one entry per
// Fourier pixel inside the [r_min, r_map] ring, with radius, transfer
// and weight folded in at construction) against a split-complex SoA
// copy of the 3D spectrum, through the branch-free interior trilinear
// kernel of por/em/interp.hpp.  The original scalar loop is retained
// as distance_reference() — the equivalence oracle for tests and the
// baseline for bench/bench_matcher.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "por/core/cancel.hpp"
#include "por/em/ctf.hpp"
#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/pad.hpp"
#include "por/metrics/distance.hpp"
#include "por/simd/isa.hpp"

namespace por::obs {
class Counter;
class SpanSeries;
}  // namespace por::obs

namespace por::simd {
struct KernelTable;
}  // namespace por::simd

namespace por::util {
class ThreadPool;
}  // namespace por::util

namespace por::core {

/// Matching configuration shared by refiner, baselines and benches.
struct MatchOptions {
  std::size_t pad = em::kDefaultPad;  ///< spectrum oversampling factor
  double r_map = 0.0;  ///< matching radius in UNPADDED Fourier px (0 = Nyquist)
  double r_min = 0.0;  ///< exclude radii below this (unpadded Fourier px)
  metrics::Weighting weighting = metrics::Weighting::kUniform;

  /// CTF of the micrograph the views came from.  When set, step (e)
  /// corrects each view AND the matcher multiplies every cut sample by
  /// the view's residual signal transfer (|CTF| after phase flipping,
  /// CTF^2/(CTF^2 + 1/snr) after Wiener filtering) so the comparison
  /// is unbiased — comparing an amplitude-attenuated view against a
  /// full-amplitude cut would systematically favour orientations whose
  /// cuts have less power near the CTF zeros.
  std::optional<em::CtfParams> ctf;
  em::CtfCorrection ctf_correction = em::CtfCorrection::kPhaseFlip;
  double wiener_snr = 10.0;

  /// Fan the w^3 candidate loop of sliding_window_search across this
  /// many pool workers (1 = serial, the default).  Intra-view
  /// parallelism for the single-rank case; the vmpi drivers already
  /// parallelize across views, so they leave this at 1.
  std::size_t search_threads = 1;

  /// Worker count for the Fourier transforms behind spectrum
  /// preparation (the padded 3D map transform at construction and the
  /// padded 2D view transform in prepare_view): fft::FftOptions::
  /// threads, so 1 = serial (default, bit-identical to any other
  /// setting) and 0 = hardware concurrency.
  std::size_t fft_threads = 1;

  /// Per-matcher ISA cap for the dispatched hot kernels (por/simd).
  /// Default: follow the process-wide selection (detect_best_isa()
  /// capped by POR_FORCE_ISA).  The matcher snapshots its kernel table
  /// — and builds the matching lattice layout — at CONSTRUCTION, so a
  /// later simd::force_isa() does not affect existing matchers.
  simd::SimdOptions simd;

  /// Cooperative cancellation / deadline token polled inside
  /// sliding_window_search (see por/core/cancel.hpp).  Matcher-lifetime
  /// scope — the direct single-run API arms it here; the serving path
  /// instead passes per-job tokens through the explicit CancelToken*
  /// parameters (which win when both are set).  Null = never cancels.
  std::shared_ptr<const CancelToken> cancel;
};

/// Flattened precomputed annulus: one entry per Fourier pixel of the
/// big x big padded view grid that lies inside the [r_min, r_map]
/// matching ring.  Built once per FourierMatcher; per matching the
/// inner loop walks these arrays instead of re-deriving sqrt radii,
/// ring-membership branches and transfer lerps per pixel.  Stored SoA
/// so the distance loop vectorizes.
struct AnnulusTable {
  std::vector<double> ku;             ///< centered frequency, x component
  std::vector<double> kv;             ///< centered frequency, y component
  std::vector<double> transfer;       ///< cut_transfer(radius) per pixel
  std::vector<double> weight;         ///< distance weight per pixel
  std::vector<std::uint32_t> index;   ///< flat index into big x big spectra

  [[nodiscard]] std::size_t size() const { return ku.size(); }
  [[nodiscard]] bool empty() const { return ku.empty(); }
};

namespace detail {
/// std::atomic is not movable; FourierMatcher is (the refiner adopts
/// matchers by value).  Wrap the matchings counter so the class keeps
/// its defaulted moves while distance() stays safe to call from the
/// intra-view search pool.
struct MovableAtomicU64 {
  std::atomic<std::uint64_t> v{0};
  MovableAtomicU64() = default;
  // por-atomic: owner-exclusive — moves happen before the matcher is
  // shared across threads (container growth at setup time)
  MovableAtomicU64(MovableAtomicU64&& o) noexcept
      : v(o.v.load(std::memory_order_relaxed)) {}
  MovableAtomicU64& operator=(MovableAtomicU64&& o) noexcept {
    // por-atomic: owner-exclusive — see the move constructor
    v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
};
}  // namespace detail

/// Matches view spectra against central sections of one density map.
///
/// Construction computes the padded centered 3D spectrum once (the
/// paper replicates exactly this object on every node); an externally
/// computed spectrum can be supplied instead (the parallel driver
/// builds it with the slab-parallel 3D DFT).
// CONTRACT: the annulus table's flattened view indices address the
// big x big padded grid, its five columns stay the same length, and on
// the fast path r_max <= c - 0.5 so every trilinear base cell lies
// inside the SoA lattice — all enforced by POR_BOUNDS / POR_ENSURE in
// matcher.cpp at construction time (once, not per matching).
class FourierMatcher {
 public:
  /// Build the 3D spectrum from a density map (edge l).
  FourierMatcher(const em::Volume<double>& density_map,
                 const MatchOptions& options);

  /// Adopt an existing centered padded spectrum (edge l * options.pad).
  FourierMatcher(em::Volume<em::cdouble> centered_padded_spectrum,
                 std::size_t l, const MatchOptions& options);

  FourierMatcher(FourierMatcher&&) noexcept;
  FourierMatcher& operator=(FourierMatcher&&) noexcept;
  FourierMatcher(const FourierMatcher&) = delete;
  FourierMatcher& operator=(const FourierMatcher&) = delete;
  ~FourierMatcher();

  [[nodiscard]] std::size_t edge() const { return l_; }
  [[nodiscard]] const MatchOptions& options() const { return options_; }
  [[nodiscard]] const em::Volume<em::cdouble>& spectrum() const {
    return spectrum_;
  }

  /// Step (d)+(e) for one view: padded centered 2D DFT, CTF-corrected
  /// per options().ctf.  The result is what `distance` expects.
  [[nodiscard]] em::Image<em::cdouble> prepare_view(
      const em::Image<double>& view) const;

  /// One matching operation: d(F, C_o) over the r_map disk.
  /// Increments the matching counter.  Runs the precomputed-annulus /
  /// SoA fast path (equivalent to distance_reference within fp
  /// summation-order noise, ~1e-15 relative); thread-safe.
  [[nodiscard]] double distance(const em::Image<em::cdouble>& view_spectrum,
                                const em::Orientation& o) const;

  /// The original scalar matching loop: per-pixel sqrt + ring test +
  /// transfer lerp + bounds-checked complex trilinear fetch.  Retained
  /// as the equivalence oracle and the bench baseline.  Same counters
  /// and same result (to fp tolerance) as distance().
  [[nodiscard]] double distance_reference(
      const em::Image<em::cdouble>& view_spectrum,
      const em::Orientation& o) const;

  /// Materialized cut with the view-transfer envelope applied — the
  /// exact object `distance` compares a prepared view against (used by
  /// center refinement and diagnostics).
  [[nodiscard]] em::Image<em::cdouble> cut(const em::Orientation& o) const;

  /// Residual signal transfer of a prepared view at `padded_radius`
  /// Fourier pixels from the origin (1 when no CTF is configured).
  [[nodiscard]] double cut_transfer(double padded_radius) const;

  /// Matching-operation counter (total calls to distance()); the
  /// quantity the paper's Tables 1/2 track through the sliding window.
  [[nodiscard]] std::uint64_t matchings() const {
    // por-atomic: monitor — table statistic; a lagging read is fine
    return matchings_.v.load(std::memory_order_relaxed);
  }
  void reset_matchings() const {
    // por-atomic: owner-exclusive — reset only between phases, while no
    // worker is matching
    matchings_.v.store(0, std::memory_order_relaxed);
  }

  /// Matching radius in PADDED Fourier pixels.
  [[nodiscard]] double padded_r_map() const { return padded_r_map_; }

  /// The precomputed matching ring (center refinement reuses it for
  /// its translated-distance loop).
  [[nodiscard]] const AnnulusTable& annulus() const { return annulus_; }

  /// Worker pool for fanning the w^3 candidate loop across threads, or
  /// nullptr when options().search_threads <= 1.
  [[nodiscard]] util::ThreadPool* search_pool() const { return pool_.get(); }

  /// The ISA tier this matcher's kernels were snapshotted at (resolved
  /// from options().simd and the process-wide selection, clamped to
  /// hardware/build support at construction).
  [[nodiscard]] simd::Isa isa() const { return isa_; }

 private:
  /// Build transfer_image_ (when CTF is configured), annulus_ and the
  /// lattice layout the snapshotted kernel tier consumes (split-
  /// complex for SSE2, interleaved for the AVX tiers); record build
  /// time + table size.
  void build_tables();

  std::size_t l_;
  MatchOptions options_;
  double padded_r_map_;
  double padded_r_min_;
  em::Volume<em::cdouble> spectrum_;
  std::vector<double> transfer_table_;  ///< envelope by padded radius px

  // --- precomputed hot-path state (immutable after construction) ----
  // Exactly one lattice is populated, matching kernels_->layout: the
  // SSE2 tier reads the split planes, the AVX tiers the interleaved
  // copy (one wide load per (x, x+1) corner pair).
  em::SplitComplexLattice soa_;      ///< split-complex spectrum (SSE2 tier)
  em::InterleavedComplexLattice ilv_;  ///< interleaved copy (AVX tiers)
  simd::Isa isa_ = simd::Isa::kSse2;   ///< tier snapshotted at construction
  const simd::KernelTable* kernels_ = nullptr;  ///< dispatched hot kernels
  AnnulusTable annulus_;             ///< flattened [r_min, r_map] ring
  em::Image<double> transfer_image_; ///< per-pixel cut transfer (CTF only)
  bool fast_path_ = false;           ///< radius-vs-lattice guard verdict
  std::unique_ptr<util::ThreadPool> pool_;  ///< intra-view search pool

  mutable detail::MovableAtomicU64 matchings_;

  // Observability handles, resolved once against the registry current
  // on the constructing thread (the owning rank under vmpi):
  //   matcher.matchings       — one increment per distance() call
  //   matcher.interp_fetches  — trilinear spectrum fetches inside the
  //                             r_map disk (one bulk add per matching)
  //   matcher.prepare_view    — span series timing step (d)+(e)
  //   matcher.table_build     — span series timing build_tables()
  //   matcher.annulus_pixels  — gauge: entries in the annulus table
  //   simd.matcher_dispatch   — fast-path distance() calls routed
  //                             through the snapshotted kernel table
  //   simd.isa                — gauge published by por/simd selection
  obs::Counter* obs_matchings_;
  obs::Counter* obs_interp_fetches_;
  obs::Counter* obs_simd_dispatch_;
  obs::SpanSeries* obs_prepare_view_;
};

}  // namespace por::core
