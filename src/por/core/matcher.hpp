// por/core/matcher.hpp
//
// The matching kernel: "a matching operation consists of two steps:
// (1) construct a cut into the 3D DFT with a given orientation and
// (2) compute the distance between the 2D DFT of the experimental
// view and the cut" (§4).  FourierMatcher fuses the two steps — it
// samples the cut point-by-point inside the r_map disk and accumulates
// the weighted distance without materializing the cut image, which is
// what makes the O(l^2) per matching of §3 achievable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "por/em/ctf.hpp"
#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/pad.hpp"
#include "por/metrics/distance.hpp"

namespace por::obs {
class Counter;
class SpanSeries;
}  // namespace por::obs

namespace por::core {

/// Matching configuration shared by refiner, baselines and benches.
struct MatchOptions {
  std::size_t pad = em::kDefaultPad;  ///< spectrum oversampling factor
  double r_map = 0.0;  ///< matching radius in UNPADDED Fourier px (0 = Nyquist)
  double r_min = 0.0;  ///< exclude radii below this (unpadded Fourier px)
  metrics::Weighting weighting = metrics::Weighting::kUniform;

  /// CTF of the micrograph the views came from.  When set, step (e)
  /// corrects each view AND the matcher multiplies every cut sample by
  /// the view's residual signal transfer (|CTF| after phase flipping,
  /// CTF^2/(CTF^2 + 1/snr) after Wiener filtering) so the comparison
  /// is unbiased — comparing an amplitude-attenuated view against a
  /// full-amplitude cut would systematically favour orientations whose
  /// cuts have less power near the CTF zeros.
  std::optional<em::CtfParams> ctf;
  em::CtfCorrection ctf_correction = em::CtfCorrection::kPhaseFlip;
  double wiener_snr = 10.0;
};

/// Matches view spectra against central sections of one density map.
///
/// Construction computes the padded centered 3D spectrum once (the
/// paper replicates exactly this object on every node); an externally
/// computed spectrum can be supplied instead (the parallel driver
/// builds it with the slab-parallel 3D DFT).
class FourierMatcher {
 public:
  /// Build the 3D spectrum from a density map (edge l).
  FourierMatcher(const em::Volume<double>& density_map,
                 const MatchOptions& options);

  /// Adopt an existing centered padded spectrum (edge l * options.pad).
  FourierMatcher(em::Volume<em::cdouble> centered_padded_spectrum,
                 std::size_t l, const MatchOptions& options);

  [[nodiscard]] std::size_t edge() const { return l_; }
  [[nodiscard]] const MatchOptions& options() const { return options_; }
  [[nodiscard]] const em::Volume<em::cdouble>& spectrum() const {
    return spectrum_;
  }

  /// Step (d)+(e) for one view: padded centered 2D DFT, CTF-corrected
  /// per options().ctf.  The result is what `distance` expects.
  [[nodiscard]] em::Image<em::cdouble> prepare_view(
      const em::Image<double>& view) const;

  /// One matching operation: d(F, C_o) over the r_map disk.
  /// Increments the matching counter.
  [[nodiscard]] double distance(const em::Image<em::cdouble>& view_spectrum,
                                const em::Orientation& o) const;

  /// Materialized cut with the view-transfer envelope applied — the
  /// exact object `distance` compares a prepared view against (used by
  /// center refinement and diagnostics).
  [[nodiscard]] em::Image<em::cdouble> cut(const em::Orientation& o) const;

  /// Residual signal transfer of a prepared view at `padded_radius`
  /// Fourier pixels from the origin (1 when no CTF is configured).
  [[nodiscard]] double cut_transfer(double padded_radius) const;

  /// Matching-operation counter (total calls to distance()); the
  /// quantity the paper's Tables 1/2 track through the sliding window.
  [[nodiscard]] std::uint64_t matchings() const { return matchings_; }
  void reset_matchings() const { matchings_ = 0; }

  /// Matching radius in PADDED Fourier pixels.
  [[nodiscard]] double padded_r_map() const { return padded_r_map_; }

 private:
  std::size_t l_;
  MatchOptions options_;
  double padded_r_map_;
  double padded_r_min_;
  em::Volume<em::cdouble> spectrum_;
  std::vector<double> transfer_table_;  ///< envelope by padded radius px
  mutable std::uint64_t matchings_ = 0;

  // Observability handles, resolved once against the registry current
  // on the constructing thread (the owning rank under vmpi):
  //   matcher.matchings       — one increment per distance() call
  //   matcher.interp_fetches  — trilinear spectrum fetches inside the
  //                             r_map disk (one bulk add per matching)
  //   matcher.prepare_view    — span series timing step (d)+(e)
  obs::Counter* obs_matchings_;
  obs::Counter* obs_interp_fetches_;
  obs::SpanSeries* obs_prepare_view_;
};

}  // namespace por::core
