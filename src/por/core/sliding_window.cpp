// POR_HOT_PATH
//
// One search per refine step; all scratch on the frame arena
// (hot-path-alloc lint enforces the zero-allocation steady state).
#include "por/core/sliding_window.hpp"

#include <cstdint>
#include <limits>

#include "por/obs/registry.hpp"
#include "por/util/arena.hpp"
#include "por/util/contracts.hpp"
#include "por/util/thread_pool.hpp"

namespace por::core {

namespace {

/// Thread-local, registry-keyed cache of the window counters (same
/// pattern as por/fft/obs_handles.hpp).  All four metric names exceed
/// libstdc++'s 15-char SSO, so resolving them per search used to heap-
/// allocate four temporary std::strings — on the steady-state matching
/// path that is the difference between zero and nonzero general-heap
/// allocations (the bench_matcher gate).
struct WindowObs {
  std::uint64_t registry_id = 0;
  obs::Counter* searches = nullptr;  ///< "window.searches"
  obs::Counter* slides = nullptr;    ///< "window.slides"
  obs::Counter* hits = nullptr;      ///< "window.cache_hits"
  obs::Counter* misses = nullptr;    ///< "window.cache_misses"
};

WindowObs& window_obs() {
  thread_local WindowObs handles;
  obs::MetricsRegistry& registry = obs::current_registry();
  if (handles.searches == nullptr || handles.registry_id != registry.id()) {
    handles.registry_id = registry.id();
    handles.searches = &registry.counter("window.searches");
    handles.slides = &registry.counter("window.slides");
    handles.hits = &registry.counter("window.cache_hits");
    handles.misses = &registry.counter("window.cache_misses");
  }
  return handles;
}

}  // namespace

WindowResult sliding_window_search(const FourierMatcher& matcher,
                                   const em::Image<em::cdouble>& view_spectrum,
                                   const SearchDomain& initial_domain,
                                   int max_slides, ScoreCache* cache,
                                   const CancelToken* cancel) {
  WindowObs& obs = window_obs();
  obs.searches->add();

  // Per-call token beats the matcher-lifetime one (the serving path
  // shares one matcher across jobs with different deadlines).
  if (cancel == nullptr) cancel = matcher.options().cancel.get();

  // CONTRACT: a positive window width is what makes `count` non-zero,
  // so the argmin below always selects a real candidate.
  POR_EXPECT(initial_domain.width > 0,
             "sliding window needs a positive width:", initial_domain.width);
  WindowResult result;
  SearchDomain domain = initial_domain;
  util::ThreadPool* pool = matcher.search_pool();

  const int w = domain.width;
  const std::size_t count =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(w) *
      static_cast<std::size_t>(w);
  // Search scratch lives on the calling thread's frame arena: after the
  // first search of a given width the chunks are warm and repeated
  // searches never touch the general heap.  distance() below may fan
  // out to pool workers, but they only write `scores` slots — the arena
  // itself is touched by this thread alone, so the LIFO scope holds.
  util::ArenaScope scope(util::frame_arena());
  util::ArenaVector<em::Orientation> candidates(util::frame_arena(), count);
  util::ArenaVector<double> scores(util::frame_arena());
  util::ArenaVector<std::size_t> missing(util::frame_arena(), count);
  scores.resize_uninit(count);

  for (int round = 0;; ++round) {
    // Cooperative cancellation: the round boundary is the coarse poll,
    // the stride check below the fine one.  Throwing here (not inside
    // the pool fan-out) keeps pool tasks noexcept-clean.
    if (cancel != nullptr) cancel->check();

    // Step (g): enumerate the w^3 candidate grid (theta-major, same
    // order as SearchDomain::enumerate, which fixes tie-breaking).
    candidates.clear();
    for (int it = 0; it < w; ++it) {
      for (int ip = 0; ip < w; ++ip) {
        for (int io = 0; io < w; ++io) {
          candidates.push_back(
              em::Orientation{domain.center.theta + domain.offset(it),
                              domain.center.phi + domain.offset(ip),
                              domain.center.omega + domain.offset(io)});
        }
      }
    }

    // Resolve candidates against the score cache; overlapping slide
    // windows and repeated passes re-use old scores here instead of
    // re-running the matching kernel.
    missing.clear();
    if (cache != nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        if (const std::optional<double> hit = cache->lookup(candidates[i])) {
          scores[i] = *hit;
        } else {
          missing.push_back(i);
        }
      }
      const std::uint64_t hits =
          static_cast<std::uint64_t>(count - missing.size());
      result.cache_hits += hits;
      obs.hits->add(hits);
      obs.misses->add(static_cast<std::uint64_t>(missing.size()));
    } else {
      for (std::size_t i = 0; i < count; ++i) missing.push_back(i);
    }

    // Step (h): score the remaining candidates, optionally fanned
    // across the matcher's intra-view pool (distance() is
    // thread-safe; each task writes a distinct scores slot).
    const auto score_one = [&](std::size_t mi) {
      const std::size_t i = missing[mi];
      scores[i] = matcher.distance(view_spectrum, candidates[i]);
    };
    if (pool != nullptr && missing.size() > 1) {
      pool->parallel_for(0, missing.size(), score_one);
      // The fan-out is one cooperative unit; poll once after it so a
      // deadline that fired mid-round is honoured before the next.
      if (cancel != nullptr) cancel->check();
    } else {
      for (std::size_t mi = 0; mi < missing.size(); ++mi) {
        if (cancel != nullptr && (mi % kCancelCheckStride) == 0 && mi != 0) {
          cancel->check();
        }
        score_one(mi);
      }
    }
    if (cache != nullptr) {
      for (std::size_t mi = 0; mi < missing.size(); ++mi) {
        const std::size_t i = missing[mi];
        cache->insert(candidates[i], scores[i]);
      }
    }
    // Count this search's own matchings (one distance() per missing
    // candidate) rather than a before/after delta of the matcher's
    // shared counter: concurrent searches on one matcher (the serve
    // scheduler refines many views against a shared refiner) would
    // bleed into each other's deltas and break the bitwise-identical
    // per-view statistics.
    result.matchings += static_cast<std::uint64_t>(missing.size());

    // Reduce in candidate order — bitwise the same selection (strict
    // <, first wins) as the original serial triple loop.
    double best_distance = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    const contracts::checked_span<const double> scores_view(scores.data(),
                                                            scores.size());
    for (std::size_t i = 0; i < count; ++i) {
      // A NaN score would poison the strict-< argmin silently (NaN
      // never compares less, so the candidate vanishes); matching
      // distances are finite by construction.
      POR_FINITE(scores_view[i]);
      if (scores_view[i] < best_distance) {
        best_distance = scores_view[i];
        best_index = i;
      }
    }
    POR_BOUNDS(best_index, count);
    const int best_it = static_cast<int>(best_index) / (w * w);
    const int best_ip = (static_cast<int>(best_index) / w) % w;
    const int best_io = static_cast<int>(best_index) % w;
    result.best = candidates[best_index];
    result.best_distance = best_distance;

    // Step (i): slide if the best fit touches the edge.
    if (!domain.on_edge(best_it, best_ip, best_io) || round >= max_slides) {
      break;
    }
    domain = domain.recentered(result.best);
    ++result.slides;
    obs.slides->add();
  }

  return result;
}

}  // namespace por::core
