#include "por/core/sliding_window.hpp"

#include <limits>

#include "por/obs/registry.hpp"

namespace por::core {

WindowResult sliding_window_search(const FourierMatcher& matcher,
                                   const em::Image<em::cdouble>& view_spectrum,
                                   const SearchDomain& initial_domain,
                                   int max_slides) {
  // Registry lookups here are once-per-search (not per matching), so
  // the find-or-create mutex cost is negligible against the w^3 inner
  // matchings below.
  obs::MetricsRegistry& registry = obs::current_registry();
  registry.counter("window.searches").add();
  obs::Counter& slides_counter = registry.counter("window.slides");

  WindowResult result;
  SearchDomain domain = initial_domain;
  const std::uint64_t matchings_before = matcher.matchings();

  for (int round = 0;; ++round) {
    // Step (g)+(h): distances to every cut in the domain, keep the min.
    double best_distance = std::numeric_limits<double>::infinity();
    int best_it = 0, best_ip = 0, best_io = 0;
    em::Orientation best = domain.center;
    for (int it = 0; it < domain.width; ++it) {
      for (int ip = 0; ip < domain.width; ++ip) {
        for (int io = 0; io < domain.width; ++io) {
          const em::Orientation o{domain.center.theta + domain.offset(it),
                                  domain.center.phi + domain.offset(ip),
                                  domain.center.omega + domain.offset(io)};
          const double d = matcher.distance(view_spectrum, o);
          if (d < best_distance) {
            best_distance = d;
            best = o;
            best_it = it;
            best_ip = ip;
            best_io = io;
          }
        }
      }
    }
    result.best = best;
    result.best_distance = best_distance;

    // Step (i): slide if the best fit touches the edge.
    if (!domain.on_edge(best_it, best_ip, best_io) || round >= max_slides) {
      break;
    }
    domain = domain.recentered(best);
    ++result.slides;
    slides_counter.add();
  }

  result.matchings = matcher.matchings() - matchings_before;
  return result;
}

}  // namespace por::core
