#include "por/core/sliding_window.hpp"

#include <limits>
#include <vector>

#include "por/obs/registry.hpp"
#include "por/util/contracts.hpp"
#include "por/util/thread_pool.hpp"

namespace por::core {

WindowResult sliding_window_search(const FourierMatcher& matcher,
                                   const em::Image<em::cdouble>& view_spectrum,
                                   const SearchDomain& initial_domain,
                                   int max_slides, ScoreCache* cache) {
  // Registry lookups here are once-per-search (not per matching), so
  // the find-or-create mutex cost is negligible against the w^3 inner
  // matchings below.
  obs::MetricsRegistry& registry = obs::current_registry();
  registry.counter("window.searches").add();
  obs::Counter& slides_counter = registry.counter("window.slides");
  obs::Counter& hits_counter = registry.counter("window.cache_hits");
  obs::Counter& misses_counter = registry.counter("window.cache_misses");

  // CONTRACT: a positive window width is what makes `count` non-zero,
  // so the argmin below always selects a real candidate.
  POR_EXPECT(initial_domain.width > 0,
             "sliding window needs a positive width:", initial_domain.width);
  WindowResult result;
  SearchDomain domain = initial_domain;
  util::ThreadPool* pool = matcher.search_pool();

  const int w = domain.width;
  const std::size_t count =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(w) *
      static_cast<std::size_t>(w);
  std::vector<em::Orientation> candidates;
  std::vector<double> scores;
  std::vector<std::size_t> missing;  // candidate indices not in the cache
  candidates.reserve(count);
  scores.resize(count);
  missing.reserve(count);

  for (int round = 0;; ++round) {
    // Step (g): enumerate the w^3 candidate grid (theta-major, same
    // order as SearchDomain::enumerate, which fixes tie-breaking).
    candidates.clear();
    for (int it = 0; it < w; ++it) {
      for (int ip = 0; ip < w; ++ip) {
        for (int io = 0; io < w; ++io) {
          candidates.push_back(
              em::Orientation{domain.center.theta + domain.offset(it),
                              domain.center.phi + domain.offset(ip),
                              domain.center.omega + domain.offset(io)});
        }
      }
    }

    // Resolve candidates against the score cache; overlapping slide
    // windows and repeated passes re-use old scores here instead of
    // re-running the matching kernel.
    missing.clear();
    if (cache != nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        if (const std::optional<double> hit = cache->lookup(candidates[i])) {
          scores[i] = *hit;
        } else {
          missing.push_back(i);
        }
      }
      const std::uint64_t hits =
          static_cast<std::uint64_t>(count - missing.size());
      result.cache_hits += hits;
      hits_counter.add(hits);
      misses_counter.add(static_cast<std::uint64_t>(missing.size()));
    } else {
      for (std::size_t i = 0; i < count; ++i) missing.push_back(i);
    }

    // Step (h): score the remaining candidates, optionally fanned
    // across the matcher's intra-view pool (distance() is
    // thread-safe; each task writes a distinct scores slot).
    const auto score_one = [&](std::size_t mi) {
      const std::size_t i = missing[mi];
      scores[i] = matcher.distance(view_spectrum, candidates[i]);
    };
    if (pool != nullptr && missing.size() > 1) {
      pool->parallel_for(0, missing.size(), score_one);
    } else {
      for (std::size_t mi = 0; mi < missing.size(); ++mi) score_one(mi);
    }
    if (cache != nullptr) {
      for (const std::size_t i : missing) {
        cache->insert(candidates[i], scores[i]);
      }
    }
    // Count this search's own matchings (one distance() per missing
    // candidate) rather than a before/after delta of the matcher's
    // shared counter: concurrent searches on one matcher (the serve
    // scheduler refines many views against a shared refiner) would
    // bleed into each other's deltas and break the bitwise-identical
    // per-view statistics.
    result.matchings += static_cast<std::uint64_t>(missing.size());

    // Reduce in candidate order — bitwise the same selection (strict
    // <, first wins) as the original serial triple loop.
    double best_distance = std::numeric_limits<double>::infinity();
    std::size_t best_index = 0;
    const contracts::checked_span<const double> scores_view(scores);
    for (std::size_t i = 0; i < count; ++i) {
      // A NaN score would poison the strict-< argmin silently (NaN
      // never compares less, so the candidate vanishes); matching
      // distances are finite by construction.
      POR_FINITE(scores_view[i]);
      if (scores_view[i] < best_distance) {
        best_distance = scores_view[i];
        best_index = i;
      }
    }
    POR_BOUNDS(best_index, count);
    const int best_it = static_cast<int>(best_index) / (w * w);
    const int best_ip = (static_cast<int>(best_index) / w) % w;
    const int best_io = static_cast<int>(best_index) % w;
    result.best = candidates[best_index];
    result.best_distance = best_distance;

    // Step (i): slide if the best fit touches the edge.
    if (!domain.on_edge(best_it, best_ip, best_io) || round >= max_slides) {
      break;
    }
    domain = domain.recentered(result.best);
    ++result.slides;
    slides_counter.add();
  }

  return result;
}

}  // namespace por::core
