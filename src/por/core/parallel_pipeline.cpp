#include "por/core/parallel_pipeline.hpp"

#include <stdexcept>

#include "por/io/master_io.hpp"
#include "por/util/timer.hpp"

namespace por::core {

ParallelCycleReport parallel_cycle(
    vmpi::Comm& comm, const em::Volume<double>& map_on_root, std::size_t l,
    const std::vector<em::Image<double>>& views_on_root,
    const std::vector<em::Orientation>& initial_on_root,
    const std::vector<std::pair<double, double>>& centers_on_root,
    const RefinerConfig& refiner_config,
    const recon::ReconOptions& recon_options) {
  ParallelCycleReport report;

  // ---- Step B ----
  report.refine = parallel_refine(comm, map_on_root, l, views_on_root,
                                  initial_on_root, centers_on_root,
                                  refiner_config);

  // Root broadcasts the refined records so every rank can rebuild its
  // own view block for the reconstruction.
  std::vector<ViewResult> all = report.refine.results;
  comm.bcast(0, all);
  if (comm.is_root()) report.results = all;

  // ---- Step C: every rank reconstructs with its block of views ----
  util::WallTimer recon_timer;

  // Quarantined views (DESIGN.md §10) carry their *initial* parameters
  // and a non-zero flag: they must not pollute the reconstruction.
  // Every rank derives the same kept-index list from the broadcast
  // records, so the block partition below agrees across ranks.
  std::vector<std::size_t> kept;
  kept.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].quarantined == 0) kept.push_back(i);
  }
  const std::size_t total = kept.size();
  const std::size_t begin = io::block_begin(total, comm.size(), comm.rank());
  const std::size_t share = io::block_share(total, comm.size(), comm.rank());

  // Ranks other than root need their views again; the refine step
  // already shipped them once, but it does not retain them, so the
  // master re-distributes the blocks (this is the paper's model too:
  // P3DR is a separate program that re-reads the stack).
  std::vector<em::Image<double>> my_views;
  constexpr vmpi::Tag kReconViewsTag = 400;
  if (comm.is_root()) {
    if (views_on_root.size() != all.size()) {
      throw std::invalid_argument("parallel_cycle: view count mismatch");
    }
    for (int r = comm.size() - 1; r >= 0; --r) {
      const std::size_t rb = io::block_begin(total, comm.size(), r);
      const std::size_t rs = io::block_share(total, comm.size(), r);
      if (r == 0) {
        my_views.reserve(rs);
        for (std::size_t i = rb; i < rb + rs; ++i) {
          my_views.push_back(views_on_root[kept[i]]);
        }
      } else {
        std::vector<double> flat;
        flat.reserve(rs * l * l);
        for (std::size_t i = rb; i < rb + rs; ++i) {
          flat.insert(flat.end(), views_on_root[kept[i]].storage().begin(),
                      views_on_root[kept[i]].storage().end());
        }
        comm.send(r, kReconViewsTag, flat);
      }
    }
  } else {
    const auto flat = comm.recv<double>(0, kReconViewsTag);
    my_views.reserve(share);
    for (std::size_t i = 0; i < share; ++i) {
      em::Image<double> img(l, l);
      std::copy(flat.begin() + i * l * l, flat.begin() + (i + 1) * l * l,
                img.storage().begin());
      my_views.push_back(std::move(img));
    }
  }

  std::vector<em::Orientation> my_orientations;
  std::vector<std::pair<double, double>> my_centers;
  for (std::size_t i = begin; i < begin + share; ++i) {
    my_orientations.push_back(all[kept[i]].orientation);
    my_centers.emplace_back(all[kept[i]].center_x, all[kept[i]].center_y);
  }
  report.map = recon::parallel_fourier_reconstruct(
      comm, l, my_views, my_orientations, my_centers, recon_options);
  const double my_seconds = recon_timer.seconds();
  report.reconstruction_seconds =
      comm.allreduce_value(my_seconds, vmpi::ReduceOp::kMax);
  return report;
}

}  // namespace por::core
