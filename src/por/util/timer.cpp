#include "por/util/timer.hpp"

namespace por::util {

void StepTimes::add(const std::string& step, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[step] += seconds;
}

double StepTimes::get(const std::string& step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(step);
  return it == entries_.end() ? 0.0 : it->second;
}

double StepTimes::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (const auto& [name, secs] : entries_) sum += secs;
  return sum;
}

double StepTimes::fraction(const std::string& step) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  double step_sum = 0.0;
  for (const auto& [name, secs] : entries_) {
    sum += secs;
    if (name == step) step_sum = secs;
  }
  return sum > 0.0 ? step_sum / sum : 0.0;
}

}  // namespace por::util
