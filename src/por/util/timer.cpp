#include "por/util/timer.hpp"

namespace por::util {

void StepTimes::add(const std::string& step, double seconds) {
  entries_[step] += seconds;
}

double StepTimes::get(const std::string& step) const {
  auto it = entries_.find(step);
  return it == entries_.end() ? 0.0 : it->second;
}

double StepTimes::total() const {
  double sum = 0.0;
  for (const auto& [name, secs] : entries_) sum += secs;
  return sum;
}

double StepTimes::fraction(const std::string& step) const {
  const double t = total();
  return t > 0.0 ? get(step) / t : 0.0;
}

}  // namespace por::util
