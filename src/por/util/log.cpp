#include "por/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace por::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?    ";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[por %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace por::util
