#include "por/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace por::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?    ";
  }
}

/// UTC ISO-8601 with millisecond precision: 2026-08-06T12:34:56.789Z.
std::string iso8601_now() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&secs, &utc);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(ms));
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

std::string format_log_line(LogLevel level, const std::string& message) {
  return "[por " + iso8601_now() + " " + level_tag(level) + "] " + message;
}

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace por::util
