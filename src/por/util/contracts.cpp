#include "por/util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace por::contracts {

namespace {

// The provider is installed once at startup (por::obs registers its
// span-stack formatter from a namespace-scope initializer) and read on
// the failure path, possibly from another thread — hence atomic.
std::atomic<ContextProvider> g_context_provider{nullptr};

}  // namespace

void set_context_provider(ContextProvider provider) noexcept {
  g_context_provider.store(provider, std::memory_order_release);
}

void fail(const char* kind, const char* expression, const char* file,
          long line, const char* function, const std::string& detail) noexcept {
  // stderr via stdio, not iostream: the failure may fire during static
  // init/teardown or under a sanitizer, where cerr is not guaranteed
  // to be alive.  Single fprintf per line keeps interleaving from
  // concurrent failures readable.
  std::fprintf(stderr, "por: CONTRACT VIOLATION (%s)\n", kind);
  std::fprintf(stderr, "  expression: %s\n", expression);
  std::fprintf(stderr, "  location:   %s:%ld (%s)\n", file, line, function);
  if (!detail.empty()) {
    std::fprintf(stderr, "  detail:     %s\n", detail.c_str());
  }
  if (ContextProvider provider =
          g_context_provider.load(std::memory_order_acquire)) {
    // The provider allocates; if *it* trips a contract we would
    // recurse forever, so disarm it for the duration of this report.
    g_context_provider.store(nullptr, std::memory_order_release);
    const std::string context = provider();
    if (!context.empty()) {
      std::fprintf(stderr, "  spans:      %s\n", context.c_str());
    }
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace por::contracts
