#include "por/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace por::util {

std::string Table::render() const {
  // Column widths: max over header and all rows.
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.push_back(0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  std::ostringstream os;
  emit_row(os, header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string fmt_sci(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*e", digits, value);
  return buffer;
}

std::string fmt_grouped(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace por::util
