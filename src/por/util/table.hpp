// por/util/table.hpp
//
// Fixed-width text table rendering for the benchmark harnesses, which
// print the same row layout as the paper's Tables 1 and 2 and the
// figure data series.
#pragma once

#include <string>
#include <vector>

namespace por::util {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"Angular resolution (deg)", "1", "0.1", "0.01", "0.002"});
///   t.add_row({"Search range", "3", "9", "9", "10"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append one row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render the table with a rule under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` digits after the point.
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Format a double in engineering style, e.g. 5.8e+09.
[[nodiscard]] std::string fmt_sci(double value, int digits = 2);

/// Group digits: 4053 -> "4,053" (matches the paper's table style).
[[nodiscard]] std::string fmt_grouped(long long value);

}  // namespace por::util
