// por/util/cli.hpp
//
// Tiny command-line option parser shared by the examples and benchmark
// harnesses.  Supports --key=value and --key value forms plus boolean
// flags; unknown options are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace por::util {

class CliParser {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  CliParser(int argc, const char* const* argv);

  /// Was --name given?
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --option) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// The conventional observability flag shared by the examples and the
  /// bench harness: `--metrics-out <path>` asks the program to write
  /// its obs JSON run report to <path>.  Empty when the flag is absent.
  [[nodiscard]] std::string metrics_out() const {
    return get("metrics-out", "");
  }

  /// Names the caller actually queried; used by assert_all_consumed().
  /// Throws std::invalid_argument if the command line contained an
  /// option no call site ever asked about (i.e. a typo).
  void assert_all_consumed() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace por::util
