// por/util/arena.hpp
//
// Frame/arena allocation for the hot paths (DESIGN.md §12).
//
// The steady-state matching path — sliding_window_search scratch, the
// score-cache tables, FFT line-tile and Bluestein scratch — used to
// round-trip the general heap on every call.  An Arena replaces those
// with monotonic bump allocation out of reusable chunks: allocation is
// a pointer increment, deallocation is a scoped rewind, and after
// warm-up (the first pass that sizes the chunks) the steady state
// performs ZERO general-heap allocations (asserted in
// tests/test_simd.cpp and gated in bench_matcher).
//
// Model:
//   * Arena         — chunked monotonic bump region.  allocate() never
//                     constructs or destructs; only trivially
//                     destructible types belong here.
//   * Arena::Mark   — a rewind point.  rewind(mark) releases everything
//                     allocated after the mark back to the arena (the
//                     chunks stay warm for reuse).
//   * ArenaScope    — RAII mark/rewind; scopes must nest like stack
//                     frames (LIFO), which every call site here does.
//   * frame_arena() — the calling thread's arena.  Thread-local, so
//                     pool workers and vmpi rank threads never contend.
//   * ArenaUpstream — where chunks come from.  The default is the
//                     general heap; tests install a CountingUpstream to
//                     prove the steady state never refills.
//   * ArenaVector   — minimal push_back-style growth buffer for
//                     trivially copyable types over an Arena.
//
// Ownership/lifetime rules (also in DESIGN.md §12):
//   1. An allocation lives until the enclosing mark is rewound — never
//      free individual blocks.
//   2. Scopes are strictly LIFO per arena.  A structure that must
//      outlive interleaved scopes (e.g. ScoreCache growing mid-search)
//      owns a PRIVATE Arena instead of borrowing the frame arena.
//   3. Only trivially destructible element types (static_assert'd).
//   4. The upstream pointer must outlive the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "por/util/contracts.hpp"

namespace por::util {

/// Source of the arena's backing chunks.  Implementations must return
/// storage aligned to alignof(std::max_align_t).
class ArenaUpstream {
 public:
  virtual ~ArenaUpstream() = default;
  [[nodiscard]] virtual void* allocate(std::size_t bytes) = 0;
  virtual void deallocate(void* p, std::size_t bytes) = 0;
};

/// The default upstream: global operator new/delete.
[[nodiscard]] ArenaUpstream& heap_upstream();

/// Counts every chunk refill that reaches it — the oracle for the
/// "zero general-heap allocations after warm-up" contract.
class CountingUpstream final : public ArenaUpstream {
 public:
  explicit CountingUpstream(ArenaUpstream& inner) : inner_(&inner) {}
  [[nodiscard]] void* allocate(std::size_t bytes) override {
    ++allocations_;
    bytes_ += bytes;
    return inner_->allocate(bytes);
  }
  void deallocate(void* p, std::size_t bytes) override {
    ++deallocations_;
    inner_->deallocate(p, bytes);
  }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t deallocations() const { return deallocations_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  ArenaUpstream* inner_;
  std::uint64_t allocations_ = 0;
  std::uint64_t deallocations_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Chunked monotonic bump allocator with scoped rewind marks.
///
/// Exhaustion fallback: when the current chunk cannot satisfy a
/// request the arena pulls a new, geometrically larger chunk from the
/// upstream (so pathological sizes degrade to upstream allocation
/// instead of failing); rewinding keeps every chunk for reuse, which is
/// what makes the steady state allocation-free.
// CONTRACT: live_bytes()/allocation_count() only ever count
// allocations that came from this arena, and rewind(mark) requires the
// mark to have been taken from this arena with LIFO scope discipline —
// enforced by POR_EXPECT in arena.cpp.
class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial chunk request; subsequent
  /// chunks double.  No upstream call happens until the first
  /// allocation.
  explicit Arena(std::size_t first_chunk_bytes = 64 * 1024,
                 ArenaUpstream* upstream = nullptr);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Bump-allocate `bytes` aligned to `align` (a power of two).
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t));

  /// Typed array allocation; elements are NOT constructed.
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destructed");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// A rewind point.  Opaque; only meaningful for the arena it came
  /// from.
  struct Mark {
    void* chunk = nullptr;
    std::size_t used = 0;
    std::size_t live = 0;
    std::uint64_t allocs = 0;
  };
  [[nodiscard]] Mark mark() const;
  void rewind(const Mark& m);

  /// Rewind to empty.  Chunks are kept warm.
  void reset();

  /// Release every chunk back to the upstream.
  void release();

  // --- tracking (always on; a handful of adds per allocation) -------
  [[nodiscard]] std::size_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::uint64_t allocation_count() const { return allocs_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunk_count_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }

 private:
  struct Chunk;  // header; payload follows in the same upstream block

  /// Grow: pull a chunk with >= `min_payload` payload bytes from the
  /// upstream (the exhaustion fallback path).
  Chunk* grow(std::size_t min_payload);

  ArenaUpstream* upstream_;
  Chunk* head_ = nullptr;     ///< most recently carved chunk (bump target)
  Chunk* reserve_ = nullptr;  ///< rewound chunks kept warm for reuse
  std::size_t next_chunk_bytes_;
  std::size_t live_bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t capacity_ = 0;
  std::size_t chunk_count_ = 0;
  std::uint64_t allocs_ = 0;
};

/// RAII mark/rewind over an arena (strictly LIFO).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// The calling thread's frame arena.  Created on first use, released
/// when the thread exits.  Scope it with ArenaScope around each
/// hot-path frame.
[[nodiscard]] Arena& frame_arena();

/// Minimal growth buffer over an arena for trivially copyable types.
/// Growth allocates a doubled block and abandons the old one (monotonic
/// arenas reclaim it at the enclosing rewind, so transient waste is
/// bounded by 2x the final size).
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector memcpy-moves its elements");

 public:
  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 0)
      : arena_(&arena) {
    if (initial_capacity > 0) reserve(initial_capacity);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    POR_BOUNDS(i, size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    POR_BOUNDS(i, size_);
    return data_[i];
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t want) {
    if (want <= capacity_) return;
    T* grown = arena_->alloc_array<T>(want);
    for (std::size_t i = 0; i < size_; ++i) grown[i] = data_[i];
    data_ = grown;
    capacity_ = want;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 16 : capacity_ * 2);
    data_[size_++] = value;
  }

  /// size() = count; newly exposed elements are value-initialized.
  void assign_default(std::size_t count) {
    reserve(count);
    for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
    size_ = count;
  }

  /// size() = count without initializing elements (callers overwrite).
  void resize_uninit(std::size_t count) {
    reserve(count);
    size_ = count;
  }

 private:
  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace por::util
