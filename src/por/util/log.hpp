// por/util/log.hpp
//
// Minimal leveled logger.  Single global sink, thread-safe line output.
// The refinement driver logs one line per (view-group, resolution level)
// so long runs remain observable without drowning benchmark output.
// Every emitted line is prefixed with a UTC ISO-8601 timestamp and the
// level tag, e.g.:
//
//   [por 2026-08-06T12:34:56.789Z INFO ] pipeline cycle 1: ...
#pragma once

#include <sstream>
#include <string>

namespace por::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global verbosity threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// The full line log_line() would emit (timestamp + level tag +
/// message), exposed so tests can check the format without capturing
/// stderr.
[[nodiscard]] std::string format_log_line(LogLevel level,
                                          const std::string& message);

/// Emit one formatted line (thread-safe) if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream every argument into `os` (C++17 fold expression).
template <typename... Args>
void append_all(std::ostringstream& os, const Args&... args) {
  // void-cast: with an empty pack the fold collapses to plain `os`,
  // which -Wunused-value flags as a statement with no effect.
  static_cast<void>((os << ... << args));
}
}  // namespace detail

/// Variadic convenience: log_info("processed ", n, " views").
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::kError, os.str());
}

}  // namespace por::util
