// por/util/contracts.hpp
//
// por::contracts — Tier A of the correctness-tooling layer.
//
// The matcher hot path (PR 2) is built on unchecked invariants: the
// truncation-floor trilinear kernel requires non-negative coordinates,
// the branch-free 2x2x2 fetch requires every base cell inside the
// logical cube, the ScoreCache probe loop requires a free slot, the
// vmpi typed receives require payload/element agreement.  These macros
// make every such contract *machine-checked* in instrumented builds and
// *zero-cost* in release builds:
//
//  * `POR_EXPECT(cond, ...)`  — precondition.
//  * `POR_ENSURE(cond, ...)`  — postcondition / invariant.
//  * `POR_BOUNDS(index, size)`— index-in-range check (signed-safe).
//  * `POR_FINITE(value)`      — the value must be a finite double.
//
// With the `POR_CONTRACTS` CMake option ON (default in Debug builds)
// a violated contract prints a rich report — the failed expression,
// the caller-supplied values, file:line:function, and the active
// por::obs trace-span stack of the failing thread — then aborts, so
// sanitizer jobs and death tests catch it.  With the option OFF every
// macro expands to `((void)sizeof(...))`: the condition stays
// type-checked but is never evaluated and generates no code (see
// tests/test_contracts.cpp for the static_assert proving this).
//
// `checked_span<T>` is the companion accessor: a pointer+size view
// whose operator[] runs POR_BOUNDS.  Hot loops that index flattened
// tables (the matcher's annulus arrays, the cache's entry table) go
// through it instead of naked pointers — free in release, checked in
// instrumented builds, and it satisfies the por_lint rule that bans
// naked subscripts into spectrum/lattice buffers outside the accessor
// headers.
//
// Extra message arguments are streamed (space-separated) into the
// failure report: `POR_EXPECT(z >= 0.0, "z =", z)`.  They are NOT
// evaluated when the contract passes or when contracts are off, so
// they may be arbitrarily expensive.
#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#if defined(POR_CONTRACTS) && POR_CONTRACTS
#define POR_CONTRACTS_ENABLED 1
#else
#define POR_CONTRACTS_ENABLED 0
#endif

namespace por::contracts {

/// Optional hook supplying ambient context for failure reports.
/// por::obs installs one that formats the calling thread's open
/// trace-span stack (e.g. "refine_view > window_search"), so a
/// contract tripped deep in the matcher names the refinement step that
/// reached it.  The provider must be safe to call from any thread.
using ContextProvider = std::string (*)();
void set_context_provider(ContextProvider provider) noexcept;

/// Report the violation on stderr and abort().  Never returns; kept
/// out-of-line so the macro's fast path is a single predicted branch.
[[noreturn]] void fail(const char* kind, const char* expression,
                       const char* file, long line, const char* function,
                       const std::string& detail) noexcept;

namespace detail {

/// Space-separated operator<< rendering of the macro's extra
/// arguments; empty pack -> empty string.
template <typename... Args>
[[nodiscard]] std::string format_values(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream oss;
    const char* sep = "";
    ((oss << sep << args, sep = " "), ...);
    return oss.str();
  }
}

/// idx in [0, size)?  Handles signed indices without -Wsign-compare
/// noise: a negative index is out of bounds by definition.
template <typename I, typename S>
[[nodiscard]] constexpr bool in_bounds(I idx, S size) {
  if constexpr (std::is_signed_v<I>) {
    if (idx < 0) return false;
  }
  return static_cast<unsigned long long>(idx) <
         static_cast<unsigned long long>(size);
}

}  // namespace detail

}  // namespace por::contracts

#if POR_CONTRACTS_ENABLED

#define POR_CONTRACTS_DETAIL_CHECK(kind, cond, ...)                          \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::por::contracts::fail(                                                \
          kind, #cond, __FILE__, static_cast<long>(__LINE__),                \
          static_cast<const char*>(__func__),                                \
          ::por::contracts::detail::format_values(__VA_ARGS__));             \
    }                                                                        \
  } while (false)

/// Precondition: what must hold on entry for the code below to be
/// meaningful (caller's obligation).
#define POR_EXPECT(cond, ...) \
  POR_CONTRACTS_DETAIL_CHECK("precondition", cond __VA_OPT__(, ) __VA_ARGS__)

/// Postcondition / invariant: what this code guarantees afterwards
/// (implementation's obligation).
#define POR_ENSURE(cond, ...) \
  POR_CONTRACTS_DETAIL_CHECK("postcondition", cond __VA_OPT__(, ) __VA_ARGS__)

/// index must lie in [0, size).  Reports both operand values.
#define POR_BOUNDS(index, size)                                              \
  do {                                                                       \
    const auto por_contracts_idx_ = (index);                                 \
    const auto por_contracts_size_ = (size);                                 \
    if (!::por::contracts::detail::in_bounds(por_contracts_idx_,             \
                                             por_contracts_size_))           \
        [[unlikely]] {                                                       \
      ::por::contracts::fail(                                                \
          "bounds", #index " < " #size, __FILE__,                            \
          static_cast<long>(__LINE__), static_cast<const char*>(__func__),   \
          ::por::contracts::detail::format_values(                           \
              "index =", por_contracts_idx_,                                 \
              "size =", por_contracts_size_));                               \
    }                                                                        \
  } while (false)

/// value must be a finite floating-point number (no NaN / inf): the
/// matcher's distances and the refiner's scores silently poison every
/// downstream argmin otherwise.
#define POR_FINITE(value)                                                    \
  do {                                                                       \
    const double por_contracts_value_ = static_cast<double>(value);          \
    if (!std::isfinite(por_contracts_value_)) [[unlikely]] {                 \
      ::por::contracts::fail(                                                \
          "finiteness", "isfinite(" #value ")", __FILE__,                    \
          static_cast<long>(__LINE__), static_cast<const char*>(__func__),   \
          ::por::contracts::detail::format_values(                           \
              "value =", por_contracts_value_));                             \
    }                                                                        \
  } while (false)

#else  // !POR_CONTRACTS_ENABLED

// Disabled: the operand stays *type-checked* inside an unevaluated
// sizeof, so a contract cannot bit-rot, but no code is generated and
// the condition is never executed (extra message arguments vanish
// entirely).  Each expansion is a constant expression, which is what
// lets test_contracts.cpp prove no-op-ness with a static_assert.
#define POR_EXPECT(cond, ...) ((void)sizeof(!(cond)))
#define POR_ENSURE(cond, ...) ((void)sizeof(!(cond)))
#define POR_BOUNDS(index, size) \
  ((void)sizeof(::por::contracts::detail::in_bounds((index), (size))))
#define POR_FINITE(value) ((void)sizeof(!(static_cast<double>(value) > 0.0)))

#endif  // POR_CONTRACTS_ENABLED

namespace por::contracts {

/// Bounds-checked pointer+size view (contract-aware std::span
/// analogue).  operator[] runs POR_BOUNDS: a real check in
/// instrumented builds, a no-op (plain indexed load, fully inlined) in
/// release builds.  Use it wherever a flattened table is indexed by a
/// computed subscript — the por_lint "naked subscript" rule points
/// offenders here.
template <typename T>
class checked_span {
 public:
  constexpr checked_span() = default;
  constexpr checked_span(T* data, std::size_t count)
      : data_(data), size_(count) {}
  /// View over a vector (const or mutable element type).
  template <typename U>
  constexpr checked_span(std::vector<U>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}
  template <typename U>
  constexpr checked_span(const std::vector<U>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr T* data() const { return data_; }
  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) const {
    POR_BOUNDS(i, size_);
    return data_[i];  // por-lint: allow(naked-subscript) accessor definition
  }

  [[nodiscard]] T& front() const {
    POR_EXPECT(size_ > 0, "front() on empty span");
    return data_[0];  // por-lint: allow(naked-subscript) accessor definition
  }
  [[nodiscard]] T& back() const {
    POR_EXPECT(size_ > 0, "back() on empty span");
    return data_[size_ - 1];  // por-lint: allow(naked-subscript) accessor
  }

  /// Sub-view [offset, offset+count); the whole range must fit.
  [[nodiscard]] checked_span subspan(std::size_t offset,
                                     std::size_t count) const {
    POR_EXPECT(offset <= size_ && count <= size_ - offset,
               "subspan out of range: offset =", offset, "count =", count,
               "size =", size_);
    return checked_span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename U>
checked_span(std::vector<U>&) -> checked_span<U>;
template <typename U>
checked_span(const std::vector<U>&) -> checked_span<const U>;

}  // namespace por::contracts
