#include "por/util/arena.hpp"

#include <new>
#include <utility>

namespace por::util {

namespace {

class HeapUpstream final : public ArenaUpstream {
 public:
  [[nodiscard]] void* allocate(std::size_t bytes) override {
    return ::operator new(bytes);
  }
  void deallocate(void* p, std::size_t bytes) override {
    ::operator delete(p, bytes);
  }
};

}  // namespace

ArenaUpstream& heap_upstream() {
  static HeapUpstream upstream;
  return upstream;
}

/// Chunk header; the bump payload follows immediately (the header is
/// max_align_t-sized so the payload starts max-aligned).
struct alignas(alignof(std::max_align_t)) Arena::Chunk {
  Chunk* prev = nullptr;          ///< next-older chunk in the same list
  std::size_t payload_bytes = 0;  ///< capacity after the header
  std::size_t used = 0;           ///< bump offset into the payload

  [[nodiscard]] char* payload() {
    return reinterpret_cast<char*>(this) + sizeof(Chunk);
  }
};

Arena::Arena(std::size_t first_chunk_bytes, ArenaUpstream* upstream)
    : upstream_(upstream != nullptr ? upstream : &heap_upstream()),
      next_chunk_bytes_(first_chunk_bytes < 1024 ? 1024 : first_chunk_bytes) {}

Arena::~Arena() { release(); }

Arena::Arena(Arena&& other) noexcept
    : upstream_(other.upstream_),
      head_(std::exchange(other.head_, nullptr)),
      reserve_(std::exchange(other.reserve_, nullptr)),
      next_chunk_bytes_(other.next_chunk_bytes_),
      live_bytes_(std::exchange(other.live_bytes_, 0)),
      peak_bytes_(std::exchange(other.peak_bytes_, 0)),
      capacity_(std::exchange(other.capacity_, 0)),
      chunk_count_(std::exchange(other.chunk_count_, 0)),
      allocs_(std::exchange(other.allocs_, 0)) {}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this == &other) return *this;
  release();
  upstream_ = other.upstream_;
  head_ = std::exchange(other.head_, nullptr);
  reserve_ = std::exchange(other.reserve_, nullptr);
  next_chunk_bytes_ = other.next_chunk_bytes_;
  live_bytes_ = std::exchange(other.live_bytes_, 0);
  peak_bytes_ = std::exchange(other.peak_bytes_, 0);
  capacity_ = std::exchange(other.capacity_, 0);
  chunk_count_ = std::exchange(other.chunk_count_, 0);
  allocs_ = std::exchange(other.allocs_, 0);
  return *this;
}

Arena::Chunk* Arena::grow(std::size_t min_payload) {
  // Reuse a warm rewound chunk if any is large enough; this is what
  // keeps the steady state off the upstream entirely.
  Chunk** link = &reserve_;
  while (*link != nullptr) {
    if ((*link)->payload_bytes >= min_payload) {
      Chunk* found = *link;
      *link = found->prev;
      found->prev = head_;
      found->used = 0;
      head_ = found;
      return found;
    }
    link = &(*link)->prev;
  }
  // Exhaustion fallback: a fresh, geometrically larger chunk from the
  // upstream.  Oversized single requests get a dedicated chunk without
  // disturbing the doubling schedule.
  std::size_t payload = next_chunk_bytes_;
  if (payload < min_payload) {
    payload = min_payload;
  } else {
    next_chunk_bytes_ *= 2;
  }
  void* raw = upstream_->allocate(sizeof(Chunk) + payload);
  Chunk* chunk = new (raw) Chunk{};
  chunk->payload_bytes = payload;
  chunk->prev = head_;
  head_ = chunk;
  capacity_ += payload;
  ++chunk_count_;
  return chunk;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  POR_EXPECT(align != 0 && (align & (align - 1)) == 0,
             "arena alignment must be a power of two:", align);
  if (bytes == 0) bytes = 1;
  Chunk* chunk = head_;
  std::size_t offset = 0;
  if (chunk != nullptr) {
    const std::uintptr_t cursor =
        reinterpret_cast<std::uintptr_t>(chunk->payload()) + chunk->used;
    const std::uintptr_t aligned = (cursor + align - 1) & ~(align - 1);
    offset = chunk->used + static_cast<std::size_t>(aligned - cursor);
  }
  if (chunk == nullptr || offset + bytes > chunk->payload_bytes) {
    // A new chunk's payload is max-aligned; over-ask by align-1 so the
    // in-chunk alignment fixup always fits.
    chunk = grow(bytes + align - 1);
    const std::uintptr_t cursor =
        reinterpret_cast<std::uintptr_t>(chunk->payload());
    const std::uintptr_t aligned = (cursor + align - 1) & ~(align - 1);
    offset = static_cast<std::size_t>(aligned - cursor);
  }
  POR_ENSURE(offset + bytes <= chunk->payload_bytes,
             "bump overflow: offset =", offset, "bytes =", bytes,
             "payload =", chunk->payload_bytes);
  void* p = chunk->payload() + offset;
  chunk->used = offset + bytes;
  live_bytes_ += bytes;
  if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
  ++allocs_;
  return p;
}

Arena::Mark Arena::mark() const {
  Mark m;
  m.chunk = head_;
  m.used = head_ != nullptr ? head_->used : 0;
  m.live = live_bytes_;
  m.allocs = allocs_;
  return m;
}

void Arena::rewind(const Mark& m) {
  // Pop chunks carved after the mark back onto the warm reserve list.
  while (head_ != static_cast<Chunk*>(m.chunk)) {
    POR_EXPECT(head_ != nullptr,
               "rewind to a mark from another arena or out of LIFO order");
    Chunk* popped = head_;
    head_ = popped->prev;
    popped->prev = reserve_;
    popped->used = 0;
    reserve_ = popped;
  }
  if (head_ != nullptr) {
    POR_EXPECT(m.used <= head_->used,
               "rewind mark ahead of the bump cursor: mark =", m.used,
               "used =", head_->used);
    head_->used = m.used;
  }
  live_bytes_ = m.live;
  allocs_ = m.allocs;
}

void Arena::reset() {
  while (head_ != nullptr) {
    Chunk* popped = head_;
    head_ = popped->prev;
    popped->prev = reserve_;
    popped->used = 0;
    reserve_ = popped;
  }
  live_bytes_ = 0;
  allocs_ = 0;
}

void Arena::release() {
  for (Chunk* list : {head_, reserve_}) {
    while (list != nullptr) {
      Chunk* next = list->prev;
      upstream_->deallocate(list, sizeof(Chunk) + list->payload_bytes);
      list = next;
    }
  }
  head_ = nullptr;
  reserve_ = nullptr;
  live_bytes_ = 0;
  capacity_ = 0;
  chunk_count_ = 0;
  allocs_ = 0;
}

Arena& frame_arena() {
  thread_local Arena arena(256 * 1024);
  return arena;
}

}  // namespace por::util
