// por/util/thread_pool.hpp
//
// A small fixed-size thread pool with a parallel_for helper.
//
// The distributed-memory algorithm itself runs on por::vmpi ranks; the
// pool exists for shared-memory data parallelism *inside* one rank
// (e.g. transforming the views a rank owns), mirroring the paper's
// SP2 nodes where "the four processors in each node share the node's
// main memory".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace por::util {

class ThreadPool {
 public:
  /// Create a pool with `workers` threads (0 → hardware_concurrency).
  explicit ThreadPool(std::size_t workers = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Apply `body(i)` for i in [begin, end), split into contiguous chunks
  /// across the workers, and wait for completion.  Runs inline when the
  /// range is small or the pool has a single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace por::util
