// por/util/thread_pool.hpp
//
// A small fixed-size thread pool with a parallel_for helper.
//
// The distributed-memory algorithm itself runs on por::vmpi ranks; the
// pool exists for shared-memory data parallelism *inside* one rank
// (e.g. transforming the views a rank owns), mirroring the paper's
// SP2 nodes where "the four processors in each node share the node's
// main memory".
//
// Error model: a task that throws does NOT kill the worker or deadlock
// the pool.  The first exception is captured and rethrown from the
// next wait_idle() (and therefore from parallel_for) on the caller's
// thread; later exceptions from the same batch are dropped.
//
// Injectable task source: beyond the built-in FIFO queue, a TaskSource
// can be installed (set_task_source).  Workers that find the FIFO
// empty poll the source — this is how por::serve::Scheduler turns the
// pool's threads into work-stealing workers without owning threads of
// its own.  Idle workers never spin: whether the FIFO or the source
// runs dry, they block on the pool's condition variable until
// submit() or notify_source() wakes them (the epoch handshake in
// worker_loop makes the sleep lost-wakeup-free).
//
// Observability: the pool publishes `pool.tasks` (counter),
// `pool.queue_depth` / `pool.queue_depth_peak` (gauges) and
// `pool.task_wait_seconds` (histogram of submit->start latency) to the
// por::obs registry that is current on the constructing thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace por::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace por::obs

namespace por::util {

/// External supplier of work for ThreadPool workers.  run_one(worker)
/// executes at most one unit of work on the calling thread and returns
/// whether anything ran; `worker` is the stable pool-worker ordinal in
/// [0, size()), which lets the source keep per-worker state (e.g. one
/// work-stealing deque per worker).  run_one must not throw — the
/// source owns its error model (the pool's first_error_ channel only
/// covers its own FIFO tasks).
class TaskSource {
 public:
  virtual ~TaskSource() = default;
  virtual bool run_one(std::size_t worker) = 0;
};

// CONTRACT: in_flight_ counts exactly the submitted-but-unfinished
// tasks (each submit() pairs with one finish_one()); wait_idle()'s
// wake condition depends on it never wrapping below zero.  Enforced by
// POR_EXPECT in thread_pool.cpp.
class ThreadPool {
 public:
  /// Create a pool with `workers` threads (0 → hardware_concurrency).
  explicit ThreadPool(std::size_t workers = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.  If any task threw
  /// since the last wait_idle(), rethrows the first such exception
  /// (after the queue has drained, so the pool stays usable).
  void wait_idle();

  /// Apply `body(i)` for i in [begin, end), split into contiguous chunks
  /// across the workers, and wait for completion.  Runs inline when the
  /// range is small or the pool has a single worker.  An exception
  /// thrown by `body` propagates to the caller; remaining chunks still
  /// run to completion first (no cancellation).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Install (or, with nullptr, remove) an external task source.  The
  /// source must outlive its installation and must be quiescent — no
  /// unfinished source work — when it is removed.  Workers prefer the
  /// FIFO queue and fall back to the source.
  void set_task_source(TaskSource* source);

  /// Wake the workers to poll the task source: call after making new
  /// source work visible.  Cheap when nobody sleeps; never lost —
  /// every call bumps the epoch the sleep predicate watches.
  void notify_source();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueued_ns = 0;
  };

  void worker_loop(std::size_t worker);
  void finish_one();

  std::vector<std::thread> threads_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  TaskSource* source_ = nullptr;     ///< guarded by mutex_
  std::uint64_t source_epoch_ = 1;   ///< bumped by notify_source()

  // obs handles, resolved once against the constructing thread's
  // registry; never null.
  obs::Counter* tasks_counter_;
  obs::Gauge* queue_depth_;
  obs::Gauge* queue_depth_peak_;
  obs::Histogram* task_wait_;
};

}  // namespace por::util
