// por/util/rng.hpp
//
// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (phantom construction,
// simulated-microscope noise, orientation jitter, workload generators)
// takes an explicit seed so that tests and benchmark tables are exactly
// reproducible run-to-run.  The generator is xoshiro256++, which is
// fast, has a 2^256-1 period, and — unlike std::mt19937 — produces the
// same stream on every standard library implementation.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace por::util {

/// xoshiro256++ generator (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit word.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
      // por-lint: allow(float-eq) Marsaglia polar rejection: s == 0.0
      // exactly would make log(s)/s blow up; any nonzero s is fine.
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * factor;
    has_gauss_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double sigma) {
    return mean + sigma * gaussian();
  }

  /// Uniformly distributed point on the unit sphere, returned as the
  /// spherical angles (theta in [0, pi], phi in [0, 2*pi)) used by the
  /// paper's view-orientation parameterization.
  void sphere_point(double& theta, double& phi) {
    const double z = uniform(-1.0, 1.0);
    theta = std::acos(z);
    phi = uniform(0.0, 2.0 * std::numbers::pi);
  }

  /// Derive an independent child generator (for per-rank / per-view
  /// streams that must not overlap).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace por::util
