#include "por/util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "por/obs/registry.hpp"
#include "por/obs/span.hpp"
#include "por/util/contracts.hpp"

namespace por::util {

ThreadPool::ThreadPool(std::size_t workers) {
  obs::MetricsRegistry& registry = obs::current_registry();
  tasks_counter_ = &registry.counter("pool.tasks");
  queue_depth_ = &registry.gauge("pool.queue_depth");
  queue_depth_peak_ = &registry.gauge("pool.queue_depth_peak");
  task_wait_ = &registry.histogram(
      "pool.task_wait_seconds",
      {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0});

  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  POR_ENSURE(!threads_.empty(), "pool constructed with zero workers");
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
  // A pending exception nobody waited for dies with the pool.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Task{std::move(task), obs::now_ns()});
    ++in_flight_;
    const auto depth = static_cast<double>(queue_.size());
    queue_depth_->set(depth);
    queue_depth_peak_->record_max(depth);
  }
  tasks_counter_->add();
  work_available_.notify_one();
}

void ThreadPool::set_task_source(TaskSource* source) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    source_ = source;
    ++source_epoch_;
  }
  work_available_.notify_all();
}

void ThreadPool::notify_source() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++source_epoch_;
  }
  work_available_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  POR_ENSURE(chunk * chunks >= n, "chunking must cover the range: n =", n,
             "chunk =", chunk, "chunks =", chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  wait_idle();
}

void ThreadPool::finish_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  // CONTRACT: every finish_one() pairs with exactly one submit(); a
  // double-finish would wrap in_flight_ to SIZE_MAX and wedge
  // wait_idle() forever.
  POR_EXPECT(in_flight_ > 0, "finish_one without matching submit");
  if (--in_flight_ == 0) idle_.notify_all();
}

void ThreadPool::worker_loop(std::size_t worker) {
  // Epoch handshake with notify_source(): the worker records the epoch
  // *before* polling the source dry, so a producer that publishes work
  // and bumps the epoch concurrently always either (a) is seen by the
  // poll, or (b) changes the epoch and defeats the sleep predicate.
  // Idle workers therefore block — never spin, never miss a wakeup.
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    bool have_task = false;
    TaskSource* source = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] {
        return stopping_ || !queue_.empty() ||
               (source_ != nullptr && source_epoch_ != seen_epoch);
      });
      if (stopping_ && queue_.empty()) return;
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_->set(static_cast<double>(queue_.size()));
        have_task = true;
      } else {
        seen_epoch = source_epoch_;
        source = source_;
      }
    }
    if (have_task) {
      task_wait_->observe(
          static_cast<double>(obs::now_ns() - task.enqueued_ns) * 1e-9);
      try {
        task.fn();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      finish_one();
      continue;
    }
    // FIFO empty: drain the injected source outside the lock, then go
    // back to sleep until the epoch moves again.
    if (source != nullptr) {
      while (source->run_one(worker)) {
      }
    }
  }
}

}  // namespace por::util
