#include "por/util/thread_pool.hpp"

#include <algorithm>

namespace por::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers = size();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace por::util
