#include "por/util/cli.hpp"

#include <stdexcept>

namespace por::util {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --key value, unless the next token is another option or missing,
    // in which case --key is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool CliParser::has(const std::string& name) const {
  queried_.insert(name);
  return options_.count(name) != 0;
}

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
  queried_.insert(name);
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

long long CliParser::get_int(const std::string& name,
                             long long fallback) const {
  queried_.insert(name);
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliParser::get_double(const std::string& name, double fallback) const {
  queried_.insert(name);
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
  queried_.insert(name);
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + " expects a boolean, got '" + v +
                              "'");
}

void CliParser::assert_all_consumed() const {
  for (const auto& [name, value] : options_) {
    if (queried_.count(name) == 0) {
      throw std::invalid_argument("unknown option --" + name);
    }
  }
}

}  // namespace por::util
