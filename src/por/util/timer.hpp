// por/util/timer.hpp
//
// Wall-clock timing utilities used throughout the library and by the
// benchmark harnesses that reproduce the per-step timing tables of the
// paper (Tables 1 and 2).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace por::util {

/// Monotonic wall-clock stopwatch.
///
/// The paper reports per-step wall times (1D DFT, read image, FFT
/// analysis, orientation refinement); WallTimer is the primitive all of
/// those measurements are built from.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations, e.g. one entry per algorithm step.
///
/// Used to build the step-by-step breakdown of a refinement cycle
/// ("3D DFT", "Read image", "FFT analysis", "Orientation refinement")
/// exactly as the paper tabulates it.
class StepTimes {
 public:
  /// Add `seconds` to the bucket named `step`.
  void add(const std::string& step, double seconds);

  /// Total seconds recorded for `step` (0 if never recorded).
  [[nodiscard]] double get(const std::string& step) const;

  /// Sum over all steps.
  [[nodiscard]] double total() const;

  /// Fraction of total() spent in `step`; 0 when nothing was recorded.
  [[nodiscard]] double fraction(const std::string& step) const;

  /// All buckets in insertion-independent (sorted) order.
  [[nodiscard]] const std::map<std::string, double>& entries() const {
    return entries_;
  }

  /// Drop all recorded buckets.
  void clear() { entries_.clear(); }

 private:
  std::map<std::string, double> entries_;
};

/// RAII helper: measures the lifetime of a scope into a StepTimes bucket.
class ScopedStepTimer {
 public:
  ScopedStepTimer(StepTimes& sink, std::string step)
      : sink_(sink), step_(std::move(step)) {}
  ScopedStepTimer(const ScopedStepTimer&) = delete;
  ScopedStepTimer& operator=(const ScopedStepTimer&) = delete;
  ~ScopedStepTimer() { sink_.add(step_, timer_.seconds()); }

 private:
  StepTimes& sink_;
  std::string step_;
  WallTimer timer_;
};

}  // namespace por::util
