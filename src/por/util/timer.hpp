// por/util/timer.hpp
//
// Wall-clock timing utilities used throughout the library and by the
// benchmark harnesses that reproduce the per-step timing tables of the
// paper (Tables 1 and 2).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace por::util {

/// Monotonic wall-clock stopwatch.
///
/// The paper reports per-step wall times (1D DFT, read image, FFT
/// analysis, orientation refinement); WallTimer is the primitive all of
/// those measurements are built from.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations, e.g. one entry per algorithm step.
///
/// Used to build the step-by-step breakdown of a refinement cycle
/// ("3D DFT", "Read image", "FFT analysis", "Orientation refinement")
/// exactly as the paper tabulates it.
///
/// Thread-safe: concurrent add() from many workers is the normal case
/// now that refine_view runs on the work-stealing scheduler (the
/// refiner's per-step accounting funnels through one shared StepTimes).
/// Accumulation order still affects the low bits of a bucket under
/// concurrency — treat the values as measurements, not invariants.
class StepTimes {
 public:
  StepTimes() = default;
  StepTimes(const StepTimes& other) : entries_(other.entries()) {}
  StepTimes& operator=(const StepTimes& other) {
    if (this != &other) {
      auto copy = other.entries();
      std::lock_guard<std::mutex> lock(mutex_);
      entries_ = std::move(copy);
    }
    return *this;
  }

  /// Add `seconds` to the bucket named `step`.
  void add(const std::string& step, double seconds);

  /// Total seconds recorded for `step` (0 if never recorded).
  [[nodiscard]] double get(const std::string& step) const;

  /// Sum over all steps.
  [[nodiscard]] double total() const;

  /// Fraction of total() spent in `step`; 0 when nothing was recorded.
  [[nodiscard]] double fraction(const std::string& step) const;

  /// Snapshot of all buckets in insertion-independent (sorted) order.
  [[nodiscard]] std::map<std::string, double> entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
  }

  /// Drop all recorded buckets.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> entries_;
};

/// RAII helper: measures the lifetime of a scope into a StepTimes bucket.
class ScopedStepTimer {
 public:
  ScopedStepTimer(StepTimes& sink, std::string step)
      : sink_(sink), step_(std::move(step)) {}
  ScopedStepTimer(const ScopedStepTimer&) = delete;
  ScopedStepTimer& operator=(const ScopedStepTimer&) = delete;
  ~ScopedStepTimer() { sink_.add(step_, timer_.seconds()); }

 private:
  StepTimes& sink_;
  std::string step_;
  WallTimer timer_;
};

}  // namespace por::util
