#include "por/io/stack_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace por::io {

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'S'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t count = 0;
  std::uint64_t ny = 0;
  std::uint64_t nx = 0;
};

Header read_header(std::ifstream& in, const std::string& path) {
  char magic[4];
  in.read(magic, sizeof magic);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  Header h;
  in.read(reinterpret_cast<char*>(&h.count), sizeof h.count);
  in.read(reinterpret_cast<char*>(&h.ny), sizeof h.ny);
  in.read(reinterpret_cast<char*>(&h.nx), sizeof h.nx);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
      version != kVersion) {
    throw std::runtime_error("read_stack: bad header in " + path);
  }
  constexpr std::uint64_t kMaxEdge = 1u << 14;
  if (h.ny > kMaxEdge || h.nx > kMaxEdge ||
      (h.count > 0 && (h.ny == 0 || h.nx == 0))) {
    throw std::runtime_error("read_stack: implausible dimensions in " + path);
  }
  return h;
}

constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof kVersion + 3 * sizeof(std::uint64_t);

}  // namespace

void write_stack(const std::string& path,
                 const std::vector<em::Image<double>>& images) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_stack: cannot open " + path);
  const std::uint64_t count = images.size();
  const std::uint64_t ny = count ? images.front().ny() : 0;
  const std::uint64_t nx = count ? images.front().nx() : 0;
  for (const auto& img : images) {
    if (img.ny() != ny || img.nx() != nx) {
      throw std::invalid_argument("write_stack: images differ in size");
    }
  }
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(&ny), sizeof ny);
  out.write(reinterpret_cast<const char*>(&nx), sizeof nx);
  for (const auto& img : images) {
    out.write(reinterpret_cast<const char*>(img.data()),
              static_cast<std::streamsize>(img.size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("write_stack: write failed for " + path);
}

std::vector<em::Image<double>> read_stack(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_stack: cannot open " + path);
  const Header h = read_header(in, path);
  return read_stack_range(path, 0, h.count);
}

std::size_t stack_count(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("stack_count: cannot open " + path);
  return read_header(in, path).count;
}

std::vector<em::Image<double>> read_stack_range(const std::string& path,
                                                std::size_t first,
                                                std::size_t count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_stack_range: cannot open " + path);
  const Header h = read_header(in, path);
  if (first + count > h.count) {
    throw std::out_of_range("read_stack_range: range beyond stack");
  }
  const std::size_t image_bytes = h.ny * h.nx * sizeof(double);
  in.seekg(static_cast<std::streamoff>(kHeaderBytes + first * image_bytes));
  std::vector<em::Image<double>> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    em::Image<double> img(h.ny, h.nx);
    in.read(reinterpret_cast<char*>(img.data()),
            static_cast<std::streamsize>(image_bytes));
    if (in.gcount() != static_cast<std::streamsize>(image_bytes)) {
      throw std::runtime_error("read_stack_range: truncated file " + path);
    }
    images.push_back(std::move(img));
  }
  return images;
}

}  // namespace por::io
