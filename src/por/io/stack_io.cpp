#include "por/io/stack_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "por/resilience/atomic_file.hpp"
#include "por/resilience/error.hpp"

namespace por::io {

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'S'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t count = 0;
  std::uint64_t ny = 0;
  std::uint64_t nx = 0;
};

constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof kVersion + 3 * sizeof(std::uint64_t);

/// Bytes actually in the stream (position is left at the beginning).
std::uint64_t stream_size(std::ifstream& in) {
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  in.seekg(0, std::ios::beg);
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

/// Parse and validate the header.  Corrupt-input policy (DESIGN.md
/// §10): every malformed way a stack file can arrive — bad magic,
/// unknown version, short header, implausible or overflowing
/// dimensions, truncated payload — yields a typed
/// resilience::Error{kCorrupt} naming the file, never a garbage image
/// vector or a silent short read.
Header read_header(std::ifstream& in, const std::string& path) {
  const std::uint64_t file_bytes = stream_size(in);
  char magic[4];
  in.read(magic, sizeof magic);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  Header h;
  in.read(reinterpret_cast<char*>(&h.count), sizeof h.count);
  in.read(reinterpret_cast<char*>(&h.ny), sizeof h.ny);
  in.read(reinterpret_cast<char*>(&h.nx), sizeof h.nx);
  if (!in) {
    throw resilience::corrupt_error("read_stack: truncated header in " +
                                    path);
  }
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw resilience::corrupt_error("read_stack: bad magic in " + path);
  }
  if (version != kVersion) {
    throw resilience::corrupt_error("read_stack: unsupported version " +
                                    std::to_string(version) + " in " + path);
  }
  constexpr std::uint64_t kMaxEdge = 1u << 14;
  if (h.ny > kMaxEdge || h.nx > kMaxEdge ||
      (h.count > 0 && (h.ny == 0 || h.nx == 0))) {
    throw resilience::corrupt_error("read_stack: implausible dimensions in " +
                                    path);
  }
  // count * ny * nx * sizeof(double) must not overflow: ny, nx are
  // bounded above so ny*nx fits easily; guard the count product
  // explicitly before any allocation or seek arithmetic trusts it.
  const std::uint64_t pixels_per_image = h.ny * h.nx;  // <= 2^28
  if (pixels_per_image > 0 &&
      h.count > std::numeric_limits<std::uint64_t>::max() /
                    (pixels_per_image * sizeof(double))) {
    throw resilience::corrupt_error(
        "read_stack: count*ny*nx overflows in " + path);
  }
  const std::uint64_t payload_bytes =
      h.count * pixels_per_image * sizeof(double);
  if (file_bytes < kHeaderBytes + payload_bytes) {
    throw resilience::corrupt_error(
        "read_stack: truncated payload in " + path + " (" +
        std::to_string(file_bytes) + " bytes, header promises " +
        std::to_string(kHeaderBytes + payload_bytes) + ")");
  }
  return h;
}

std::ifstream open_stack(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Classified transient: on the paper's shared-filesystem model an
    // open can fail momentarily (mount flap, stale handle); the retry
    // layer decides whether to try again.
    throw resilience::transient_error(std::string(who) + ": cannot open " +
                                      path);
  }
  return in;
}

}  // namespace

void write_stack(const std::string& path,
                 const std::vector<em::Image<double>>& images) {
  const std::uint64_t count = images.size();
  const std::uint64_t ny = count ? images.front().ny() : 0;
  const std::uint64_t nx = count ? images.front().nx() : 0;
  for (const auto& img : images) {
    if (img.ny() != ny || img.nx() != nx) {
      throw std::invalid_argument("write_stack: images differ in size");
    }
  }
  // Atomic replacement: a crash mid-write leaves the previous stack
  // (or nothing), never a half-written file a restart would trust.
  resilience::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
    out.write(reinterpret_cast<const char*>(&count), sizeof count);
    out.write(reinterpret_cast<const char*>(&ny), sizeof ny);
    out.write(reinterpret_cast<const char*>(&nx), sizeof nx);
    for (const auto& img : images) {
      out.write(reinterpret_cast<const char*>(img.data()),
                static_cast<std::streamsize>(img.size() * sizeof(double)));
    }
  });
}

std::vector<em::Image<double>> read_stack(const std::string& path) {
  std::ifstream in = open_stack(path, "read_stack");
  const Header h = read_header(in, path);
  return read_stack_range(path, 0, h.count);
}

std::size_t stack_count(const std::string& path) {
  std::ifstream in = open_stack(path, "stack_count");
  return read_header(in, path).count;
}

std::vector<em::Image<double>> read_stack_range(const std::string& path,
                                                std::size_t first,
                                                std::size_t count) {
  std::ifstream in = open_stack(path, "read_stack_range");
  const Header h = read_header(in, path);
  if (first + count < first || first + count > h.count) {
    throw std::out_of_range("read_stack_range: range beyond stack");
  }
  const std::size_t image_bytes = h.ny * h.nx * sizeof(double);
  in.seekg(static_cast<std::streamoff>(kHeaderBytes + first * image_bytes));
  std::vector<em::Image<double>> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    em::Image<double> img(h.ny, h.nx);
    in.read(reinterpret_cast<char*>(img.data()),
            static_cast<std::streamsize>(image_bytes));
    if (in.gcount() != static_cast<std::streamsize>(image_bytes)) {
      throw resilience::corrupt_error("read_stack_range: truncated file " +
                                      path);
    }
    images.push_back(std::move(img));
  }
  return images;
}

StackReader::StackReader(std::string path) : path_(std::move(path)) {
  in_ = open_stack(path_, "StackReader");
  const Header h = read_header(in_, path_);
  count_ = h.count;
  ny_ = static_cast<std::size_t>(h.ny);
  nx_ = static_cast<std::size_t>(h.nx);
}

void StackReader::read_view(std::uint64_t index, double* dst) {
  if (index >= count_) {
    throw std::out_of_range("StackReader::read_view: index out of range");
  }
  const std::size_t image_bytes = ny_ * nx_ * sizeof(double);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(kHeaderBytes + index * image_bytes));
  in_.read(reinterpret_cast<char*>(dst),
           static_cast<std::streamsize>(image_bytes));
  if (in_.gcount() != static_cast<std::streamsize>(image_bytes)) {
    throw resilience::corrupt_error("StackReader: truncated file " + path_);
  }
}

std::vector<em::Image<double>> StackReader::read_range(std::uint64_t first,
                                                       std::size_t n) {
  if (first + n > count_) {
    throw std::out_of_range("StackReader::read_range: range beyond stack");
  }
  std::vector<em::Image<double>> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    em::Image<double> img(ny_, nx_);
    read_view(first + i, img.data());
    images.push_back(std::move(img));
  }
  return images;
}

}  // namespace por::io
