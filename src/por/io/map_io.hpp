// por/io/map_io.hpp
//
// Binary electron-density-map files ("PORM" format): a minimal,
// self-describing little-endian container playing the role the lab's
// map files play in the paper's pipeline (step a.1 reads one, step o's
// next cycle writes one).
//
// Layout: magic "PORM" | u32 version | u64 nz, ny, nx | f64 voxels
// in (z, y, x) row-major order.
#pragma once

#include <string>

#include "por/em/grid.hpp"

namespace por::io {

/// Write `vol` to `path`; throws std::runtime_error on I/O failure.
void write_map(const std::string& path, const em::Volume<double>& vol);

/// Read a map written by write_map; throws std::runtime_error on I/O
/// failure or malformed contents.
[[nodiscard]] em::Volume<double> read_map(const std::string& path);

}  // namespace por::io
