// por/io/stack_io.hpp
//
// Binary image-stack files ("PORS" format): the container for sets of
// experimental views (paper step b reads "the file containing the 2D
// views of the virus" in groups and distributes them).
//
// Layout: magic "PORS" | u32 version | u64 count, ny, nx | f64 pixels
// of image 0 (row-major), image 1, ...
#pragma once

#include <string>
#include <vector>

#include "por/em/grid.hpp"

namespace por::io {

/// Write a stack of equally-sized images; throws on I/O failure or if
/// the images disagree in size.
void write_stack(const std::string& path,
                 const std::vector<em::Image<double>>& images);

/// Read an entire stack.
[[nodiscard]] std::vector<em::Image<double>> read_stack(
    const std::string& path);

/// Number of images in the stack without reading pixel data.
[[nodiscard]] std::size_t stack_count(const std::string& path);

/// Read images [first, first + count) only — the master node uses this
/// to stream groups of views (paper step b).
[[nodiscard]] std::vector<em::Image<double>> read_stack_range(
    const std::string& path, std::size_t first, std::size_t count);

}  // namespace por::io
