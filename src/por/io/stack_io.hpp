// por/io/stack_io.hpp
//
// Binary image-stack files ("PORS" format): the container for sets of
// experimental views (paper step b reads "the file containing the 2D
// views of the virus" in groups and distributes them).
//
// Layout: magic "PORS" | u32 version | u64 count, ny, nx | f64 pixels
// of image 0 (row-major), image 1, ...
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "por/em/grid.hpp"

namespace por::io {

/// Write a stack of equally-sized images; throws on I/O failure or if
/// the images disagree in size.
void write_stack(const std::string& path,
                 const std::vector<em::Image<double>>& images);

/// Read an entire stack.
[[nodiscard]] std::vector<em::Image<double>> read_stack(
    const std::string& path);

/// Number of images in the stack without reading pixel data.
[[nodiscard]] std::size_t stack_count(const std::string& path);

/// Read images [first, first + count) only — the master node uses this
/// to stream groups of views (paper step b).
[[nodiscard]] std::vector<em::Image<double>> read_stack_range(
    const std::string& path, std::size_t first, std::size_t count);

/// Persistent handle for random-access view reads: validates the
/// header once at open, then seeks per view.  read_stack_range reopens
/// and revalidates the file on every call, which is fine for a handful
/// of block sends but not for a streaming master issuing thousands of
/// ranged fetches — por::stream's StackViewSource sits on this class.
class StackReader {
 public:
  /// Open + validate.  Throws the same typed errors as read_stack:
  /// kTransient when the file cannot be opened, kCorrupt for any
  /// malformed header or a payload shorter than the header promises.
  explicit StackReader(std::string path);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Copy view `index` (ny*nx doubles, row-major) into `dst`.  Throws
  /// std::out_of_range past count(), kCorrupt on a short read.
  void read_view(std::uint64_t index, double* dst);

  /// Views [first, first + n) as Images.
  [[nodiscard]] std::vector<em::Image<double>> read_range(std::uint64_t first,
                                                          std::size_t n);

 private:
  std::string path_;
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::size_t ny_ = 0, nx_ = 0;
};

}  // namespace por::io
