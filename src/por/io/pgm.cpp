#include "por/io/pgm.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace por::io {

void write_pgm(const std::string& path, const em::Image<double>& img) {
  if (img.empty()) throw std::invalid_argument("write_pgm: empty image");
  double lo = img.storage()[0], hi = img.storage()[0];
  for (double v : img.storage()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << img.nx() << ' ' << img.ny() << "\n255\n";
  std::vector<unsigned char> row(img.nx());
  for (std::size_t y = 0; y < img.ny(); ++y) {
    for (std::size_t x = 0; x < img.nx(); ++x) {
      row[x] = static_cast<unsigned char>((img(y, x) - lo) * scale);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

void write_pgm_section(const std::string& path,
                       const em::Volume<double>& volume) {
  if (volume.empty()) throw std::invalid_argument("write_pgm_section: empty");
  em::Image<double> section(volume.ny(), volume.nx());
  const std::size_t z = volume.nz() / 2;
  for (std::size_t y = 0; y < volume.ny(); ++y) {
    for (std::size_t x = 0; x < volume.nx(); ++x) {
      section(y, x) = volume(z, y, x);
    }
  }
  write_pgm(path, section);
}

}  // namespace por::io
