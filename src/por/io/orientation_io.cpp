#include "por/io/orientation_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "por/resilience/atomic_file.hpp"
#include "por/resilience/error.hpp"

namespace por::io {

void write_orientations(const std::string& path,
                        const std::vector<ViewOrientation>& records,
                        const std::string& comment) {
  // Atomic replacement: the orientation file is the artifact the next
  // refinement cycle (and a resumed run) trusts; a crash mid-write
  // must leave the previous complete file, not a prefix.
  resilience::atomic_write_file(path, [&](std::ostream& out) {
    out << "# por orientation file: index theta phi omega center_x center_y\n";
    if (!comment.empty()) out << "# " << comment << "\n";
    out.precision(10);
    for (const auto& rec : records) {
      out << rec.view_index << ' ' << rec.orientation.theta << ' '
          << rec.orientation.phi << ' ' << rec.orientation.omega << ' '
          << rec.center_x << ' ' << rec.center_y << '\n';
    }
  });
}

std::vector<ViewOrientation> read_orientations(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw resilience::transient_error("read_orientations: cannot open " +
                                      path);
  }
  std::vector<ViewOrientation> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    ViewOrientation rec;
    if (!(fields >> rec.view_index >> rec.orientation.theta >>
          rec.orientation.phi >> rec.orientation.omega >> rec.center_x >>
          rec.center_y)) {
      throw resilience::corrupt_error("read_orientations: malformed line " +
                                      std::to_string(line_number) + " in " +
                                      path);
    }
    // Non-finite angles/centers would silently poison every matching
    // downstream; classify them as corrupt input here.
    if (!std::isfinite(rec.orientation.theta) ||
        !std::isfinite(rec.orientation.phi) ||
        !std::isfinite(rec.orientation.omega) ||
        !std::isfinite(rec.center_x) || !std::isfinite(rec.center_y)) {
      throw resilience::corrupt_error(
          "read_orientations: non-finite value on line " +
          std::to_string(line_number) + " in " + path);
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace por::io
