#include "por/io/orientation_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace por::io {

void write_orientations(const std::string& path,
                        const std::vector<ViewOrientation>& records,
                        const std::string& comment) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_orientations: cannot open " + path);
  out << "# por orientation file: index theta phi omega center_x center_y\n";
  if (!comment.empty()) out << "# " << comment << "\n";
  out.precision(10);
  for (const auto& rec : records) {
    out << rec.view_index << ' ' << rec.orientation.theta << ' '
        << rec.orientation.phi << ' ' << rec.orientation.omega << ' '
        << rec.center_x << ' ' << rec.center_y << '\n';
  }
  if (!out) throw std::runtime_error("write_orientations: write failed");
}

std::vector<ViewOrientation> read_orientations(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_orientations: cannot open " + path);
  std::vector<ViewOrientation> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    ViewOrientation rec;
    if (!(fields >> rec.view_index >> rec.orientation.theta >>
          rec.orientation.phi >> rec.orientation.omega >> rec.center_x >>
          rec.center_y)) {
      throw std::runtime_error("read_orientations: malformed line " +
                               std::to_string(line_number) + " in " + path);
    }
    records.push_back(rec);
  }
  return records;
}

}  // namespace por::io
