#include "por/io/map_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace por::io {

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'M'};
constexpr std::uint32_t kVersion = 1;

void write_bytes(std::ofstream& out, const void* data, std::size_t bytes,
                 const std::string& path) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("write_map: write failed for " + path);
}

void read_bytes(std::ifstream& in, void* data, std::size_t bytes,
                const std::string& path) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    throw std::runtime_error("read_map: truncated file " + path);
  }
}

}  // namespace

void write_map(const std::string& path, const em::Volume<double>& vol) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_map: cannot open " + path);
  write_bytes(out, kMagic, sizeof kMagic, path);
  write_bytes(out, &kVersion, sizeof kVersion, path);
  const std::uint64_t dims[3] = {vol.nz(), vol.ny(), vol.nx()};
  write_bytes(out, dims, sizeof dims, path);
  write_bytes(out, vol.data(), vol.size() * sizeof(double), path);
}

em::Volume<double> read_map(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_map: cannot open " + path);
  char magic[4];
  read_bytes(in, magic, sizeof magic, path);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_map: bad magic in " + path);
  }
  std::uint32_t version = 0;
  read_bytes(in, &version, sizeof version, path);
  if (version != kVersion) {
    throw std::runtime_error("read_map: unsupported version in " + path);
  }
  std::uint64_t dims[3];
  read_bytes(in, dims, sizeof dims, path);
  constexpr std::uint64_t kMaxEdge = 1u << 14;
  if (dims[0] == 0 || dims[1] == 0 || dims[2] == 0 || dims[0] > kMaxEdge ||
      dims[1] > kMaxEdge || dims[2] > kMaxEdge) {
    throw std::runtime_error("read_map: implausible dimensions in " + path);
  }
  em::Volume<double> vol(dims[0], dims[1], dims[2]);
  read_bytes(in, vol.data(), vol.size() * sizeof(double), path);
  return vol;
}

}  // namespace por::io
