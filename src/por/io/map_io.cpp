#include "por/io/map_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>

#include "por/resilience/atomic_file.hpp"
#include "por/resilience/error.hpp"

namespace por::io {

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'M'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof kVersion + 3 * sizeof(std::uint64_t);

void read_bytes(std::ifstream& in, void* data, std::size_t bytes,
                const std::string& path) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    throw resilience::corrupt_error("read_map: truncated file " + path);
  }
}

}  // namespace

void write_map(const std::string& path, const em::Volume<double>& vol) {
  // Atomic replacement (DESIGN.md §10): the next cycle's step (a.1)
  // must never read a half-written map after a crash in step (o).
  resilience::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
    const std::uint64_t dims[3] = {vol.nz(), vol.ny(), vol.nx()};
    out.write(reinterpret_cast<const char*>(dims), sizeof dims);
    out.write(reinterpret_cast<const char*>(vol.data()),
              static_cast<std::streamsize>(vol.size() * sizeof(double)));
  });
}

em::Volume<double> read_map(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw resilience::transient_error("read_map: cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  const std::uint64_t file_bytes =
      end < 0 ? 0 : static_cast<std::uint64_t>(end);
  in.seekg(0, std::ios::beg);

  char magic[4];
  read_bytes(in, magic, sizeof magic, path);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw resilience::corrupt_error("read_map: bad magic in " + path);
  }
  std::uint32_t version = 0;
  read_bytes(in, &version, sizeof version, path);
  if (version != kVersion) {
    throw resilience::corrupt_error("read_map: unsupported version in " +
                                    path);
  }
  std::uint64_t dims[3];
  read_bytes(in, dims, sizeof dims, path);
  constexpr std::uint64_t kMaxEdge = 1u << 14;
  if (dims[0] == 0 || dims[1] == 0 || dims[2] == 0 || dims[0] > kMaxEdge ||
      dims[1] > kMaxEdge || dims[2] > kMaxEdge) {
    throw resilience::corrupt_error("read_map: implausible dimensions in " +
                                    path);
  }
  // nz*ny*nx*8 cannot overflow with edges <= 2^14 (product <= 2^45),
  // but validate the promised payload against the actual file size so
  // truncation is a typed error before any allocation happens.
  const std::uint64_t payload_bytes =
      dims[0] * dims[1] * dims[2] * sizeof(double);
  if (file_bytes < kHeaderBytes + payload_bytes) {
    throw resilience::corrupt_error(
        "read_map: truncated payload in " + path + " (" +
        std::to_string(file_bytes) + " bytes, header promises " +
        std::to_string(kHeaderBytes + payload_bytes) + ")");
  }
  em::Volume<double> vol(dims[0], dims[1], dims[2]);
  read_bytes(in, vol.data(), vol.size() * sizeof(double), path);
  return vol;
}

}  // namespace por::io
