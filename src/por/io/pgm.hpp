// por/io/pgm.hpp
//
// Plain 8-bit PGM output for quick visual inspection of views, cross
// sections and micrographs (every image viewer opens PGM; no library
// dependency).  Values are min/max normalized to 0..255.
#pragma once

#include <string>

#include "por/em/grid.hpp"

namespace por::io {

/// Write `img` as a binary (P5) PGM file; throws on I/O failure.
void write_pgm(const std::string& path, const em::Image<double>& img);

/// Write the central z-section of a volume.
void write_pgm_section(const std::string& path,
                       const em::Volume<double>& volume);

}  // namespace por::io
