#include "por/io/master_io.hpp"

#include <stdexcept>

#include "por/io/stack_io.hpp"

namespace por::io {

namespace {

constexpr vmpi::Tag kViewMetaTag = 100;
constexpr vmpi::Tag kViewDataTag = 101;
constexpr vmpi::Tag kRefinedTag = 103;

struct StackMeta {
  std::uint64_t total = 0;
  std::uint64_t ny = 0;
  std::uint64_t nx = 0;
};

}  // namespace

std::size_t block_share(std::size_t m, int nranks, int rank) {
  const std::size_t base = m / static_cast<std::size_t>(nranks);
  const std::size_t rem = m % static_cast<std::size_t>(nranks);
  return base + (static_cast<std::size_t>(rank) < rem ? 1 : 0);
}

std::size_t block_begin(std::size_t m, int nranks, int rank) {
  std::size_t begin = 0;
  for (int r = 0; r < rank; ++r) begin += block_share(m, nranks, r);
  return begin;
}

std::vector<em::Image<double>> master_read_views(vmpi::Comm& comm,
                                                 const std::string& stack_path,
                                                 std::size_t& first_index) {
  StackMeta meta;
  std::vector<em::Image<double>> mine;
  if (comm.is_root()) {
    meta.total = stack_count(stack_path);
    // Stream each rank's block straight from disk to its mailbox so the
    // master never holds more than one block (paper step b reads in
    // groups of m/P views).
    for (int r = comm.size() - 1; r >= 0; --r) {
      const std::size_t begin = block_begin(meta.total, comm.size(), r);
      const std::size_t share = block_share(meta.total, comm.size(), r);
      auto block = read_stack_range(stack_path, begin, share);
      if (!block.empty()) {
        meta.ny = block.front().ny();
        meta.nx = block.front().nx();
      }
      if (r == 0) {
        mine = std::move(block);
      } else {
        std::vector<double> flat;
        flat.reserve(share * meta.ny * meta.nx);
        for (const auto& img : block) {
          flat.insert(flat.end(), img.storage().begin(), img.storage().end());
        }
        comm.send(r, kViewDataTag, flat);
      }
    }
    for (int r = 1; r < comm.size(); ++r) {
      comm.send_value(r, kViewMetaTag, meta);
    }
  } else {
    // Receive data first, then the meta that describes how to slice it:
    // the master sends data blocks before metas, and (src, dst, tag)
    // ordering guarantees each arrives intact.
    auto flat = comm.recv<double>(0, kViewDataTag);
    meta = comm.recv_value<StackMeta>(0, kViewMetaTag);
    const std::size_t pixels = meta.ny * meta.nx;
    const std::size_t share = pixels ? flat.size() / pixels : 0;
    mine.reserve(share);
    for (std::size_t i = 0; i < share; ++i) {
      em::Image<double> img(meta.ny, meta.nx);
      std::copy(flat.begin() + i * pixels, flat.begin() + (i + 1) * pixels,
                img.storage().begin());
      mine.push_back(std::move(img));
    }
  }
  first_index = block_begin(meta.total, comm.size(), comm.rank());
  return mine;
}

std::vector<ViewOrientation> master_read_orientations(
    vmpi::Comm& comm, const std::string& orient_path) {
  if (comm.is_root()) {
    auto all = read_orientations(orient_path);
    std::vector<std::vector<ViewOrientation>> chunks(comm.size());
    std::size_t cursor = 0;
    for (int r = 0; r < comm.size(); ++r) {
      const std::size_t share = block_share(all.size(), comm.size(), r);
      chunks[r].assign(all.begin() + cursor, all.begin() + cursor + share);
      cursor += share;
    }
    return comm.scatterv(0, chunks);
  }
  return comm.scatterv(0, std::vector<std::vector<ViewOrientation>>{});
}

void master_write_orientations(vmpi::Comm& comm, const std::string& path,
                               const std::vector<ViewOrientation>& mine,
                               const std::string& comment) {
  if (comm.is_root()) {
    std::vector<ViewOrientation> all = mine;
    for (int r = 1; r < comm.size(); ++r) {
      auto piece = comm.recv<ViewOrientation>(r, kRefinedTag);
      all.insert(all.end(), piece.begin(), piece.end());
    }
    write_orientations(path, all, comment);
  } else {
    comm.send(0, kRefinedTag, mine);
  }
}

}  // namespace por::io
