// por/io/master_io.hpp
//
// Master-node distributed I/O (paper §3: "Parallel I/O could reduce
// the I/O time but in our algorithm we do not assume the existence of
// a parallel file system.  To avoid contention, a master node
// typically reads an entire data file and distributes data segments to
// the nodes as needed").
//
// Every function here is an SPMD collective: all ranks call it; rank 0
// touches the filesystem; the others receive their share by message.
#pragma once

#include <string>
#include <vector>

#include "por/em/grid.hpp"
#include "por/io/orientation_io.hpp"
#include "por/vmpi/comm.hpp"

namespace por::io {

/// Rank 0 reads the view stack and deals images round-robin-by-block:
/// rank r receives views [r*m/P, (r+1)*m/P) plus one extra from the
/// remainder if r < m mod P.  Returns this rank's views and stores the
/// global index of its first view in `first_index`.
[[nodiscard]] std::vector<em::Image<double>> master_read_views(
    vmpi::Comm& comm, const std::string& stack_path,
    std::size_t& first_index);

/// Same block partition for orientation records (paper step c keeps a
/// view and its orientation on the same node).
[[nodiscard]] std::vector<ViewOrientation> master_read_orientations(
    vmpi::Comm& comm, const std::string& orient_path);

/// Rank 0 gathers every rank's refined records (in rank order, which
/// restores global view order under the block partition) and writes
/// the orientation file (paper step o).
void master_write_orientations(vmpi::Comm& comm, const std::string& path,
                               const std::vector<ViewOrientation>& mine,
                               const std::string& comment = "");

/// Block partition helper: number of items rank r owns out of m.
[[nodiscard]] std::size_t block_share(std::size_t m, int nranks, int rank);

/// Global index of the first item rank r owns.
[[nodiscard]] std::size_t block_begin(std::size_t m, int nranks, int rank);

}  // namespace por::io
