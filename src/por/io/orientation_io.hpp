// por/io/orientation_io.hpp
//
// Text orientation files: one record per experimental view, holding
// the three Euler angles and the particle center — the O_init file
// read in step (c) and the O_refined file written in step (o).
//
// Format: '#'-prefixed comment lines, then one line per view:
//   <index> <theta> <phi> <omega> <center_x> <center_y>
// Angles in degrees, centers in pixels.
#pragma once

#include <string>
#include <vector>

#include "por/em/orientation.hpp"

namespace por::io {

/// One view's orientation record.
struct ViewOrientation {
  std::size_t view_index = 0;
  em::Orientation orientation;
  double center_x = 0.0;  ///< particle center relative to floor(l/2)
  double center_y = 0.0;

  bool operator==(const ViewOrientation&) const = default;
};

/// Write records in index order with a provenance comment.
void write_orientations(const std::string& path,
                        const std::vector<ViewOrientation>& records,
                        const std::string& comment = "");

/// Read an orientation file; throws std::runtime_error on malformed
/// lines.
[[nodiscard]] std::vector<ViewOrientation> read_orientations(
    const std::string& path);

}  // namespace por::io
