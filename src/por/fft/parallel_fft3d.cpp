#include "por/fft/parallel_fft3d.hpp"

#include <stdexcept>

#include "por/fft/fftnd.hpp"

namespace por::fft {

std::vector<cdouble> parallel_fft3d_forward(vmpi::Comm& comm,
                                            std::vector<cdouble> full_on_root,
                                            std::size_t l) {
  const int p = comm.size();
  if (l % static_cast<std::size_t>(p) != 0) {
    throw std::invalid_argument(
        "parallel_fft3d_forward: cube edge must be divisible by the number "
        "of ranks");
  }
  if (comm.is_root() && full_on_root.size() != l * l * l) {
    throw std::invalid_argument(
        "parallel_fft3d_forward: root volume must hold l^3 voxels");
  }
  const std::size_t slab = l / static_cast<std::size_t>(p);  // planes per rank

  // (a.2) master scatters z-slabs; z-slabs are contiguous in (z,y,x).
  std::vector<cdouble> zslab = comm.scatter(0, full_on_root);
  full_on_root.clear();
  full_on_root.shrink_to_fit();

  // (a.3) 2D DFT of every xy-plane in the z-slab.
  for (std::size_t zl = 0; zl < slab; ++zl) {
    fft2d_forward(zslab.data() + zl * l * l, l, l);
  }

  // (a.4) global exchange: block for rank r holds my z-planes restricted
  // to y in [r*slab, (r+1)*slab), layout (z_local, y_local, x).
  std::vector<std::vector<cdouble>> outgoing(p);
  for (int r = 0; r < p; ++r) {
    auto& block = outgoing[r];
    block.resize(slab * slab * l);
    const std::size_t y0 = static_cast<std::size_t>(r) * slab;
    for (std::size_t zl = 0; zl < slab; ++zl) {
      for (std::size_t yl = 0; yl < slab; ++yl) {
        const cdouble* src = zslab.data() + (zl * l + (y0 + yl)) * l;
        cdouble* dst = block.data() + (zl * slab + yl) * l;
        std::copy(src, src + l, dst);
      }
    }
  }
  zslab.clear();
  zslab.shrink_to_fit();
  std::vector<std::vector<cdouble>> incoming = comm.alltoall(outgoing);
  outgoing.clear();

  // Assemble the y-slab with layout (y_local, z, x) so z-lines have a
  // fixed stride of l.
  std::vector<cdouble> yslab(slab * l * l);
  for (int src_rank = 0; src_rank < p; ++src_rank) {
    const auto& block = incoming[src_rank];
    const std::size_t z0 = static_cast<std::size_t>(src_rank) * slab;
    for (std::size_t zl = 0; zl < slab; ++zl) {
      for (std::size_t yl = 0; yl < slab; ++yl) {
        const cdouble* src = block.data() + (zl * slab + yl) * l;
        cdouble* dst = yslab.data() + (yl * l + (z0 + zl)) * l;
        std::copy(src, src + l, dst);
      }
    }
  }
  incoming.clear();

  // (a.5) 1D DFT along z for every (y_local, x) line.
  const Fft1D z_plan(l);
  for (std::size_t yl = 0; yl < slab; ++yl) {
    for (std::size_t x = 0; x < l; ++x) {
      z_plan.forward_strided(yslab.data() + yl * l * l + x, l);
    }
  }

  // (a.6) all-gather: concatenation in rank order yields layout (y,z,x);
  // transpose back to the library's canonical (z,y,x).
  std::vector<cdouble> gathered = comm.allgather(yslab);
  yslab.clear();
  yslab.shrink_to_fit();
  std::vector<cdouble> out(l * l * l);
  for (std::size_t y = 0; y < l; ++y) {
    for (std::size_t z = 0; z < l; ++z) {
      const cdouble* src = gathered.data() + (y * l + z) * l;
      cdouble* dst = out.data() + (z * l + y) * l;
      std::copy(src, src + l, dst);
    }
  }
  return out;
}

}  // namespace por::fft
