#include "por/fft/parallel_fft3d.hpp"

#include <cstring>
#include <stdexcept>

#include "por/util/contracts.hpp"

namespace por::fft {

namespace {

/// The shared slab pipeline; `inverse` selects the transform direction
/// (Fft1D's inverse carries the 1/n factor, so three inverse passes
/// yield the full 1/l^3 normalization, exactly like fft3d_inverse).
std::vector<cdouble> parallel_fft3d(vmpi::Comm& comm,
                                    std::vector<cdouble> full_on_root,
                                    std::size_t l, bool inverse,
                                    const FftOptions& options) {
  const int p = comm.size();
  if (l % static_cast<std::size_t>(p) != 0) {
    throw std::invalid_argument(
        "parallel_fft3d: cube edge must be divisible by the number of ranks");
  }
  if (comm.is_root() && full_on_root.size() != l * l * l) {
    throw std::invalid_argument(
        "parallel_fft3d: root volume must hold l^3 voxels");
  }

  // Single rank: the slab pipeline degenerates to the serial transform
  // — skip the scatter/exchange/gather machinery entirely so a
  // one-rank "parallel" call moves zero bytes.
  if (p == 1) {
    if (inverse) {
      fft3d_inverse(full_on_root.data(), l, l, l, options);
    } else {
      fft3d_forward(full_on_root.data(), l, l, l, options);
    }
    return full_on_root;
  }

  const std::size_t slab = l / static_cast<std::size_t>(p);  // planes per rank
  const std::size_t row_bytes = l * sizeof(cdouble);

  // (a.2) master scatters z-slabs; z-slabs are contiguous in (z,y,x).
  std::vector<cdouble> zslab = comm.scatter(0, full_on_root);
  full_on_root.clear();
  full_on_root.shrink_to_fit();
  POR_ENSURE(zslab.size() == slab * l * l, "scatter returned wrong slab size:",
             zslab.size(), "!=", slab * l * l);

  // (a.3) 2D DFT of every xy-plane in the z-slab (plan-cached, and
  // threaded across rows/column-tiles when options.threads > 1).
  for (std::size_t zl = 0; zl < slab; ++zl) {
    if (inverse) {
      fft2d_inverse(zslab.data() + zl * l * l, l, l, options);
    } else {
      fft2d_forward(zslab.data() + zl * l * l, l, l, options);
    }
  }

  // (a.4) global exchange: block for rank r holds my z-planes restricted
  // to y in [r*slab, (r+1)*slab), layout (z_local, y_local, x) — each
  // (zl, yl) row of l voxels moves as one memcpy.
  std::vector<std::vector<cdouble>> outgoing(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    std::vector<cdouble>& block = outgoing[static_cast<std::size_t>(r)];
    block.resize(slab * slab * l);
    const std::size_t y0 = static_cast<std::size_t>(r) * slab;
    for (std::size_t zl = 0; zl < slab; ++zl) {
      // CONTRACT: the whole (yl = 0..slab) band of plane zl is
      // contiguous in both the slab and the block — one memcpy of
      // slab*l voxels per plane instead of per-row copies.
      POR_BOUNDS((zl * l + y0 + slab - 1) * l + l - 1, zslab.size());
      std::memcpy(block.data() + zl * slab * l,
                  zslab.data() + (zl * l + y0) * l, slab * row_bytes);
    }
  }
  zslab.clear();
  zslab.shrink_to_fit();
  std::vector<std::vector<cdouble>> incoming = comm.alltoall(outgoing);
  outgoing.clear();

  // Assemble the y-slab with layout (y_local, z, x) so the z pass sees
  // one batch of adjacent lines per y_local row block.
  std::vector<cdouble> yslab(slab * l * l);
  for (int src_rank = 0; src_rank < p; ++src_rank) {
    const std::vector<cdouble>& block =
        incoming[static_cast<std::size_t>(src_rank)];
    POR_ENSURE(block.size() == slab * slab * l,
               "alltoall block has wrong size:", block.size());
    const std::size_t z0 = static_cast<std::size_t>(src_rank) * slab;
    for (std::size_t zl = 0; zl < slab; ++zl) {
      for (std::size_t yl = 0; yl < slab; ++yl) {
        POR_BOUNDS((yl * l + z0 + zl) * l + l - 1, yslab.size());
        std::memcpy(yslab.data() + (yl * l + (z0 + zl)) * l,
                    block.data() + (zl * slab + yl) * l, row_bytes);
      }
    }
  }
  incoming.clear();

  // (a.5) 1D DFT along z: within one y_local block the lines (z, x)
  // for x = 0..l start at adjacent offsets with stride l — a single
  // batched, cache-blocked fft1d_lines call per block.
  for (std::size_t yl = 0; yl < slab; ++yl) {
    fft1d_lines(yslab.data() + yl * l * l, l, l, l, inverse, options);
  }

  // (a.6) all-gather: concatenation in rank order yields layout (y,z,x);
  // fuse the transpose back to canonical (z,y,x) into the unpack — one
  // row-sized memcpy per (y,z) pair, straight from the gathered buffer.
  std::vector<cdouble> gathered = comm.allgather(yslab);
  yslab.clear();
  yslab.shrink_to_fit();
  POR_ENSURE(gathered.size() == l * l * l,
             "allgather returned wrong volume size:", gathered.size());
  std::vector<cdouble> out(l * l * l);
  for (std::size_t y = 0; y < l; ++y) {
    for (std::size_t z = 0; z < l; ++z) {
      std::memcpy(out.data() + (z * l + y) * l,
                  gathered.data() + (y * l + z) * l, row_bytes);
    }
  }
  return out;
}

}  // namespace

std::vector<cdouble> parallel_fft3d_forward(vmpi::Comm& comm,
                                            std::vector<cdouble> full_on_root,
                                            std::size_t l,
                                            const FftOptions& options) {
  return parallel_fft3d(comm, std::move(full_on_root), l, /*inverse=*/false,
                        options);
}

std::vector<cdouble> parallel_fft3d_inverse(vmpi::Comm& comm,
                                            std::vector<cdouble> full_on_root,
                                            std::size_t l,
                                            const FftOptions& options) {
  return parallel_fft3d(comm, std::move(full_on_root), l, /*inverse=*/true,
                        options);
}

}  // namespace por::fft
