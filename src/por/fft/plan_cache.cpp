#include "por/fft/plan_cache.hpp"

#include "por/fft/obs_handles.hpp"
#include "por/util/contracts.hpp"

namespace por::fft {

PlanCache& PlanCache::instance() {
  // Never destroyed: plans may be referenced from thread_local pools /
  // static destructors of arbitrary order.
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const Fft1D> PlanCache::get(std::size_t n, PlanKind kind) {
  detail::ObsHandles& obs = detail::obs_handles();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find({n, kind});
    if (it != plans_.end()) {
      obs.plan_hits->add();
      return it->second;
    }
  }
  // Build outside the lock: Bluestein setup for large odd n is orders
  // of magnitude more expensive than the map operations, and holding
  // the mutex across it would serialize unrelated lengths.  A racing
  // builder of the same length just loses its copy.
  obs.plan_misses->add();
  auto plan = std::make_shared<const Fft1D>(n);
  POR_ENSURE(plan->size() == n, "plan cache built wrong length:", plan->size(),
             "!=", n);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = plans_.try_emplace({n, kind}, std::move(plan));
  (void)inserted;
  return it->second;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

std::shared_ptr<const Fft1D> cached_plan(std::size_t n, PlanKind kind) {
  return PlanCache::instance().get(n, kind);
}

}  // namespace por::fft
