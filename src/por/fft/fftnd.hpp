// por/fft/fftnd.hpp
//
// 2D and 3D DFTs by row-column decomposition, plus the centering
// (fftshift) helpers used when treating the transform as a lattice
// centred on the zero frequency.
//
// v2 engine (see DESIGN.md §9):
//   * every 1D plan comes from the process-wide PlanCache — twiddles
//     and Bluestein chirp transforms are built once per length, ever;
//   * column / z-line passes run through a cache-blocked
//     transpose-into-scratch -> contiguous row FFTs -> transpose-back
//     batcher instead of per-line strided gathers;
//   * real inputs go through rfft2d_forward / rfft3d_forward, which
//     exploit Hermitian symmetry (two real rows per complex transform,
//     half the column lines + conjugate mirror) for ~2x less work;
//   * FftOptions::threads fans rows / tiles / planes across a
//     util::ThreadPool with bit-identical results (the tile partition
//     and per-line math do not depend on the worker count).
//
// Layouts are row-major:
//   2D: data[y * nx + x]
//   3D: data[(z * ny + y) * nx + x]
#pragma once

#include <cstddef>

#include "por/fft/fft1d.hpp"

namespace por::util {
class ThreadPool;
}

namespace por::fft {

/// Execution options shared by every multi-dimensional transform.
///
/// `threads == 1` (the default) runs serially on the calling thread.
/// `threads == 0` uses the hardware concurrency.  Threaded execution
/// is bit-identical to serial: work is split at line/tile granularity
/// and every line is transformed by the same shared plan with the same
/// operation order.  Pools are cached per calling thread (one OS
/// thread's FFT calls never share a pool with another's), so
/// concurrent callers — e.g. vmpi rank threads — cannot cross-wait.
struct FftOptions {
  std::size_t threads = 1;
};

// ---- 1D batch -------------------------------------------------------------

/// Transform `count` lines of length n in one batch: line j starts at
/// base + j and its elements are `stride` apart (the memory pattern of
/// every column/z-line pass in this library).  Uses the blocked
/// transpose batcher; plans come from the cache.  Exposed for the
/// slab-parallel 3D driver and for tests.
void fft1d_lines(cdouble* base, std::size_t count, std::size_t n,
                 std::size_t stride, bool inverse,
                 const FftOptions& options = {});

// ---- 2D -------------------------------------------------------------------

/// In-place forward 2D DFT of an ny x nx array.
void fft2d_forward(cdouble* data, std::size_t ny, std::size_t nx,
                   const FftOptions& options = {});

/// In-place inverse 2D DFT (includes the 1/(ny*nx) factor).
void fft2d_inverse(cdouble* data, std::size_t ny, std::size_t nx,
                   const FftOptions& options = {});

/// Real-to-complex forward 2D DFT: reads the real ny x nx array `src`,
/// writes its full complex spectrum (identical layout and values — up
/// to rounding ~1e-15 — to fft2d_forward of the promoted input) to
/// `dst`.  Exploits Hermitian symmetry twice: row transforms pack two
/// real rows into one complex FFT, and only columns x <= nx/2 are
/// transformed, the rest being filled by the conjugate mirror
/// F[y][x] = conj(F[(ny-y)%ny][(nx-x)%nx]).  `src` and `dst` must not
/// alias.
void rfft2d_forward(const double* src, cdouble* dst, std::size_t ny,
                    std::size_t nx, const FftOptions& options = {});

// ---- 3D -------------------------------------------------------------------

/// In-place forward 3D DFT of an nz x ny x nx array.
void fft3d_forward(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx, const FftOptions& options = {});

/// In-place inverse 3D DFT (includes the 1/(nz*ny*nx) factor).
void fft3d_inverse(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx, const FftOptions& options = {});

/// Real-to-complex forward 3D DFT (full complex output, same contract
/// as rfft2d_forward): r2c plane transforms + z-lines only for
/// x <= nx/2, then the 3D conjugate mirror.
void rfft3d_forward(const double* src, cdouble* dst, std::size_t nz,
                    std::size_t ny, std::size_t nx,
                    const FftOptions& options = {});

// ---- centering ------------------------------------------------------------

/// Swap half-spaces so the zero frequency moves to (n/2, ...) — the
/// centered layout used by the slice extractor.  fftshift2d followed by
/// ifftshift2d is the identity (they differ for odd sizes).
void fftshift2d(cdouble* data, std::size_t ny, std::size_t nx);
void ifftshift2d(cdouble* data, std::size_t ny, std::size_t nx);
void fftshift3d(cdouble* data, std::size_t nz, std::size_t ny, std::size_t nx);
void ifftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                 std::size_t nx);

}  // namespace por::fft
