// por/fft/fftnd.hpp
//
// 2D and 3D complex DFTs by row-column decomposition, plus the
// centering (fftshift) helpers used when treating the transform as a
// lattice centred on the zero frequency.
//
// Layouts are row-major:
//   2D: data[y * nx + x]
//   3D: data[(z * ny + y) * nx + x]
#pragma once

#include <cstddef>

#include "por/fft/fft1d.hpp"

namespace por::fft {

// ---- 2D -------------------------------------------------------------------

/// In-place forward 2D DFT of an ny x nx array.
void fft2d_forward(cdouble* data, std::size_t ny, std::size_t nx);

/// In-place inverse 2D DFT (includes the 1/(ny*nx) factor).
void fft2d_inverse(cdouble* data, std::size_t ny, std::size_t nx);

// ---- 3D -------------------------------------------------------------------

/// In-place forward 3D DFT of an nz x ny x nx array.
void fft3d_forward(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx);

/// In-place inverse 3D DFT (includes the 1/(nz*ny*nx) factor).
void fft3d_inverse(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx);

// ---- centering ------------------------------------------------------------

/// Swap half-spaces so the zero frequency moves to (n/2, ...) — the
/// centered layout used by the slice extractor.  fftshift2d followed by
/// ifftshift2d is the identity (they differ for odd sizes).
void fftshift2d(cdouble* data, std::size_t ny, std::size_t nx);
void ifftshift2d(cdouble* data, std::size_t ny, std::size_t nx);
void fftshift3d(cdouble* data, std::size_t nz, std::size_t ny, std::size_t nx);
void ifftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                 std::size_t nx);

}  // namespace por::fft
