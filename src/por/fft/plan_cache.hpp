// por/fft/plan_cache.hpp
//
// Process-wide, thread-safe cache of 1D FFT plans.
//
// Building an Fft1D plan is cheap for power-of-two lengths (bit
// reversal + roots) but *expensive* for the paper's odd view sizes
// (331, 511): Bluestein setup runs a full inner power-of-two FFT of
// the chirp.  The seed-era fftnd layer rebuilt both row and column
// plans on every fft2d_* call — for a 331x331 view spectrum that is
// two chirp FFTs of length 1024 per transform, repeated for every view
// of every B<->C cycle.  The cache makes plan acquisition a mutexed
// map lookup; the plans themselves are immutable after construction
// and safe to execute from any number of threads concurrently.
//
// Keyed by (n, kind) so future plan flavours (e.g. a dedicated
// real-input plan) can share the cache without colliding with the
// complex plans of the same length.
//
// Observability: "fft.plan_cache.hits" / "fft.plan_cache.misses"
// counters, attributed to the *calling* thread's current registry (see
// obs_handles.hpp for why attribution is resolved per call and not per
// plan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "por/fft/fft1d.hpp"

namespace por::fft {

/// Plan flavour — part of the cache key.
enum class PlanKind : std::uint8_t {
  kComplex = 0,  ///< complex-to-complex Fft1D (the only flavour today)
};

/// CONTRACT: get() never returns null and the returned plan's size()
/// equals the requested n (POR_ENSURE in plan_cache.cpp); entries are
/// never evicted, so a shared_ptr handed out stays valid forever even
/// if clear() races with it.
class PlanCache {
 public:
  /// The process-wide cache instance.
  static PlanCache& instance();

  /// Find-or-build the plan for length n (n >= 1; throws
  /// std::invalid_argument for n == 0, like Fft1D itself).
  [[nodiscard]] std::shared_ptr<const Fft1D> get(
      std::size_t n, PlanKind kind = PlanKind::kComplex);

  /// Drop every cached plan (outstanding shared_ptrs stay valid).
  /// Tests use this to make hit/miss accounting deterministic.
  void clear();

  /// Number of resident plans.
  [[nodiscard]] std::size_t size() const;

 private:
  PlanCache() = default;

  mutable std::mutex mutex_;
  std::map<std::pair<std::size_t, PlanKind>, std::shared_ptr<const Fft1D>>
      plans_;
};

/// Convenience: PlanCache::instance().get(n).
[[nodiscard]] std::shared_ptr<const Fft1D> cached_plan(
    std::size_t n, PlanKind kind = PlanKind::kComplex);

}  // namespace por::fft
