#include "por/fft/fft1d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "por/fft/obs_handles.hpp"
#include "por/util/contracts.hpp"

namespace por::fft {

namespace {

std::vector<std::size_t> make_bitrev(std::size_t n) {
  std::vector<std::size_t> rev(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<cdouble> make_roots(std::size_t n) {
  std::vector<cdouble> roots(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    roots[k] = {std::cos(angle), std::sin(angle)};
  }
  return roots;
}

}  // namespace

Fft1D::Fft1D(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("Fft1D: length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    roots_ = make_roots(n_);
    return;
  }
  // Bluestein setup.  chirp_[k] = exp(+i*pi*k^2/n); the inner circular
  // convolution length must be >= 2n-1 and a power of two.
  m_ = next_pow2(2 * n_ - 1);
  inner_ = std::make_unique<Fft1D>(m_);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the phase argument small and exact.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle =
        std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = {std::cos(angle), std::sin(angle)};
  }
  std::vector<cdouble> b(m_, cdouble{0.0, 0.0});
  b[0] = chirp_[0];
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = chirp_[k];
    b[m_ - k] = chirp_[k];  // symmetric wrap for negative indices
  }
  inner_->forward(b.data());
  chirp_fft_ = std::move(b);
}

void Fft1D::transform(cdouble* data, bool inverse) const {
  POR_EXPECT(data != nullptr, "transform on null buffer, n =", n_);
  if (n_ == 1) return;
  detail::ObsHandles& obs = detail::obs_handles();
  obs.transforms_1d->add();
  obs.points_1d->add(n_);
  if (!inverse) {
    if (pow2_) {
      pow2_forward(data);
    } else {
      bluestein_forward(data);
    }
    return;
  }
  // inverse(x) = conj(forward(conj(x))) / n
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  if (pow2_) {
    pow2_forward(data);
  } else {
    bluestein_forward(data);
  }
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * scale;
}

void Fft1D::pow2_forward(cdouble* data) const {
  const std::size_t n = n_;
  // CONTRACT: the bit-reversal permutation and the root table are
  // built for exactly this n at construction; a mismatch would read
  // out of the tables inside the butterfly loop.
  POR_ENSURE(bitrev_.size() == n && roots_.size() == n / 2,
             "precomputed tables out of sync: n =", n,
             "bitrev =", bitrev_.size(), "roots =", roots_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies on raw doubles.  std::complex<double> operator* lowers
  // to a __muldc3 libcall (NaN-recovery semantics) which dominates the
  // whole transform; the manual form below is the identical finite-case
  // arithmetic — (ac - bd, ad + bc) — at a fraction of the cost, and
  // vectorizes.  std::complex<double> is layout-compatible with
  // double[2] by [complex.numbers.general], so the casts are defined.
  double* d = reinterpret_cast<double*>(data);
  const double* rt = reinterpret_cast<const double*>(roots_.data());
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n / len;  // stride into the root table
    for (std::size_t block = 0; block < n; block += len) {
      double* lo = d + 2 * block;
      double* hi = lo + 2 * half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = rt[2 * k * step];
        const double wi = rt[2 * k * step + 1];
        const double xr = hi[2 * k];
        const double xi = hi[2 * k + 1];
        const double odd_r = xr * wr - xi * wi;
        const double odd_i = xr * wi + xi * wr;
        const double er = lo[2 * k];
        const double ei = lo[2 * k + 1];
        lo[2 * k] = er + odd_r;
        lo[2 * k + 1] = ei + odd_i;
        hi[2 * k] = er - odd_r;
        hi[2 * k + 1] = ei - odd_i;
      }
    }
  }
}

void Fft1D::bluestein_forward(cdouble* data) const {
  POR_ENSURE(chirp_.size() == n_ && chirp_fft_.size() == m_ && m_ >= 2 * n_ - 1,
             "Bluestein tables out of sync: n =", n_, "m =", m_);
  // a[k] = x[k] * conj(chirp[k]), zero-padded to m.  All pointwise
  // complex products are spelled out manually for the same __muldc3
  // reason as in pow2_forward.
  std::vector<cdouble> a(m_, cdouble{0.0, 0.0});
  for (std::size_t k = 0; k < n_; ++k) {
    const double xr = data[k].real(), xi = data[k].imag();
    const double cr = chirp_[k].real(), ci = chirp_[k].imag();
    a[k] = {xr * cr + xi * ci, xi * cr - xr * ci};
  }
  inner_->forward(a.data());
  for (std::size_t k = 0; k < m_; ++k) {
    const double ar = a[k].real(), ai = a[k].imag();
    const double br = chirp_fft_[k].real(), bi = chirp_fft_[k].imag();
    a[k] = {ar * br - ai * bi, ar * bi + ai * br};
  }
  inner_->inverse(a.data());
  for (std::size_t k = 0; k < n_; ++k) {
    const double ar = a[k].real(), ai = a[k].imag();
    const double cr = chirp_[k].real(), ci = chirp_[k].imag();
    data[k] = {ar * cr + ai * ci, ai * cr - ar * ci};
  }
}

void Fft1D::forward_strided(cdouble* base, std::size_t stride) const {
  std::vector<cdouble> line(n_);
  for (std::size_t i = 0; i < n_; ++i) line[i] = base[i * stride];
  forward(line.data());
  for (std::size_t i = 0; i < n_; ++i) base[i * stride] = line[i];
}

void Fft1D::inverse_strided(cdouble* base, std::size_t stride) const {
  std::vector<cdouble> line(n_);
  for (std::size_t i = 0; i < n_; ++i) line[i] = base[i * stride];
  inverse(line.data());
  for (std::size_t i = 0; i < n_; ++i) base[i * stride] = line[i];
}

}  // namespace por::fft
