// POR_HOT_PATH
//
// Executed per line of every 2D/3D transform; execute-path scratch
// is frame-arena only.  Plan construction (tables below) runs once
// per length and carries hot-path-alloc waivers.
#include "por/fft/fft1d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "por/fft/obs_handles.hpp"
#include "por/simd/kernels.hpp"
#include "por/util/arena.hpp"
#include "por/util/contracts.hpp"

namespace por::fft {

namespace {

// por-lint: allow(hot-path-alloc) plan table, built once per length
std::vector<std::size_t> make_bitrev(std::size_t n) {
  // por-lint: allow(hot-path-alloc) plan table, built once per length
  std::vector<std::size_t> rev(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    rev[i] = r;
  }
  return rev;
}

// por-lint: allow(hot-path-alloc) plan table, built once per length
std::vector<cdouble> make_roots(std::size_t n) {
  // por-lint: allow(hot-path-alloc) plan table, built once per length
  std::vector<cdouble> roots(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    roots[k] = {std::cos(angle), std::sin(angle)};
  }
  return roots;
}

}  // namespace

Fft1D::Fft1D(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("Fft1D: length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    roots_ = make_roots(n_);
    // Flatten the per-stage twiddles (see fft1d.hpp): stage half=h at
    // complex offset h-1, reading roots_ with the stage's stride.
    if (n_ >= 2) {
      stage_tw_.resize(n_ - 1);
      for (std::size_t half = 1; half < n_; half <<= 1) {
        const std::size_t step = n_ / (2 * half);
        for (std::size_t k = 0; k < half; ++k) {
          stage_tw_[half - 1 + k] = roots_[k * step];
        }
      }
    }
    return;
  }
  // Bluestein setup.  chirp_[k] = exp(+i*pi*k^2/n); the inner circular
  // convolution length must be >= 2n-1 and a power of two.
  m_ = next_pow2(2 * n_ - 1);
  inner_ = std::make_unique<Fft1D>(m_);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the phase argument small and exact.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle =
        std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = {std::cos(angle), std::sin(angle)};
  }
  // por-lint: allow(hot-path-alloc) Bluestein setup, once per plan
  std::vector<cdouble> b(m_, cdouble{0.0, 0.0});
  b[0] = chirp_[0];
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = chirp_[k];
    b[m_ - k] = chirp_[k];  // symmetric wrap for negative indices
  }
  inner_->forward(b.data());
  chirp_fft_ = std::move(b);
}

void Fft1D::transform(cdouble* data, bool inverse) const {
  POR_EXPECT(data != nullptr, "transform on null buffer, n =", n_);
  if (n_ == 1) return;
  detail::ObsHandles& obs = detail::obs_handles();
  obs.transforms_1d->add();
  obs.points_1d->add(n_);
  if (!inverse) {
    if (pow2_) {
      pow2_forward(data);
    } else {
      bluestein_forward(data);
    }
    return;
  }
  // inverse(x) = conj(forward(conj(x))) / n
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  if (pow2_) {
    pow2_forward(data);
  } else {
    bluestein_forward(data);
  }
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * scale;
}

void Fft1D::pow2_forward(cdouble* data) const {
  const std::size_t n = n_;
  // CONTRACT: the bit-reversal permutation and the twiddle tables are
  // built for exactly this n at construction; a mismatch would read
  // out of the tables inside the butterfly loop.
  POR_ENSURE(bitrev_.size() == n && roots_.size() == n / 2 &&
                 (n < 2 || stage_tw_.size() == n - 1),
             "precomputed tables out of sync: n =", n,
             "bitrev =", bitrev_.size(), "roots =", roots_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly stages run through the dispatched per-ISA kernel (the
  // process-wide tier, re-read per transform — plans are shared and
  // must not snapshot a stale table).  The kernels work on raw doubles:
  // std::complex<double> operator* lowers to a __muldc3 libcall
  // (NaN-recovery semantics) which dominates the whole transform; the
  // manual (ac - bd, ad + bc) form is the identical finite-case
  // arithmetic at a fraction of the cost.  std::complex<double> is
  // layout-compatible with double[2] by [complex.numbers.general], so
  // the casts are defined.
  const simd::KernelTable& kt = simd::active_kernels();
  detail::obs_handles().simd_stage_dispatch->add();
  double* d = reinterpret_cast<double*>(data);
  const double* tw = reinterpret_cast<const double*>(stage_tw_.data());
  for (std::size_t half = 1; half < n; half <<= 1) {
    kt.fft_stage(d, n, half, tw + 2 * (half - 1));
  }
}

void Fft1D::bluestein_forward(cdouble* data) const {
  POR_ENSURE(chirp_.size() == n_ && chirp_fft_.size() == m_ && m_ >= 2 * n_ - 1,
             "Bluestein tables out of sync: n =", n_, "m =", m_);
  // Convolution scratch comes from the calling thread's frame arena:
  // after the first transform of a given size the chunks are warm and
  // repeated transforms never touch the general heap.
  util::ArenaScope scope(util::frame_arena());
  cdouble* a = util::frame_arena().alloc_array<cdouble>(m_);
  // The pointwise complex products run through the dispatched per-ISA
  // kernels (manual (ac - bd, ad + bc) arithmetic — see pow2_forward
  // for the __muldc3 rationale and the layout-compatibility note).
  const simd::KernelTable& kt = simd::active_kernels();
  double* ad = reinterpret_cast<double*>(a);
  const double* chirp = reinterpret_cast<const double*>(chirp_.data());
  // a[k] = x[k] * conj(chirp[k]), zero-padded to m.
  kt.cmul_conj(ad, reinterpret_cast<const double*>(data), chirp, n_);
  for (std::size_t k = n_; k < m_; ++k) a[k] = cdouble{0.0, 0.0};
  inner_->forward(a);
  kt.cmul(ad, reinterpret_cast<const double*>(chirp_fft_.data()), m_);
  inner_->inverse(a);
  kt.cmul_conj(reinterpret_cast<double*>(data), ad, chirp, n_);
}

void Fft1D::forward_strided(cdouble* base, std::size_t stride) const {
  util::ArenaScope scope(util::frame_arena());
  cdouble* line = util::frame_arena().alloc_array<cdouble>(n_);
  for (std::size_t i = 0; i < n_; ++i) line[i] = base[i * stride];
  forward(line);
  for (std::size_t i = 0; i < n_; ++i) base[i * stride] = line[i];
}

void Fft1D::inverse_strided(cdouble* base, std::size_t stride) const {
  util::ArenaScope scope(util::frame_arena());
  cdouble* line = util::frame_arena().alloc_array<cdouble>(n_);
  for (std::size_t i = 0; i < n_; ++i) line[i] = base[i * stride];
  inverse(line);
  for (std::size_t i = 0; i < n_; ++i) base[i * stride] = line[i];
}

}  // namespace por::fft
