#include "por/fft/fftnd.hpp"

#include <algorithm>
#include <vector>

#include "por/obs/registry.hpp"
#include "por/util/contracts.hpp"

namespace por::fft {

namespace {

/// One relaxed atomic increment per multi-dimensional transform; the
/// name lookup resolves against the calling thread's registry so the
/// per-rank accounting stays separate under vmpi.
void count_transform(const char* name, std::size_t points) {
  obs::MetricsRegistry& registry = obs::current_registry();
  registry.counter(name).add();
  registry.counter("fft.nd.points").add(points);
}

/// Roll a 1D sequence left by `shift` positions (circular).
/// CONTRACT: shift <= n — std::rotate's middle iterator must lie
/// inside [first, first + n].
template <typename Iter>
void roll_axis(Iter first, std::size_t n, std::size_t shift) {
  POR_EXPECT(shift <= n, "roll shift exceeds axis length:", shift, ">", n);
  std::rotate(first, first + shift, first + n);
}

/// Apply a circular shift of `shift` along axis y of an ny x nx array.
void roll_rows(cdouble* data, std::size_t ny, std::size_t nx,
               std::size_t shift) {
  if (shift == 0) return;
  std::vector<cdouble> column(ny);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) column[y] = data[y * nx + x];
    roll_axis(column.begin(), ny, shift);
    for (std::size_t y = 0; y < ny; ++y) data[y * nx + x] = column[y];
  }
}

void roll_cols(cdouble* data, std::size_t ny, std::size_t nx,
               std::size_t shift) {
  if (shift == 0) return;
  for (std::size_t y = 0; y < ny; ++y) {
    roll_axis(data + y * nx, nx, shift);
  }
}

}  // namespace

void fft2d_forward(cdouble* data, std::size_t ny, std::size_t nx) {
  POR_EXPECT(data != nullptr || ny * nx == 0, "fft2d on null buffer");
  count_transform("fft.2d.transforms", ny * nx);
  const Fft1D row_plan(nx);
  const Fft1D col_plan(ny);
  for (std::size_t y = 0; y < ny; ++y) row_plan.forward(data + y * nx);
  for (std::size_t x = 0; x < nx; ++x) col_plan.forward_strided(data + x, nx);
}

void fft2d_inverse(cdouble* data, std::size_t ny, std::size_t nx) {
  count_transform("fft.2d.transforms", ny * nx);
  const Fft1D row_plan(nx);
  const Fft1D col_plan(ny);
  for (std::size_t y = 0; y < ny; ++y) row_plan.inverse(data + y * nx);
  for (std::size_t x = 0; x < nx; ++x) col_plan.inverse_strided(data + x, nx);
}

void fft3d_forward(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx) {
  POR_EXPECT(data != nullptr || nz * ny * nx == 0, "fft3d on null buffer");
  count_transform("fft.3d.transforms", nz * ny * nx);
  // xy planes first (matches the paper's step a.3), then lines along z.
  for (std::size_t z = 0; z < nz; ++z) {
    fft2d_forward(data + z * ny * nx, ny, nx);
  }
  const Fft1D z_plan(nz);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      z_plan.forward_strided(data + y * nx + x, ny * nx);
    }
  }
}

void fft3d_inverse(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx) {
  count_transform("fft.3d.transforms", nz * ny * nx);
  for (std::size_t z = 0; z < nz; ++z) {
    fft2d_inverse(data + z * ny * nx, ny, nx);
  }
  const Fft1D z_plan(nz);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      z_plan.inverse_strided(data + y * nx + x, ny * nx);
    }
  }
}

void fftshift2d(cdouble* data, std::size_t ny, std::size_t nx) {
  roll_cols(data, ny, nx, (nx + 1) / 2);
  roll_rows(data, ny, nx, (ny + 1) / 2);
}

void ifftshift2d(cdouble* data, std::size_t ny, std::size_t nx) {
  roll_cols(data, ny, nx, nx / 2);
  roll_rows(data, ny, nx, ny / 2);
}

void fftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                std::size_t nx) {
  for (std::size_t z = 0; z < nz; ++z) fftshift2d(data + z * ny * nx, ny, nx);
  // shift along z
  std::vector<cdouble> line(nz);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::size_t stride = ny * nx;
      cdouble* base = data + y * nx + x;
      for (std::size_t z = 0; z < nz; ++z) line[z] = base[z * stride];
      roll_axis(line.begin(), nz, (nz + 1) / 2);
      for (std::size_t z = 0; z < nz; ++z) base[z * stride] = line[z];
    }
  }
}

void ifftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                 std::size_t nx) {
  for (std::size_t z = 0; z < nz; ++z) ifftshift2d(data + z * ny * nx, ny, nx);
  std::vector<cdouble> line(nz);
  const std::size_t shift = nz / 2;
  if (shift == 0) return;
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::size_t stride = ny * nx;
      cdouble* base = data + y * nx + x;
      for (std::size_t z = 0; z < nz; ++z) line[z] = base[z * stride];
      roll_axis(line.begin(), nz, shift);
      for (std::size_t z = 0; z < nz; ++z) base[z * stride] = line[z];
    }
  }
}

}  // namespace por::fft
