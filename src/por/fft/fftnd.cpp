#include "por/fft/fftnd.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "por/fft/obs_handles.hpp"
#include "por/fft/plan_cache.hpp"
#include "por/obs/registry.hpp"
#include "por/util/arena.hpp"
#include "por/util/contracts.hpp"
#include "por/util/thread_pool.hpp"

namespace por::fft {

namespace {

// Number of adjacent lines gathered into one contiguous scratch tile by
// fft1d_lines.  16 complex doubles = 256 bytes = 4 cache lines per
// gathered chunk; a 16 x 128 tile is 32 KiB, i.e. one L1d.  The tile
// partition is a pure function of (count, kLineTile) — never of the
// worker count — which is what makes threaded execution bit-identical
// to serial.
constexpr std::size_t kLineTile = 16;

/// One relaxed atomic increment per multi-dimensional transform; the
/// transform counter resolves by name against the calling thread's
/// registry (rare — once per whole 2D/3D call), the hot nd.points
/// counter goes through the thread-local handle cache.
void count_transform(const char* name, std::size_t points) {
  obs::current_registry().counter(name).add();
  detail::obs_handles().nd_points->add(points);
}

/// How many workers `options` asks for (1 = serial on the caller).
std::size_t resolve_workers(const FftOptions& options) {
  if (options.threads == 1) return 1;
  if (options.threads != 0) return options.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Per-calling-thread pool cache.  Each OS thread that runs threaded
/// FFTs owns its own pools (keyed by worker count), so concurrent
/// callers — e.g. vmpi rank threads — never share a pool and cannot
/// cross-wait in parallel_for / wait_idle.  Pools join their workers
/// when the owning thread exits.
util::ThreadPool& pool_for(std::size_t workers) {
  thread_local std::map<std::size_t, std::unique_ptr<util::ThreadPool>> pools;
  std::unique_ptr<util::ThreadPool>& slot = pools[workers];
  if (!slot) slot = std::make_unique<util::ThreadPool>(workers);
  return *slot;
}

/// Run body(i) for i in [0, count), fanned across the requested
/// workers.  The work items themselves are identical either way (same
/// per-item math, disjoint data), so results are bit-identical to the
/// serial loop regardless of the partition.
void run_indexed(const FftOptions& options, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  const std::size_t workers = resolve_workers(options);
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_for(workers).parallel_for(0, count, body);
}

/// Transform `rows` contiguous lines of length n starting at data
/// (row r at data + r*n).  One shared plan from the cache; rows fan
/// across the pool.
void fft_rows(cdouble* data, std::size_t rows, std::size_t n, bool inverse,
              const FftOptions& options) {
  if (rows == 0 || n == 0) return;
  const std::shared_ptr<const Fft1D> plan = cached_plan(n);
  run_indexed(options, rows, [&](std::size_t r) {
    cdouble* row = data + r * n;
    if (inverse) {
      plan->inverse(row);
    } else {
      plan->forward(row);
    }
  });
}

// ---- shifts ---------------------------------------------------------------

/// dst[i] = src[(i + shift) % n] — a left-rotate, written as the two
/// contiguous copies it decomposes into.
void roll_line_into(cdouble* dst, const cdouble* src, std::size_t n,
                    std::size_t shift) {
  POR_EXPECT(shift <= n, "roll shift exceeds axis length:", shift, ">", n);
  std::memcpy(dst, src + shift, (n - shift) * sizeof(cdouble));
  std::memcpy(dst + (n - shift), src, shift * sizeof(cdouble));
}

/// In-place left-rotate of `nblocks` contiguous blocks of `block`
/// elements each: new block b = old block (b + shift) % nblocks.  Two
/// bulk copies through a scratch of the `shift` wrapped blocks instead
/// of the seed's per-element strided gather loops.
void roll_blocks(cdouble* data, std::size_t nblocks, std::size_t block,
                 std::size_t shift) {
  POR_EXPECT(shift <= nblocks, "roll shift exceeds block count:", shift, ">",
             nblocks);
  if (shift == 0 || nblocks == 0 || block == 0) return;
  util::ArenaScope scope(util::frame_arena());
  cdouble* head = util::frame_arena().alloc_array<cdouble>(shift * block);
  std::memcpy(head, data, shift * block * sizeof(cdouble));
  std::memmove(data, data + shift * block,
               (nblocks - shift) * block * sizeof(cdouble));
  std::memcpy(data + (nblocks - shift) * block, head,
              shift * block * sizeof(cdouble));
}

/// Circular shift along x of an ny x nx array (each row rotated left by
/// `shift`), via one reused row buffer.
void roll_cols(cdouble* data, std::size_t ny, std::size_t nx,
               std::size_t shift) {
  if (shift == 0 || nx == 0) return;
  util::ArenaScope scope(util::frame_arena());
  cdouble* row = util::frame_arena().alloc_array<cdouble>(nx);
  for (std::size_t y = 0; y < ny; ++y) {
    roll_line_into(row, data + y * nx, nx, shift);
    std::memcpy(data + y * nx, row, nx * sizeof(cdouble));
  }
}

/// Circular shift along y of an ny x nx array: whole rows move, so this
/// is a block rotate — no per-column gathers.
void roll_rows(cdouble* data, std::size_t ny, std::size_t nx,
               std::size_t shift) {
  roll_blocks(data, ny, nx, shift);
}

// ---- r2c helpers ----------------------------------------------------------

/// Row stage of a real-input 2D transform: every row of the real
/// ny x nx array `src` is Fourier-transformed into the complex array
/// `dst`, packing two real rows per complex FFT.  For rows x0, x1 the
/// transform T of x0 + i*x1 splits by Hermitian symmetry as
///   X0[k] = (T[k] + conj(T[(n-k)%n])) / 2
///   X1[k] = (T[k] - conj(T[(n-k)%n])) / (2i)
void r2c_rows(const double* src, cdouble* dst, std::size_t ny, std::size_t nx,
              const FftOptions& options) {
  if (ny == 0 || nx == 0) return;
  const std::shared_ptr<const Fft1D> plan = cached_plan(nx);
  const std::size_t pairs = ny / 2;
  const std::size_t jobs = pairs + (ny % 2);  // a trailing lone row, if odd
  run_indexed(options, jobs, [&](std::size_t r) {
    // Scratch from the WORKER's frame arena: each pool thread owns its
    // own, so there is no contention and repeated transforms reuse the
    // warm chunks without touching the general heap.
    util::ArenaScope scope(util::frame_arena());
    cdouble* packed = util::frame_arena().alloc_array<cdouble>(nx);
    if (r < pairs) {
      const double* row0 = src + (2 * r) * nx;
      const double* row1 = src + (2 * r + 1) * nx;
      for (std::size_t i = 0; i < nx; ++i) packed[i] = {row0[i], row1[i]};
      plan->forward(packed);
      cdouble* out0 = dst + (2 * r) * nx;
      cdouble* out1 = dst + (2 * r + 1) * nx;
      for (std::size_t k = 0; k < nx; ++k) {
        const cdouble t = packed[k];
        const cdouble tm = std::conj(packed[(nx - k) % nx]);
        out0[k] = 0.5 * (t + tm);
        const cdouble d = t - tm;  // X1 = d / (2i) = (-i/2) * d
        out1[k] = {0.5 * d.imag(), -0.5 * d.real()};
      }
    } else {
      // Odd ny: the last row rides alone as a zero-imaginary transform.
      const double* row = src + (ny - 1) * nx;
      for (std::size_t i = 0; i < nx; ++i) packed[i] = {row[i], 0.0};
      plan->forward(packed);
      std::memcpy(dst + (ny - 1) * nx, packed, nx * sizeof(cdouble));
    }
  });
}

/// Fill columns x > nx/2 of a 2D spectrum of a real input from the
/// Hermitian mirror F[y][x] = conj(F[(ny-y)%ny][(nx-x)%nx]).
void mirror_half_2d(cdouble* data, std::size_t ny, std::size_t nx,
                    const FftOptions& options) {
  const std::size_t half = nx / 2;
  run_indexed(options, ny, [&](std::size_t y) {
    cdouble* row = data + y * nx;
    const cdouble* mirror = data + ((ny - y) % ny) * nx;
    for (std::size_t x = half + 1; x < nx; ++x) {
      // x >= 1 here, so (nx - x) % nx == nx - x and stays <= nx/2:
      // the mirrored source column was transformed, never mirrored.
      POR_BOUNDS(nx - x, nx);
      row[x] = std::conj(mirror[nx - x]);
    }
  });
}

/// Rows + the columns x <= nx/2 of a real-input 2D transform.  Columns
/// x > nx/2 of `dst` are left unspecified — rfft2d_forward finishes
/// them with the 2D mirror, rfft3d_forward never reads them (it mirrors
/// in 3D after the z pass).
void r2c_plane_half(const double* src, cdouble* dst, std::size_t ny,
                    std::size_t nx, const FftOptions& options) {
  r2c_rows(src, dst, ny, nx, options);
  fft1d_lines(dst, nx / 2 + 1, ny, nx, /*inverse=*/false, options);
}

}  // namespace

// ---- 1D batch -------------------------------------------------------------

void fft1d_lines(cdouble* base, std::size_t count, std::size_t n,
                 std::size_t stride, bool inverse, const FftOptions& options) {
  POR_EXPECT(base != nullptr || count * n == 0,
             "fft1d_lines on null buffer: count =", count, "n =", n);
  if (count == 0 || n <= 1) return;  // length-1 DFTs are the identity
  // CONTRACT: line j occupies base + j + i*stride; adjacent lines must
  // not interleave past the stride or the tile gather would alias.
  POR_EXPECT(count <= stride, "line batch wider than its stride:", count, ">",
             stride);
  const std::shared_ptr<const Fft1D> plan = cached_plan(n);
  const std::size_t tiles = (count + kLineTile - 1) / kLineTile;
  run_indexed(options, tiles, [&](std::size_t tile) {
    const std::size_t j0 = tile * kLineTile;
    const std::size_t width = std::min(kLineTile, count - j0);
    // Gather `width` strided lines into contiguous rows of scratch
    // (scratch[t][i] = line (j0+t), element i): each inner iteration
    // reads one contiguous chunk of `width` complex values.  The tile
    // comes from the worker's frame arena — warm after the first tile,
    // zero general-heap traffic in the steady state.
    util::ArenaScope scope(util::frame_arena());
    cdouble* scratch = util::frame_arena().alloc_array<cdouble>(width * n);
    cdouble* tile_base = base + j0;
    for (std::size_t i = 0; i < n; ++i) {
      const cdouble* chunk = tile_base + i * stride;
      for (std::size_t t = 0; t < width; ++t) scratch[t * n + i] = chunk[t];
    }
    for (std::size_t t = 0; t < width; ++t) {
      if (inverse) {
        plan->inverse(scratch + t * n);
      } else {
        plan->forward(scratch + t * n);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      cdouble* chunk = tile_base + i * stride;
      for (std::size_t t = 0; t < width; ++t) chunk[t] = scratch[t * n + i];
    }
  });
}

// ---- 2D -------------------------------------------------------------------

namespace {

void fft2d(cdouble* data, std::size_t ny, std::size_t nx, bool inverse,
           const FftOptions& options) {
  count_transform("fft.2d.transforms", ny * nx);
  fft_rows(data, ny, nx, inverse, options);
  fft1d_lines(data, nx, ny, nx, inverse, options);
}

}  // namespace

void fft2d_forward(cdouble* data, std::size_t ny, std::size_t nx,
                   const FftOptions& options) {
  POR_EXPECT(data != nullptr || ny * nx == 0, "fft2d on null buffer");
  fft2d(data, ny, nx, /*inverse=*/false, options);
}

void fft2d_inverse(cdouble* data, std::size_t ny, std::size_t nx,
                   const FftOptions& options) {
  POR_EXPECT(data != nullptr || ny * nx == 0, "fft2d on null buffer");
  fft2d(data, ny, nx, /*inverse=*/true, options);
}

void rfft2d_forward(const double* src, cdouble* dst, std::size_t ny,
                    std::size_t nx, const FftOptions& options) {
  POR_EXPECT((src != nullptr && dst != nullptr) || ny * nx == 0,
             "rfft2d on null buffer");
  POR_EXPECT(static_cast<const void*>(src) != static_cast<const void*>(dst),
             "rfft2d src and dst must not alias");
  count_transform("fft.2d.transforms", ny * nx);
  if (ny * nx == 0) return;
  r2c_plane_half(src, dst, ny, nx, options);
  mirror_half_2d(dst, ny, nx, options);
}

// ---- 3D -------------------------------------------------------------------

namespace {

void fft3d(cdouble* data, std::size_t nz, std::size_t ny, std::size_t nx,
           bool inverse, const FftOptions& options) {
  count_transform("fft.3d.transforms", nz * ny * nx);
  // xy planes first (the paper's step a.3): every row of every plane in
  // one batched pass, then the y-columns plane by plane...
  fft_rows(data, nz * ny, nx, inverse, options);
  for (std::size_t z = 0; z < nz; ++z) {
    fft1d_lines(data + z * ny * nx, nx, ny, nx, inverse, options);
  }
  // ...then lines along z.  Line (y, x) starts at offset y*nx + x — the
  // whole pass is one batch of ny*nx adjacent lines of stride ny*nx.
  fft1d_lines(data, ny * nx, nz, ny * nx, inverse, options);
}

}  // namespace

void fft3d_forward(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx, const FftOptions& options) {
  POR_EXPECT(data != nullptr || nz * ny * nx == 0, "fft3d on null buffer");
  fft3d(data, nz, ny, nx, /*inverse=*/false, options);
}

void fft3d_inverse(cdouble* data, std::size_t nz, std::size_t ny,
                   std::size_t nx, const FftOptions& options) {
  POR_EXPECT(data != nullptr || nz * ny * nx == 0, "fft3d on null buffer");
  fft3d(data, nz, ny, nx, /*inverse=*/true, options);
}

void rfft3d_forward(const double* src, cdouble* dst, std::size_t nz,
                    std::size_t ny, std::size_t nx,
                    const FftOptions& options) {
  POR_EXPECT((src != nullptr && dst != nullptr) || nz * ny * nx == 0,
             "rfft3d on null buffer");
  POR_EXPECT(static_cast<const void*>(src) != static_cast<const void*>(dst),
             "rfft3d src and dst must not alias");
  count_transform("fft.3d.transforms", nz * ny * nx);
  if (nz * ny * nx == 0) return;
  const std::size_t plane = ny * nx;
  const std::size_t half = nx / 2;
  // r2c plane transforms: columns x > nx/2 of each plane stay
  // unspecified — the 3D mirror below derives them from the final
  // spectrum, so the per-plane mirror would be wasted work.
  for (std::size_t z = 0; z < nz; ++z) {
    r2c_plane_half(src + z * plane, dst + z * plane, ny, nx, options);
  }
  // z lines, only for x <= nx/2: per y, the lines x = 0..nx/2 start at
  // adjacent offsets y*nx + x with stride ny*nx.
  for (std::size_t y = 0; y < ny; ++y) {
    fft1d_lines(dst + y * nx, half + 1, nz, plane, /*inverse=*/false, options);
  }
  // 3D Hermitian mirror:
  //   F[z][y][x] = conj(F[(nz-z)%nz][(ny-y)%ny][(nx-x)%nx]), x > nx/2.
  run_indexed(options, nz, [&](std::size_t z) {
    const std::size_t mz = (nz - z) % nz;
    for (std::size_t y = 0; y < ny; ++y) {
      cdouble* row = dst + z * plane + y * nx;
      const cdouble* mirror = dst + mz * plane + ((ny - y) % ny) * nx;
      for (std::size_t x = half + 1; x < nx; ++x) {
        // x >= 1 here, so the mirrored column nx - x stays <= nx/2 —
        // always a column the z pass actually transformed.
        POR_BOUNDS(nx - x, nx);
        row[x] = std::conj(mirror[nx - x]);
      }
    }
  });
}

// ---- centering ------------------------------------------------------------

void fftshift2d(cdouble* data, std::size_t ny, std::size_t nx) {
  roll_cols(data, ny, nx, (nx + 1) / 2);
  roll_rows(data, ny, nx, (ny + 1) / 2);
}

void ifftshift2d(cdouble* data, std::size_t ny, std::size_t nx) {
  roll_cols(data, ny, nx, nx / 2);
  roll_rows(data, ny, nx, ny / 2);
}

void fftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                std::size_t nx) {
  for (std::size_t z = 0; z < nz; ++z) fftshift2d(data + z * ny * nx, ny, nx);
  // The z shift moves whole planes: one block rotate instead of the
  // seed's ny*nx strided line gathers.
  roll_blocks(data, nz, ny * nx, (nz + 1) / 2);
}

void ifftshift3d(cdouble* data, std::size_t nz, std::size_t ny,
                 std::size_t nx) {
  for (std::size_t z = 0; z < nz; ++z) ifftshift2d(data + z * ny * nx, ny, nx);
  roll_blocks(data, nz, ny * nx, nz / 2);
}

}  // namespace por::fft
