// por/fft/parallel_fft3d.hpp
//
// The paper's Step (a): a slab-decomposed, distributed-memory parallel
// 3D DFT that ends with every rank holding a full copy of the
// transformed volume.
//
//   a.1  the master holds the electron density map D (l^3 voxels)
//   a.2  the master scatters one z-slab of l/P xy-planes to each rank
//   a.3  each rank runs a 2D DFT on every xy-plane of its z-slab
//   a.4  a global exchange (all-to-all) re-slabs the data into y-slabs
//   a.5  each rank runs 1D DFTs along z inside its y-slab
//   a.6  an all-gather replicates the complete 3D DFT on every rank
//
// Replication (a.6) is the paper's deliberate space-for-communication
// trade-off (§6): each subsequent matching step can then cut arbitrary
// central sections without any further communication.
//
// v2: the per-rank compute stages run on the plan-cached batched
// engine of fftnd.hpp and accept FftOptions, so a rank can fan its
// slab across a thread pool (the paper's shared-memory SP2 node).
// All packing/unpacking moves whole x-rows with memcpy, the
// single-rank case short-circuits to the serial transform (zero
// communication), and the collective is bit-identical to the serial
// fft3d_* of the same volume: the same 1D plans transform the same
// lines in the same per-line operation order, regardless of rank count
// or thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "por/fft/fft1d.hpp"
#include "por/fft/fftnd.hpp"
#include "por/vmpi/comm.hpp"

namespace por::fft {

/// SPMD collective: every rank calls it; `full_on_root` is consumed on
/// rank 0 and ignored elsewhere.  `l` is the cube edge and must be
/// divisible by comm.size().  Returns the complete forward 3D DFT
/// (layout (z,y,x), unnormalized, origin at index 0) on every rank.
[[nodiscard]] std::vector<cdouble> parallel_fft3d_forward(
    vmpi::Comm& comm, std::vector<cdouble> full_on_root, std::size_t l,
    const FftOptions& options = {});

/// Inverse twin (includes the 1/l^3 factor, matching fft3d_inverse):
/// same slab pipeline, inverse line transforms.  parallel_fft3d_inverse
/// of parallel_fft3d_forward reproduces the input on every rank.
[[nodiscard]] std::vector<cdouble> parallel_fft3d_inverse(
    vmpi::Comm& comm, std::vector<cdouble> full_on_root, std::size_t l,
    const FftOptions& options = {});

}  // namespace por::fft
