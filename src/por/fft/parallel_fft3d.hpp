// por/fft/parallel_fft3d.hpp
//
// The paper's Step (a): a slab-decomposed, distributed-memory parallel
// 3D DFT that ends with every rank holding a full copy of the
// transformed volume.
//
//   a.1  the master holds the electron density map D (l^3 voxels)
//   a.2  the master scatters one z-slab of l/P xy-planes to each rank
//   a.3  each rank runs a 2D DFT on every xy-plane of its z-slab
//   a.4  a global exchange (all-to-all) re-slabs the data into y-slabs
//   a.5  each rank runs 1D DFTs along z inside its y-slab
//   a.6  an all-gather replicates the complete 3D DFT on every rank
//
// Replication (a.6) is the paper's deliberate space-for-communication
// trade-off (§6): each subsequent matching step can then cut arbitrary
// central sections without any further communication.
#pragma once

#include <cstddef>
#include <vector>

#include "por/fft/fft1d.hpp"
#include "por/vmpi/comm.hpp"

namespace por::fft {

/// SPMD collective: every rank calls it; `full_on_root` is consumed on
/// rank 0 and ignored elsewhere.  `l` is the cube edge and must be
/// divisible by comm.size().  Returns the complete forward 3D DFT
/// (layout (z,y,x), unnormalized, origin at index 0) on every rank.
[[nodiscard]] std::vector<cdouble> parallel_fft3d_forward(
    vmpi::Comm& comm, std::vector<cdouble> full_on_root, std::size_t l);

}  // namespace por::fft
