// por/fft/fft1d.hpp
//
// One-dimensional complex-to-complex discrete Fourier transforms.
//
// Conventions (used consistently across the library):
//   forward:  X[k] = sum_j x[j] * exp(-2*pi*i*j*k/N)      (unnormalized)
//   inverse:  x[j] = (1/N) * sum_k X[k] * exp(+2*pi*i*j*k/N)
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// every other length uses Bluestein's chirp-z algorithm so that the
// odd image sizes of the paper's data sets (331x331 Sindbis views,
// 511x511 reovirus views) transform exactly, not by padding.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace por::fft {

using cdouble = std::complex<double>;

/// Is n a power of two (n >= 1)?
[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// A reusable transform plan for a fixed length.
///
/// Plans precompute twiddle factors (and, for non-power-of-two lengths,
/// the Bluestein chirp and its transform).  A plan is immutable after
/// construction and safe to share between threads; execute methods
/// allocate their scratch locally.
// CONTRACT: the precomputed tables (bit-reversal, roots, Bluestein
// chirps) are sized for exactly this n — re-checked by POR_ENSURE in
// fft1d.cpp before each butterfly / convolution pass.
class Fft1D {
 public:
  /// Build a plan for length n (n >= 1).
  explicit Fft1D(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT of `data[0..n)` (stride 1).
  void forward(cdouble* data) const { transform(data, /*inverse=*/false); }

  /// In-place inverse DFT (includes the 1/N factor).
  void inverse(cdouble* data) const { transform(data, /*inverse=*/true); }

  /// Strided execution helpers: gather a line, transform, scatter back.
  void forward_strided(cdouble* base, std::size_t stride) const;
  void inverse_strided(cdouble* base, std::size_t stride) const;

 private:
  void transform(cdouble* data, bool inverse) const;

  /// Radix-2 path; requires is_pow2(n_).
  void pow2_forward(cdouble* data) const;

  /// Bluestein path (forward only; inverse goes through conjugation).
  void bluestein_forward(cdouble* data) const;

  std::size_t n_;
  bool pow2_;

  // Observability ("fft.1d.transforms" / "fft.1d.points") is resolved
  // per execute against the *calling* thread's current registry (see
  // obs_handles.hpp): plans are shared through the process-wide
  // PlanCache and must not pin a registry that can die before them.

  // Radix-2 tables (also used by the Bluestein inner transform).
  std::vector<std::size_t> bitrev_;    // bit-reversal permutation
  std::vector<cdouble> roots_;         // exp(-2*pi*i*k/n), k < n/2
  // Per-stage flattened twiddles for the dispatched butterfly kernel
  // (por/simd fft_stage): the stage with half h reads h CONTIGUOUS
  // complexes at offset h-1 (stage_tw_[h-1+k] = roots_[k*(n/(2h))]),
  // n-1 complexes total — the strided root walk of the historical loop
  // becomes a unit-stride load the wide tiers can vectorize.
  std::vector<cdouble> stage_tw_;

  // Bluestein tables.
  std::size_t m_ = 0;                  // inner power-of-two length >= 2n-1
  std::vector<cdouble> chirp_;         // exp(+i*pi*k^2/n), k < n
  std::vector<cdouble> chirp_fft_;     // forward FFT of the extended chirp
  std::unique_ptr<Fft1D> inner_;       // power-of-two plan of length m_
};

}  // namespace por::fft
