// por/fft/obs_handles.hpp  (internal)
//
// Thread-local, registry-keyed resolution of the FFT engine's obs
// counters.
//
// Why not resolve at plan-construction time (the PR-1 pattern)?  Plans
// are now *cached process-wide* (por/fft/plan_cache.hpp) and outlive
// any single vmpi rank registry: a plan built while rank 0's
// stack-allocated registry was current would keep a dangling Counter*
// after that registry dies, and would misattribute rank 1's transforms
// to rank 0.  Instead the execute paths resolve through this
// thread-local cache: one `current_registry().id()` compare per call in
// the steady state, a mutexed name lookup only when the thread's
// current registry changes.  Per-rank accounting therefore keeps
// working even though the plans themselves are shared.
#pragma once

#include <cstdint>

#include "por/obs/registry.hpp"

namespace por::fft::detail {

struct ObsHandles {
  std::uint64_t registry_id = 0;
  obs::Counter* transforms_1d = nullptr;  ///< "fft.1d.transforms"
  obs::Counter* points_1d = nullptr;      ///< "fft.1d.points"
  obs::Counter* nd_points = nullptr;      ///< "fft.nd.points"
  obs::Counter* plan_hits = nullptr;      ///< "fft.plan_cache.hits"
  obs::Counter* plan_misses = nullptr;    ///< "fft.plan_cache.misses"
  /// Transforms routed through the dispatched por/simd butterfly
  /// kernel ("simd.fft_dispatch"); which tier they hit is the process-
  /// wide "simd.isa" gauge.
  obs::Counter* simd_stage_dispatch = nullptr;
};

/// The calling thread's handles into its *current* registry,
/// re-resolved whenever a RegistryScope installs a different one.
inline ObsHandles& obs_handles() {
  thread_local ObsHandles handles;
  obs::MetricsRegistry& registry = obs::current_registry();
  if (handles.transforms_1d == nullptr || handles.registry_id != registry.id()) {
    handles.registry_id = registry.id();
    handles.transforms_1d = &registry.counter("fft.1d.transforms");
    handles.points_1d = &registry.counter("fft.1d.points");
    handles.nd_points = &registry.counter("fft.nd.points");
    handles.plan_hits = &registry.counter("fft.plan_cache.hits");
    handles.plan_misses = &registry.counter("fft.plan_cache.misses");
    handles.simd_stage_dispatch = &registry.counter("simd.fft_dispatch");
  }
  return handles;
}

}  // namespace por::fft::detail
