// por/em/rotate.hpp
//
// Real-space volume rotation by trilinear resampling, used by the
// symmetry detector (rotate the map by a candidate symmetry operation
// and correlate with itself) and by tests of the rotation conventions.
#pragma once

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"

namespace por::em {

/// Resample `vol` rotated by `r` about the center voxel floor(l/2):
/// out(p) = vol(R^-1 (p - c) + c).  Samples falling outside are zero.
[[nodiscard]] Volume<double> rotate_volume(const Volume<double>& vol,
                                           const Mat3& r);

}  // namespace por::em
