// por/em/quaternion.hpp
//
// Unit quaternions and rotation averaging.
//
// Orientation refinement fixes views only RELATIVE to the evolving
// map, so a refined set can carry a common drift rotation against the
// ground-truth frame.  Separating that drift from the per-view scatter
// (metrics::drift_corrected_orientation_errors) needs a mean rotation,
// which is computed here by sign-aligned quaternion averaging — exact
// for tightly clustered rotations, which is the drift regime.
#pragma once

#include <vector>

#include "por/em/orientation.hpp"

namespace por::em {

/// A quaternion (w + xi + yj + zk); rotations use unit quaternions.
struct Quaternion {
  double w = 1.0, x = 0.0, y = 0.0, z = 0.0;

  [[nodiscard]] double dot(const Quaternion& o) const {
    return w * o.w + x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Quaternion normalized() const {
    const double n = norm();
    return n > 0.0 ? Quaternion{w / n, x / n, y / n, z / n} : Quaternion{};
  }
  [[nodiscard]] Quaternion negated() const { return {-w, -x, -y, -z}; }
};

/// Quaternion of a rotation matrix (Shepperd's method, numerically
/// safe for all rotation angles).
[[nodiscard]] Quaternion quaternion_from_matrix(const Mat3& r);

/// Rotation matrix of a (unit) quaternion.
[[nodiscard]] Mat3 matrix_from_quaternion(const Quaternion& q);

/// Chordal-mean rotation of a set: average the sign-aligned
/// quaternions and renormalize.  Accurate when the rotations cluster
/// within a few tens of degrees; throws on an empty input.
[[nodiscard]] Mat3 mean_rotation(const std::vector<Mat3>& rotations);

}  // namespace por::em
