// por/em/noise.hpp
//
// Noise model for the simulated microscope.  Cryo-EM views are
// extremely noisy (shot noise + solvent); the reproduction adds white
// Gaussian noise calibrated to a target signal-to-noise ratio so that
// the "less sensitive to noise" claim of the Fourier-space matcher can
// be tested quantitatively (bench: ablation_noise).
#pragma once

#include "por/em/grid.hpp"
#include "por/util/rng.hpp"

namespace por::em {

/// Variance of the pixel values about their mean.
[[nodiscard]] double image_variance(const Image<double>& img);

/// Add white Gaussian noise so that var(signal)/var(noise) == snr.
/// A non-positive or infinite snr leaves the image untouched.
void add_gaussian_noise(Image<double>& img, double snr, util::Rng& rng);

/// Normalize to zero mean / unit variance (standard preprocessing for
/// boxed particles; a constant image is left unchanged).
void normalize(Image<double>& img);

}  // namespace por::em
