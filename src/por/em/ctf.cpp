#include "por/em/ctf.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace por::em {

double electron_wavelength_a(double voltage_kv) {
  // lambda = 12.2639 / sqrt(V + 0.97845e-6 * V^2), V in volts.
  const double v = voltage_kv * 1e3;
  return 12.2639 / std::sqrt(v + 0.97845e-6 * v * v);
}

double ctf_value(const CtfParams& params, double s) {
  const double lambda = electron_wavelength_a(params.voltage_kv);
  const double cs_a = params.cs_mm * 1e7;  // mm -> Angstrom
  const double s2 = s * s;
  const double chi = std::numbers::pi * lambda * params.defocus_a * s2 -
                     0.5 * std::numbers::pi * cs_a * lambda * lambda * lambda *
                         s2 * s2;
  const double a = params.amplitude_contrast;
  double value = -(std::sqrt(1.0 - a * a) * std::sin(chi) + a * std::cos(chi));
  if (params.b_factor_a2 > 0.0) {
    value *= std::exp(-params.b_factor_a2 * s2 / 4.0);
  }
  return value;
}

namespace {

/// Visit every pixel of a centered spectrum with its spatial frequency
/// magnitude in 1/Angstrom.
template <typename Fn>
void for_each_frequency(Image<cdouble>& spec, const CtfParams& params,
                        Fn&& fn) {
  const std::size_t ny = spec.ny(), nx = spec.nx();
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  for (std::size_t y = 0; y < ny; ++y) {
    const double fy = (static_cast<double>(y) - cy) /
                      (static_cast<double>(ny) * params.pixel_size_a);
    for (std::size_t x = 0; x < nx; ++x) {
      const double fx = (static_cast<double>(x) - cx) /
                        (static_cast<double>(nx) * params.pixel_size_a);
      fn(spec(y, x), std::sqrt(fx * fx + fy * fy));
    }
  }
}

}  // namespace

void apply_ctf(Image<cdouble>& centered_spectrum, const CtfParams& params) {
  for_each_frequency(centered_spectrum, params,
                     [&](cdouble& value, double s) { value *= ctf_value(params, s); });
}

void correct_ctf(Image<cdouble>& centered_spectrum, const CtfParams& params,
                 CtfCorrection mode, double snr) {
  if (mode == CtfCorrection::kWiener && snr <= 0.0) {
    throw std::invalid_argument("correct_ctf: Wiener filter needs snr > 0");
  }
  for_each_frequency(
      centered_spectrum, params, [&](cdouble& value, double s) {
        const double c = ctf_value(params, s);
        switch (mode) {
          case CtfCorrection::kPhaseFlip:
            if (c < 0.0) value = -value;
            break;
          case CtfCorrection::kWiener:
            value *= c / (c * c + 1.0 / snr);
            break;
        }
      });
}

}  // namespace por::em
