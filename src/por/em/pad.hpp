// por/em/pad.hpp
//
// Zero-padding (oversampling) helpers.
//
// Central sections are cut out of the 3D DFT by trilinear
// interpolation (paper step f).  The spectrum of an object that fills
// its box varies on the scale of ONE Fourier sample, which linear
// interpolation cannot follow; embedding the particle in a box
// `factor` times larger first spreads the same information over
// `factor` times more samples and makes the interpolation accurate
// (the standard oversampling trick of Fourier-space EM packages).
// All Fourier-domain matching and reconstruction in this library works
// at a pad factor of kDefaultPad unless stated otherwise.
#pragma once

#include <cstddef>

#include "por/em/grid.hpp"

namespace por::em {

inline constexpr std::size_t kDefaultPad = 2;

/// Embed `img` centered in an (l*factor)^2 zero field, where l is the
/// input edge.  The particle center voxel floor(l/2) lands exactly on
/// the padded center voxel floor(L/2).
[[nodiscard]] Image<double> pad_image(const Image<double>& img,
                                      std::size_t factor = kDefaultPad);

/// Embed `vol` centered in an (l*factor)^3 zero field.
[[nodiscard]] Volume<double> pad_volume(const Volume<double>& vol,
                                        std::size_t factor = kDefaultPad);

/// Cut the centered l x l window back out of a padded image.
[[nodiscard]] Image<double> crop_image(const Image<double>& padded,
                                       std::size_t l);

/// Cut the centered l^3 brick back out of a padded volume.
[[nodiscard]] Volume<double> crop_volume(const Volume<double>& padded,
                                         std::size_t l);

}  // namespace por::em
