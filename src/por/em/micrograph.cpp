#include "por/em/micrograph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "por/em/noise.hpp"
#include "por/em/projection.hpp"

namespace por::em {

Micrograph synthesize_micrograph(const BlobModel& model,
                                 const MicrographSpec& spec) {
  if (spec.box == 0 || spec.box > spec.width || spec.box > spec.height) {
    throw std::invalid_argument("synthesize_micrograph: bad box size");
  }
  util::Rng rng(spec.seed);
  Micrograph mic;
  mic.pixels = Image<double>(spec.height, spec.width, 0.0);
  mic.ctf = spec.ctf;

  // Place particles with a minimum spacing of one box edge so the
  // boxer can separate them (rejection sampling with a retry cap).
  const double margin = static_cast<double>(spec.box) / 2.0;
  const double min_dist2 =
      static_cast<double>(spec.box) * static_cast<double>(spec.box);
  int attempts = 0;
  while (mic.truth.size() < spec.particle_count) {
    if (++attempts > 10000) {
      throw std::runtime_error(
          "synthesize_micrograph: could not place all particles without "
          "overlap; enlarge the micrograph or reduce particle_count");
    }
    const double cx =
        rng.uniform(margin, static_cast<double>(spec.width) - margin);
    const double cy =
        rng.uniform(margin, static_cast<double>(spec.height) - margin);
    bool clash = false;
    for (const auto& p : mic.truth) {
      const double dx = p.center_x - cx, dy = p.center_y - cy;
      if (dx * dx + dy * dy < min_dist2) {
        clash = true;
        break;
      }
    }
    if (clash) continue;

    PlacedParticle placed;
    placed.center_x = cx;
    placed.center_y = cy;
    double theta, phi;
    rng.sphere_point(theta, phi);
    placed.orientation = Orientation{rad2deg(theta), rad2deg(phi),
                                     rng.uniform(0.0, 360.0)};
    mic.truth.push_back(placed);

    // Render the projection in its own box (analytic, with the
    // sub-pixel offset of the true center), optionally pass it through
    // the CTF, and paste it into the micrograph.
    const double px = std::floor(cx), py = std::floor(cy);
    Image<double> view = model.project_analytic(
        spec.box, placed.orientation, cx - px, cy - py);
    if (spec.apply_ctf) {
      Image<cdouble> spectrum = centered_fft2(view);
      apply_ctf(spectrum, spec.ctf);
      view = centered_ifft2(spectrum);
    }
    const long half = static_cast<long>(spec.box) / 2;
    const long ox = static_cast<long>(px) - half;
    const long oy = static_cast<long>(py) - half;
    for (std::size_t y = 0; y < spec.box; ++y) {
      const long my = oy + static_cast<long>(y);
      if (my < 0 || my >= static_cast<long>(spec.height)) continue;
      for (std::size_t x = 0; x < spec.box; ++x) {
        const long mx = ox + static_cast<long>(x);
        if (mx < 0 || mx >= static_cast<long>(spec.width)) continue;
        mic.pixels(static_cast<std::size_t>(my),
                   static_cast<std::size_t>(mx)) += view(y, x);
      }
    }
  }

  add_gaussian_noise(mic.pixels, spec.snr, rng);
  return mic;
}

Image<double> box_particle(const Image<double>& micrograph, double cx,
                           double cy, std::size_t box) {
  Image<double> out(box, box, 0.0);
  const long half = static_cast<long>(box) / 2;
  const long ox = static_cast<long>(std::floor(cx)) - half;
  const long oy = static_cast<long>(std::floor(cy)) - half;
  for (std::size_t y = 0; y < box; ++y) {
    const long my = oy + static_cast<long>(y);
    if (my < 0 || my >= static_cast<long>(micrograph.ny())) continue;
    for (std::size_t x = 0; x < box; ++x) {
      const long mx = ox + static_cast<long>(x);
      if (mx < 0 || mx >= static_cast<long>(micrograph.nx())) continue;
      out(y, x) = micrograph(static_cast<std::size_t>(my),
                             static_cast<std::size_t>(mx));
    }
  }
  return out;
}

std::vector<std::pair<double, double>> detect_particles(
    const Image<double>& micrograph, double radius, std::size_t count) {
  // Correlate with a soft disk: score(x, y) = sum of pixels within
  // `radius`, computed with a summed-area table over a square
  // approximation for speed, then refined by true disk summation at
  // candidate maxima.
  const std::size_t ny = micrograph.ny(), nx = micrograph.nx();
  const long r = std::max<long>(1, static_cast<long>(std::lround(radius)));

  // Summed-area table (1-based).
  std::vector<double> sat((ny + 1) * (nx + 1), 0.0);
  auto sat_at = [&](std::size_t y, std::size_t x) -> double& {
    return sat[y * (nx + 1) + x];
  };
  for (std::size_t y = 1; y <= ny; ++y) {
    for (std::size_t x = 1; x <= nx; ++x) {
      sat_at(y, x) = micrograph(y - 1, x - 1) + sat_at(y - 1, x) +
                     sat_at(y, x - 1) - sat_at(y - 1, x - 1);
    }
  }
  auto box_sum = [&](long y0, long x0, long y1, long x1) {
    y0 = std::clamp<long>(y0, 0, static_cast<long>(ny));
    x0 = std::clamp<long>(x0, 0, static_cast<long>(nx));
    y1 = std::clamp<long>(y1, 0, static_cast<long>(ny));
    x1 = std::clamp<long>(x1, 0, static_cast<long>(nx));
    return sat_at(y1, x1) - sat_at(y0, x1) - sat_at(y1, x0) + sat_at(y0, x0);
  };

  Image<double> score(ny, nx, 0.0);
  for (long y = 0; y < static_cast<long>(ny); ++y) {
    for (long x = 0; x < static_cast<long>(nx); ++x) {
      score(y, x) = box_sum(y - r, x - r, y + r + 1, x + r + 1);
    }
  }

  // Greedy non-maximum suppression: repeatedly take the global max and
  // zero a 2r-radius neighbourhood around it.
  std::vector<std::pair<double, double>> centers;
  const long suppress = 2 * r;
  for (std::size_t k = 0; k < count; ++k) {
    double best = -1e300;
    long by = -1, bx = -1;
    for (long y = r; y < static_cast<long>(ny) - r; ++y) {
      for (long x = r; x < static_cast<long>(nx) - r; ++x) {
        if (score(y, x) > best) {
          best = score(y, x);
          by = y;
          bx = x;
        }
      }
    }
    if (by < 0) break;
    // Sub-pixel center: intensity-weighted centroid of the matched-
    // filter score in a +-r window around the peak (scores are offset
    // by the local minimum so the weights are non-negative).
    double weight_sum = 0.0, cx = 0.0, cy = 0.0, local_min = 1e300;
    for (long y = std::max<long>(0, by - r);
         y <= std::min<long>(static_cast<long>(ny) - 1, by + r); ++y) {
      for (long x = std::max<long>(0, bx - r);
           x <= std::min<long>(static_cast<long>(nx) - 1, bx + r); ++x) {
        local_min = std::min(local_min, score(y, x));
      }
    }
    for (long y = std::max<long>(0, by - r);
         y <= std::min<long>(static_cast<long>(ny) - 1, by + r); ++y) {
      for (long x = std::max<long>(0, bx - r);
           x <= std::min<long>(static_cast<long>(nx) - 1, bx + r); ++x) {
        const double w = score(y, x) - local_min;
        weight_sum += w;
        cx += w * static_cast<double>(x);
        cy += w * static_cast<double>(y);
      }
    }
    if (weight_sum > 0.0) {
      centers.emplace_back(cx / weight_sum, cy / weight_sum);
    } else {
      centers.emplace_back(static_cast<double>(bx), static_cast<double>(by));
    }
    for (long y = std::max<long>(0, by - suppress);
         y <= std::min<long>(static_cast<long>(ny) - 1, by + suppress); ++y) {
      for (long x = std::max<long>(0, bx - suppress);
           x <= std::min<long>(static_cast<long>(nx) - 1, bx + suppress);
           ++x) {
        score(y, x) = -1e300;
      }
    }
  }
  return centers;
}

std::vector<std::pair<double, double>> refine_centers_by_template(
    const Image<double>& micrograph,
    const std::vector<std::pair<double, double>>& picks,
    const Image<double>& reference, int search_radius_px) {
  if (reference.nx() != reference.ny() || reference.nx() == 0) {
    throw std::invalid_argument(
        "refine_centers_by_template: reference must be square");
  }
  const std::size_t box = reference.nx();
  std::vector<std::pair<double, double>> refined;
  refined.reserve(picks.size());
  for (const auto& [px, py] : picks) {
    double best_corr = -2.0;
    std::pair<double, double> best{px, py};
    for (int dy = -search_radius_px; dy <= search_radius_px; ++dy) {
      for (int dx = -search_radius_px; dx <= search_radius_px; ++dx) {
        const double cx = px + dx, cy = py + dy;
        const Image<double> window = box_particle(micrograph, cx, cy, box);
        double corr = 0.0;
        {
          // Normalized cross-correlation (zero-mean).
          const double n = static_cast<double>(window.size());
          double mw = 0.0, mr = 0.0;
          for (std::size_t i = 0; i < window.size(); ++i) {
            mw += window.storage()[i];
            mr += reference.storage()[i];
          }
          mw /= n;
          mr /= n;
          double cross = 0.0, ww = 0.0, rr = 0.0;
          for (std::size_t i = 0; i < window.size(); ++i) {
            const double a = window.storage()[i] - mw;
            const double b = reference.storage()[i] - mr;
            cross += a * b;
            ww += a * a;
            rr += b * b;
          }
          const double denom = std::sqrt(ww * rr);
          corr = denom > 0.0 ? cross / denom : 0.0;
        }
        if (corr > best_corr) {
          best_corr = corr;
          best = {cx, cy};
        }
      }
    }
    refined.push_back(best);
  }
  return refined;
}

}  // namespace por::em
