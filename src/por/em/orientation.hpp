// por/em/orientation.hpp
//
// Orientations of projection views.
//
// The paper (Fig. 1a) characterizes a view by three angles: (theta,
// phi) give the direction of the projection axis in spherical
// coordinates and omega is the in-plane rotation about that axis.  We
// realize this as the ZYZ Euler convention
//
//     R(theta, phi, omega) = Rz(phi) * Ry(theta) * Rz(omega)
//
// so that the view (projection) direction is R * z_hat and the central
// section through the 3D DFT is spanned by R * x_hat and R * y_hat.
#pragma once

#include <array>
#include <cmath>
#include <numbers>

namespace por::em {

/// A 3-vector with the handful of operations the geometry code needs.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  friend Vec3 operator+(const Vec3& a, const Vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(double s, const Vec3& v) {
    return {s * v.x, s * v.y, s * v.z};
  }
  [[nodiscard]] double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

/// Row-major 3x3 rotation matrix.
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  [[nodiscard]] static Mat3 identity() { return {}; }

  [[nodiscard]] double operator()(int r, int c) const { return m[r * 3 + c]; }
  double& operator()(int r, int c) { return m[r * 3 + c]; }

  [[nodiscard]] Vec3 operator*(const Vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  [[nodiscard]] Mat3 operator*(const Mat3& o) const {
    Mat3 out;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        double sum = 0.0;
        for (int k = 0; k < 3; ++k) sum += (*this)(r, k) * o(k, c);
        out(r, c) = sum;
      }
    }
    return out;
  }

  [[nodiscard]] Mat3 transposed() const {
    Mat3 out;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) out(r, c) = (*this)(c, r);
    }
    return out;
  }

  [[nodiscard]] double trace() const { return m[0] + m[4] + m[8]; }

  /// Rotation about +z by `angle` radians.
  [[nodiscard]] static Mat3 rot_z(double angle) {
    const double c = std::cos(angle), s = std::sin(angle);
    Mat3 r;
    r.m = {c, -s, 0, s, c, 0, 0, 0, 1};
    return r;
  }

  /// Rotation about +y by `angle` radians.
  [[nodiscard]] static Mat3 rot_y(double angle) {
    const double c = std::cos(angle), s = std::sin(angle);
    Mat3 r;
    r.m = {c, 0, s, 0, 1, 0, -s, 0, c};
    return r;
  }

  /// Rotation about +x by `angle` radians.
  [[nodiscard]] static Mat3 rot_x(double angle) {
    const double c = std::cos(angle), s = std::sin(angle);
    Mat3 r;
    r.m = {1, 0, 0, 0, c, -s, 0, s, c};
    return r;
  }

  /// Rotation of `angle` radians about an arbitrary (unit) axis.
  [[nodiscard]] static Mat3 axis_angle(const Vec3& axis, double angle);
};

/// Degrees <-> radians.
[[nodiscard]] constexpr double deg2rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}
[[nodiscard]] constexpr double rad2deg(double rad) {
  return rad * 180.0 / std::numbers::pi;
}

/// The (theta, phi, omega) triple of the paper, stored in DEGREES
/// because every resolution schedule and table in the paper is
/// expressed in degrees (1, 0.1, 0.01, 0.002).
struct Orientation {
  double theta = 0.0;  ///< colatitude of the view axis, [0, 180]
  double phi = 0.0;    ///< azimuth of the view axis, [0, 360)
  double omega = 0.0;  ///< in-plane rotation, [0, 360)

  bool operator==(const Orientation&) const = default;
};

/// Rotation matrix of an orientation: Rz(phi) * Ry(theta) * Rz(omega).
[[nodiscard]] Mat3 rotation_matrix(const Orientation& o);

/// Recover (theta, phi, omega) in degrees from a rotation matrix
/// (theta in [0,180], phi/omega in [0,360)); inverse of
/// rotation_matrix up to the usual gimbal ambiguity at theta = 0/180,
/// where phi is set to 0 and omega carries the whole in-plane angle.
[[nodiscard]] Orientation euler_from_matrix(const Mat3& r);

/// Direction of the projection axis (R * z_hat).
[[nodiscard]] Vec3 view_axis(const Orientation& o);

/// Geodesic distance between two orientations in degrees: the angle of
/// the relative rotation Ra^T * Rb, in [0, 180].
[[nodiscard]] double geodesic_deg(const Orientation& a, const Orientation& b);

/// Geodesic distance between two rotation matrices in degrees.
[[nodiscard]] double geodesic_deg(const Mat3& a, const Mat3& b);

}  // namespace por::em
