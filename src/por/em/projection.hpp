// por/em/projection.hpp
//
// Projection geometry: centered Fourier transforms, real-space
// projection, and central-section extraction from the 3D DFT.
//
// Centering convention.  Objects (particles) are centered on the voxel
// c = floor(l/2) of their lattice.  A "centered" transform measures
// phases about c and stores the zero frequency at index c, so the
// spectrum of a centered object is smooth and safe to interpolate —
// cutting an oblique section through the raw (origin-at-index-0) DFT
// of a centered object would interpolate a (-1)^k-modulated array and
// destroy the slice.  All Fourier-domain matching in the library works
// on centered spectra.
// v2 notes: the forward transforms run through the real-to-complex
// engine (fft::rfft2d_forward / rfft3d_forward — the inputs here are
// always real images/volumes), and the centering itself is one fused
// out-of-place pass: gather-with-shift multiplied by precomputed
// per-axis phase factors, instead of fftshift followed by a per-pixel
// sin/cos phase pass.  Every function takes fft::FftOptions so callers
// can fan the transform across a thread pool.
#pragma once

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/fft/fftnd.hpp"

namespace por::em {

// ---- centered transforms ---------------------------------------------------

/// Forward 2D DFT with phases about the image center and the zero
/// frequency at (ny/2, nx/2).
[[nodiscard]] Image<cdouble> centered_fft2(const Image<double>& img,
                                           const fft::FftOptions& options = {});

/// Inverse of centered_fft2 (returns the real part).
[[nodiscard]] Image<double> centered_ifft2(const Image<cdouble>& spec,
                                           const fft::FftOptions& options = {});

/// Forward 3D DFT with phases about the volume center and the zero
/// frequency at (nz/2, ny/2, nx/2).
[[nodiscard]] Volume<cdouble> centered_fft3(const Volume<double>& vol,
                                            const fft::FftOptions& options = {});

/// Inverse of centered_fft3 (returns the real part).
[[nodiscard]] Volume<double> centered_ifft3(const Volume<cdouble>& spec,
                                            const fft::FftOptions& options = {});

/// Turn a raw forward 3D DFT (origin at index 0, e.g. the output of
/// the slab-parallel transform) into the centered convention:
/// fftshift + center-phase.  centered_fft3(v) ==
/// centered_from_raw_fft3(fft3d_forward(to_complex(v))) up to the
/// ~1e-15 rounding between the r2c and c2c paths.
[[nodiscard]] Volume<cdouble> centered_from_raw_fft3(Volume<cdouble> raw);

// ---- projection ------------------------------------------------------------

/// Real-space projection of `vol` along the view axis of `o`: the view
/// plane is spanned by R*x_hat (image x) and R*y_hat (image y) and the
/// ray direction is R*z_hat; trilinear sampling, `steps_per_voxel`
/// samples per voxel of ray length.  The projection image has the same
/// edge length as the (cubic) volume.
[[nodiscard]] Image<double> project_volume(const Volume<double>& vol,
                                           const Orientation& o,
                                           int steps_per_voxel = 2);

/// Cut the central section with orientation `o` out of a centered 3D
/// spectrum (paper step f): sample point for image frequency (ku, kv)
/// is q = ku * (R x_hat) + kv * (R y_hat), trilinear interpolation,
/// zero outside.  The result is the centered 2D spectrum that the
/// projection with orientation `o` would have.
[[nodiscard]] Image<cdouble> extract_central_slice(
    const Volume<cdouble>& centered_spectrum, const Orientation& o);

/// Multiply a centered 2D spectrum by the phase ramp that translates
/// the underlying image by (dx, dy) pixels (positive dx moves the image
/// toward +x).  This is how step (k) re-centers views without touching
/// pixel data.
void apply_translation_phase(Image<cdouble>& centered_spectrum, double dx,
                             double dy);

/// One-pass out-of-place variant: write `in` multiplied by the
/// (dx, dy) translation phase ramp into `out` (resized to match `in`
/// as needed; `out` may alias `in`).  The refiner uses this to
/// re-center its matching spectrum into a reused buffer instead of
/// copying the whole image and then mutating it.
void translate_phase_into(Image<cdouble>& out, const Image<cdouble>& in,
                          double dx, double dy);

}  // namespace por::em
