// por/em/symmetry.hpp
//
// Rotational point groups of virus capsids.
//
// The paper's algorithm makes *no* symmetry assumption, but the
// reproduction needs the groups for three purposes:
//   1. building symmetric phantoms (icosahedral shells etc.),
//   2. the "old method" baseline, whose search is restricted to the
//      icosahedral asymmetric unit (Fig. 1b),
//   3. symmetry-aware orientation-error metrics (a refined orientation
//      that differs from ground truth by a symmetry operation is
//      correct), and the SymmetryDetector in por::core.
#pragma once

#include <string>
#include <vector>

#include "por/em/orientation.hpp"

namespace por::em {

/// A finite group of proper rotations with a human-readable name.
class SymmetryGroup {
 public:
  /// The trivial group {I} (asymmetric particle).
  [[nodiscard]] static SymmetryGroup identity();
  /// Cyclic group C_n: n-fold rotation about +z.
  [[nodiscard]] static SymmetryGroup cyclic(int n);
  /// Dihedral group D_n: C_n plus n 2-fold axes normal to +z (order 2n).
  [[nodiscard]] static SymmetryGroup dihedral(int n);
  /// Rotational tetrahedral group T (order 12).
  [[nodiscard]] static SymmetryGroup tetrahedral();
  /// Rotational octahedral group O (order 24).
  [[nodiscard]] static SymmetryGroup octahedral();
  /// Rotational icosahedral group I (order 60), in the 2-fold-axes-
  /// along-x,y,z setting used by the structural-biology convention of
  /// the paper's Fig. 1b.
  [[nodiscard]] static SymmetryGroup icosahedral();

  /// Parse "C1", "c5", "D7", "T", "O", "I".
  [[nodiscard]] static SymmetryGroup from_name(const std::string& name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t order() const { return ops_.size(); }
  [[nodiscard]] const std::vector<Mat3>& operations() const { return ops_; }

  /// Smallest angle (degrees) by which any non-identity element
  /// rotates; 360 for the trivial group.  Used by the detector to set
  /// discrimination thresholds.
  [[nodiscard]] double min_rotation_deg() const;

 private:
  SymmetryGroup(std::string name, std::vector<Mat3> ops)
      : name_(std::move(name)), ops_(std::move(ops)) {}

  std::string name_;
  std::vector<Mat3> ops_;
};

/// Group closure of a generator set (with the identity added); used by
/// the factories and exposed for tests of the group axioms.
[[nodiscard]] std::vector<Mat3> close_group(std::vector<Mat3> generators,
                                            std::size_t max_order = 256);

/// Geodesic orientation error that treats symmetry mates as equal:
///   min over g in G of angle(Ra, Rb * g).
[[nodiscard]] double symmetry_aware_geodesic_deg(const Orientation& a,
                                                 const Orientation& b,
                                                 const SymmetryGroup& group);

/// The icosahedral asymmetric unit of Fig. 1b: the spherical triangle
/// whose corners are the two adjacent 5-fold axes at (theta=90,
/// phi=+-31.72) and the 3-fold axis at (theta=69.09, phi=0); the
/// 2-fold axis at (90, 0) lies on its edge.
class IcosahedralAsymmetricUnit {
 public:
  IcosahedralAsymmetricUnit();

  /// Is the (unit) direction inside the triangle (edges inclusive)?
  [[nodiscard]] bool contains(const Vec3& direction) const;

  /// View directions on a theta/phi grid with `step_deg` spacing
  /// restricted to the asymmetric unit (omega = 0).  At 3 degrees this
  /// yields on the order of the paper's 115 calculated views.
  [[nodiscard]] std::vector<Orientation> grid(double step_deg) const;

  [[nodiscard]] const Vec3& fivefold_a() const { return v5a_; }
  [[nodiscard]] const Vec3& fivefold_b() const { return v5b_; }
  [[nodiscard]] const Vec3& threefold() const { return v3_; }
  [[nodiscard]] Vec3 twofold() const { return Vec3{1, 0, 0}; }

 private:
  Vec3 v5a_, v5b_, v3_;
  Vec3 n_ab_, n_bc_, n_ca_;  // inward edge normals
};

}  // namespace por::em
