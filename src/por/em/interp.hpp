// por/em/interp.hpp
//
// Bilinear / trilinear interpolation on complex lattices, used to cut
// central sections through the 3D DFT (paper step f: "construct a set
// of 2D-cuts of the 3D-DFT of the electron density map by interpolation
// in the 3D Fourier domain").  Samples outside the lattice are zero —
// consistent with truncating the transform at the resolution sphere.
#pragma once

#include <cmath>

#include "por/em/grid.hpp"

namespace por::em {

/// Bilinear sample of `img` at fractional position (y, x); zero outside.
[[nodiscard]] inline cdouble interp_bilinear(const Image<cdouble>& img,
                                             double y, double x) {
  const double fy = std::floor(y), fx = std::floor(x);
  const long iy = static_cast<long>(fy), ix = static_cast<long>(fx);
  const double ty = y - fy, tx = x - fx;
  const long ny = static_cast<long>(img.ny()), nx = static_cast<long>(img.nx());

  auto sample = [&](long yy, long xx) -> cdouble {
    if (yy < 0 || yy >= ny || xx < 0 || xx >= nx) return {0.0, 0.0};
    return img(static_cast<std::size_t>(yy), static_cast<std::size_t>(xx));
  };

  const cdouble c00 = sample(iy, ix), c01 = sample(iy, ix + 1);
  const cdouble c10 = sample(iy + 1, ix), c11 = sample(iy + 1, ix + 1);
  return (1.0 - ty) * ((1.0 - tx) * c00 + tx * c01) +
         ty * ((1.0 - tx) * c10 + tx * c11);
}

/// Trilinear sample of `vol` at fractional position (z, y, x); zero outside.
[[nodiscard]] inline cdouble interp_trilinear(const Volume<cdouble>& vol,
                                              double z, double y, double x) {
  const double fz = std::floor(z), fy = std::floor(y), fx = std::floor(x);
  const long iz = static_cast<long>(fz), iy = static_cast<long>(fy),
             ix = static_cast<long>(fx);
  const double tz = z - fz, ty = y - fy, tx = x - fx;
  const long nz = static_cast<long>(vol.nz()), ny = static_cast<long>(vol.ny()),
             nx = static_cast<long>(vol.nx());

  auto sample = [&](long zz, long yy, long xx) -> cdouble {
    if (zz < 0 || zz >= nz || yy < 0 || yy >= ny || xx < 0 || xx >= nx) {
      return {0.0, 0.0};
    }
    return vol(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
               static_cast<std::size_t>(xx));
  };

  cdouble acc{0.0, 0.0};
  for (int dz = 0; dz < 2; ++dz) {
    const double wz = dz ? tz : 1.0 - tz;
    if (wz == 0.0) continue;
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy ? ty : 1.0 - ty;
      if (wy == 0.0) continue;
      for (int dx = 0; dx < 2; ++dx) {
        const double wx = dx ? tx : 1.0 - tx;
        if (wx == 0.0) continue;
        acc += wz * wy * wx * sample(iz + dz, iy + dy, ix + dx);
      }
    }
  }
  return acc;
}

/// Trilinear sample of a real volume (same convention).
[[nodiscard]] inline double interp_trilinear(const Volume<double>& vol,
                                             double z, double y, double x) {
  const double fz = std::floor(z), fy = std::floor(y), fx = std::floor(x);
  const long iz = static_cast<long>(fz), iy = static_cast<long>(fy),
             ix = static_cast<long>(fx);
  const double tz = z - fz, ty = y - fy, tx = x - fx;
  const long nz = static_cast<long>(vol.nz()), ny = static_cast<long>(vol.ny()),
             nx = static_cast<long>(vol.nx());

  auto sample = [&](long zz, long yy, long xx) -> double {
    if (zz < 0 || zz >= nz || yy < 0 || yy >= ny || xx < 0 || xx >= nx) {
      return 0.0;
    }
    return vol(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
               static_cast<std::size_t>(xx));
  };

  double acc = 0.0;
  for (int dz = 0; dz < 2; ++dz) {
    const double wz = dz ? tz : 1.0 - tz;
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy ? ty : 1.0 - ty;
      for (int dx = 0; dx < 2; ++dx) {
        const double wx = dx ? tx : 1.0 - tx;
        const double w = wz * wy * wx;
        if (w != 0.0) acc += w * sample(iz + dz, iy + dy, ix + dx);
      }
    }
  }
  return acc;
}

}  // namespace por::em
