// por/em/interp.hpp
//
// Bilinear / trilinear interpolation on complex lattices, used to cut
// central sections through the 3D DFT (paper step f: "construct a set
// of 2D-cuts of the 3D-DFT of the electron density map by interpolation
// in the 3D Fourier domain").  Samples outside the lattice are zero —
// consistent with truncating the transform at the resolution sphere.
#pragma once

#include <cmath>

#if defined(__SSE2__) || defined(_M_X64)
#define POR_INTERP_SSE2 1
#include <emmintrin.h>
#endif

#include "por/em/grid.hpp"
#include "por/util/contracts.hpp"

namespace por::em {

/// Bilinear sample of `img` at fractional position (y, x); zero outside.
[[nodiscard]] inline cdouble interp_bilinear(const Image<cdouble>& img,
                                             double y, double x) {
  const double fy = std::floor(y), fx = std::floor(x);
  const long iy = static_cast<long>(fy), ix = static_cast<long>(fx);
  const double ty = y - fy, tx = x - fx;
  const long ny = static_cast<long>(img.ny()), nx = static_cast<long>(img.nx());

  auto sample = [&](long yy, long xx) -> cdouble {
    if (yy < 0 || yy >= ny || xx < 0 || xx >= nx) return {0.0, 0.0};
    return img(static_cast<std::size_t>(yy), static_cast<std::size_t>(xx));
  };

  const cdouble c00 = sample(iy, ix), c01 = sample(iy, ix + 1);
  const cdouble c10 = sample(iy + 1, ix), c11 = sample(iy + 1, ix + 1);
  return (1.0 - ty) * ((1.0 - tx) * c00 + tx * c01) +
         ty * ((1.0 - tx) * c10 + tx * c11);
}

/// Trilinear sample of `vol` at fractional position (z, y, x); zero outside.
[[nodiscard]] inline cdouble interp_trilinear(const Volume<cdouble>& vol,
                                              double z, double y, double x) {
  const double fz = std::floor(z), fy = std::floor(y), fx = std::floor(x);
  const long iz = static_cast<long>(fz), iy = static_cast<long>(fy),
             ix = static_cast<long>(fx);
  const double tz = z - fz, ty = y - fy, tx = x - fx;
  const long nz = static_cast<long>(vol.nz()), ny = static_cast<long>(vol.ny()),
             nx = static_cast<long>(vol.nx());

  auto sample = [&](long zz, long yy, long xx) -> cdouble {
    if (zz < 0 || zz >= nz || yy < 0 || yy >= ny || xx < 0 || xx >= nx) {
      return {0.0, 0.0};
    }
    return vol(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
               static_cast<std::size_t>(xx));
  };

  cdouble acc{0.0, 0.0};
  for (int dz = 0; dz < 2; ++dz) {
    const double wz = dz ? tz : 1.0 - tz;
    // por-lint: allow(float-eq) exact-zero weight skip: t and 1-t are
    // exactly 0.0 on lattice points, and skipping a zero term is a
    // bit-exact no-op.  Same for the two loops below.
    if (wz == 0.0) continue;  // por-lint: allow(float-eq) see above
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy ? ty : 1.0 - ty;
      if (wy == 0.0) continue;  // por-lint: allow(float-eq) exact-zero skip
      for (int dx = 0; dx < 2; ++dx) {
        const double wx = dx ? tx : 1.0 - tx;
        if (wx == 0.0) continue;  // por-lint: allow(float-eq) exact-zero skip
        acc += wz * wy * wx * sample(iz + dz, iy + dy, ix + dx);
      }
    }
  }
  return acc;
}

/// Branch-free trilinear sample of a split-complex lattice at
/// fractional position (z, y, x).
///
/// CONTRACT: z, y, x must be non-negative and floor(z), floor(y),
/// floor(x) must each lie in [0, lat.edge - 1] (checked by POR_EXPECT
/// in interp_trilinear_interior).  The caller establishes this with a
/// radius-vs-lattice guard hoisted OUT of the pixel loop (e.g. the
/// matcher proves every annulus sample satisfies it from
/// r_max <= floor(edge/2) - 1 once per construction).  Under that
/// contract the 2x2x2 fetch needs no per-sample bounds checks: a +1
/// neighbor index that leaves the logical cube lands in the lattice's
/// zero pad, reproducing interp_trilinear's "zero outside" convention
/// exactly (weights are combined in the same order, ((wz*wy)*wx), and
/// zero-weight terms contribute exact +-0.0; only the final summation
/// tree differs, a last-ulp effect well inside the 1e-12 equivalence
/// budget).
struct SplitSample {
  double re = 0.0;
  double im = 0.0;
};

/// Trilinear fetch of an already-resolved cell: `base` is the flat
/// index of the (iz, iy, ix) corner, (tz, ty, tx) the fractional
/// offsets in [0, 1).  This is the fetch half of
/// interp_trilinear_interior, split out so callers that software-
/// pipeline the address computation (matcher block prefetch) do not
/// recompute it.  Identical arithmetic, bit-for-bit.
[[nodiscard]] inline SplitSample interp_trilinear_cell(
    const SplitComplexLattice& lat, std::size_t base, double tz, double ty,
    double tx) {
  // The +1,+1,+1 corner is the largest index the fetch touches; if it
  // is inside the padded plane, all eight corners are.
  POR_BOUNDS(base + lat.stride_z + lat.stride_y + 1, lat.re.size());

  // Weight products in the reference's association order ((wz*wy)*wx).
  const double wz0 = 1.0 - tz, wz1 = tz;
  const double wy0 = 1.0 - ty, wy1 = ty;
  const double wx0 = 1.0 - tx, wx1 = tx;
  const double w00 = wz0 * wy0, w01 = wz0 * wy1;
  const double w10 = wz1 * wy0, w11 = wz1 * wy1;

  // The four (iy, iz) row bases are shared between the re and im plane
  // fetches and between the packed and scalar bodies: each row's
  // (x, x+1) corner pair sits at offsets 0 and 1 from its base, so
  // only these four offsets are ever computed — the odd corners are
  // base+1 within a row, never separate index arithmetic.
  const std::size_t i000 = base;
  const std::size_t i010 = base + lat.stride_y;
  const std::size_t i100 = base + lat.stride_z;
  const std::size_t i110 = base + lat.stride_z + lat.stride_y;
  const double* re = lat.re.data();
  const double* im = lat.im.data();
  const double* re00 = re + i000;
  const double* re01 = re + i010;
  const double* re10 = re + i100;
  const double* re11 = re + i110;
  const double* im00 = im + i000;
  const double* im01 = im + i010;
  const double* im10 = im + i100;
  const double* im11 = im + i110;
  SplitSample s;
#if POR_INTERP_SSE2
  // The (x, x+1) corner pairs are contiguous in each plane, so the
  // eight corners of a plane are four unaligned 16-byte loads.  Packing
  // (wx0, wx1) into one register turns the weighting into four packed
  // multiply-adds per plane — half the loads and roughly half the FLOP
  // count of the scalar expansion.  Per-corner products are identical
  // to the scalar form ((wz*wy)*wx multiplied into the sample); only
  // the final summation association differs (even/odd-corner lanes
  // summed last), a last-ulp effect inside the 1e-12 budget.  On exact
  // lattice points every weight is exactly 1.0 or 0.0, so the result
  // is still bit-exact.
  const __m128d wx = _mm_set_pd(wx1, wx0);  // lane0 = wx0, lane1 = wx1
  const __m128d w00v = _mm_mul_pd(_mm_set1_pd(w00), wx);
  const __m128d w01v = _mm_mul_pd(_mm_set1_pd(w01), wx);
  const __m128d w10v = _mm_mul_pd(_mm_set1_pd(w10), wx);
  const __m128d w11v = _mm_mul_pd(_mm_set1_pd(w11), wx);
  const __m128d re_acc =
      _mm_add_pd(_mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(re00)),
                            _mm_mul_pd(w01v, _mm_loadu_pd(re01))),
                 _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(re10)),
                            _mm_mul_pd(w11v, _mm_loadu_pd(re11))));
  const __m128d im_acc =
      _mm_add_pd(_mm_add_pd(_mm_mul_pd(w00v, _mm_loadu_pd(im00)),
                            _mm_mul_pd(w01v, _mm_loadu_pd(im01))),
                 _mm_add_pd(_mm_mul_pd(w10v, _mm_loadu_pd(im10)),
                            _mm_mul_pd(w11v, _mm_loadu_pd(im11))));
  // One packed horizontal reduction for both components:
  // lane0 = re_even + re_odd, lane1 = im_even + im_odd — the same
  // (even-lane + odd-lane) sums as two scalar extracts would compute.
  const __m128d packed = _mm_add_pd(_mm_unpacklo_pd(re_acc, im_acc),
                                    _mm_unpackhi_pd(re_acc, im_acc));
  s.re = _mm_cvtsd_f64(packed);
  s.im = _mm_cvtsd_f64(_mm_unpackhi_pd(packed, packed));
#else
  const double w000 = w00 * wx0, w001 = w00 * wx1;
  const double w010 = w01 * wx0, w011 = w01 * wx1;
  const double w100 = w10 * wx0, w101 = w10 * wx1;
  const double w110 = w11 * wx0, w111 = w11 * wx1;
  s.re = ((w000 * re00[0] + w001 * re00[1]) +
          (w010 * re01[0] + w011 * re01[1])) +
         ((w100 * re10[0] + w101 * re10[1]) +
          (w110 * re11[0] + w111 * re11[1]));
  s.im = ((w000 * im00[0] + w001 * im00[1]) +
          (w010 * im01[0] + w011 * im01[1])) +
         ((w100 * im10[0] + w101 * im10[1]) +
          (w110 * im11[0] + w111 * im11[1]));
#endif
  return s;
}

[[nodiscard]] inline SplitSample interp_trilinear_interior(
    const SplitComplexLattice& lat, double z, double y, double x) {
  // Truncation-floor domain: the contract guarantees z, y, x >= 0, so
  // integer truncation IS floor — bit-identical to std::floor on the
  // contract domain, but it compiles to a single cvttsd2si instead of
  // a libm call on baseline x86-64 (no roundsd), which matters at ~3
  // floors per annulus pixel.  A negative coordinate would truncate
  // TOWARD zero (not down) and silently sample the wrong cell.
  POR_EXPECT(z >= 0.0 && y >= 0.0 && x >= 0.0,
             "truncation-floor domain violated: z =", z, "y =", y, "x =", x);
  const std::size_t iz = static_cast<std::size_t>(z),
                    iy = static_cast<std::size_t>(y),
                    ix = static_cast<std::size_t>(x);
  // Lattice-edge guard: the base cell must sit inside the logical
  // cube; the +1 neighbours then land at most in the zero pad.
  POR_EXPECT(iz < lat.edge && iy < lat.edge && ix < lat.edge,
             "base cell outside lattice: iz =", iz, "iy =", iy, "ix =", ix,
             "edge =", lat.edge);
  const double fz = static_cast<double>(iz), fy = static_cast<double>(iy),
               fx = static_cast<double>(ix);
  const std::size_t base = iz * lat.stride_z + iy * lat.stride_y + ix;
  return interp_trilinear_cell(lat, base, z - fz, y - fy, x - fx);
}

/// Trilinear sample of a real volume (same convention).
[[nodiscard]] inline double interp_trilinear(const Volume<double>& vol,
                                             double z, double y, double x) {
  const double fz = std::floor(z), fy = std::floor(y), fx = std::floor(x);
  const long iz = static_cast<long>(fz), iy = static_cast<long>(fy),
             ix = static_cast<long>(fx);
  const double tz = z - fz, ty = y - fy, tx = x - fx;
  const long nz = static_cast<long>(vol.nz()), ny = static_cast<long>(vol.ny()),
             nx = static_cast<long>(vol.nx());

  auto sample = [&](long zz, long yy, long xx) -> double {
    if (zz < 0 || zz >= nz || yy < 0 || yy >= ny || xx < 0 || xx >= nx) {
      return 0.0;
    }
    return vol(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
               static_cast<std::size_t>(xx));
  };

  double acc = 0.0;
  for (int dz = 0; dz < 2; ++dz) {
    const double wz = dz ? tz : 1.0 - tz;
    for (int dy = 0; dy < 2; ++dy) {
      const double wy = dy ? ty : 1.0 - ty;
      for (int dx = 0; dx < 2; ++dx) {
        const double wx = dx ? tx : 1.0 - tx;
        const double w = wz * wy * wx;
        // por-lint: allow(float-eq) exact-zero weight skip (bit-exact)
        if (w != 0.0) acc += w * sample(iz + dz, iy + dy, ix + dx);
      }
    }
  }
  return acc;
}

}  // namespace por::em
