#include "por/em/phantom.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "por/util/rng.hpp"

namespace por::em {

void BlobModel::add_symmetrized(const Blob& blob, const SymmetryGroup& group) {
  for (const auto& op : group.operations()) {
    blobs_.push_back(Blob{op * blob.center, blob.sigma, blob.amplitude});
  }
}

BlobModel BlobModel::rotated(const Mat3& r) const {
  BlobModel out;
  for (const auto& b : blobs_) {
    out.add(Blob{r * b.center, b.sigma, b.amplitude});
  }
  return out;
}

Volume<double> BlobModel::rasterize(std::size_t l) const {
  Volume<double> vol(l, 0.0);
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const long nl = static_cast<long>(l);
  for (const auto& b : blobs_) {
    const double reach = 4.0 * b.sigma;
    const double bx = b.center.x + c, by = b.center.y + c, bz = b.center.z + c;
    const long z0 = std::max<long>(0, static_cast<long>(std::ceil(bz - reach)));
    const long z1 = std::min<long>(nl - 1, static_cast<long>(std::floor(bz + reach)));
    const long y0 = std::max<long>(0, static_cast<long>(std::ceil(by - reach)));
    const long y1 = std::min<long>(nl - 1, static_cast<long>(std::floor(by + reach)));
    const long x0 = std::max<long>(0, static_cast<long>(std::ceil(bx - reach)));
    const long x1 = std::min<long>(nl - 1, static_cast<long>(std::floor(bx + reach)));
    const double inv2s2 = 1.0 / (2.0 * b.sigma * b.sigma);
    for (long z = z0; z <= z1; ++z) {
      const double dz = static_cast<double>(z) - bz;
      for (long y = y0; y <= y1; ++y) {
        const double dy = static_cast<double>(y) - by;
        for (long x = x0; x <= x1; ++x) {
          const double dx = static_cast<double>(x) - bx;
          const double r2 = dx * dx + dy * dy + dz * dz;
          vol(static_cast<std::size_t>(z), static_cast<std::size_t>(y),
              static_cast<std::size_t>(x)) +=
              b.amplitude * std::exp(-r2 * inv2s2);
        }
      }
    }
  }
  return vol;
}

Image<double> BlobModel::project_analytic(std::size_t l, const Orientation& o,
                                          double dx, double dy) const {
  Image<double> img(l, l, 0.0);
  const Mat3 r = rotation_matrix(o);
  const Vec3 eu = r * Vec3{1, 0, 0};
  const Vec3 ev = r * Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const long nl = static_cast<long>(l);
  for (const auto& b : blobs_) {
    // Blob center in view-plane coordinates, then to pixel coordinates
    // of a particle whose center sits at (c + dx, c + dy).
    const double u = eu.dot(b.center) + c + dx;
    const double v = ev.dot(b.center) + c + dy;
    const double line_amp =
        b.amplitude * b.sigma * std::sqrt(2.0 * std::numbers::pi);
    const double reach = 4.0 * b.sigma;
    const long y0 = std::max<long>(0, static_cast<long>(std::ceil(v - reach)));
    const long y1 = std::min<long>(nl - 1, static_cast<long>(std::floor(v + reach)));
    const long x0 = std::max<long>(0, static_cast<long>(std::ceil(u - reach)));
    const long x1 = std::min<long>(nl - 1, static_cast<long>(std::floor(u + reach)));
    const double inv2s2 = 1.0 / (2.0 * b.sigma * b.sigma);
    for (long y = y0; y <= y1; ++y) {
      const double py = static_cast<double>(y) - v;
      for (long x = x0; x <= x1; ++x) {
        const double px = static_cast<double>(x) - u;
        img(static_cast<std::size_t>(y), static_cast<std::size_t>(x)) +=
            line_amp * std::exp(-(px * px + py * py) * inv2s2);
      }
    }
  }
  return img;
}

namespace {

/// Random unit vector inside the icosahedral asymmetric unit, so the
/// symmetrized copies do not collide with each other.
Vec3 random_asym_unit_direction(util::Rng& rng,
                                const IcosahedralAsymmetricUnit& au) {
  for (;;) {
    double theta, phi;
    rng.sphere_point(theta, phi);
    const Vec3 dir{std::sin(theta) * std::cos(phi),
                   std::sin(theta) * std::sin(phi), std::cos(theta)};
    if (au.contains(dir)) return dir;
  }
}

}  // namespace

BlobModel make_sindbis_like(const PhantomSpec& spec) {
  util::Rng rng(spec.seed);
  const auto icos = SymmetryGroup::icosahedral();
  const IcosahedralAsymmetricUnit au;
  const double l = static_cast<double>(spec.l);
  BlobModel model;
  // Outer glycoprotein shell (E1/E2 spikes) and inner nucleocapsid.
  const double shell_radii[2] = {0.36 * l, 0.24 * l};
  const double sigmas[2] = {0.035 * l, 0.030 * l};
  for (int shell = 0; shell < 2; ++shell) {
    for (int subunit = 0; subunit < 3; ++subunit) {
      const Vec3 dir = random_asym_unit_direction(rng, au);
      const double radius = shell_radii[shell] * rng.uniform(0.95, 1.05);
      model.add_symmetrized(
          Blob{radius * dir, sigmas[shell], shell == 0 ? 1.0 : 0.8}, icos);
    }
  }
  // A weak, smooth genome ball (RNA density is disordered in real
  // alphavirus maps; one broad blob keeps it featureless).
  model.add(Blob{{0, 0, 0}, 0.12 * l, 0.35});
  return model;
}

BlobModel make_reo_like(const PhantomSpec& spec) {
  util::Rng rng(spec.seed + 1);
  const auto icos = SymmetryGroup::icosahedral();
  const IcosahedralAsymmetricUnit au;
  const double l = static_cast<double>(spec.l);
  BlobModel model;
  // Double capsid: sigma-3/mu-1 outer shell and lambda inner shell.
  const double shell_radii[2] = {0.40 * l, 0.27 * l};
  const double sigmas[2] = {0.030 * l, 0.032 * l};
  for (int shell = 0; shell < 2; ++shell) {
    for (int subunit = 0; subunit < 4; ++subunit) {
      const Vec3 dir = random_asym_unit_direction(rng, au);
      const double radius = shell_radii[shell] * rng.uniform(0.96, 1.04);
      model.add_symmetrized(
          Blob{radius * dir, sigmas[shell], shell == 0 ? 1.0 : 0.9}, icos);
    }
  }
  // Lambda-2 turrets on the twelve 5-fold axes: symmetrize one blob on
  // a 5-fold axis (its orbit under I is exactly the 12 axes).
  const Vec3 fivefold = au.fivefold_a();
  model.add_symmetrized(Blob{0.45 * l * fivefold, 0.04 * l, 1.2}, icos);
  // Dense transcriptase-related core.
  model.add(Blob{{0, 0, 0}, 0.10 * l, 0.6});
  return model;
}

BlobModel make_asymmetric(const PhantomSpec& spec, std::size_t blob_count) {
  util::Rng rng(spec.seed + 2);
  const double l = static_cast<double>(spec.l);
  BlobModel model;
  for (std::size_t i = 0; i < blob_count; ++i) {
    // Rejection-sample inside a ball of radius 0.38*l.
    Vec3 p;
    do {
      p = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    } while (p.norm() > 1.0);
    model.add(Blob{0.38 * l * p, rng.uniform(0.025, 0.05) * l,
                   rng.uniform(0.6, 1.2)});
  }
  return model;
}

BlobModel make_with_symmetry(const PhantomSpec& spec,
                             const SymmetryGroup& group,
                             std::size_t blobs_per_unit) {
  util::Rng rng(spec.seed + 3);
  const double l = static_cast<double>(spec.l);
  BlobModel model;
  for (std::size_t i = 0; i < blobs_per_unit; ++i) {
    Vec3 p;
    do {
      p = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    } while (p.norm() > 1.0 || p.norm() < 0.3);
    model.add_symmetrized(Blob{0.36 * l * p, rng.uniform(0.03, 0.05) * l,
                               rng.uniform(0.7, 1.1)},
                          group);
  }
  return model;
}

BlobModel make_phage_like(const PhantomSpec& spec) {
  const double l = static_cast<double>(spec.l);
  PhantomSpec head_spec = spec;
  head_spec.l = spec.l;  // head sized like a (smaller) sindbis shell
  BlobModel model;
  // Icosahedral head, shifted toward +z.
  BlobModel head = make_with_symmetry(head_spec, SymmetryGroup::icosahedral(), 2);
  for (Blob b : head.blobs()) {
    b.center = 0.55 * b.center + Vec3{0, 0, 0.18 * l};
    model.add(b);
  }
  // C6 tail along -z.
  const auto c6 = SymmetryGroup::cyclic(6);
  for (int ring = 0; ring < 4; ++ring) {
    const double z = -(0.05 + 0.09 * ring) * l;
    model.add_symmetrized(
        Blob{{0.06 * l, 0.0, z}, 0.025 * l, 0.9}, c6);
  }
  // Baseplate blob.
  model.add(Blob{{0, 0, -0.42 * l}, 0.05 * l, 1.0});
  return model;
}

}  // namespace por::em
