// por/em/grid.hpp
//
// Dense 2D and 3D lattices: the experimental views (Image) and the
// electron density map / its DFT (Volume).  Row-major storage matching
// the FFT module's layout.
//
// CONTRACT: every operator() subscript must lie inside the raster
// (y < ny, x < nx, z < nz) — enforced by POR_BOUNDS in instrumented
// builds, free in release.  at() additionally throws in every build.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "por/util/contracts.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace por::em {

using cdouble = std::complex<double>;

/// A dense ny x nx raster, stored row-major: (y, x) -> y*nx + x.
template <typename T>
class Image {
 public:
  Image() = default;
  Image(std::size_t ny, std::size_t nx, T fill = T{})
      : ny_(ny), nx_(nx), data_(ny * nx, fill) {}

  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t y, std::size_t x) {
    POR_BOUNDS(y, ny_);
    POR_BOUNDS(x, nx_);
    return data_[y * nx_ + x];
  }
  [[nodiscard]] const T& operator()(std::size_t y, std::size_t x) const {
    POR_BOUNDS(y, ny_);
    POR_BOUNDS(x, nx_);
    return data_[y * nx_ + x];
  }

  /// Checked access; throws std::out_of_range.
  [[nodiscard]] T& at(std::size_t y, std::size_t x) {
    if (y >= ny_ || x >= nx_) throw std::out_of_range("Image::at");
    return data_[y * nx_ + x];
  }
  [[nodiscard]] const T& at(std::size_t y, std::size_t x) const {
    if (y >= ny_ || x >= nx_) throw std::out_of_range("Image::at");
    return data_[y * nx_ + x];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const Image&) const = default;

 private:
  std::size_t ny_ = 0;
  std::size_t nx_ = 0;
  std::vector<T> data_;
};

/// A dense nz x ny x nx brick, stored row-major: (z,y,x) -> (z*ny+y)*nx+x.
template <typename T>
class Volume {
 public:
  Volume() = default;
  Volume(std::size_t nz, std::size_t ny, std::size_t nx, T fill = T{})
      : nz_(nz), ny_(ny), nx_(nx), data_(nz * ny * nx, fill) {}

  /// Cube of edge l.
  explicit Volume(std::size_t l, T fill = T{}) : Volume(l, l, l, fill) {}

  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool is_cube() const { return nz_ == ny_ && ny_ == nx_; }

  [[nodiscard]] T& operator()(std::size_t z, std::size_t y, std::size_t x) {
    POR_BOUNDS(z, nz_);
    POR_BOUNDS(y, ny_);
    POR_BOUNDS(x, nx_);
    return data_[(z * ny_ + y) * nx_ + x];
  }
  [[nodiscard]] const T& operator()(std::size_t z, std::size_t y,
                                    std::size_t x) const {
    POR_BOUNDS(z, nz_);
    POR_BOUNDS(y, ny_);
    POR_BOUNDS(x, nx_);
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] T& at(std::size_t z, std::size_t y, std::size_t x) {
    if (z >= nz_ || y >= ny_ || x >= nx_) throw std::out_of_range("Volume::at");
    return data_[(z * ny_ + y) * nx_ + x];
  }
  [[nodiscard]] const T& at(std::size_t z, std::size_t y,
                            std::size_t x) const {
    if (z >= nz_ || y >= ny_ || x >= nx_) throw std::out_of_range("Volume::at");
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const Volume&) const = default;

 private:
  std::size_t nz_ = 0;
  std::size_t ny_ = 0;
  std::size_t nx_ = 0;
  std::vector<T> data_;
};

namespace detail {

/// Ask the kernel to back a plane with 2 MiB pages.  A matching
/// samples a rotated plane through the lattice, touching hundreds of
/// distinct 4 KiB pages per call — at L=64 pad=2 the lattice totals
/// ~34 MiB and the page-walk stalls rival the data misses.  Huge pages
/// cut the TLB footprint ~500x.  Best effort: MADV_COLLAPSE (Linux
/// 6.1+) collapses the already-populated range synchronously;
/// MADV_HUGEPAGE is the async fallback.  Failure is harmless and
/// ignored — correctness never depends on page size.
inline void advise_huge_pages(double* data, std::size_t count) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
#ifndef MADV_COLLAPSE
#define POR_MADV_COLLAPSE 25
#else
#define POR_MADV_COLLAPSE MADV_COLLAPSE
#endif
  constexpr std::uintptr_t kHuge = 2u << 20;
  if (count * sizeof(double) < 2 * kHuge) return;
  const std::uintptr_t begin = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t end = begin + count * sizeof(double);
  const std::uintptr_t lo = (begin + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t hi = end & ~(kHuge - 1);
  if (lo >= hi) return;
  void* p = reinterpret_cast<void*>(lo);
  if (madvise(p, hi - lo, POR_MADV_COLLAPSE) != 0) {
    (void)madvise(p, hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)count;
#endif
}

}  // namespace detail

/// Split-complex (SoA) copy of a cubic complex volume, padded by one
/// zero plane/row/column per axis.
///
/// Purpose: the matcher's trilinear inner loop.  Interleaved
/// std::complex storage forces the compiler to shuffle re/im pairs;
/// splitting the spectrum into two contiguous double planes gives a
/// straight FMA-vectorizable gather.  The +1 zero padding makes the
/// *branch-free* 2x2x2 fetch exact and memory-safe for any base cell
/// (iz, iy, ix) in [0, edge-1]^3: a neighbor index that steps off the
/// lattice lands in the zero pad, which is precisely the "samples
/// outside the lattice are zero" convention of por/em/interp.hpp.
///
/// Layout: (z, y, x) -> (z * (edge+1) + y) * (edge+1) + x over
/// (edge+1)^3 doubles per component.
///
/// CONTRACT: re and im each hold exactly (edge+1)^3 doubles and every
/// element beyond the logical [0, edge)^3 cube is 0.0 (POR_ENSURE in
/// the constructor); the branch-free fetch's memory-safety proof in
/// por/em/interp.hpp starts from this pad.
struct SplitComplexLattice {
  std::size_t edge = 0;      ///< logical cube edge (n)
  std::size_t stride_y = 0;  ///< edge + 1
  std::size_t stride_z = 0;  ///< (edge + 1)^2
  std::vector<double> re;    ///< (edge+1)^3, zero beyond [0, edge)^3
  std::vector<double> im;

  SplitComplexLattice() = default;

  /// Build from a cubic complex volume (throws on non-cube input).
  explicit SplitComplexLattice(const Volume<cdouble>& vol) {
    if (!vol.is_cube()) {
      throw std::invalid_argument("SplitComplexLattice: volume must be cubic");
    }
    edge = vol.nx();
    stride_y = edge + 1;
    stride_z = stride_y * stride_y;
    re.assign(stride_z * stride_y, 0.0);
    im.assign(stride_z * stride_y, 0.0);
    const cdouble* src = vol.data();
    for (std::size_t z = 0; z < edge; ++z) {
      for (std::size_t y = 0; y < edge; ++y) {
        const std::size_t dst_row = z * stride_z + y * stride_y;
        const std::size_t src_row = (z * edge + y) * edge;
        for (std::size_t x = 0; x < edge; ++x) {
          re[dst_row + x] = src[src_row + x].real();
          im[dst_row + x] = src[src_row + x].imag();
        }
      }
    }
    POR_ENSURE(re.size() == stride_z * stride_y &&
                   im.size() == stride_z * stride_y,
               "padded plane size mismatch: edge =", edge);
    detail::advise_huge_pages(re.data(), re.size());
    detail::advise_huge_pages(im.data(), im.size());
  }

  [[nodiscard]] bool empty() const { return re.empty(); }
};

/// Interleaved (re, im) copy of a cubic complex volume with the same
/// one-cell zero padding as SplitComplexLattice.
///
/// Purpose: the AVX2/AVX-512 matcher tiers (por/simd).  With re and im
/// adjacent in memory, one 256-bit load covers BOTH components of an
/// (x, x+1) corner pair, so a trilinear cell costs 4 corner loads
/// instead of the split layout's 8 — half the cache lines, half the
/// prefetches.  The split layout remains the SSE2-tier (and scalar
/// reference) representation.
///
/// Layout: cell (z, y, x) -> complex index (z*(edge+1) + y)*(edge+1)+x;
/// data[2*i] = re, data[2*i + 1] = im.  stride_y/stride_z are in
/// complex CELLS and numerically equal to the split lattice's strides.
///
/// CONTRACT: data holds exactly 2*(edge+1)^3 doubles and every cell
/// beyond the logical [0, edge)^3 cube is (0, 0) — the same pad that
/// makes the branch-free 2x2x2 fetch memory-safe (see
/// SplitComplexLattice and por/em/interp.hpp).
struct InterleavedComplexLattice {
  std::size_t edge = 0;      ///< logical cube edge (n)
  std::size_t stride_y = 0;  ///< edge + 1, in complex cells
  std::size_t stride_z = 0;  ///< (edge + 1)^2, in complex cells
  std::vector<double> data;  ///< 2*(edge+1)^3 interleaved doubles

  InterleavedComplexLattice() = default;

  /// Build from a cubic complex volume (throws on non-cube input).
  explicit InterleavedComplexLattice(const Volume<cdouble>& vol) {
    if (!vol.is_cube()) {
      throw std::invalid_argument(
          "InterleavedComplexLattice: volume must be cubic");
    }
    edge = vol.nx();
    stride_y = edge + 1;
    stride_z = stride_y * stride_y;
    data.assign(2 * stride_z * stride_y, 0.0);
    const cdouble* src = vol.data();
    for (std::size_t z = 0; z < edge; ++z) {
      for (std::size_t y = 0; y < edge; ++y) {
        const std::size_t dst_row = 2 * (z * stride_z + y * stride_y);
        const std::size_t src_row = (z * edge + y) * edge;
        for (std::size_t x = 0; x < edge; ++x) {
          data[dst_row + 2 * x] = src[src_row + x].real();
          data[dst_row + 2 * x + 1] = src[src_row + x].imag();
        }
      }
    }
    POR_ENSURE(data.size() == 2 * stride_z * stride_y,
               "padded lattice size mismatch: edge =", edge);
    detail::advise_huge_pages(data.data(), data.size());
  }

  /// Number of complex cells (the bounds unit for cell indices).
  [[nodiscard]] std::size_t cells() const { return stride_z * stride_y; }

  [[nodiscard]] bool empty() const { return data.empty(); }
};

/// Promote a real raster to complex (imaginary part zero).
template <typename T>
[[nodiscard]] Image<cdouble> to_complex(const Image<T>& in) {
  Image<cdouble> out(in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = cdouble(static_cast<double>(in.storage()[i]), 0.0);
  }
  return out;
}

template <typename T>
[[nodiscard]] Volume<cdouble> to_complex(const Volume<T>& in) {
  Volume<cdouble> out(in.nz(), in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = cdouble(static_cast<double>(in.storage()[i]), 0.0);
  }
  return out;
}

/// Extract the real part of a complex raster.
[[nodiscard]] inline Image<double> real_part(const Image<cdouble>& in) {
  Image<double> out(in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = in.storage()[i].real();
  }
  return out;
}

[[nodiscard]] inline Volume<double> real_part(const Volume<cdouble>& in) {
  Volume<double> out(in.nz(), in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = in.storage()[i].real();
  }
  return out;
}

}  // namespace por::em
