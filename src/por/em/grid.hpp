// por/em/grid.hpp
//
// Dense 2D and 3D lattices: the experimental views (Image) and the
// electron density map / its DFT (Volume).  Row-major storage matching
// the FFT module's layout; bounds are checked in debug builds via at().
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace por::em {

using cdouble = std::complex<double>;

/// A dense ny x nx raster, stored row-major: (y, x) -> y*nx + x.
template <typename T>
class Image {
 public:
  Image() = default;
  Image(std::size_t ny, std::size_t nx, T fill = T{})
      : ny_(ny), nx_(nx), data_(ny * nx, fill) {}

  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t y, std::size_t x) {
    assert(y < ny_ && x < nx_);
    return data_[y * nx_ + x];
  }
  [[nodiscard]] const T& operator()(std::size_t y, std::size_t x) const {
    assert(y < ny_ && x < nx_);
    return data_[y * nx_ + x];
  }

  /// Checked access; throws std::out_of_range.
  [[nodiscard]] T& at(std::size_t y, std::size_t x) {
    if (y >= ny_ || x >= nx_) throw std::out_of_range("Image::at");
    return data_[y * nx_ + x];
  }
  [[nodiscard]] const T& at(std::size_t y, std::size_t x) const {
    if (y >= ny_ || x >= nx_) throw std::out_of_range("Image::at");
    return data_[y * nx_ + x];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const Image&) const = default;

 private:
  std::size_t ny_ = 0;
  std::size_t nx_ = 0;
  std::vector<T> data_;
};

/// A dense nz x ny x nx brick, stored row-major: (z,y,x) -> (z*ny+y)*nx+x.
template <typename T>
class Volume {
 public:
  Volume() = default;
  Volume(std::size_t nz, std::size_t ny, std::size_t nx, T fill = T{})
      : nz_(nz), ny_(ny), nx_(nx), data_(nz * ny * nx, fill) {}

  /// Cube of edge l.
  explicit Volume(std::size_t l, T fill = T{}) : Volume(l, l, l, fill) {}

  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool is_cube() const { return nz_ == ny_ && ny_ == nx_; }

  [[nodiscard]] T& operator()(std::size_t z, std::size_t y, std::size_t x) {
    assert(z < nz_ && y < ny_ && x < nx_);
    return data_[(z * ny_ + y) * nx_ + x];
  }
  [[nodiscard]] const T& operator()(std::size_t z, std::size_t y,
                                    std::size_t x) const {
    assert(z < nz_ && y < ny_ && x < nx_);
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] T& at(std::size_t z, std::size_t y, std::size_t x) {
    if (z >= nz_ || y >= ny_ || x >= nx_) throw std::out_of_range("Volume::at");
    return data_[(z * ny_ + y) * nx_ + x];
  }
  [[nodiscard]] const T& at(std::size_t z, std::size_t y,
                            std::size_t x) const {
    if (z >= nz_ || y >= ny_ || x >= nx_) throw std::out_of_range("Volume::at");
    return data_[(z * ny_ + y) * nx_ + x];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const Volume&) const = default;

 private:
  std::size_t nz_ = 0;
  std::size_t ny_ = 0;
  std::size_t nx_ = 0;
  std::vector<T> data_;
};

/// Promote a real raster to complex (imaginary part zero).
template <typename T>
[[nodiscard]] Image<cdouble> to_complex(const Image<T>& in) {
  Image<cdouble> out(in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = cdouble(static_cast<double>(in.storage()[i]), 0.0);
  }
  return out;
}

template <typename T>
[[nodiscard]] Volume<cdouble> to_complex(const Volume<T>& in) {
  Volume<cdouble> out(in.nz(), in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = cdouble(static_cast<double>(in.storage()[i]), 0.0);
  }
  return out;
}

/// Extract the real part of a complex raster.
[[nodiscard]] inline Image<double> real_part(const Image<cdouble>& in) {
  Image<double> out(in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = in.storage()[i].real();
  }
  return out;
}

[[nodiscard]] inline Volume<double> real_part(const Volume<cdouble>& in) {
  Volume<double> out(in.nz(), in.ny(), in.nx());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.storage()[i] = in.storage()[i].real();
  }
  return out;
}

}  // namespace por::em
