// por/em/ctf.hpp
//
// The microscope Contrast Transfer Function.
//
// "The relationship between the electron image of a specimen and the
// specimen itself is in part affected by the microscope CTF ...  The
// CTF is an oscillatory function that produces phase reversal and
// attenuates amplitudes in the DFT of a TEM image" (paper §3).  The
// simulated microscope multiplies each view's centered spectrum by
// this function; step (e) of the algorithm corrects it before
// matching.
#pragma once

#include "por/em/grid.hpp"

namespace por::em {

/// Imaging parameters of one micrograph.  All views boxed from the
/// same micrograph share one CtfParams (paper step e: "views
/// originated from the same micrograph have the same CTF").
struct CtfParams {
  double pixel_size_a = 2.8;        ///< Angstrom per pixel
  double voltage_kv = 300.0;        ///< accelerating voltage
  double cs_mm = 2.0;               ///< spherical aberration
  double defocus_a = 15000.0;       ///< underfocus (positive) in Angstrom
  double amplitude_contrast = 0.07; ///< fraction in [0, 1]
  double b_factor_a2 = 0.0;         ///< Gaussian envelope decay (A^2)
};

/// Relativistic electron wavelength in Angstrom.
[[nodiscard]] double electron_wavelength_a(double voltage_kv);

/// CTF value at spatial frequency `s` (1/Angstrom):
///   CTF(s) = -(sqrt(1 - A^2) sin(chi) + A cos(chi)) * exp(-B s^2 / 4)
///   chi(s) = pi * lambda * defocus * s^2 - (pi/2) Cs lambda^3 s^4.
[[nodiscard]] double ctf_value(const CtfParams& params, double s);

/// Multiply a centered spectrum by the CTF (the simulated microscope).
void apply_ctf(Image<cdouble>& centered_spectrum, const CtfParams& params);

/// How step (e) undoes the CTF before matching.
enum class CtfCorrection {
  kPhaseFlip,  ///< multiply by sign(CTF): fixes phase reversals only
  kWiener,     ///< multiply by CTF / (CTF^2 + 1/snr): also restores amplitude
};

/// Correct a centered spectrum in place.  `snr` is used by the Wiener
/// filter only.
void correct_ctf(Image<cdouble>& centered_spectrum, const CtfParams& params,
                 CtfCorrection mode, double snr = 10.0);

}  // namespace por::em
