#include "por/em/rotate.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/interp.hpp"

namespace por::em {

Volume<double> rotate_volume(const Volume<double>& vol, const Mat3& r) {
  if (!vol.is_cube()) {
    throw std::invalid_argument("rotate_volume: volume must be cubic");
  }
  const std::size_t l = vol.nx();
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const Mat3 rinv = r.transposed();  // rotations: inverse == transpose
  Volume<double> out(l, 0.0);
  for (std::size_t z = 0; z < l; ++z) {
    for (std::size_t y = 0; y < l; ++y) {
      for (std::size_t x = 0; x < l; ++x) {
        const Vec3 p{static_cast<double>(x) - c, static_cast<double>(y) - c,
                     static_cast<double>(z) - c};
        const Vec3 q = rinv * p;
        out(z, y, x) = interp_trilinear(vol, q.z + c, q.y + c, q.x + c);
      }
    }
  }
  return out;
}

}  // namespace por::em
