#include "por/em/symmetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace por::em {

namespace {

constexpr double kGolden = 1.6180339887498948482;  // (1 + sqrt(5)) / 2

bool nearly_equal(const Mat3& a, const Mat3& b, double tol = 1e-9) {
  for (int i = 0; i < 9; ++i) {
    if (std::abs(a.m[i] - b.m[i]) > tol) return false;
  }
  return true;
}

bool contains_matrix(const std::vector<Mat3>& set, const Mat3& candidate) {
  for (const auto& m : set) {
    if (nearly_equal(m, candidate)) return true;
  }
  return false;
}

}  // namespace

std::vector<Mat3> close_group(std::vector<Mat3> generators,
                              std::size_t max_order) {
  std::vector<Mat3> elements;
  elements.push_back(Mat3::identity());
  for (const auto& g : generators) {
    if (!contains_matrix(elements, g)) elements.push_back(g);
  }
  bool grew = true;
  while (grew) {
    grew = false;
    const std::size_t count = elements.size();
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = 0; j < count; ++j) {
        const Mat3 product = elements[i] * elements[j];
        if (!contains_matrix(elements, product)) {
          elements.push_back(product);
          grew = true;
          if (elements.size() > max_order) {
            throw std::runtime_error(
                "close_group: generator set does not close within the "
                "allowed order (non-finite or numerically inconsistent)");
          }
        }
      }
    }
  }
  return elements;
}

SymmetryGroup SymmetryGroup::identity() {
  return SymmetryGroup("C1", {Mat3::identity()});
}

SymmetryGroup SymmetryGroup::cyclic(int n) {
  if (n < 1) throw std::invalid_argument("cyclic: n must be >= 1");
  std::vector<Mat3> ops;
  ops.reserve(n);
  for (int k = 0; k < n; ++k) {
    ops.push_back(Mat3::rot_z(2.0 * std::numbers::pi * k / n));
  }
  return SymmetryGroup("C" + std::to_string(n), std::move(ops));
}

SymmetryGroup SymmetryGroup::dihedral(int n) {
  if (n < 1) throw std::invalid_argument("dihedral: n must be >= 1");
  std::vector<Mat3> ops = close_group(
      {Mat3::rot_z(2.0 * std::numbers::pi / n), Mat3::rot_x(std::numbers::pi)},
      4 * static_cast<std::size_t>(n));
  return SymmetryGroup("D" + std::to_string(n), std::move(ops));
}

SymmetryGroup SymmetryGroup::tetrahedral() {
  std::vector<Mat3> ops = close_group(
      {Mat3::rot_z(std::numbers::pi),
       Mat3::axis_angle({1, 1, 1}, 2.0 * std::numbers::pi / 3.0)},
      32);
  return SymmetryGroup("T", std::move(ops));
}

SymmetryGroup SymmetryGroup::octahedral() {
  std::vector<Mat3> ops = close_group(
      {Mat3::rot_z(std::numbers::pi / 2.0),
       Mat3::axis_angle({1, 1, 1}, 2.0 * std::numbers::pi / 3.0)},
      64);
  return SymmetryGroup("O", std::move(ops));
}

SymmetryGroup SymmetryGroup::icosahedral() {
  // 2-fold axes along x, y, z; 5-fold axis through the icosahedron
  // vertex (golden, 1, 0) — the setting of Fig. 1b where 5-folds sit
  // at (theta=90, phi=+-31.72 deg).  The z 2-fold is perpendicular to
  // that vertex axis, so those two alone only generate a D5 subgroup;
  // the 3-fold through the adjacent face center completes I.
  std::vector<Mat3> ops = close_group(
      {Mat3::rot_z(std::numbers::pi),
       Mat3::axis_angle({kGolden, 1.0, 0.0}, 2.0 * std::numbers::pi / 5.0),
       Mat3::axis_angle({2.0 * kGolden + 1.0, 0.0, kGolden},
                        2.0 * std::numbers::pi / 3.0)},
      128);
  return SymmetryGroup("I", std::move(ops));
}

SymmetryGroup SymmetryGroup::from_name(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("from_name: empty name");
  const char kind = static_cast<char>(std::toupper(name.front()));
  if (kind == 'T' && name.size() == 1) return tetrahedral();
  if (kind == 'O' && name.size() == 1) return octahedral();
  if (kind == 'I' && name.size() == 1) return icosahedral();
  if ((kind == 'C' || kind == 'D') && name.size() > 1) {
    const int n = std::stoi(name.substr(1));
    return kind == 'C' ? cyclic(n) : dihedral(n);
  }
  throw std::invalid_argument("from_name: unknown point group '" + name + "'");
}

double SymmetryGroup::min_rotation_deg() const {
  double best = 360.0;
  for (const auto& op : ops_) {
    const double c = std::clamp((op.trace() - 1.0) / 2.0, -1.0, 1.0);
    const double angle = rad2deg(std::acos(c));
    if (angle > 1e-6 && angle < best) best = angle;
  }
  return best;
}

double symmetry_aware_geodesic_deg(const Orientation& a, const Orientation& b,
                                   const SymmetryGroup& group) {
  // For a particle invariant under G (rho(g x) = rho(x)), the
  // projection with orientation R equals the projection with g * R:
  // symmetry mates multiply on the LEFT.
  const Mat3 ra = rotation_matrix(a);
  const Mat3 rb = rotation_matrix(b);
  double best = 360.0;
  for (const auto& g : group.operations()) {
    best = std::min(best, geodesic_deg(ra, g * rb));
  }
  return best;
}

IcosahedralAsymmetricUnit::IcosahedralAsymmetricUnit() {
  v5a_ = Vec3{kGolden, 1.0, 0.0}.normalized();
  v5b_ = Vec3{kGolden, -1.0, 0.0}.normalized();
  v3_ = Vec3{2.0 * kGolden + 1.0, 0.0, kGolden}.normalized();
  // Inward normals of the three great-circle edges (winding chosen so
  // the triangle interior has non-negative dot with every normal).
  n_ab_ = v5a_.cross(v5b_);
  n_bc_ = v5b_.cross(v3_);
  n_ca_ = v3_.cross(v5a_);
  const Vec3 centroid = (v5a_ + v5b_ + v3_).normalized();
  if (centroid.dot(n_ab_) < 0.0) n_ab_ = -1.0 * n_ab_;
  if (centroid.dot(n_bc_) < 0.0) n_bc_ = -1.0 * n_bc_;
  if (centroid.dot(n_ca_) < 0.0) n_ca_ = -1.0 * n_ca_;
}

bool IcosahedralAsymmetricUnit::contains(const Vec3& direction) const {
  const Vec3 u = direction.normalized();
  constexpr double kEdgeTol = -1e-9;
  return u.dot(n_ab_) >= kEdgeTol && u.dot(n_bc_) >= kEdgeTol &&
         u.dot(n_ca_) >= kEdgeTol;
}

std::vector<Orientation> IcosahedralAsymmetricUnit::grid(
    double step_deg) const {
  if (step_deg <= 0.0) throw std::invalid_argument("grid: step must be > 0");
  std::vector<Orientation> views;
  // Bounding box of the triangle: theta in [69.09, 90], phi in
  // [-31.72, 31.72] (degrees).
  for (double theta = 69.0; theta <= 90.0 + 1e-9; theta += step_deg) {
    for (double phi = -32.0; phi <= 32.0 + 1e-9; phi += step_deg) {
      const Orientation o{theta, phi, 0.0};
      if (contains(view_axis(o))) views.push_back(o);
    }
  }
  return views;
}

}  // namespace por::em
