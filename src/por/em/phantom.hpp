// por/em/phantom.hpp
//
// Synthetic virus particles built from Gaussian blobs.
//
// The paper's experiments use real micrographs of Sindbis virus
// (alphavirus: icosahedral nucleocapsid inside a glycoprotein shell)
// and mammalian orthoreovirus (large double-shelled icosahedral
// capsid).  Those data sets are not available, so the reproduction
// uses blob phantoms with the same architecture.  Gaussian blobs have
// two decisive properties for a reproduction:
//   * their projections are analytic (a 3D Gaussian projects to a 2D
//    Gaussian), giving exact reference views independent of any FFT
//    machinery, and
//   * ground-truth orientations are known, so orientation recovery can
//    be verified directly — something the paper could only assess
//    indirectly through resolution curves.
#pragma once

#include <cstdint>
#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/symmetry.hpp"

namespace por::em {

/// One isotropic Gaussian density blob, in voxel units relative to the
/// particle center.
struct Blob {
  Vec3 center;
  double sigma = 1.0;      ///< standard deviation in voxels
  double amplitude = 1.0;  ///< peak density value
};

/// A particle model: a bag of blobs with helpers to rasterize it into
/// a density map and to project it analytically.
class BlobModel {
 public:
  BlobModel() = default;

  void add(const Blob& blob) { blobs_.push_back(blob); }

  /// Add `blob` replicated by every operation of `group` (the way a
  /// capsid is built from copies of one subunit).
  void add_symmetrized(const Blob& blob, const SymmetryGroup& group);

  [[nodiscard]] const std::vector<Blob>& blobs() const { return blobs_; }
  [[nodiscard]] std::size_t size() const { return blobs_.size(); }

  /// Rotate the whole model (used to pose the "unknown symmetry"
  /// particle in an arbitrary frame for the detector experiments).
  [[nodiscard]] BlobModel rotated(const Mat3& r) const;

  /// Rasterize into an l^3 density map centered on voxel floor(l/2).
  /// Each blob contributes within a 4-sigma box only.
  [[nodiscard]] Volume<double> rasterize(std::size_t l) const;

  /// Exact analytic projection with orientation `o` into an l x l
  /// image whose particle center sits at floor(l/2) + (dx, dy):
  /// P(u,v) = sum_b A_b * sigma_b * sqrt(2 pi) * exp(-rho^2/(2 sigma^2)).
  [[nodiscard]] Image<double> project_analytic(std::size_t l,
                                               const Orientation& o,
                                               double dx = 0.0,
                                               double dy = 0.0) const;

 private:
  std::vector<Blob> blobs_;
};

/// Parameters common to the stock phantoms.
struct PhantomSpec {
  std::size_t l = 64;          ///< cube edge the phantom is sized for
  std::uint64_t seed = 1234;   ///< subunit placement seed
};

/// Alphavirus-like particle ("sindbis"): icosahedral glycoprotein
/// shell + inner nucleocapsid shell, 3 distinct subunit blobs per
/// asymmetric unit on each shell (60-fold symmetrized).
[[nodiscard]] BlobModel make_sindbis_like(const PhantomSpec& spec);

/// Orthoreovirus-like particle ("reo"): double-shelled icosahedral
/// capsid with turret blobs on the 5-fold axes and a dense core.
[[nodiscard]] BlobModel make_reo_like(const PhantomSpec& spec);

/// Fully asymmetric particle: `blob_count` random blobs in a ball.
[[nodiscard]] BlobModel make_asymmetric(const PhantomSpec& spec,
                                        std::size_t blob_count = 40);

/// Generic symmetric particle: `blobs_per_unit` random blobs
/// symmetrized by `group` (used by the symmetry-detection experiments).
[[nodiscard]] BlobModel make_with_symmetry(const PhantomSpec& spec,
                                           const SymmetryGroup& group,
                                           std::size_t blobs_per_unit = 4);

/// Tailed-phage-like particle: icosahedral head plus a C6 tail along
/// -z; globally asymmetric but with detectable local symmetry —
/// exercises the "can also determine the symmetry group" claim on a
/// particle whose symmetry is broken.
[[nodiscard]] BlobModel make_phage_like(const PhantomSpec& spec);

}  // namespace por::em
