#include "por/em/ctf_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "por/em/projection.hpp"

namespace por::em {

std::vector<double> radial_power_spectrum(const Image<double>& image) {
  if (image.nx() != image.ny() || image.nx() == 0) {
    throw std::invalid_argument("radial_power_spectrum: image must be square");
  }
  const std::size_t n = image.nx();
  const Image<cdouble> spectrum = centered_fft2(image);
  const double c = std::floor(static_cast<double>(n) / 2.0);
  std::vector<double> sum(n / 2 + 1, 0.0);
  std::vector<std::size_t> counts(n / 2 + 1, 0);
  for (std::size_t y = 0; y < n; ++y) {
    const double ky = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < n; ++x) {
      const double kx = static_cast<double>(x) - c;
      const auto r = static_cast<std::size_t>(
          std::lround(std::sqrt(kx * kx + ky * ky)));
      if (r >= sum.size()) continue;
      sum[r] += std::norm(spectrum(y, x));
      ++counts[r];
    }
  }
  for (std::size_t r = 0; r < sum.size(); ++r) {
    if (counts[r] > 0) sum[r] /= static_cast<double>(counts[r]);
  }
  return sum;
}

std::vector<double> mean_radial_power_spectrum(
    const std::vector<Image<double>>& images) {
  if (images.empty()) {
    throw std::invalid_argument("mean_radial_power_spectrum: no images");
  }
  std::vector<double> mean = radial_power_spectrum(images.front());
  for (std::size_t i = 1; i < images.size(); ++i) {
    const auto power = radial_power_spectrum(images[i]);
    if (power.size() != mean.size()) {
      throw std::invalid_argument(
          "mean_radial_power_spectrum: images differ in size");
    }
    for (std::size_t r = 0; r < mean.size(); ++r) mean[r] += power[r];
  }
  for (double& v : mean) v /= static_cast<double>(images.size());
  return mean;
}

namespace {

/// Correlation of the whitened observed rings with |CTF|^2 over the
/// fitting band.  Whitening: divide out a moving-average envelope so
/// only the oscillation pattern matters.
double ring_score(const std::vector<double>& power, std::size_t n,
                  const CtfParams& params, double defocus,
                  const DefocusFitOptions& options) {
  CtfParams trial = params;
  trial.defocus_a = defocus;
  const auto lo = static_cast<std::size_t>(options.fit_lo_frac *
                                           static_cast<double>(n) / 2.0);
  const auto hi = static_cast<std::size_t>(options.fit_hi_frac *
                                           static_cast<double>(n) / 2.0);
  if (hi <= lo + 4 || hi >= power.size()) return -1.0;

  // Moving-average envelope of the log power (window ~9 shells).
  std::vector<double> logp(power.size());
  for (std::size_t r = 0; r < power.size(); ++r) {
    logp[r] = std::log(power[r] + 1e-30);
  }
  auto envelope = [&](std::size_t r) {
    const std::size_t w = 4;
    const std::size_t a = r > w ? r - w : 0;
    const std::size_t b = std::min(power.size() - 1, r + w);
    double acc = 0.0;
    for (std::size_t i = a; i <= b; ++i) acc += logp[i];
    return acc / static_cast<double>(b - a + 1);
  };

  double cross = 0.0, aa = 0.0, bb = 0.0;
  for (std::size_t r = lo; r <= hi; ++r) {
    const double observed = logp[r] - envelope(r);  // whitened rings
    const double s = static_cast<double>(r) /
                     (static_cast<double>(n) * trial.pixel_size_a);
    const double c = ctf_value(trial, s);
    const double predicted = c * c - 0.5;  // zero-mean-ish oscillation
    cross += observed * predicted;
    aa += observed * observed;
    bb += predicted * predicted;
  }
  const double denom = std::sqrt(aa * bb);
  return denom > 0.0 ? cross / denom : -1.0;
}

}  // namespace

DefocusFit fit_defocus(const std::vector<double>& power, std::size_t n,
                       const CtfParams& params,
                       const DefocusFitOptions& options) {
  if (options.min_defocus_a >= options.max_defocus_a ||
      options.coarse_step_a <= 0.0 || options.fine_step_a <= 0.0) {
    throw std::invalid_argument("fit_defocus: bad options");
  }
  DefocusFit best;
  best.score = -2.0;
  for (double defocus = options.min_defocus_a;
       defocus <= options.max_defocus_a; defocus += options.coarse_step_a) {
    const double score = ring_score(power, n, params, defocus, options);
    if (score > best.score) {
      best.score = score;
      best.defocus_a = defocus;
    }
  }
  const double center = best.defocus_a;
  for (double defocus = center - options.coarse_step_a;
       defocus <= center + options.coarse_step_a;
       defocus += options.fine_step_a) {
    const double score = ring_score(power, n, params, defocus, options);
    if (score > best.score) {
      best.score = score;
      best.defocus_a = defocus;
    }
  }
  return best;
}

}  // namespace por::em
