// por/em/micrograph.hpp
//
// Synthetic micrographs and particle boxing — the reproduction's stand-
// in for the paper's Step A ("extract individual particle projections
// from micrographs and identify the center of each projection"), which
// the authors performed with the toolchain of Martin et al. [22] on
// scanned film.
//
// A micrograph is a large raster containing many copies of one
// particle at random orientations and positions, imaged through the
// CTF and buried in noise; the boxer recovers candidate centers with a
// matched disk filter and cuts fixed-size windows around them.
#pragma once

#include <cstdint>
#include <vector>

#include "por/em/ctf.hpp"
#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/phantom.hpp"
#include "por/util/rng.hpp"

namespace por::em {

/// Ground truth for one particle placed in a micrograph.
struct PlacedParticle {
  double center_x = 0.0;  ///< pixel coordinates in the micrograph
  double center_y = 0.0;
  Orientation orientation;  ///< true projection orientation
};

/// A synthetic micrograph plus the truth that generated it.
struct Micrograph {
  Image<double> pixels;
  std::vector<PlacedParticle> truth;
  CtfParams ctf;
};

struct MicrographSpec {
  std::size_t height = 512;
  std::size_t width = 512;
  std::size_t particle_count = 12;
  std::size_t box = 64;        ///< particle box edge; also min spacing
  double snr = 0.5;            ///< per-pixel signal-to-noise ratio
  bool apply_ctf = true;
  CtfParams ctf;
  std::uint64_t seed = 99;
};

/// Render `spec.particle_count` copies of `model` at random
/// orientations and non-overlapping random positions, apply the CTF
/// and add noise.
[[nodiscard]] Micrograph synthesize_micrograph(const BlobModel& model,
                                               const MicrographSpec& spec);

/// Cut a box x box window centered at (cx, cy) (nearest-pixel); pixels
/// outside the micrograph are zero.
[[nodiscard]] Image<double> box_particle(const Image<double>& micrograph,
                                         double cx, double cy,
                                         std::size_t box);

/// Candidate particle centers found with a matched disk filter: the
/// micrograph is correlated with a soft disk of radius `radius` and
/// the `count` strongest non-overlapping local maxima are returned
/// (x, y pairs, strongest first).
[[nodiscard]] std::vector<std::pair<double, double>> detect_particles(
    const Image<double>& micrograph, double radius, std::size_t count);

/// Sharpen detected centers by local template correlation: for each
/// pick, every integer offset within `search_radius_px` is scored by
/// the normalized cross-correlation of the re-boxed window against
/// `reference` (e.g. a rotationally averaged projection of the current
/// map), and the best offset wins.  The disk filter localizes to a
/// few pixels; this step brings centers close enough for the
/// orientation matcher, leaving only the sub-pixel remainder to the
/// refinement's step (k).
[[nodiscard]] std::vector<std::pair<double, double>> refine_centers_by_template(
    const Image<double>& micrograph,
    const std::vector<std::pair<double, double>>& picks,
    const Image<double>& reference, int search_radius_px = 4);

}  // namespace por::em
