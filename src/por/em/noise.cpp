#include "por/em/noise.hpp"

#include <cmath>
#include <limits>

namespace por::em {

double image_variance(const Image<double>& img) {
  if (img.empty()) return 0.0;
  double mean = 0.0;
  for (double v : img.storage()) mean += v;
  mean /= static_cast<double>(img.size());
  double var = 0.0;
  for (double v : img.storage()) var += (v - mean) * (v - mean);
  return var / static_cast<double>(img.size());
}

void add_gaussian_noise(Image<double>& img, double snr, util::Rng& rng) {
  if (snr <= 0.0 || !std::isfinite(snr)) return;
  const double signal_var = image_variance(img);
  const double sigma = std::sqrt(signal_var / snr);
  // por-lint: allow(float-eq) sigma is exactly 0.0 only for an
  // all-constant image; adding zero-width noise is a no-op.
  if (sigma == 0.0) return;
  for (double& v : img.storage()) v += rng.gaussian(0.0, sigma);
}

void normalize(Image<double>& img) {
  const double var = image_variance(img);
  if (var <= std::numeric_limits<double>::min()) return;
  double mean = 0.0;
  for (double v : img.storage()) mean += v;
  mean /= static_cast<double>(img.size());
  const double inv_sigma = 1.0 / std::sqrt(var);
  for (double& v : img.storage()) v = (v - mean) * inv_sigma;
}

}  // namespace por::em
