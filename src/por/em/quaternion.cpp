#include "por/em/quaternion.hpp"

#include <cmath>
#include <stdexcept>

namespace por::em {

Quaternion quaternion_from_matrix(const Mat3& r) {
  // Shepperd's method: pick the largest of the four candidate pivots.
  const double trace = r.trace();
  Quaternion q;
  if (trace > 0.0) {
    const double s = std::sqrt(trace + 1.0) * 2.0;
    q.w = 0.25 * s;
    q.x = (r(2, 1) - r(1, 2)) / s;
    q.y = (r(0, 2) - r(2, 0)) / s;
    q.z = (r(1, 0) - r(0, 1)) / s;
  } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
    q.w = (r(2, 1) - r(1, 2)) / s;
    q.x = 0.25 * s;
    q.y = (r(0, 1) + r(1, 0)) / s;
    q.z = (r(0, 2) + r(2, 0)) / s;
  } else if (r(1, 1) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
    q.w = (r(0, 2) - r(2, 0)) / s;
    q.x = (r(0, 1) + r(1, 0)) / s;
    q.y = 0.25 * s;
    q.z = (r(1, 2) + r(2, 1)) / s;
  } else {
    const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
    q.w = (r(1, 0) - r(0, 1)) / s;
    q.x = (r(0, 2) + r(2, 0)) / s;
    q.y = (r(1, 2) + r(2, 1)) / s;
    q.z = 0.25 * s;
  }
  return q.normalized();
}

Mat3 matrix_from_quaternion(const Quaternion& quaternion) {
  const Quaternion q = quaternion.normalized();
  Mat3 r;
  const double w = q.w, x = q.x, y = q.y, z = q.z;
  r.m = {1 - 2 * (y * y + z * z), 2 * (x * y - w * z),     2 * (x * z + w * y),
         2 * (x * y + w * z),     1 - 2 * (x * x + z * z), 2 * (y * z - w * x),
         2 * (x * z - w * y),     2 * (y * z + w * x),     1 - 2 * (x * x + y * y)};
  return r;
}

Mat3 mean_rotation(const std::vector<Mat3>& rotations) {
  if (rotations.empty()) {
    throw std::invalid_argument("mean_rotation: empty input");
  }
  const Quaternion anchor = quaternion_from_matrix(rotations.front());
  Quaternion sum{0.0, 0.0, 0.0, 0.0};
  for (const auto& r : rotations) {
    Quaternion q = quaternion_from_matrix(r);
    // q and -q are the same rotation; align signs with the anchor so
    // the average does not cancel.
    if (q.dot(anchor) < 0.0) q = q.negated();
    sum.w += q.w;
    sum.x += q.x;
    sum.y += q.y;
    sum.z += q.z;
  }
  if (sum.norm() < 1e-12) {
    throw std::invalid_argument(
        "mean_rotation: rotations too spread out to average");
  }
  return matrix_from_quaternion(sum.normalized());
}

}  // namespace por::em
