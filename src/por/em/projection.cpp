#include "por/em/projection.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "por/em/interp.hpp"
#include "por/util/contracts.hpp"

namespace por::em {

namespace {

/// Per-axis centering phase factors: phase[i] = exp(sign * 2*pi*i *
/// (i - c) * c / n) with c = floor(n/2).  The full center phase of a
/// voxel is the product of its axis factors, so an n^3 volume needs
/// 3n sin/cos evaluations instead of n^3.
std::vector<cdouble> axis_phase(std::size_t n, double sign) {
  const double c = std::floor(static_cast<double>(n) / 2.0);
  std::vector<cdouble> phase(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double k = static_cast<double>(i) - c;
    const double angle =
        sign * 2.0 * std::numbers::pi * k * c / static_cast<double>(n);
    phase[i] = {std::cos(angle), std::sin(angle)};
  }
  return phase;
}

/// One row of the fused shift-and-phase gather:
///   dst[x] = src[(x + shift) % nx] * (row_factor * phase_x[x])
/// for the centerize direction, where the phase index rides with dst,
/// or
///   dst[x] = src[(x + shift) % nx] * (row_factor * phase_x[(x+shift)%nx])
/// for the decenterize direction, where it rides with src.  The wrap
/// splits into two contiguous segments — no per-element modulo.
// CONTRACT: shift <= nx; both segment loops stay inside [0, nx).
void fused_row(cdouble* dst, const cdouble* src, std::size_t nx,
               std::size_t shift, cdouble row_factor,
               const std::vector<cdouble>& phase_x, bool phase_on_src) {
  POR_EXPECT(shift <= nx, "fused_row shift exceeds row length:", shift, ">",
             nx);
  const std::size_t split = nx - shift;  // first dst index that wraps
  for (std::size_t x = 0; x < split; ++x) {
    const std::size_t xs = x + shift;
    POR_BOUNDS(xs, nx);
    dst[x] = src[xs] * (row_factor * phase_x[phase_on_src ? xs : x]);
  }
  for (std::size_t x = split; x < nx; ++x) {
    const std::size_t xs = x + shift - nx;
    POR_BOUNDS(xs, nx);
    dst[x] = src[xs] * (row_factor * phase_x[phase_on_src ? xs : x]);
  }
}

/// Raw spectrum (origin at index 0) -> centered spectrum: fftshift
/// fused with the +1 center phase in one out-of-place pass.
void centerize2(Image<cdouble>& spec) {
  const std::size_t ny = spec.ny(), nx = spec.nx();
  if (ny == 0 || nx == 0) return;
  const std::size_t sy = (ny + 1) / 2, sx = (nx + 1) / 2;  // fftshift
  const std::vector<cdouble> py = axis_phase(ny, +1.0);
  const std::vector<cdouble> px = axis_phase(nx, +1.0);
  Image<cdouble> out(ny, nx);
  for (std::size_t y = 0; y < ny; ++y) {
    const std::size_t ys = (y + sy) % ny;
    fused_row(&out(y, 0), &spec(ys, 0), nx, sx, py[y], px,
              /*phase_on_src=*/false);
  }
  spec = std::move(out);
}

/// Centered spectrum -> raw spectrum: the -1 center phase fused with
/// ifftshift.  The phase belongs to the *source* (centered) index.
void decenterize2(Image<cdouble>& spec) {
  const std::size_t ny = spec.ny(), nx = spec.nx();
  if (ny == 0 || nx == 0) return;
  const std::size_t sy = ny / 2, sx = nx / 2;  // ifftshift
  const std::vector<cdouble> py = axis_phase(ny, -1.0);
  const std::vector<cdouble> px = axis_phase(nx, -1.0);
  Image<cdouble> out(ny, nx);
  for (std::size_t y = 0; y < ny; ++y) {
    const std::size_t ys = (y + sy) % ny;
    fused_row(&out(y, 0), &spec(ys, 0), nx, sx, py[ys], px,
              /*phase_on_src=*/true);
  }
  spec = std::move(out);
}

void centerize3(Volume<cdouble>& spec) {
  const std::size_t nz = spec.nz(), ny = spec.ny(), nx = spec.nx();
  if (nz == 0 || ny == 0 || nx == 0) return;
  const std::size_t sz = (nz + 1) / 2, sy = (ny + 1) / 2, sx = (nx + 1) / 2;
  const std::vector<cdouble> pz = axis_phase(nz, +1.0);
  const std::vector<cdouble> py = axis_phase(ny, +1.0);
  const std::vector<cdouble> px = axis_phase(nx, +1.0);
  Volume<cdouble> out(nz, ny, nx);
  for (std::size_t z = 0; z < nz; ++z) {
    const std::size_t zs = (z + sz) % nz;
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t ys = (y + sy) % ny;
      fused_row(&out(z, y, 0), &spec(zs, ys, 0), nx, sx, pz[z] * py[y], px,
                /*phase_on_src=*/false);
    }
  }
  spec = std::move(out);
}

void decenterize3(Volume<cdouble>& spec) {
  const std::size_t nz = spec.nz(), ny = spec.ny(), nx = spec.nx();
  if (nz == 0 || ny == 0 || nx == 0) return;
  const std::size_t sz = nz / 2, sy = ny / 2, sx = nx / 2;
  const std::vector<cdouble> pz = axis_phase(nz, -1.0);
  const std::vector<cdouble> py = axis_phase(ny, -1.0);
  const std::vector<cdouble> px = axis_phase(nx, -1.0);
  Volume<cdouble> out(nz, ny, nx);
  for (std::size_t z = 0; z < nz; ++z) {
    const std::size_t zs = (z + sz) % nz;
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t ys = (y + sy) % ny;
      fused_row(&out(z, y, 0), &spec(zs, ys, 0), nx, sx, pz[zs] * py[ys], px,
                /*phase_on_src=*/true);
    }
  }
  spec = std::move(out);
}

}  // namespace

Image<cdouble> centered_fft2(const Image<double>& img,
                             const fft::FftOptions& options) {
  Image<cdouble> spec(img.ny(), img.nx());
  fft::rfft2d_forward(img.data(), spec.data(), spec.ny(), spec.nx(), options);
  centerize2(spec);
  return spec;
}

Image<double> centered_ifft2(const Image<cdouble>& spec,
                             const fft::FftOptions& options) {
  Image<cdouble> work = spec;
  decenterize2(work);
  fft::fft2d_inverse(work.data(), work.ny(), work.nx(), options);
  return real_part(work);
}

Volume<cdouble> centered_fft3(const Volume<double>& vol,
                              const fft::FftOptions& options) {
  Volume<cdouble> spec(vol.nz(), vol.ny(), vol.nx());
  fft::rfft3d_forward(vol.data(), spec.data(), spec.nz(), spec.ny(), spec.nx(),
                      options);
  centerize3(spec);
  return spec;
}

Volume<cdouble> centered_from_raw_fft3(Volume<cdouble> raw) {
  centerize3(raw);
  return raw;
}

Volume<double> centered_ifft3(const Volume<cdouble>& spec,
                              const fft::FftOptions& options) {
  Volume<cdouble> work = spec;
  decenterize3(work);
  fft::fft3d_inverse(work.data(), work.nz(), work.ny(), work.nx(), options);
  return real_part(work);
}

Image<double> project_volume(const Volume<double>& vol, const Orientation& o,
                             int steps_per_voxel) {
  const std::size_t l = vol.nx();
  Image<double> out(vol.ny(), vol.nx(), 0.0);
  const Mat3 r = rotation_matrix(o);
  const Vec3 eu = r * Vec3{1, 0, 0};
  const Vec3 ev = r * Vec3{0, 1, 0};
  const Vec3 ew = r * Vec3{0, 0, 1};
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const double step = 1.0 / steps_per_voxel;
  const double half_span = static_cast<double>(l) / 2.0;

  for (std::size_t y = 0; y < out.ny(); ++y) {
    const double v = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < out.nx(); ++x) {
      const double u = static_cast<double>(x) - c;
      double acc = 0.0;
      for (double w = -half_span; w <= half_span; w += step) {
        const Vec3 p = u * eu + v * ev + w * ew;
        acc += interp_trilinear(vol, p.z + c, p.y + c, p.x + c);
      }
      out(y, x) = acc * step;
    }
  }
  return out;
}

Image<cdouble> extract_central_slice(const Volume<cdouble>& centered_spectrum,
                                     const Orientation& o) {
  const std::size_t l = centered_spectrum.nx();
  Image<cdouble> slice(l, l);
  const Mat3 r = rotation_matrix(o);
  const Vec3 eu = r * Vec3{1, 0, 0};
  const Vec3 ev = r * Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(l) / 2.0);

  for (std::size_t y = 0; y < l; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < l; ++x) {
      const double ku = static_cast<double>(x) - c;
      const Vec3 q = ku * eu + kv * ev;
      slice(y, x) =
          interp_trilinear(centered_spectrum, q.z + c, q.y + c, q.x + c);
    }
  }
  return slice;
}

void apply_translation_phase(Image<cdouble>& centered_spectrum, double dx,
                             double dy) {
  translate_phase_into(centered_spectrum, centered_spectrum, dx, dy);
}

void translate_phase_into(Image<cdouble>& out, const Image<cdouble>& in,
                          double dx, double dy) {
  const std::size_t ny = in.ny(), nx = in.nx();
  if (&out != &in && (out.ny() != ny || out.nx() != nx)) {
    out = Image<cdouble>(ny, nx);
  }
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  for (std::size_t y = 0; y < ny; ++y) {
    const double ky = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < nx; ++x) {
      const double kx = static_cast<double>(x) - cx;
      // Translating the image by (+dx, +dy) multiplies its spectrum by
      // exp(-2*pi*i*(kx*dx/nx + ky*dy/ny)).
      const double angle = -2.0 * std::numbers::pi *
                           (kx * dx / static_cast<double>(nx) +
                            ky * dy / static_cast<double>(ny));
      out(y, x) = in(y, x) * cdouble(std::cos(angle), std::sin(angle));
    }
  }
}

}  // namespace por::em
