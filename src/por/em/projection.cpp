#include "por/em/projection.hpp"

#include <cmath>
#include <numbers>

#include "por/fft/fftnd.hpp"
#include "por/em/interp.hpp"

namespace por::em {

namespace {

/// Multiply spectrum (already fftshifted, zero frequency at n/2) by
/// exp(sign * 2*pi*i * k.c / n) per axis, turning phases measured about
/// index 0 into phases measured about the center voxel (sign=+1) or
/// back (sign=-1).
void apply_center_phase2(Image<cdouble>& spec, double sign) {
  const std::size_t ny = spec.ny(), nx = spec.nx();
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  for (std::size_t y = 0; y < ny; ++y) {
    const double ky = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < nx; ++x) {
      const double kx = static_cast<double>(x) - cx;
      const double angle = sign * 2.0 * std::numbers::pi *
                           (ky * cy / static_cast<double>(ny) +
                            kx * cx / static_cast<double>(nx));
      spec(y, x) *= cdouble(std::cos(angle), std::sin(angle));
    }
  }
}

void apply_center_phase3(Volume<cdouble>& spec, double sign) {
  const std::size_t nz = spec.nz(), ny = spec.ny(), nx = spec.nx();
  const double cz = std::floor(static_cast<double>(nz) / 2.0);
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  for (std::size_t z = 0; z < nz; ++z) {
    const double kz = static_cast<double>(z) - cz;
    for (std::size_t y = 0; y < ny; ++y) {
      const double ky = static_cast<double>(y) - cy;
      for (std::size_t x = 0; x < nx; ++x) {
        const double kx = static_cast<double>(x) - cx;
        const double angle = sign * 2.0 * std::numbers::pi *
                             (kz * cz / static_cast<double>(nz) +
                              ky * cy / static_cast<double>(ny) +
                              kx * cx / static_cast<double>(nx));
        spec(z, y, x) *= cdouble(std::cos(angle), std::sin(angle));
      }
    }
  }
}

}  // namespace

Image<cdouble> centered_fft2(const Image<double>& img) {
  Image<cdouble> spec = to_complex(img);
  fft::fft2d_forward(spec.data(), spec.ny(), spec.nx());
  fft::fftshift2d(spec.data(), spec.ny(), spec.nx());
  apply_center_phase2(spec, +1.0);
  return spec;
}

Image<double> centered_ifft2(const Image<cdouble>& spec) {
  Image<cdouble> work = spec;
  apply_center_phase2(work, -1.0);
  fft::ifftshift2d(work.data(), work.ny(), work.nx());
  fft::fft2d_inverse(work.data(), work.ny(), work.nx());
  return real_part(work);
}

Volume<cdouble> centered_fft3(const Volume<double>& vol) {
  Volume<cdouble> spec = to_complex(vol);
  fft::fft3d_forward(spec.data(), spec.nz(), spec.ny(), spec.nx());
  fft::fftshift3d(spec.data(), spec.nz(), spec.ny(), spec.nx());
  apply_center_phase3(spec, +1.0);
  return spec;
}

Volume<cdouble> centered_from_raw_fft3(Volume<cdouble> raw) {
  fft::fftshift3d(raw.data(), raw.nz(), raw.ny(), raw.nx());
  apply_center_phase3(raw, +1.0);
  return raw;
}

Volume<double> centered_ifft3(const Volume<cdouble>& spec) {
  Volume<cdouble> work = spec;
  apply_center_phase3(work, -1.0);
  fft::ifftshift3d(work.data(), work.nz(), work.ny(), work.nx());
  fft::fft3d_inverse(work.data(), work.nz(), work.ny(), work.nx());
  return real_part(work);
}

Image<double> project_volume(const Volume<double>& vol, const Orientation& o,
                             int steps_per_voxel) {
  const std::size_t l = vol.nx();
  Image<double> out(vol.ny(), vol.nx(), 0.0);
  const Mat3 r = rotation_matrix(o);
  const Vec3 eu = r * Vec3{1, 0, 0};
  const Vec3 ev = r * Vec3{0, 1, 0};
  const Vec3 ew = r * Vec3{0, 0, 1};
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const double step = 1.0 / steps_per_voxel;
  const double half_span = static_cast<double>(l) / 2.0;

  for (std::size_t y = 0; y < out.ny(); ++y) {
    const double v = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < out.nx(); ++x) {
      const double u = static_cast<double>(x) - c;
      double acc = 0.0;
      for (double w = -half_span; w <= half_span; w += step) {
        const Vec3 p = u * eu + v * ev + w * ew;
        acc += interp_trilinear(vol, p.z + c, p.y + c, p.x + c);
      }
      out(y, x) = acc * step;
    }
  }
  return out;
}

Image<cdouble> extract_central_slice(const Volume<cdouble>& centered_spectrum,
                                     const Orientation& o) {
  const std::size_t l = centered_spectrum.nx();
  Image<cdouble> slice(l, l);
  const Mat3 r = rotation_matrix(o);
  const Vec3 eu = r * Vec3{1, 0, 0};
  const Vec3 ev = r * Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(l) / 2.0);

  for (std::size_t y = 0; y < l; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < l; ++x) {
      const double ku = static_cast<double>(x) - c;
      const Vec3 q = ku * eu + kv * ev;
      slice(y, x) =
          interp_trilinear(centered_spectrum, q.z + c, q.y + c, q.x + c);
    }
  }
  return slice;
}

void apply_translation_phase(Image<cdouble>& centered_spectrum, double dx,
                             double dy) {
  translate_phase_into(centered_spectrum, centered_spectrum, dx, dy);
}

void translate_phase_into(Image<cdouble>& out, const Image<cdouble>& in,
                          double dx, double dy) {
  const std::size_t ny = in.ny(), nx = in.nx();
  if (&out != &in && (out.ny() != ny || out.nx() != nx)) {
    out = Image<cdouble>(ny, nx);
  }
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  for (std::size_t y = 0; y < ny; ++y) {
    const double ky = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < nx; ++x) {
      const double kx = static_cast<double>(x) - cx;
      // Translating the image by (+dx, +dy) multiplies its spectrum by
      // exp(-2*pi*i*(kx*dx/nx + ky*dy/ny)).
      const double angle = -2.0 * std::numbers::pi *
                           (kx * dx / static_cast<double>(nx) +
                            ky * dy / static_cast<double>(ny));
      out(y, x) = in(y, x) * cdouble(std::cos(angle), std::sin(angle));
    }
  }
}

}  // namespace por::em
