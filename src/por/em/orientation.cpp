#include "por/em/orientation.hpp"

#include <algorithm>

namespace por::em {

Mat3 Mat3::axis_angle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  const double c = std::cos(angle), s = std::sin(angle), t = 1.0 - c;
  Mat3 r;
  r.m = {t * u.x * u.x + c,       t * u.x * u.y - s * u.z, t * u.x * u.z + s * u.y,
         t * u.x * u.y + s * u.z, t * u.y * u.y + c,       t * u.y * u.z - s * u.x,
         t * u.x * u.z - s * u.y, t * u.y * u.z + s * u.x, t * u.z * u.z + c};
  return r;
}

Mat3 rotation_matrix(const Orientation& o) {
  return Mat3::rot_z(deg2rad(o.phi)) * Mat3::rot_y(deg2rad(o.theta)) *
         Mat3::rot_z(deg2rad(o.omega));
}

Orientation euler_from_matrix(const Mat3& r) {
  // R = Rz(phi) Ry(theta) Rz(omega); R(2,2) = cos(theta).
  const double ct = std::clamp(r(2, 2), -1.0, 1.0);
  const double theta = std::acos(ct);
  double phi, omega;
  const double st = std::sin(theta);
  if (st > 1e-10) {
    phi = std::atan2(r(1, 2), r(0, 2));
    omega = std::atan2(r(2, 1), -r(2, 0));
  } else {
    // Gimbal: only phi + omega (theta=0) or phi - omega (theta=pi)
    // is determined; put the whole angle into omega.
    phi = 0.0;
    if (ct > 0.0) {
      omega = std::atan2(r(1, 0), r(0, 0));
    } else {
      omega = std::atan2(r(1, 0), -r(0, 0));
    }
  }
  auto wrap360 = [](double deg) {
    deg = std::fmod(deg, 360.0);
    return deg < 0.0 ? deg + 360.0 : deg;
  };
  return Orientation{rad2deg(theta), wrap360(rad2deg(phi)),
                     wrap360(rad2deg(omega))};
}

Vec3 view_axis(const Orientation& o) {
  const double theta = deg2rad(o.theta), phi = deg2rad(o.phi);
  return {std::sin(theta) * std::cos(phi), std::sin(theta) * std::sin(phi),
          std::cos(theta)};
}

double geodesic_deg(const Mat3& a, const Mat3& b) {
  const Mat3 rel = a.transposed() * b;
  const double c = std::clamp((rel.trace() - 1.0) / 2.0, -1.0, 1.0);
  return rad2deg(std::acos(c));
}

double geodesic_deg(const Orientation& a, const Orientation& b) {
  return geodesic_deg(rotation_matrix(a), rotation_matrix(b));
}

}  // namespace por::em
