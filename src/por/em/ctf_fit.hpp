// por/em/ctf_fit.hpp
//
// Defocus estimation from image power spectra.
//
// The paper assumes each micrograph's CTF is known ("the views
// originated from the same micrograph have the same CTF") — in
// practice the defocus is fitted from the data first.  This module
// implements the standard 1D procedure: compute the rotationally
// averaged power spectrum of the image (or of many boxed views
// averaged together), whiten out the smooth envelope, and find the
// defocus whose theoretical |CTF|^2 oscillation pattern best
// correlates with the observed Thon rings.
#pragma once

#include <vector>

#include "por/em/ctf.hpp"
#include "por/em/grid.hpp"

namespace por::em {

/// Rotationally averaged power spectrum of an image: mean |F|^2 per
/// integer Fourier-pixel radius (index = radius, up to nx/2).
[[nodiscard]] std::vector<double> radial_power_spectrum(
    const Image<double>& image);

/// Average power spectrum of a set of equally-sized images (the usual
/// way to beat per-view noise before fitting).
[[nodiscard]] std::vector<double> mean_radial_power_spectrum(
    const std::vector<Image<double>>& images);

struct DefocusFit {
  double defocus_a = 0.0;   ///< best defocus (Angstrom, underfocus > 0)
  double score = 0.0;       ///< correlation of |CTF|^2 with the rings
};

struct DefocusFitOptions {
  double min_defocus_a = 5000.0;
  double max_defocus_a = 40000.0;
  double coarse_step_a = 500.0;
  double fine_step_a = 50.0;
  /// Fit ring positions only between these fractions of Nyquist (the
  /// lowest shells are envelope-dominated, the highest noise-dominated).
  double fit_lo_frac = 0.15;
  double fit_hi_frac = 0.9;
};

/// Fit the defocus of `params` (all other CTF settings taken from it)
/// to an observed radial power spectrum of images with `n` pixels per
/// edge.  Two-stage grid search (coarse then fine around the best).
[[nodiscard]] DefocusFit fit_defocus(const std::vector<double>& power,
                                     std::size_t n, const CtfParams& params,
                                     const DefocusFitOptions& options = {});

}  // namespace por::em
