#include "por/em/pad.hpp"

#include <stdexcept>

namespace por::em {

namespace {

/// Offset that aligns floor(l/2) of the inner lattice with floor(L/2)
/// of the outer one.
std::size_t center_offset(std::size_t l, std::size_t big) {
  return big / 2 - l / 2;
}

}  // namespace

Image<double> pad_image(const Image<double>& img, std::size_t factor) {
  if (factor < 1) throw std::invalid_argument("pad_image: factor must be >= 1");
  const std::size_t l = img.nx();
  if (img.ny() != l) throw std::invalid_argument("pad_image: image not square");
  const std::size_t big = l * factor;
  Image<double> out(big, big, 0.0);
  const std::size_t off = center_offset(l, big);
  for (std::size_t y = 0; y < l; ++y) {
    for (std::size_t x = 0; x < l; ++x) {
      out(y + off, x + off) = img(y, x);
    }
  }
  return out;
}

Volume<double> pad_volume(const Volume<double>& vol, std::size_t factor) {
  if (factor < 1) throw std::invalid_argument("pad_volume: factor must be >= 1");
  const std::size_t l = vol.nx();
  if (!vol.is_cube()) throw std::invalid_argument("pad_volume: volume not cubic");
  const std::size_t big = l * factor;
  Volume<double> out(big, 0.0);
  const std::size_t off = center_offset(l, big);
  for (std::size_t z = 0; z < l; ++z) {
    for (std::size_t y = 0; y < l; ++y) {
      for (std::size_t x = 0; x < l; ++x) {
        out(z + off, y + off, x + off) = vol(z, y, x);
      }
    }
  }
  return out;
}

Image<double> crop_image(const Image<double>& padded, std::size_t l) {
  const std::size_t big = padded.nx();
  if (padded.ny() != big || l > big) {
    throw std::invalid_argument("crop_image: bad sizes");
  }
  const std::size_t off = center_offset(l, big);
  Image<double> out(l, l);
  for (std::size_t y = 0; y < l; ++y) {
    for (std::size_t x = 0; x < l; ++x) {
      out(y, x) = padded(y + off, x + off);
    }
  }
  return out;
}

Volume<double> crop_volume(const Volume<double>& padded, std::size_t l) {
  const std::size_t big = padded.nx();
  if (!padded.is_cube() || l > big) {
    throw std::invalid_argument("crop_volume: bad sizes");
  }
  const std::size_t off = center_offset(l, big);
  Volume<double> out(l);
  for (std::size_t z = 0; z < l; ++z) {
    for (std::size_t y = 0; y < l; ++y) {
      for (std::size_t x = 0; x < l; ++x) {
        out(z, y, x) = padded(z + off, y + off, x + off);
      }
    }
  }
  return out;
}

}  // namespace por::em
