#include "por/em/pad.hpp"

#include <cstring>
#include <stdexcept>

#include "por/util/contracts.hpp"

namespace por::em {

namespace {

/// Offset that aligns floor(l/2) of the inner lattice with floor(L/2)
/// of the outer one.
std::size_t center_offset(std::size_t l, std::size_t big) {
  return big / 2 - l / 2;
}

}  // namespace

Image<double> pad_image(const Image<double>& img, std::size_t factor) {
  if (factor < 1) throw std::invalid_argument("pad_image: factor must be >= 1");
  const std::size_t l = img.nx();
  if (img.ny() != l) throw std::invalid_argument("pad_image: image not square");
  const std::size_t big = l * factor;
  Image<double> out(big, big, 0.0);
  const std::size_t off = center_offset(l, big);
  for (std::size_t y = 0; y < l; ++y) {
    // Whole x-rows are contiguous in both lattices: one memcpy per row.
    POR_BOUNDS((y + off) * big + off + l - 1, big * big);
    std::memcpy(&out(y + off, off), &img(y, 0), l * sizeof(double));
  }
  return out;
}

Volume<double> pad_volume(const Volume<double>& vol, std::size_t factor) {
  if (factor < 1) throw std::invalid_argument("pad_volume: factor must be >= 1");
  const std::size_t l = vol.nx();
  if (!vol.is_cube()) throw std::invalid_argument("pad_volume: volume not cubic");
  const std::size_t big = l * factor;
  Volume<double> out(big, 0.0);
  const std::size_t off = center_offset(l, big);
  for (std::size_t z = 0; z < l; ++z) {
    for (std::size_t y = 0; y < l; ++y) {
      POR_BOUNDS(((z + off) * big + (y + off)) * big + off + l - 1,
                 big * big * big);
      std::memcpy(&out(z + off, y + off, off), &vol(z, y, 0),
                  l * sizeof(double));
    }
  }
  return out;
}

Image<double> crop_image(const Image<double>& padded, std::size_t l) {
  const std::size_t big = padded.nx();
  if (padded.ny() != big || l > big) {
    throw std::invalid_argument("crop_image: bad sizes");
  }
  const std::size_t off = center_offset(l, big);
  Image<double> out(l, l);
  for (std::size_t y = 0; y < l; ++y) {
    std::memcpy(&out(y, 0), &padded(y + off, off), l * sizeof(double));
  }
  return out;
}

Volume<double> crop_volume(const Volume<double>& padded, std::size_t l) {
  const std::size_t big = padded.nx();
  if (!padded.is_cube() || l > big) {
    throw std::invalid_argument("crop_volume: bad sizes");
  }
  const std::size_t off = center_offset(l, big);
  Volume<double> out(l);
  for (std::size_t z = 0; z < l; ++z) {
    for (std::size_t y = 0; y < l; ++y) {
      std::memcpy(&out(z, y, 0), &padded(z + off, y + off, off),
                  l * sizeof(double));
    }
  }
  return out;
}

}  // namespace por::em
