// por/journal/journal.hpp
//
// por::journal — a CRC-tagged, fsync-disciplined write-ahead journal
// (DESIGN.md §15).  The durable substrate of crash-only serving: the
// RefineService appends every job-lifecycle transition here BEFORE
// acknowledging it, so a process killed at any instant — including
// mid-write, the chaos harness aims SIGKILL inside these very syscall
// sequences — restarts by replaying the journal and loses nothing it
// ever acknowledged.
//
// On-disk layout: a directory of segment files
//
//   <dir>/wal-00000001.porj
//   <dir>/wal-00000002.porj          <- active (append) segment
//
// each starting with a header (magic "PORJ" | u32 version | u64 seq)
// followed by length-prefixed records:
//
//   u32 payload_len | u32 type | payload bytes | u32 crc
//
// where the CRC-32 covers len, type and payload.  Appends go to the
// highest-seq segment; when it exceeds max_segment_bytes the writer
// fsyncs it and starts seq+1 (so every non-final segment is complete
// and fsync'd by construction).  A crash can therefore tear at most
// the TAIL of the FINAL segment; replay() proves each record intact
// via its CRC, keeps the longest valid prefix, and open() atomically
// rewrites a torn final segment down to that prefix (via the PR 5
// atomic_write_file machinery) so the journal is self-healing — it is
// never left unreadable, and a torn tail can never be misparsed as a
// record once appends resume.  A bad record in a NON-final segment
// cannot come from a crash and raises Error{kCorrupt} loudly.
//
// rewrite() is the compaction path: the full logical state is written
// as one fresh segment (atomic temp+fsync+rename), the directory entry
// is fsync'd, and only then are the old segments unlinked — a crash at
// any point leaves either the old segment set or the new one.
//
// Observability: journal.appends, journal.fsyncs, journal.segments
// (gauge), journal.replayed_records, journal.torn_tails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace por::obs {
class Counter;
class Gauge;
}  // namespace por::obs

namespace por::journal {

struct JournalOptions {
  /// Rotate the active segment once its size reaches this.
  std::size_t max_segment_bytes = 4u << 20;
  /// fsync the active segment on every append(..., durable=true) call.
  /// Appends with durable=false are flushed to the kernel (surviving a
  /// process kill) but not fsync'd (an OS crash may drop them); the
  /// service journals job SUBMISSION durably — that is the ack the
  /// client holds us to — and lifecycle transitions cheaply.
  bool fsync_durable_appends = true;
};

/// One replayed record: the type tag and the raw payload bytes.
struct Record {
  std::uint32_t type = 0;
  std::string payload;
};

struct ReplayResult {
  std::vector<Record> records;   ///< every intact record, journal order
  std::uint64_t segments = 0;    ///< segment files scanned
  std::uint64_t torn_bytes = 0;  ///< bytes dropped from a torn final tail
};

class Journal {
 public:
  /// Open (creating the directory if needed), replay existing
  /// segments, self-heal a torn final tail, and position the writer.
  /// The replayed records are available via replayed() until the first
  /// append.  Throws resilience::Error{kCorrupt} for damage that
  /// cannot be a crash tail, kTransient for I/O failures.
  explicit Journal(std::string dir, JournalOptions options = {});
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Records recovered by the constructor's replay (journal order).
  [[nodiscard]] const ReplayResult& replayed() const { return replayed_; }
  /// Release the replay buffer once the owner has consumed it.
  void discard_replayed() { replayed_ = ReplayResult{}; }

  /// Append one record.  `durable` appends are fsync'd before
  /// returning (per options; see JournalOptions) — the caller may
  /// acknowledge the event to its client the moment this returns.
  /// Throws resilience::Error{kTransient} on I/O failure; the journal
  /// is still consistent (the torn tail will be healed on reopen).
  void append(std::uint32_t type, const void* payload, std::size_t bytes,
              bool durable = true);
  void append(std::uint32_t type, const std::string& payload,
              bool durable = true) {
    append(type, payload.data(), payload.size(), durable);
  }

  /// fsync the active segment now (flushes any non-durable appends).
  void sync();

  /// Compaction: atomically replace the whole journal with `records`
  /// as one fresh segment of the next sequence number, then unlink the
  /// retired segments.  Crash-safe at every step.
  void rewrite(const std::vector<Record>& records);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  /// Sequence number of the active segment.
  [[nodiscard]] std::uint64_t active_segment() const { return seq_; }

  /// Read-only replay of a journal directory (tools, tests, and the
  /// constructor).  Same tolerance/corruption rules as the class doc.
  [[nodiscard]] static ReplayResult replay_dir(const std::string& dir);

 private:
  void open_segment(std::uint64_t seq, bool truncate);
  void rotate();
  [[nodiscard]] std::string segment_path(std::uint64_t seq) const;

  std::string dir_;
  JournalOptions options_;
  ReplayResult replayed_;
  std::uint64_t seq_ = 0;           ///< active segment sequence
  std::size_t segment_bytes_ = 0;   ///< bytes written to the active segment
  std::ofstream out_;               ///< active segment stream
  bool dirty_ = false;              ///< unsynced appends outstanding

  obs::Counter* appends_;
  obs::Counter* fsyncs_;
  obs::Counter* replayed_records_;
  obs::Counter* torn_tails_;
  obs::Gauge* segments_gauge_;
};

}  // namespace por::journal
