#include "por/journal/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "por/obs/registry.hpp"
#include "por/resilience/atomic_file.hpp"
#include "por/resilience/crc32.hpp"
#include "por/resilience/error.hpp"
#include "por/resilience/sync_hooks.hpp"
#include "por/util/log.hpp"

namespace por::journal {

namespace fs = std::filesystem;
using resilience::SyncOp;
using resilience::sync_hook_point;

namespace {

constexpr char kMagic[4] = {'P', 'O', 'R', 'J'};
constexpr std::uint32_t kVersion = 1;
/// Header flag: this segment is a compaction snapshot and supersedes
/// every lower-sequence segment (rewrite() crash tolerance: a crash
/// between writing the snapshot and unlinking the old segments must
/// not replay records twice).
constexpr std::uint32_t kSnapshotFlag = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;
/// A frame length beyond this cannot be a real record (the service
/// journals view payloads of at most a few MB); treating garbage
/// lengths as damage instead of allocating them is what keeps a
/// bit-flipped length from becoming a 4 GB allocation.
constexpr std::uint32_t kMaxPayloadBytes = 256u << 20;

constexpr const char* kPrefix = "wal-";
constexpr const char* kSuffix = ".porj";

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof bytes);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, sizeof v);
  out.append(bytes, sizeof bytes);
}

std::string encode_header(std::uint64_t seq, std::uint32_t flags) {
  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof kMagic);
  put_u32(header, kVersion);
  put_u64(header, seq);
  put_u32(header, flags);
  return header;
}

/// One encoded frame: len | type | payload | crc(len,type,payload).
std::string encode_frame(std::uint32_t type, const void* payload,
                         std::size_t bytes) {
  std::string frame;
  frame.reserve(12 + bytes + 4);
  put_u32(frame, static_cast<std::uint32_t>(bytes));
  put_u32(frame, type);
  frame.append(static_cast<const char*>(payload), bytes);
  put_u32(frame, resilience::crc32(frame.data(), frame.size()));
  return frame;
}

struct SegmentInfo {
  std::uint64_t seq = 0;
  std::string path;
  std::uint32_t flags = 0;
  std::vector<Record> records;
  std::uint64_t valid_bytes = 0;  ///< header + intact frames
  std::uint64_t file_bytes = 0;
  bool torn = false;  ///< bytes beyond valid_bytes exist and fail
};

/// Parse one segment file.  `final_segment` selects the tolerance
/// rule: damage in the final segment is a crash tail (kept as `torn`),
/// anywhere else it is corruption and throws.
SegmentInfo scan_segment(const std::string& path, std::uint64_t seq,
                         bool final_segment) {
  SegmentInfo info;
  info.seq = seq;
  info.path = path;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw resilience::transient_error("journal: cannot open segment " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  info.file_bytes = bytes.size();

  const auto damaged = [&](const std::string& why) {
    if (!final_segment) {
      throw resilience::corrupt_error("journal: " + why + " in non-final " +
                                      path);
    }
    info.torn = true;
  };

  if (bytes.size() < kHeaderBytes) {
    // A crash during rotation can leave a header-less final segment.
    damaged("truncated header");
    info.valid_bytes = 0;
    return info;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    // A wrong magic is never a crash artifact — the header is written
    // and flushed before any record.
    throw resilience::corrupt_error("journal: bad magic in " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof version);
  if (version != kVersion) {
    throw resilience::corrupt_error("journal: unsupported version " +
                                    std::to_string(version) + " in " + path);
  }
  std::uint64_t header_seq = 0;
  std::memcpy(&header_seq, bytes.data() + 8, sizeof header_seq);
  if (header_seq != seq) {
    throw resilience::corrupt_error("journal: header seq mismatch in " + path);
  }
  std::memcpy(&info.flags, bytes.data() + 16, sizeof info.flags);

  std::size_t offset = kHeaderBytes;
  info.valid_bytes = offset;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 12) {
      damaged("torn frame header");
      break;
    }
    std::uint32_t payload_len = 0;
    std::memcpy(&payload_len, bytes.data() + offset, sizeof payload_len);
    if (payload_len > kMaxPayloadBytes ||
        bytes.size() - offset < 12 + static_cast<std::size_t>(payload_len)) {
      damaged("torn frame payload");
      break;
    }
    const std::size_t frame_bytes = 8 + payload_len;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + offset + frame_bytes,
                sizeof stored_crc);
    if (resilience::crc32(bytes.data() + offset, frame_bytes) != stored_crc) {
      damaged("frame CRC mismatch");
      break;
    }
    Record record;
    std::memcpy(&record.type, bytes.data() + offset + 4, sizeof record.type);
    record.payload.assign(bytes.data() + offset + 8, payload_len);
    info.records.push_back(std::move(record));
    offset += frame_bytes + 4;
    info.valid_bytes = offset;
  }
  return info;
}

/// Segment files in `dir`, sorted by sequence.  Lower-seq segments
/// superseded by a snapshot are still listed (the caller prunes).
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  if (!fs::exists(dir)) return segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= 4 + 5 ||
        name.substr(name.size() - 5) != kSuffix) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 4 - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    segments.emplace_back(std::stoull(digits), entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

/// Full scan: every live segment parsed, snapshot supersession
/// applied.  Shared by replay_dir and the constructor.
std::vector<SegmentInfo> scan_dir(const std::string& dir) {
  const auto listed = list_segments(dir);
  std::vector<SegmentInfo> segments;
  segments.reserve(listed.size());
  for (std::size_t i = 0; i < listed.size(); ++i) {
    segments.push_back(scan_segment(listed[i].second, listed[i].first,
                                    i + 1 == listed.size()));
  }
  // Snapshot supersession: replay starts at the newest snapshot
  // segment — the records of everything older are already folded in.
  std::size_t first = 0;
  for (std::size_t i = segments.size(); i-- > 0;) {
    if ((segments[i].flags & kSnapshotFlag) != 0) {
      first = i;
      break;
    }
  }
  if (first > 0) segments.erase(segments.begin(),
                                segments.begin() +
                                    static_cast<std::ptrdiff_t>(first));
  return segments;
}

}  // namespace

ReplayResult Journal::replay_dir(const std::string& dir) {
  ReplayResult result;
  for (SegmentInfo& segment : scan_dir(dir)) {
    ++result.segments;
    result.torn_bytes += segment.file_bytes - segment.valid_bytes;
    for (Record& record : segment.records) {
      result.records.push_back(std::move(record));
    }
  }
  return result;
}

std::string Journal::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof name, "wal-%08llu.porj",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Journal::Journal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)), options_(options) {
  obs::MetricsRegistry& registry = obs::current_registry();
  appends_ = &registry.counter("journal.appends");
  fsyncs_ = &registry.counter("journal.fsyncs");
  replayed_records_ = &registry.counter("journal.replayed_records");
  torn_tails_ = &registry.counter("journal.torn_tails");
  segments_gauge_ = &registry.gauge("journal.segments");

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw resilience::transient_error("journal: cannot create " + dir_ +
                                      ": " + ec.message());
  }

  std::vector<SegmentInfo> segments = scan_dir(dir_);

  // Unlink segments a completed compaction superseded but a crash left
  // behind (scan_dir already dropped them from the replay set).
  for (const auto& [seq, path] : list_segments(dir_)) {
    const bool live = std::any_of(
        segments.begin(), segments.end(),
        [s = seq](const SegmentInfo& info) { return info.seq == s; });
    if (!live) {
      sync_hook_point(SyncOp::kRemove, path);
      std::remove(path.c_str());
    }
  }

  for (SegmentInfo& segment : segments) {
    ++replayed_.segments;
    replayed_.torn_bytes += segment.file_bytes - segment.valid_bytes;
    for (Record& record : segment.records) {
      replayed_.records.push_back(std::move(record));
      replayed_records_->add();
    }
  }

  if (segments.empty()) {
    seq_ = 1;
    open_segment(seq_, /*truncate=*/true);
  } else {
    SegmentInfo& last = segments.back();
    seq_ = last.seq;
    if (last.torn || last.file_bytes != last.valid_bytes) {
      // Self-heal: atomically rewrite the final segment down to its
      // intact prefix so resumed appends never abut garbage bytes.
      torn_tails_->add();
      util::log_warn("journal: healed torn tail of ", last.path, " (",
                     last.file_bytes - last.valid_bytes, " bytes dropped)");
      const std::uint32_t flags = last.flags;
      const std::uint64_t seq = last.seq;
      const std::vector<Record> keep = last.records;  // re-encode canonical
      resilience::atomic_write_file(last.path, [&](std::ostream& out) {
        out << encode_header(seq, flags);
        for (const Record& record : keep) {
          out << encode_frame(record.type, record.payload.data(),
                              record.payload.size());
        }
      });
    }
    open_segment(seq_, /*truncate=*/false);
  }
  segments_gauge_->set(static_cast<double>(replayed_.segments == 0
                                               ? 1
                                               : replayed_.segments));
}

Journal::~Journal() {
  try {
    sync();
  } catch (...) {
    // Destructor sync is best-effort; explicit sync()/append() are the
    // calls whose failures matter (and throw).
  }
}

void Journal::open_segment(std::uint64_t seq, bool truncate) {
  const std::string path = segment_path(seq);
  sync_hook_point(SyncOp::kOpen, path);
  if (truncate) {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      throw resilience::transient_error("journal: cannot create " + path);
    }
    const std::string header = encode_header(seq, 0);
    sync_hook_point(SyncOp::kWrite, path);
    out_ << header;
    out_.flush();
    if (!out_) {
      throw resilience::transient_error("journal: header write failed for " +
                                        path);
    }
    // The header (and the directory entry naming the segment) must be
    // durable before any record claims to be: replay classifies a
    // bad header as corruption in a non-final segment.
    sync_hook_point(SyncOp::kFsync, path);
    resilience::fsync_path(path);
    sync_hook_point(SyncOp::kDirFsync, dir_);
    resilience::fsync_path(dir_);
    fsyncs_->add();
    segment_bytes_ = header.size();
  } else {
    out_.open(path, std::ios::binary | std::ios::app);
    if (!out_) {
      throw resilience::transient_error("journal: cannot open " + path);
    }
    std::error_code ec;
    segment_bytes_ = static_cast<std::size_t>(fs::file_size(path, ec));
  }
  dirty_ = false;
}

void Journal::rotate() {
  sync();
  out_.close();
  ++seq_;
  open_segment(seq_, /*truncate=*/true);
  segments_gauge_->set(segments_gauge_->value() + 1.0);
}

void Journal::append(std::uint32_t type, const void* payload,
                     std::size_t bytes, bool durable) {
  if (bytes > kMaxPayloadBytes) {
    throw resilience::fatal_error("journal: record too large: " +
                                  std::to_string(bytes));
  }
  const std::string frame = encode_frame(type, payload, bytes);
  const std::string path = segment_path(seq_);
  sync_hook_point(SyncOp::kWrite, path);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  sync_hook_point(SyncOp::kFlush, path);
  out_.flush();
  if (!out_) {
    throw resilience::transient_error("journal: append failed for " + path);
  }
  appends_->add();
  segment_bytes_ += frame.size();
  dirty_ = true;
  if (durable && options_.fsync_durable_appends) {
    sync_hook_point(SyncOp::kFsync, path);
    if (!resilience::fsync_path(path)) {
      throw resilience::transient_error("journal: fsync failed for " + path);
    }
    fsyncs_->add();
    dirty_ = false;
  }
  if (segment_bytes_ >= options_.max_segment_bytes) rotate();
}

void Journal::sync() {
  if (!dirty_) return;
  const std::string path = segment_path(seq_);
  out_.flush();
  if (!out_) {
    throw resilience::transient_error("journal: flush failed for " + path);
  }
  sync_hook_point(SyncOp::kFsync, path);
  if (!resilience::fsync_path(path)) {
    throw resilience::transient_error("journal: fsync failed for " + path);
  }
  fsyncs_->add();
  dirty_ = false;
}

void Journal::rewrite(const std::vector<Record>& records) {
  // Settle the active segment first so a crash mid-compaction leaves a
  // fully-replayable old journal.
  sync();
  out_.close();

  const std::uint64_t old_seq = seq_;
  const std::uint64_t new_seq = seq_ + 1;
  const std::string path = segment_path(new_seq);
  // Snapshot segments carry the supersession flag: replay starts here
  // even when the unlink pass below never ran (crash window).
  resilience::atomic_write_file(path, [&](std::ostream& out) {
    out << encode_header(new_seq, kSnapshotFlag);
    for (const Record& record : records) {
      out << encode_frame(record.type, record.payload.data(),
                          record.payload.size());
    }
  });

  for (const auto& [seq, segment] : list_segments(dir_)) {
    if (seq > old_seq) continue;
    sync_hook_point(SyncOp::kRemove, segment);
    std::remove(segment.c_str());
  }

  seq_ = new_seq;
  open_segment(seq_, /*truncate=*/false);
  segments_gauge_->set(1.0);
}

}  // namespace por::journal
