#include "por/recon/backprojection.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/interp.hpp"
#include "por/em/projection.hpp"

namespace por::recon {

namespace {

/// Multiply a view's centered spectrum by |k| (2D ramp), normalized so
/// the filter is 1 at half the Nyquist radius.
em::Image<double> ramp_filter(const em::Image<double>& view) {
  em::Image<em::cdouble> spectrum = em::centered_fft2(view);
  const std::size_t n = view.nx();
  const double c = std::floor(static_cast<double>(n) / 2.0);
  const double norm_radius = static_cast<double>(n) / 4.0;
  for (std::size_t y = 0; y < n; ++y) {
    const double ky = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < n; ++x) {
      const double kx = static_cast<double>(x) - c;
      spectrum(y, x) *= std::sqrt(kx * kx + ky * ky) / norm_radius;
    }
  }
  return em::centered_ifft2(spectrum);
}

}  // namespace

em::Volume<double> backproject(const std::vector<em::Image<double>>& views,
                               const std::vector<em::Orientation>& orientations,
                               const BackprojectOptions& options) {
  if (views.empty() || views.size() != orientations.size()) {
    throw std::invalid_argument("backproject: bad views/orientations");
  }
  const std::size_t l = views.front().nx();
  em::Volume<double> volume(l, 0.0);
  const double c = std::floor(static_cast<double>(l) / 2.0);

  for (std::size_t i = 0; i < views.size(); ++i) {
    const em::Image<double> view =
        options.ramp_filter ? ramp_filter(views[i]) : views[i];
    const em::Image<em::cdouble> cview = em::to_complex(view);
    const em::Mat3 r = em::rotation_matrix(orientations[i]);
    const em::Vec3 eu = r * em::Vec3{1, 0, 0};
    const em::Vec3 ev = r * em::Vec3{0, 1, 0};
    for (std::size_t z = 0; z < l; ++z) {
      const double pz = static_cast<double>(z) - c;
      for (std::size_t y = 0; y < l; ++y) {
        const double py = static_cast<double>(y) - c;
        for (std::size_t x = 0; x < l; ++x) {
          const double px = static_cast<double>(x) - c;
          const em::Vec3 p{px, py, pz};
          // View-plane coordinates of this voxel.
          const double u = eu.dot(p) + c;
          const double v = ev.dot(p) + c;
          volume(z, y, x) += em::interp_bilinear(cview, v, u).real();
        }
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(views.size());
  for (double& value : volume.storage()) value *= scale;
  return volume;
}

}  // namespace por::recon
