// por/recon/parallel_recon.hpp
//
// Distributed-memory driver for the Fourier reconstruction: each rank
// splats the views it owns into a private accumulation grid, the grids
// are summed with an allreduce, and every rank finishes the identical
// map (replication mirrors the paper's decision to keep a full copy of
// the density and its DFT on every node).
#pragma once

#include <vector>

#include "por/recon/fourier_recon.hpp"
#include "por/vmpi/comm.hpp"

namespace por::recon {

/// SPMD collective: every rank passes ITS OWN views/orientations/
/// centers (block partition); the returned map is complete and
/// identical on every rank.  `l` is the view edge (needed because a
/// rank may own zero views).
[[nodiscard]] em::Volume<double> parallel_fourier_reconstruct(
    vmpi::Comm& comm, std::size_t l,
    const std::vector<em::Image<double>>& my_views,
    const std::vector<em::Orientation>& my_orientations,
    const std::vector<std::pair<double, double>>& my_centers = {},
    const ReconOptions& options = {});

}  // namespace por::recon
