// por/recon/fourier_recon.hpp
//
// 3D reconstruction of the electron density in Cartesian coordinates
// (the paper's step C; companion algorithm of refs [18], [20]): every
// view's centered 2D spectrum is inserted as a central section into an
// oversampled 3D Fourier accumulation grid by trilinear splatting,
// the grid is weight-normalized, and an inverse 3D DFT followed by a
// crop returns the density map.  Works for any orientation set — no
// symmetry is assumed, matching the paper's "reconstruction in
// Cartesian coordinates for objects without symmetry".
#pragma once

#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"
#include "por/em/pad.hpp"

namespace por::recon {

struct ReconOptions {
  std::size_t pad = em::kDefaultPad;  ///< oversampling factor
  double r_max = 0.0;     ///< insertion radius in padded Fourier px (0 = auto)
  double weight_floor = 1e-3;  ///< voxels with less accumulated weight stay 0

  /// Worker count for the Fourier transforms (view spectra in insert,
  /// the padded inverse 3D DFT in finish): fft::FftOptions::threads —
  /// 1 = serial (default), 0 = hardware concurrency.  Results are
  /// bit-identical for every setting.
  std::size_t fft_threads = 1;
};

/// Accumulation grids for incremental insertion; exposed so the
/// distributed driver can reduce partial sums across ranks.
struct FourierAccumulator {
  FourierAccumulator(std::size_t l, const ReconOptions& options);

  /// Insert one view: image `view` (l x l) whose particle center sits
  /// at floor(l/2) + (center_x, center_y) and whose projection
  /// orientation is `o`.
  void insert(const em::Image<double>& view, const em::Orientation& o,
              double center_x = 0.0, double center_y = 0.0);

  /// Insert an already-computed centered padded spectrum.
  void insert_spectrum(const em::Image<em::cdouble>& spectrum,
                       const em::Orientation& o);

  /// Normalize, inverse-transform and crop to the original edge l.
  [[nodiscard]] em::Volume<double> finish() const;

  /// Element-wise merge of another accumulator (for tree reductions).
  void merge(const FourierAccumulator& other);

  std::size_t l;                       ///< original (cropped) edge
  ReconOptions options;
  em::Volume<em::cdouble> values;      ///< padded sum of splatted samples
  em::Volume<double> weights;          ///< padded sum of splat weights
  std::size_t view_count = 0;
};

/// One-call reconstruction from views + orientations (+ optional
/// per-view centers, which may be empty).  `l` is the view edge.
[[nodiscard]] em::Volume<double> fourier_reconstruct(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& orientations,
    const std::vector<std::pair<double, double>>& centers = {},
    const ReconOptions& options = {});

}  // namespace por::recon
