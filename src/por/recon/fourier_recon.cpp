#include "por/recon/fourier_recon.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/projection.hpp"

namespace por::recon {

FourierAccumulator::FourierAccumulator(std::size_t edge,
                                       const ReconOptions& opts)
    : l(edge), options(opts) {
  if (options.pad < 1) {
    throw std::invalid_argument("FourierAccumulator: pad must be >= 1");
  }
  const std::size_t big = l * options.pad;
  values = em::Volume<em::cdouble>(big, em::cdouble{0.0, 0.0});
  weights = em::Volume<double>(big, 0.0);
  if (options.r_max <= 0.0) {
    options.r_max = static_cast<double>(big) / 2.0 - 1.0;
  }
}

void FourierAccumulator::insert(const em::Image<double>& view,
                                const em::Orientation& o, double center_x,
                                double center_y) {
  if (view.nx() != l || view.ny() != l) {
    throw std::invalid_argument("FourierAccumulator::insert: view size");
  }
  em::Image<em::cdouble> spectrum =
      em::centered_fft2(em::pad_image(view, options.pad),
                        fft::FftOptions{options.fft_threads});
  // por-lint: allow(float-eq) exact-zero center skips the phase ramp
  // entirely (bit-identical fast path for centered particles).
  if (center_x != 0.0 || center_y != 0.0) {
    // The particle sits at +(cx, cy) off the box center; translating
    // the image by (-cx, -cy) re-centers it.
    em::apply_translation_phase(spectrum, -center_x, -center_y);
  }
  insert_spectrum(spectrum, o);
}

void FourierAccumulator::insert_spectrum(const em::Image<em::cdouble>& spectrum,
                                         const em::Orientation& o) {
  const std::size_t big = values.nx();
  if (spectrum.nx() != big || spectrum.ny() != big) {
    throw std::invalid_argument(
        "FourierAccumulator::insert_spectrum: spectrum size");
  }
  const em::Mat3 r = em::rotation_matrix(o);
  const em::Vec3 eu = r * em::Vec3{1, 0, 0};
  const em::Vec3 ev = r * em::Vec3{0, 1, 0};
  const double c = std::floor(static_cast<double>(big) / 2.0);
  const long nbig = static_cast<long>(big);

  for (std::size_t y = 0; y < big; ++y) {
    const double kv = static_cast<double>(y) - c;
    for (std::size_t x = 0; x < big; ++x) {
      const double ku = static_cast<double>(x) - c;
      if (std::sqrt(ku * ku + kv * kv) > options.r_max) continue;
      const em::cdouble sample = spectrum(y, x);
      const em::Vec3 q = ku * eu + kv * ev;
      const double pz = q.z + c, py = q.y + c, px = q.x + c;
      const long iz = static_cast<long>(std::floor(pz));
      const long iy = static_cast<long>(std::floor(py));
      const long ix = static_cast<long>(std::floor(px));
      const double tz = pz - static_cast<double>(iz);
      const double ty = py - static_cast<double>(iy);
      const double tx = px - static_cast<double>(ix);
      for (int dz = 0; dz < 2; ++dz) {
        const long zz = iz + dz;
        if (zz < 0 || zz >= nbig) continue;
        const double wz = dz ? tz : 1.0 - tz;
        for (int dy = 0; dy < 2; ++dy) {
          const long yy = iy + dy;
          if (yy < 0 || yy >= nbig) continue;
          const double wy = dy ? ty : 1.0 - ty;
          for (int dx = 0; dx < 2; ++dx) {
            const long xx = ix + dx;
            if (xx < 0 || xx >= nbig) continue;
            const double w = wz * wy * (dx ? tx : 1.0 - tx);
            // por-lint: allow(float-eq) exact-zero weight skip
            if (w == 0.0) continue;
            values(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
                   static_cast<std::size_t>(xx)) += w * sample;
            weights(static_cast<std::size_t>(zz), static_cast<std::size_t>(yy),
                    static_cast<std::size_t>(xx)) += w;
          }
        }
      }
    }
  }
  ++view_count;
}

em::Volume<double> FourierAccumulator::finish() const {
  const std::size_t big = values.nx();
  em::Volume<em::cdouble> normalized(big, em::cdouble{0.0, 0.0});
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    const double w = weights.storage()[i];
    if (w >= options.weight_floor) {
      normalized.storage()[i] = values.storage()[i] / w;
    }
  }
  const em::Volume<double> padded =
      em::centered_ifft3(normalized, fft::FftOptions{options.fft_threads});
  // No extra scale: by the discrete projection-slice theorem the 2D
  // DFT of a projection equals the corresponding central section of
  // the 3D DFT sample-for-sample, so the weight-normalized grid IS an
  // estimate of the volume's DFT and the inverse transform restores
  // density units directly (verified against rasterized phantoms in
  // tests/test_recon.cpp).
  return em::crop_volume(padded, l);
}

void FourierAccumulator::merge(const FourierAccumulator& other) {
  if (other.values.size() != values.size()) {
    throw std::invalid_argument("FourierAccumulator::merge: size mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    values.storage()[i] += other.values.storage()[i];
    weights.storage()[i] += other.weights.storage()[i];
  }
  view_count += other.view_count;
}

em::Volume<double> fourier_reconstruct(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& orientations,
    const std::vector<std::pair<double, double>>& centers,
    const ReconOptions& options) {
  if (views.empty()) {
    throw std::invalid_argument("fourier_reconstruct: no views");
  }
  if (views.size() != orientations.size()) {
    throw std::invalid_argument("fourier_reconstruct: views/orientations");
  }
  if (!centers.empty() && centers.size() != views.size()) {
    throw std::invalid_argument("fourier_reconstruct: centers size");
  }
  FourierAccumulator acc(views.front().nx(), options);
  for (std::size_t i = 0; i < views.size(); ++i) {
    const double cx = centers.empty() ? 0.0 : centers[i].first;
    const double cy = centers.empty() ? 0.0 : centers[i].second;
    acc.insert(views[i], orientations[i], cx, cy);
  }
  return acc.finish();
}

}  // namespace por::recon
