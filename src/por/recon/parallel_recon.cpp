#include "por/recon/parallel_recon.hpp"

#include <cstring>
#include <stdexcept>

namespace por::recon {

em::Volume<double> parallel_fourier_reconstruct(
    vmpi::Comm& comm, std::size_t l,
    const std::vector<em::Image<double>>& my_views,
    const std::vector<em::Orientation>& my_orientations,
    const std::vector<std::pair<double, double>>& my_centers,
    const ReconOptions& options) {
  if (my_views.size() != my_orientations.size()) {
    throw std::invalid_argument(
        "parallel_fourier_reconstruct: views/orientations");
  }
  FourierAccumulator acc(l, options);
  for (std::size_t i = 0; i < my_views.size(); ++i) {
    const double cx = my_centers.empty() ? 0.0 : my_centers[i].first;
    const double cy = my_centers.empty() ? 0.0 : my_centers[i].second;
    acc.insert(my_views[i], my_orientations[i], cx, cy);
  }
  // Element-wise sum of every rank's grids; complex values reduce as
  // interleaved doubles.
  static_assert(sizeof(em::cdouble) == 2 * sizeof(double));
  std::vector<double> flat(acc.values.size() * 2 + acc.weights.size());
  for (std::size_t i = 0; i < acc.values.size(); ++i) {
    flat[2 * i] = acc.values.storage()[i].real();
    flat[2 * i + 1] = acc.values.storage()[i].imag();
  }
  std::copy(acc.weights.storage().begin(), acc.weights.storage().end(),
            flat.begin() + static_cast<std::ptrdiff_t>(acc.values.size() * 2));
  flat = comm.allreduce(flat, vmpi::ReduceOp::kSum);
  for (std::size_t i = 0; i < acc.values.size(); ++i) {
    acc.values.storage()[i] = em::cdouble(flat[2 * i], flat[2 * i + 1]);
  }
  std::copy(flat.begin() + static_cast<std::ptrdiff_t>(acc.values.size() * 2),
            flat.end(), acc.weights.storage().begin());
  return acc.finish();
}

}  // namespace por::recon
