// por/recon/backprojection.hpp
//
// Real-space weighted backprojection — the classical CAT-style
// reconstruction (paper refs [13], [16]) kept as a baseline to compare
// against the Fourier-inversion method on quality and cost.  Each view
// is smeared back through the volume along its projection axis; the
// optional ramp filter compensates the 1/|k| oversampling of low
// frequencies that plain backprojection suffers from.
#pragma once

#include <vector>

#include "por/em/grid.hpp"
#include "por/em/orientation.hpp"

namespace por::recon {

struct BackprojectOptions {
  bool ramp_filter = true;  ///< pre-filter views with |k| (filtered BP)
};

/// Reconstruct an l^3 volume from l x l views (l = view edge).
[[nodiscard]] em::Volume<double> backproject(
    const std::vector<em::Image<double>>& views,
    const std::vector<em::Orientation>& orientations,
    const BackprojectOptions& options = {});

}  // namespace por::recon
