// por/vmpi/comm.hpp
//
// vmpi: an in-process message-passing runtime with MPI semantics.
//
// The paper targets a distributed-memory machine (a 64-node IBM SP2,
// MPI); this host has one core and no MPI installation, so the runtime
// executes the *identical* communication structure in-process: ranks
// are threads, every rank owns private buffers, and ALL data sharing
// happens through explicit, byte-copied messages.  Nothing is shared by
// pointer, so an algorithm written against vmpi is a distributed-memory
// algorithm — the paper's slab exchanges, all-gathers and master-node
// I/O map one-to-one, and TrafficStats records exactly what a wire
// would carry.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "por/vmpi/fault.hpp"
#include "por/vmpi/traffic.hpp"

namespace por::vmpi {

/// Reduction operators understood by reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

namespace detail {

/// Shared state for the ranks of one Runtime: mailboxes, a barrier and
/// the installed fault-injection plan.  Not part of the public API.
struct Context {
  explicit Context(int nranks, FaultPlan fault_plan = {})
      : size(nranks), plan(std::move(fault_plan)), traffic(nranks) {}

  struct Key {
    int src;
    int dst;
    Tag tag;
    auto operator<=>(const Key&) const = default;
  };

  const int size;
  std::mutex mutex;
  std::condition_variable message_arrived;
  std::map<Key, std::deque<std::vector<std::byte>>> mailboxes;

  // Sense-reversing barrier.
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;

  // Fault injection (por/vmpi/fault.hpp): the plan is immutable for
  // the runtime's life; the per-channel send ordinals live under
  // `mutex` (the send path already holds it); the injected-fault
  // counters are relaxed atomics read after join (same policy as
  // TrafficStats).
  const FaultPlan plan;
  std::map<Key, std::uint64_t> send_seq;
  std::atomic<std::uint64_t> faults_dropped{0};
  std::atomic<std::uint64_t> faults_delayed{0};
  std::atomic<std::uint64_t> faults_corrupted{0};
  std::atomic<std::uint64_t> faults_killed{0};
  std::atomic<std::uint64_t> recv_timeouts{0};

  TrafficStats traffic;
};

}  // namespace detail

// Reserved internal tags; user tags should be non-negative.
// kBarrierTag never travels in a message; it only labels barrier
// timeouts in CommTimeout.
inline constexpr Tag kBarrierTag = -7;
inline constexpr Tag kBcastTag = -1;
inline constexpr Tag kScatterTag = -2;
inline constexpr Tag kGatherTag = -3;
inline constexpr Tag kAllgatherTag = -4;
inline constexpr Tag kAlltoallTag = -5;
inline constexpr Tag kReduceTag = -6;

/// A rank's handle to the communicator.  One Comm per rank; methods are
/// called only from that rank's thread (like an MPI communicator).
///
/// CONTRACT: ranks passed to send/recv lie in [0, size()) and tags are
/// either user tags (>= 0) or one of the reserved collective tags in
/// [kReduceTag, -1] — checked by POR_EXPECT in comm.cpp; typed
/// payload/element-size agreement is additionally enforced in every
/// build via throw_payload_mismatch.
class Comm {
 public:
  Comm(detail::Context& context, int rank) : context_(context), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return context_.size; }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  [[nodiscard]] TrafficStats& traffic() { return context_.traffic; }

  // ---- resilience -------------------------------------------------------

  /// Default deadline applied to every blocking receive on this rank
  /// (and therefore to every collective, which is built from receives).
  /// Zero means "block forever" — the pre-resilience behavior and the
  /// default.  When set, a receive that waits longer throws CommTimeout
  /// instead of hanging on a dead peer.
  void set_deadline(std::chrono::milliseconds deadline) {
    deadline_ = deadline;
  }
  [[nodiscard]] std::chrono::milliseconds deadline() const {
    return deadline_;
  }

  /// Fault-plan kill hook: drivers call this between work items (the
  /// paper's per-view steps d-l); throws RankKilled when the installed
  /// plan kills this rank at or before `step`.  No-op without a plan.
  void fault_point(std::uint64_t step);

  /// Totals of faults injected so far across the whole runtime.
  [[nodiscard]] FaultStats fault_stats() const {
    // por-atomic: monitor — diagnostics snapshot; each counter may lag
    return FaultStats{
        context_.faults_dropped.load(std::memory_order_relaxed),
        context_.faults_delayed.load(std::memory_order_relaxed),
        context_.faults_corrupted.load(std::memory_order_relaxed),
        context_.faults_killed.load(std::memory_order_relaxed),
        context_.recv_timeouts.load(std::memory_order_relaxed)};
  }

  // ---- point-to-point ---------------------------------------------------

  /// Copy `bytes` into rank `dst`'s mailbox under `tag`.  Buffered,
  /// non-blocking (like MPI_Bsend); self-sends are allowed.
  void send_bytes(int dst, Tag tag, const void* data, std::size_t bytes);

  /// Block until a message from `src` with `tag` arrives; return its
  /// payload.  Messages between a fixed (src, dst, tag) triple are
  /// delivered in send order.  Honors the rank's default deadline
  /// (set_deadline): throws CommTimeout once it expires.
  [[nodiscard]] std::vector<std::byte> recv_bytes(int src, Tag tag);

  /// Block until a message with `tag` arrives from ANY source (the
  /// MPI_ANY_SOURCE pattern); `src` receives the sender's rank.  Used
  /// by request servers (e.g. the shared-virtual-memory brick store)
  /// that cannot know who will ask next.  Honors the default deadline.
  [[nodiscard]] std::vector<std::byte> recv_any_bytes(Tag tag, int& src);

  /// Wait up to `timeout` for a message with `tag` from any source;
  /// returns std::nullopt on expiry instead of throwing.  `timeout`
  /// <= 0 is a non-blocking mailbox poll.  This is the master's
  /// heartbeat listen primitive: silence is an observable outcome, not
  /// an error.
  [[nodiscard]] std::optional<std::vector<std::byte>> try_recv_any_bytes(
      Tag tag, int& src, std::chrono::milliseconds timeout);

  /// Typed convenience wrappers (trivially copyable element types).
  template <typename T>
  void send(int dst, Tag tag, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  void send_value(int dst, Tag tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, &value, sizeof(T));
  }

  template <typename T>
  [[nodiscard]] std::vector<T> recv(int src, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = recv_bytes(src, tag);
    if (raw.size() % sizeof(T) != 0) {
      throw_payload_mismatch(src, tag, raw.size(), sizeof(T));
    }
    std::vector<T> out(raw.size() / sizeof(T));
    // Guard the empty-message case: memcpy with null src/dst is UB
    // even at zero length.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  [[nodiscard]] T recv_value(int src, Tag tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = recv_bytes(src, tag);
    if (raw.size() != sizeof(T)) {
      throw_payload_mismatch(src, tag, raw.size(), sizeof(T));
    }
    T value{};
    std::memcpy(&value, raw.data(), sizeof(T));
    return value;
  }

  /// Typed try_recv_any_bytes: one value of T from any source, or
  /// std::nullopt after `timeout` of silence.
  template <typename T>
  [[nodiscard]] std::optional<T> try_recv_any_value(
      Tag tag, int& src, std::chrono::milliseconds timeout) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = try_recv_any_bytes(tag, src, timeout);
    if (!raw) return std::nullopt;
    if (raw->size() != sizeof(T)) {
      throw_payload_mismatch(src, tag, raw->size(), sizeof(T));
    }
    T value{};
    std::memcpy(&value, raw->data(), sizeof(T));
    return value;
  }

  // ---- collectives (all built on the point-to-point layer) --------------

  /// Block until every rank has entered the barrier.
  void barrier();

  /// Root's `data` is copied to every rank (root fan-out, like a flat
  /// MPI_Bcast tree of depth 1 — matches the paper's master-node model).
  template <typename T>
  void bcast(int root, std::vector<T>& data);

  /// Root splits `all` into `size()` equal contiguous chunks (all.size()
  /// must be divisible) and sends chunk r to rank r; returns this rank's
  /// chunk.  This is the paper's step (a.2): the master distributes one
  /// z-slab of the density map to each node.
  template <typename T>
  [[nodiscard]] std::vector<T> scatter(int root, const std::vector<T>& all);

  /// Variable-size scatter: root sends chunks[r] to rank r.
  template <typename T>
  [[nodiscard]] std::vector<T> scatterv(
      int root, const std::vector<std::vector<T>>& chunks);

  /// Root receives every rank's `mine` concatenated in rank order.
  /// Non-root ranks get an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> gather(int root, const std::vector<T>& mine);

  /// Every rank receives the concatenation of all contributions in rank
  /// order.  This is the paper's step (a.6): "each node broadcasts its
  /// y-slab; after the all-gather each node has a copy of the entire
  /// 3D DFT".  Ring algorithm: P-1 rounds, each rank forwarding blocks.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(const std::vector<T>& mine);

  /// Personalized all-to-all: `outgoing[r]` goes to rank r; returns the
  /// incoming blocks in rank order.  This is the paper's step (a.4)
  /// global exchange turning z-slabs into y-slabs mid-3D-FFT.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoall(
      const std::vector<std::vector<T>>& outgoing);

  /// Element-wise reduction to the root (vector lengths must match on
  /// every rank).  Non-root ranks get an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> reduce(int root, const std::vector<T>& mine,
                                      ReduceOp op);

  /// Element-wise reduction delivered to every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allreduce(const std::vector<T>& mine,
                                         ReduceOp op);

  /// Scalar convenience allreduce.
  template <typename T>
  [[nodiscard]] T allreduce_value(const T& mine, ReduceOp op) {
    return allreduce(std::vector<T>{mine}, op).at(0);
  }

 private:
  /// A typed receive saw a payload whose byte count does not fit the
  /// element type — a malformed message that recv<T> used to truncate
  /// silently.  Throws std::runtime_error with src/tag context.
  [[noreturn]] void throw_payload_mismatch(int src, Tag tag,
                                           std::size_t payload_bytes,
                                           std::size_t element_bytes) const;

  template <typename T>
  static void apply_op(std::vector<T>& acc, const std::vector<T>& in,
                       ReduceOp op);

  detail::Context& context_;
  const int rank_;
  std::chrono::milliseconds deadline_{0};  ///< 0 = block forever
};

// ---- template implementations --------------------------------------------

template <typename T>
void Comm::bcast(int root, std::vector<T>& data) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    data = recv<T>(root, kBcastTag);
  }
}

template <typename T>
std::vector<T> Comm::scatter(int root, const std::vector<T>& all) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    const std::size_t chunk = all.size() / size();
    std::vector<T> mine;
    for (int r = 0; r < size(); ++r) {
      std::vector<T> piece(all.begin() + r * chunk,
                           all.begin() + (r + 1) * chunk);
      if (r == root) {
        mine = std::move(piece);
      } else {
        send(r, kScatterTag, piece);
      }
    }
    return mine;
  }
  return recv<T>(root, kScatterTag);
}

template <typename T>
std::vector<T> Comm::scatterv(int root,
                              const std::vector<std::vector<T>>& chunks) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    std::vector<T> mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        mine = chunks[r];
      } else {
        send(r, kScatterTag, chunks[r]);
      }
    }
    return mine;
  }
  return recv<T>(root, kScatterTag);
}

template <typename T>
std::vector<T> Comm::gather(int root, const std::vector<T>& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    std::vector<T> all;
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        all.insert(all.end(), mine.begin(), mine.end());
      } else {
        auto piece = recv<T>(r, kGatherTag);
        all.insert(all.end(), piece.begin(), piece.end());
      }
    }
    return all;
  }
  send(root, kGatherTag, mine);
  return {};
}

template <typename T>
std::vector<T> Comm::allgather(const std::vector<T>& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (p == 1) return mine;
  // Ring all-gather: in round k each rank sends the block it received
  // k rounds ago to its right neighbour.  P-1 rounds, total traffic per
  // rank = (P-1) * block, the classic bandwidth-optimal schedule.
  std::vector<std::vector<T>> blocks(p);
  blocks[rank_] = mine;
  const int right = (rank_ + 1) % p;
  const int left = (rank_ + p - 1) % p;
  int have = rank_;  // index of the newest block we hold
  for (int round = 0; round < p - 1; ++round) {
    send(right, kAllgatherTag, blocks[have]);
    const int incoming = (left - round % p + p) % p;
    blocks[incoming] = recv<T>(left, kAllgatherTag);
    have = incoming;
  }
  std::vector<T> all;
  for (int r = 0; r < p; ++r) {
    all.insert(all.end(), blocks[r].begin(), blocks[r].end());
  }
  return all;
}

template <typename T>
std::vector<std::vector<T>> Comm::alltoall(
    const std::vector<std::vector<T>>& outgoing) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  std::vector<std::vector<T>> incoming(p);
  incoming[rank_] = outgoing[rank_];
  // Pairwise exchange schedule to avoid mailbox ordering hazards.
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    send(r, kAlltoallTag, outgoing[r]);
  }
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    incoming[r] = recv<T>(r, kAlltoallTag);
  }
  return incoming;
}

template <typename T>
void Comm::apply_op(std::vector<T>& acc, const std::vector<T>& in,
                    ReduceOp op) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] = acc[i] + in[i]; break;
      case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
      case ReduceOp::kMax: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
    }
  }
}

template <typename T>
std::vector<T> Comm::reduce(int root, const std::vector<T>& mine,
                            ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    std::vector<T> acc = mine;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      auto piece = recv<T>(r, kReduceTag);
      apply_op(acc, piece, op);
    }
    return acc;
  }
  send(root, kReduceTag, mine);
  return {};
}

template <typename T>
std::vector<T> Comm::allreduce(const std::vector<T>& mine, ReduceOp op) {
  std::vector<T> result = reduce(0, mine, op);
  bcast(0, result);
  return result;
}

}  // namespace por::vmpi
