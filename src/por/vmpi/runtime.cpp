#include "por/vmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace por::vmpi {

RunReport run(int nranks, const std::function<void(Comm&)>& rank_main) {
  return run(nranks, FaultPlan{}, rank_main, nullptr);
}

RunReport run(int nranks, const FaultPlan& plan,
              const std::function<void(Comm&)>& rank_main,
              FaultStats* stats) {
  if (nranks < 1) throw std::invalid_argument("vmpi::run: nranks must be >= 1");

  detail::Context context(nranks, plan);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto rank_body = [&](int rank) {
    Comm comm(context, rank);
    try {
      rank_main(comm);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (nranks == 1) {
    rank_body(0);
  } else {
    std::vector<std::thread> ranks;
    ranks.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
      ranks.emplace_back(rank_body, r);
    }
    for (auto& thread : ranks) thread.join();
  }

  if (stats != nullptr) {
    *stats = FaultStats{
        context.faults_dropped.load(),   context.faults_delayed.load(),
        context.faults_corrupted.load(), context.faults_killed.load(),
        context.recv_timeouts.load()};
  }

  if (first_error) std::rethrow_exception(first_error);

  return RunReport{context.traffic.messages(), context.traffic.bytes(),
                   context.traffic.barriers()};
}

}  // namespace por::vmpi
