#include "por/vmpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace por::vmpi {

RunReport run(int nranks, const std::function<void(Comm&)>& rank_main) {
  if (nranks < 1) throw std::invalid_argument("vmpi::run: nranks must be >= 1");

  detail::Context context(nranks);

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto rank_body = [&](int rank) {
    Comm comm(context, rank);
    try {
      rank_main(comm);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (nranks == 1) {
    rank_body(0);
  } else {
    std::vector<std::thread> ranks;
    ranks.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
      ranks.emplace_back(rank_body, r);
    }
    for (auto& thread : ranks) thread.join();
  }

  if (first_error) std::rethrow_exception(first_error);

  return RunReport{context.traffic.messages(), context.traffic.bytes(),
                   context.traffic.barriers()};
}

}  // namespace por::vmpi
