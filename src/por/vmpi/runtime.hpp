// por/vmpi/runtime.hpp
//
// Launch a fixed-size group of vmpi ranks and run an SPMD function on
// each, blocking until all ranks return — the in-process equivalent of
// `mpirun -np P ./program`.
#pragma once

#include <functional>

#include "por/vmpi/comm.hpp"

namespace por::vmpi {

/// Aggregate result of one SPMD run.
struct RunReport {
  std::uint64_t messages = 0;  ///< point-to-point messages sent
  std::uint64_t bytes = 0;     ///< payload bytes transferred
  std::uint64_t barriers = 0;  ///< completed barrier episodes
};

/// Spawn `nranks` threads, hand each a Comm bound to its rank, run
/// `rank_main` on every rank, and join.  Exceptions thrown by any rank
/// are captured and the first one is rethrown on the caller's thread
/// after all ranks finish (a rank that throws mid-collective would
/// deadlock its peers in real MPI too; tests exercise only the
/// rethrow-after-completion contract).
///
/// Returns the communication totals for the run.
RunReport run(int nranks, const std::function<void(Comm&)>& rank_main);

/// Same, with a fault-injection plan installed for the runtime's life
/// (por/vmpi/fault.hpp): drop/delay/corrupt rules apply to every
/// matching send, kill rules arm Comm::fault_point.  `stats`, when
/// non-null, receives the injected-fault totals after the join.
RunReport run(int nranks, const FaultPlan& plan,
              const std::function<void(Comm&)>& rank_main,
              FaultStats* stats = nullptr);

}  // namespace por::vmpi
