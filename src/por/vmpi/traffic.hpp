// por/vmpi/traffic.hpp
//
// Communication accounting for the vmpi runtime.
//
// The paper's central parallelization decision (§6) is to *replicate*
// the 3D DFT on every node to reduce communication, instead of a
// shared-virtual-memory scheme that ships bricks on demand.  To let the
// reproduction discuss that trade-off quantitatively on a single-core
// host, every point-to-point transfer is counted here; collectives are
// built from point-to-point sends so their cost decomposes naturally.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace por::vmpi {

/// Byte/message counters, shared by all ranks of one Runtime instance.
class TrafficStats {
 public:
  void record_send(std::size_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void record_barrier() { barriers_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t messages() const { return messages_.load(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_.load(); }
  [[nodiscard]] std::uint64_t barriers() const { return barriers_.load(); }

  void reset() {
    messages_.store(0);
    bytes_.store(0);
    barriers_.store(0);
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> barriers_{0};
};

}  // namespace por::vmpi
