// por/vmpi/traffic.hpp
//
// Communication accounting for the vmpi runtime.
// por-atomic-file: stat — every atomic here is an independent traffic
// counter; readers make no cross-counter ordering claims.
//
// The paper's central parallelization decision (§6) is to *replicate*
// the 3D DFT on every node to reduce communication, instead of a
// shared-virtual-memory scheme that ships bricks on demand.  To let the
// reproduction discuss that trade-off quantitatively on a single-core
// host, every point-to-point transfer is counted here; collectives are
// built from point-to-point sends so their cost decomposes naturally.
//
// Counters exist at two granularities: run totals (messages/bytes/
// barriers) and per-sending-rank totals, which the por::obs run report
// folds into per-rank registries so rank imbalance is visible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace por::vmpi {

/// Byte/message counters, shared by all ranks of one Runtime instance.
class TrafficStats {
 public:
  /// `nranks` sizes the per-rank send accounting (0 disables it).
  explicit TrafficStats(int nranks = 0)
      : rank_messages_(static_cast<std::size_t>(nranks)),
        rank_bytes_(static_cast<std::size_t>(nranks)) {}

  void record_send(int src_rank, std::size_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    const auto r = static_cast<std::size_t>(src_rank);
    if (r < rank_messages_.size()) {
      rank_messages_[r].fetch_add(1, std::memory_order_relaxed);
      rank_bytes_[r].fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  void record_barrier() { barriers_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t messages() const { return messages_.load(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_.load(); }
  [[nodiscard]] std::uint64_t barriers() const { return barriers_.load(); }

  /// Messages/bytes SENT by `rank` (0 when per-rank accounting is off
  /// or the rank is out of range).
  [[nodiscard]] std::uint64_t rank_messages(int rank) const {
    const auto r = static_cast<std::size_t>(rank);
    return r < rank_messages_.size() ? rank_messages_[r].load() : 0;
  }
  [[nodiscard]] std::uint64_t rank_bytes(int rank) const {
    const auto r = static_cast<std::size_t>(rank);
    return r < rank_bytes_.size() ? rank_bytes_[r].load() : 0;
  }

  void reset() {
    messages_.store(0);
    bytes_.store(0);
    barriers_.store(0);
    for (auto& m : rank_messages_) m.store(0);
    for (auto& b : rank_bytes_) b.store(0);
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> barriers_{0};
  std::vector<std::atomic<std::uint64_t>> rank_messages_;
  std::vector<std::atomic<std::uint64_t>> rank_bytes_;
};

}  // namespace por::vmpi
