// por/vmpi/fault.hpp
//
// Deterministic fault injection for the vmpi runtime (por::resilience,
// DESIGN.md §10).  A FaultPlan is a declarative list of failure modes
// installed when the runtime is created; the communicator consults it
// on every send, so every failure a production cluster can produce —
// a lost message, a late message, a flipped bit on the wire, a node
// that dies mid-step — is reproducible in a unit test:
//
//   FaultPlan plan;
//   plan.drop(0, 1, /*tag=*/7, /*seq=*/0);     // first 0->1 tag-7 message lost
//   plan.delay(kAnyRank, 2, kAnyTag, kAnySeq, 50ms);
//   plan.corrupt(3, 0, kAnyTag, 2);            // 3rd 3->0 message bit-flipped
//   plan.kill_rank_at_step(1, 4);              // rank 1 dies at its 5th step
//   vmpi::run(p, plan, rank_main);
//
// Matching is by (src, dst, tag, seq) where seq is the per-(src,dst,
// tag) send ordinal — the same program produces the same ordinals, so
// a plan hits the same message every run.  Kill rules fire when a rank
// calls Comm::fault_point(step) with step >= at_step, modelling the
// paper's long per-view refinement loop (§4 steps d-l) where a node
// loss strikes between work items.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace por::vmpi {

using Tag = int;

/// Wildcards for FaultRule fields.
inline constexpr int kAnyRank = -1;
inline constexpr Tag kAnyTag = INT32_MIN;
inline constexpr std::uint64_t kAnySeq = UINT64_MAX;

/// What to do to a matched message.
enum class FaultKind : std::uint8_t {
  kDrop,     ///< message is never delivered (lost on the wire)
  kDelay,    ///< delivery is postponed by `delay` (congested link)
  kCorrupt,  ///< every payload byte is XORed with 0x5A (flipped bits)
};

/// One injection rule.  A rule matches a send when every non-wildcard
/// field equals the message's (src, dst, tag, seq).
struct FaultRule {
  int src = kAnyRank;
  int dst = kAnyRank;
  Tag tag = kAnyTag;
  std::uint64_t seq = kAnySeq;  ///< per-(src,dst,tag) send ordinal, 0-based
  FaultKind kind = FaultKind::kDrop;
  std::chrono::milliseconds delay{0};  ///< kDelay only

  [[nodiscard]] bool matches(int s, int d, Tag t, std::uint64_t q) const {
    return (src == kAnyRank || src == s) && (dst == kAnyRank || dst == d) &&
           (tag == kAnyTag || tag == t) && (seq == kAnySeq || seq == q);
  }
};

/// Kill rule: the rank raises RankKilled at the first
/// Comm::fault_point(step) with step >= at_step.
struct KillRule {
  int rank = kAnyRank;
  std::uint64_t at_step = 0;
};

/// Counts of faults actually injected (whole-runtime totals); folded
/// into the por::obs run report by the drivers as resilience.faults.*.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t kills = 0;     ///< RankKilled raised by fault_point()
  std::uint64_t timeouts = 0;  ///< CommTimeout raised by deadline recvs

  [[nodiscard]] std::uint64_t injected() const {
    return dropped + delayed + corrupted + kills;
  }
};

/// A deterministic set of failures to inject into one runtime.
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::vector<KillRule> kills;

  [[nodiscard]] bool empty() const { return rules.empty() && kills.empty(); }

  FaultPlan& drop(int src, int dst, Tag tag, std::uint64_t seq = kAnySeq) {
    rules.push_back(FaultRule{src, dst, tag, seq, FaultKind::kDrop, {}});
    return *this;
  }
  FaultPlan& delay(int src, int dst, Tag tag, std::uint64_t seq,
                   std::chrono::milliseconds by) {
    rules.push_back(FaultRule{src, dst, tag, seq, FaultKind::kDelay, by});
    return *this;
  }
  FaultPlan& corrupt(int src, int dst, Tag tag, std::uint64_t seq = kAnySeq) {
    rules.push_back(FaultRule{src, dst, tag, seq, FaultKind::kCorrupt, {}});
    return *this;
  }
  FaultPlan& kill_rank_at_step(int rank, std::uint64_t at_step) {
    kills.push_back(KillRule{rank, at_step});
    return *this;
  }

  /// First matching rule for a send, or nullptr.
  [[nodiscard]] const FaultRule* match(int src, int dst, Tag tag,
                                       std::uint64_t seq) const {
    for (const FaultRule& rule : rules) {
      if (rule.matches(src, dst, tag, seq)) return &rule;
    }
    return nullptr;
  }

  /// Does the plan kill `rank` at or before `step`?
  [[nodiscard]] bool kills_at(int rank, std::uint64_t step) const {
    for (const KillRule& rule : kills) {
      if ((rule.rank == kAnyRank || rule.rank == rank) &&
          step >= rule.at_step) {
        return true;
      }
    }
    return false;
  }
};

/// A blocking receive exceeded its deadline: the structured error the
/// paper-scale runs need instead of blocking forever on a dead peer.
class CommTimeout : public std::runtime_error {
 public:
  CommTimeout(int src, int dst, Tag tag, std::chrono::milliseconds waited)
      : std::runtime_error(
            "vmpi: recv on rank " + std::to_string(dst) + " from " +
            (src < 0 ? std::string("any rank") :
                       "rank " + std::to_string(src)) +
            " tag " + std::to_string(tag) + " timed out after " +
            std::to_string(waited.count()) + " ms"),
        src_(src), dst_(dst), tag_(tag), waited_(waited) {}

  [[nodiscard]] int src() const { return src_; }  ///< -1 for recv-any
  [[nodiscard]] int dst() const { return dst_; }
  [[nodiscard]] Tag tag() const { return tag_; }
  [[nodiscard]] std::chrono::milliseconds waited() const { return waited_; }

 private:
  int src_;
  int dst_;
  Tag tag_;
  std::chrono::milliseconds waited_;
};

/// Raised by Comm::fault_point when the installed FaultPlan kills this
/// rank at the given step.  The parallel drivers catch it to turn the
/// rank into a silent zombie (it stops working and reporting, exactly
/// like a crashed node seen from its peers) while keeping the
/// in-process thread joinable.
class RankKilled : public std::runtime_error {
 public:
  RankKilled(int rank, std::uint64_t step)
      : std::runtime_error("vmpi: fault plan killed rank " +
                           std::to_string(rank) + " at step " +
                           std::to_string(step)),
        rank_(rank), step_(step) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }

 private:
  int rank_;
  std::uint64_t step_;
};

}  // namespace por::vmpi
