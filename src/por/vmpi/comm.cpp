#include "por/vmpi/comm.hpp"

#include <stdexcept>
#include <string>
#include <thread>

#include "por/util/contracts.hpp"

namespace por::vmpi {

void Comm::send_bytes(int dst, Tag tag, const void* data, std::size_t bytes) {
  POR_EXPECT(dst >= 0 && dst < size(), "destination rank out of range:", dst,
             "of", size());
  // Typed-message tag contract: user tags are non-negative; the only
  // negative tags are the reserved collective tags in [kReduceTag, -1].
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  POR_EXPECT(bytes == 0 || data != nullptr,
             "non-empty send with null payload: bytes =", bytes);
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);

  // Fault-injection hook: look up the first rule matching this
  // message's (src, dst, tag, seq).  The per-channel ordinal lives
  // under the context mutex, which the enqueue takes anyway.
  const FaultRule* rule = nullptr;
  if (!context_.plan.rules.empty()) {
    std::lock_guard<std::mutex> lock(context_.mutex);
    const std::uint64_t seq = context_.send_seq[{rank_, dst, tag}]++;
    rule = context_.plan.match(rank_, dst, tag, seq);
  }
  // The wire carries the message whether or not it is later lost, so
  // traffic accounting happens before the drop decision.
  context_.traffic.record_send(rank_, bytes);
  if (rule != nullptr) {
    switch (rule->kind) {
      case FaultKind::kDrop:
        // por-atomic: stat — fault-injection counter
        context_.faults_dropped.fetch_add(1, std::memory_order_relaxed);
        return;  // never enqueued: the receiver sees only silence
      case FaultKind::kDelay:
        // por-atomic: stat — fault-injection counter
        context_.faults_delayed.fetch_add(1, std::memory_order_relaxed);
        // Simulate a congested link by postponing delivery (the sender
        // thread stalls, which upper layers observe identically).
        std::this_thread::sleep_for(rule->delay);
        break;
      case FaultKind::kCorrupt:
        // por-atomic: stat — fault-injection counter
        context_.faults_corrupted.fetch_add(1, std::memory_order_relaxed);
        for (std::byte& b : payload) b ^= std::byte{0x5A};
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(context_.mutex);
    context_.mailboxes[{rank_, dst, tag}].push_back(std::move(payload));
  }
  context_.message_arrived.notify_all();
}

void Comm::fault_point(std::uint64_t step) {
  if (context_.plan.kills.empty()) return;
  if (context_.plan.kills_at(rank_, step)) {
    // por-atomic: stat — fault-injection counter
    context_.faults_killed.fetch_add(1, std::memory_order_relaxed);
    throw RankKilled(rank_, step);
  }
}

void Comm::throw_payload_mismatch(int src, Tag tag, std::size_t payload_bytes,
                                  std::size_t element_bytes) const {
  throw std::runtime_error(
      "vmpi: typed recv on rank " + std::to_string(rank_) + " from rank " +
      std::to_string(src) + " tag " + std::to_string(tag) + ": payload of " +
      std::to_string(payload_bytes) +
      " bytes does not fit element size " + std::to_string(element_bytes));
}

std::vector<std::byte> Comm::recv_bytes(int src, Tag tag) {
  POR_EXPECT(src >= 0 && src < size(), "source rank out of range:", src, "of",
             size());
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  std::unique_lock<std::mutex> lock(context_.mutex);
  const detail::Context::Key key{src, rank_, tag};
  const auto ready = [&] {
    auto it = context_.mailboxes.find(key);
    return it != context_.mailboxes.end() && !it->second.empty();
  };
  if (deadline_.count() <= 0) {
    context_.message_arrived.wait(lock, ready);
  } else if (!context_.message_arrived.wait_for(lock, deadline_, ready)) {
    // por-atomic: stat — timeout counter
    context_.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
    throw CommTimeout(src, rank_, tag, deadline_);
  }
  auto& queue = context_.mailboxes[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

std::vector<std::byte> Comm::recv_any_bytes(Tag tag, int& src) {
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  std::unique_lock<std::mutex> lock(context_.mutex);
  auto find_ready = [&]() -> std::deque<std::vector<std::byte>>* {
    for (int candidate = 0; candidate < context_.size; ++candidate) {
      auto it = context_.mailboxes.find({candidate, rank_, tag});
      if (it != context_.mailboxes.end() && !it->second.empty()) {
        src = candidate;
        return &it->second;
      }
    }
    return nullptr;
  };
  std::deque<std::vector<std::byte>>* queue = nullptr;
  const auto ready = [&] {
    queue = find_ready();
    return queue != nullptr;
  };
  if (deadline_.count() <= 0) {
    context_.message_arrived.wait(lock, ready);
  } else if (!context_.message_arrived.wait_for(lock, deadline_, ready)) {
    // por-atomic: stat — timeout counter
    context_.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
    throw CommTimeout(kAnyRank, rank_, tag, deadline_);
  }
  std::vector<std::byte> payload = std::move(queue->front());
  queue->pop_front();
  return payload;
}

std::optional<std::vector<std::byte>> Comm::try_recv_any_bytes(
    Tag tag, int& src, std::chrono::milliseconds timeout) {
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  std::unique_lock<std::mutex> lock(context_.mutex);
  auto find_ready = [&]() -> std::deque<std::vector<std::byte>>* {
    for (int candidate = 0; candidate < context_.size; ++candidate) {
      auto it = context_.mailboxes.find({candidate, rank_, tag});
      if (it != context_.mailboxes.end() && !it->second.empty()) {
        src = candidate;
        return &it->second;
      }
    }
    return nullptr;
  };
  std::deque<std::vector<std::byte>>* queue = find_ready();
  if (queue == nullptr && timeout.count() > 0) {
    context_.message_arrived.wait_for(lock, timeout, [&] {
      queue = find_ready();
      return queue != nullptr;
    });
  }
  if (queue == nullptr) return std::nullopt;
  std::vector<std::byte> payload = std::move(queue->front());
  queue->pop_front();
  return payload;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(context_.mutex);
  const std::uint64_t generation = context_.barrier_generation;
  if (++context_.barrier_count == context_.size) {
    context_.barrier_count = 0;
    ++context_.barrier_generation;
    context_.traffic.record_barrier();
    context_.barrier_cv.notify_all();
    return;
  }
  const auto released = [&] {
    return context_.barrier_generation != generation;
  };
  if (deadline_.count() <= 0) {
    context_.barrier_cv.wait(lock, released);
  } else if (!context_.barrier_cv.wait_for(lock, deadline_, released)) {
    // Withdraw this rank's arrival so a later retry (or a failure
    // handler re-entering the barrier) still counts correctly.
    --context_.barrier_count;
    // por-atomic: stat — timeout counter
    context_.recv_timeouts.fetch_add(1, std::memory_order_relaxed);
    throw CommTimeout(kAnyRank, rank_, kBarrierTag, deadline_);
  }
}

}  // namespace por::vmpi
