#include "por/vmpi/comm.hpp"

#include <stdexcept>
#include <string>

#include "por/util/contracts.hpp"

namespace por::vmpi {

void Comm::send_bytes(int dst, Tag tag, const void* data, std::size_t bytes) {
  POR_EXPECT(dst >= 0 && dst < size(), "destination rank out of range:", dst,
             "of", size());
  // Typed-message tag contract: user tags are non-negative; the only
  // negative tags are the reserved collective tags in [kReduceTag, -1].
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  POR_EXPECT(bytes == 0 || data != nullptr,
             "non-empty send with null payload: bytes =", bytes);
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lock(context_.mutex);
    context_.mailboxes[{rank_, dst, tag}].push_back(std::move(payload));
  }
  context_.traffic.record_send(rank_, bytes);
  context_.message_arrived.notify_all();
}

void Comm::throw_payload_mismatch(int src, Tag tag, std::size_t payload_bytes,
                                  std::size_t element_bytes) const {
  throw std::runtime_error(
      "vmpi: typed recv on rank " + std::to_string(rank_) + " from rank " +
      std::to_string(src) + " tag " + std::to_string(tag) + ": payload of " +
      std::to_string(payload_bytes) +
      " bytes does not fit element size " + std::to_string(element_bytes));
}

std::vector<std::byte> Comm::recv_bytes(int src, Tag tag) {
  POR_EXPECT(src >= 0 && src < size(), "source rank out of range:", src, "of",
             size());
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  std::unique_lock<std::mutex> lock(context_.mutex);
  const detail::Context::Key key{src, rank_, tag};
  context_.message_arrived.wait(lock, [&] {
    auto it = context_.mailboxes.find(key);
    return it != context_.mailboxes.end() && !it->second.empty();
  });
  auto& queue = context_.mailboxes[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

std::vector<std::byte> Comm::recv_any_bytes(Tag tag, int& src) {
  POR_EXPECT(tag >= kReduceTag, "tag below the reserved range:", tag);
  std::unique_lock<std::mutex> lock(context_.mutex);
  auto find_ready = [&]() -> std::deque<std::vector<std::byte>>* {
    for (int candidate = 0; candidate < context_.size; ++candidate) {
      auto it = context_.mailboxes.find({candidate, rank_, tag});
      if (it != context_.mailboxes.end() && !it->second.empty()) {
        src = candidate;
        return &it->second;
      }
    }
    return nullptr;
  };
  std::deque<std::vector<std::byte>>* queue = nullptr;
  context_.message_arrived.wait(lock, [&] {
    queue = find_ready();
    return queue != nullptr;
  });
  std::vector<std::byte> payload = std::move(queue->front());
  queue->pop_front();
  return payload;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(context_.mutex);
  const std::uint64_t generation = context_.barrier_generation;
  if (++context_.barrier_count == context_.size) {
    context_.barrier_count = 0;
    ++context_.barrier_generation;
    context_.traffic.record_barrier();
    context_.barrier_cv.notify_all();
    return;
  }
  context_.barrier_cv.wait(
      lock, [&] { return context_.barrier_generation != generation; });
}

}  // namespace por::vmpi
