// por/mc/checker.hpp
//
// The por::mc explorer (DESIGN.md §13): deterministic model checking
// for the lock-free protocols the rest of the system is built on.
//
//   mc::Options opts;                      // exhaustive by default
//   mc::Result r = mc::explore(opts, [](mc::Env& env) {
//     StealDeque<int, mc::atomic> deque(4);   // the PRODUCTION template
//     std::vector<int> popped, stolen;
//     env.thread([&] { /* owner: push/pop */ });
//     env.thread([&] { /* thief: steal    */ });
//     env.run();                           // all interleavings explored here
//     env.expect(no_duplicates(popped, stolen), "element taken twice");
//   });
//   ASSERT_TRUE(r.ok) << r.trace;          // trace = minimal failing schedule
//
// The body runs once per execution: construct the shared state, spawn
// virtual threads, run(), then assert invariants on the joined result.
// In exhaustive mode the explorer performs a stateless depth-first
// search over every scheduling decision and every legal read-from
// choice (see model.hpp), pruned with dynamic partial-order reduction:
// a backtrack point is added only where two transitions on the same
// location, at least one a write, from different threads, are not
// already ordered by the dependence relation — the Flanagan–Godefroid
// construction, with conflict-vector clocks deciding "already
// ordered".  Random-walk mode replays `max_executions` seeded uniform
// schedules instead, the fallback for configurations too large to
// exhaust.
//
// On a violation the explorer shrinks the failing schedule by greedily
// merging same-thread blocks (replaying each candidate to confirm the
// failure survives) and formats the result: the interleaved step list
// plus per-thread event logs, with the values each load observed — the
// reordering that exposes the bug, in a form a human can replay.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace por::mc {

enum class Mode {
  kExhaustive,  ///< DFS + DPOR over every schedule and read-from choice
  kRandomWalk,  ///< `max_executions` seeded uniform random schedules
};

struct Options {
  Mode mode = Mode::kExhaustive;
  /// Execution budget.  0 means unlimited in exhaustive mode (the DFS
  /// runs until the space is exhausted); random walk requires > 0.
  std::uint64_t max_executions = 0;
  /// Per-execution step bound — a brake against unbounded retry loops
  /// in checked bodies, not a tuning knob.  A truncated execution
  /// clears Result::complete.
  int max_steps_per_execution = 20000;
  std::uint64_t seed = 1;  ///< random-walk schedule seed
  /// Replays spent shrinking a failing schedule before printing it.
  int minimize_budget = 500;
};

struct Result {
  bool ok = true;
  /// Exhaustive mode: the whole space was explored — no execution was
  /// truncated and the budget was not hit.  Always false for random
  /// walk (sampling proves nothing exhaustively).
  bool complete = false;
  std::uint64_t executions = 0;
  std::uint64_t total_steps = 0;
  std::string failure;  ///< first violated expectation (empty when ok)
  std::string trace;    ///< minimal failing interleaving (empty when ok)
};

class Explorer;

/// The checked program's handle to the explorer.  Valid only inside
/// the body passed to explore(), for one execution.
class Env {
 public:
  explicit Env(Explorer& explorer) : explorer_(explorer) {}
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Register a virtual thread (at most kMaxThreads).  Must precede
  /// run(); bodies execute only inside run().
  void thread(std::function<void()> body);

  /// Run every registered thread to completion under the explorer's
  /// schedule.  Exactly once per execution.
  void run();

  /// Record a violation (first one wins).  Callable from thread
  /// bodies and from the invariant code after run().
  void expect(bool condition, const std::string& message);

 private:
  Explorer& explorer_;
};

/// Explore `body` under `options`.  The body is invoked once per
/// execution and must be deterministic apart from the scheduling the
/// explorer controls (no wall clocks, no host RNG).
Result explore(const Options& options,
               const std::function<void(Env&)>& body);

}  // namespace por::mc
