// por/mc/fiber.hpp
//
// Cooperative fibers for the por::mc model checker (DESIGN.md §13).
//
// Every virtual thread of a checked program runs on a ucontext fiber:
// the explorer (running on the ordinary OS stack) resumes exactly one
// fiber at a time, and the fiber yields back whenever the code under
// test performs an instrumented atomic operation.  Because only one
// fiber ever runs, the *host* needs no synchronization at all — every
// interleaving the checker explores is a deterministic, replayable
// sequence of explorer decisions, not an accident of OS scheduling.
//
// This is the mechanism that lets the checker execute the SAME
// template code production runs (StealDeque, JobChannel, the obs
// cells) one atomic step at a time, with ~0.25µs per switch on this
// host — cheap enough to replay hundreds of thousands of executions
// in a unit test.
//
// Single-OS-thread only: the explorer and all fibers it owns must stay
// on the thread that created them (ucontext contexts are not
// migratable, and the checker's thread-local execution pointer assumes
// it).  The model-check tests are therefore *not* run under ASan/TSan
// — the sanitizers do not understand ucontext stack switches — which
// is no loss: the checker explores strictly more schedules than a
// sanitizer run ever observes.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace por::mc {

/// Raised through a checked body to unwind it when the explorer
/// abandons a truncated execution.  Thrown by the instrumented atomics
/// (model.cpp), caught only by the fiber trampoline — user code must
/// not swallow it (no catch(...) in checked bodies).
struct ExecutionAborted {};

/// One resumable virtual-thread context.  The body runs until it calls
/// yield() (via an instrumented atomic) or returns; resume() continues
/// it from the last yield point.
class Fiber {
 public:
  /// `stack_bytes` must be generous enough for the code under test
  /// plus whatever it calls (contracts, logging); 256 KiB default.
  explicit Fiber(std::size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Arm the fiber with a fresh body.  Must not be running.  The same
  /// Fiber (and its stack) is reused across checker executions.
  void reset(std::function<void()> body);

  /// Run/continue the body until its next yield() or until it returns.
  /// Returns true while the body has more to do, false once finished.
  bool resume();

  /// Called from inside the body (indirectly, via the instrumented
  /// atomics): suspend and transfer control back to resume()'s caller.
  void yield();

  [[nodiscard]] bool finished() const { return finished_; }

  /// The fiber currently executing on this OS thread (nullptr when the
  /// explorer itself is running).  The instrumented atomics use this to
  /// find their yield channel.
  static Fiber* current();

 private:
  static void trampoline();

  std::size_t stack_bytes_;
  std::unique_ptr<char[]> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  std::function<void()> body_;
  bool started_ = false;
  bool finished_ = true;
};

}  // namespace por::mc
