// por/mc/mc.hpp — umbrella header for the por::mc model checker.
//
// Pulls in the whole checker surface (DESIGN.md §13):
//   fiber.hpp    — cooperative virtual-thread contexts
//   model.hpp    — the operational weak-memory model (Execution)
//   atomic.hpp   — mc::atomic<T>, the instrumented std::atomic
//   checker.hpp  — Env / Options / Result / explore()
//
// Test code includes this one header and instantiates production
// templates with por::mc::atomic through their POR_MC hook.
#pragma once

#include "por/mc/atomic.hpp"
#include "por/mc/checker.hpp"
#include "por/mc/fiber.hpp"
#include "por/mc/model.hpp"
