#include "por/mc/model.hpp"

#include <algorithm>
#include <exception>

#include "por/mc/fiber.hpp"
#include "por/util/contracts.hpp"

namespace por::mc {

namespace {

thread_local Execution* t_execution = nullptr;

bool is_acquiring(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst ||
         order == std::memory_order_consume;  // promoted, like compilers do
}

bool is_releasing(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

bool is_sc(std::memory_order order) {
  return order == std::memory_order_seq_cst;
}

}  // namespace

VectorClock join(const VectorClock& a, const VectorClock& b) {
  VectorClock out{};
  for (int i = 0; i < kMaxThreads; ++i) {
    out[static_cast<std::size_t>(i)] =
        std::max(a[static_cast<std::size_t>(i)],
                 b[static_cast<std::size_t>(i)]);
  }
  return out;
}

const char* order_name(std::memory_order order) {
  switch (order) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kCasFail: return "cas-fail";
  }
  return "?";
}

Execution* Execution::current() { return t_execution; }
void Execution::set_current(Execution* exec) { t_execution = exec; }

Execution::Execution() = default;

int Execution::register_location(std::uint64_t init_bits, std::string name) {
  const int id = static_cast<int>(locations_.size());
  Location loc;
  loc.name = std::move(name);
  Store init;
  init.bits = init_bits;
  init.thread = -1;  // the setup context happens-before every thread
  loc.stores.push_back(init);
  locations_.push_back(std::move(loc));
  for (auto& t : threads_) t.observed.push_back(0);
  return id;
}

// ---- operation entry points (instrumented atomics land here) ---------------

PendingOp& Execution::run_op(PendingOp op) {
  Fiber* fiber = Fiber::current();
  if (fiber == nullptr || running_thread_ < 0) {
    apply_sequential(op);
    sequential_result_ = op;
    return sequential_result_;
  }
  if (abort_requested_) {
    // The execution is being abandoned.  A fiber that reaches a fresh
    // atomic op now must unwind — unless it is ALREADY unwinding (an
    // atomic touched from a destructor mid-unwind), where a second
    // throw would std::terminate; those ops apply sequentially, the
    // execution's state is discarded anyway.
    if (std::uncaught_exceptions() > 0) {
      apply_sequential(op);
      sequential_result_ = op;
      return sequential_result_;
    }
    throw ExecutionAborted{};
  }
  const auto t = static_cast<std::size_t>(running_thread_);
  pending_[t] = op;
  pending_valid_[t] = true;
  fiber->yield();  // the explorer prepares, commits, fills the result
  if (abort_requested_) throw ExecutionAborted{};
  return pending_[t];
}

std::uint64_t Execution::atomic_load(int loc, std::memory_order order) {
  PendingOp op;
  op.kind = OpKind::kLoad;
  op.loc = loc;
  op.order = order;
  return run_op(op).result;
}

void Execution::atomic_store(int loc, std::uint64_t bits,
                             std::memory_order order) {
  PendingOp op;
  op.kind = OpKind::kStore;
  op.loc = loc;
  op.order = order;
  op.operand = bits;
  run_op(op);
}

std::uint64_t Execution::atomic_rmw(int loc,
                                    std::uint64_t (*modify)(std::uint64_t,
                                                            std::uint64_t),
                                    std::uint64_t operand,
                                    std::memory_order order) {
  PendingOp op;
  op.kind = OpKind::kRmw;
  op.loc = loc;
  op.order = order;
  op.modify = modify;
  op.operand = operand;
  return run_op(op).result;
}

bool Execution::atomic_cas(int loc, std::uint64_t& expected_bits,
                           std::uint64_t desired_bits,
                           std::memory_order success,
                           std::memory_order failure) {
  PendingOp op;
  op.kind = OpKind::kRmw;
  op.loc = loc;
  op.order = success;
  op.failure_order = failure;
  op.operand = desired_bits;
  op.expected = expected_bits;
  op.is_cas = true;
  const PendingOp& done = run_op(op);
  if (!done.cas_success) expected_bits = done.result;
  return done.cas_success;
}

// ---- sequential (setup / teardown) semantics -------------------------------

void Execution::apply_sequential(PendingOp& op) {
  auto& loc = locations_[static_cast<std::size_t>(op.loc)];
  const std::uint64_t latest_bits = loc.stores.back().bits;
  switch (op.kind) {
    case OpKind::kLoad:
      op.result = latest_bits;
      break;
    case OpKind::kStore: {
      Store s;
      s.bits = op.operand;
      loc.stores.push_back(s);
      if (is_sc(op.order)) {
        loc.last_sc_store = static_cast<int>(loc.stores.size()) - 1;
      }
      break;
    }
    case OpKind::kRmw: {
      op.result = latest_bits;
      std::uint64_t next;
      if (op.is_cas) {
        op.cas_success = latest_bits == op.expected;
        if (!op.cas_success) return;
        next = op.operand;
      } else {
        next = op.modify(latest_bits, op.operand);
      }
      Store s;
      s.bits = next;
      loc.stores.push_back(s);
      if (is_sc(op.order)) {
        loc.last_sc_store = static_cast<int>(loc.stores.size()) - 1;
      }
      break;
    }
    case OpKind::kCasFail:
      break;  // never parked
  }
}

// ---- candidate computation -------------------------------------------------

bool Execution::store_hb_before_thread(const Store& store, int thread) const {
  if (store.thread < 0) return true;  // setup precedes every thread
  if (store.thread == thread) return true;
  return threads_[static_cast<std::size_t>(thread)]
             .clock[static_cast<std::size_t>(store.thread)] >=
         store.thread_pos;
}

int Execution::read_floor(int thread, int loc_id,
                          std::memory_order order) const {
  const auto& loc = locations_[static_cast<std::size_t>(loc_id)];
  const auto& tm = threads_[static_cast<std::size_t>(thread)];
  // Coherence: never older than what this thread already read or wrote.
  int floor = tm.observed[static_cast<std::size_t>(loc_id)];
  // Happens-before: a store that is hb-before the load hides everything
  // before it in the modification order.
  for (int j = static_cast<int>(loc.stores.size()) - 1; j > floor; --j) {
    if (store_hb_before_thread(loc.stores[static_cast<std::size_t>(j)],
                               thread)) {
      floor = j;
      break;
    }
  }
  // SC: a seq_cst load reads no earlier than the newest seq_cst store.
  if (is_sc(order) && loc.last_sc_store > floor) floor = loc.last_sc_store;
  return floor;
}

std::vector<Candidate> Execution::prepare(int thread) const {
  POR_EXPECT(pending_valid_[static_cast<std::size_t>(thread)],
             "prepare() with no pending op for thread", thread);
  const PendingOp& op = pending_[static_cast<std::size_t>(thread)];
  const auto& loc = locations_[static_cast<std::size_t>(op.loc)];
  const int last = static_cast<int>(loc.stores.size()) - 1;
  std::vector<Candidate> out;
  switch (op.kind) {
    case OpKind::kStore:
      out.push_back(Candidate{last, false});
      break;
    case OpKind::kRmw: {
      if (!op.is_cas) {
        out.push_back(Candidate{last, false});
        break;
      }
      // Success first: the common path is explored first, the stale
      // failure reads (legal under the failure order) afterwards.
      if (loc.stores[static_cast<std::size_t>(last)].bits == op.expected) {
        out.push_back(Candidate{last, true});
      }
      const int floor = read_floor(thread, op.loc, op.failure_order);
      for (int j = last; j >= floor; --j) {
        if (loc.stores[static_cast<std::size_t>(j)].bits != op.expected) {
          out.push_back(Candidate{j, false});
        }
      }
      break;
    }
    case OpKind::kLoad: {
      const int floor = read_floor(thread, op.loc, op.order);
      // Newest first: the SC-like behavior is the default branch.
      for (int j = last; j >= floor; --j) out.push_back(Candidate{j, false});
      break;
    }
    case OpKind::kCasFail:
      POR_EXPECT(false, "kCasFail is an event kind, never pending");
      break;
  }
  POR_ENSURE(!out.empty(), "no candidate for a pending op on",
             loc.name.c_str());
  return out;
}

// ---- commit ----------------------------------------------------------------

void Execution::note_read(int thread, int loc_id, int store_index,
                          std::memory_order order, PendingOp& op,
                          OpKind kind) {
  auto& loc = locations_[static_cast<std::size_t>(loc_id)];
  auto& tm = threads_[static_cast<std::size_t>(thread)];
  const Store& store = loc.stores[static_cast<std::size_t>(store_index)];
  op.result = store.bits;
  auto& observed = tm.observed[static_cast<std::size_t>(loc_id)];
  observed = std::max(observed, store_index);
  if (is_acquiring(order) && store.is_release) {
    tm.clock = join(tm.clock, store.release_clock);
  }
  Event ev;
  ev.step = step_count_;
  ev.thread = thread;
  ev.kind = kind;
  ev.loc = loc_id;
  ev.order = order;
  ev.read_bits = store.bits;
  ev.rf_step = store.step;
  events_.push_back(ev);
}

int Execution::append_store(int thread, int loc_id, std::uint64_t bits,
                            std::memory_order order,
                            const VectorClock* rf_release) {
  auto& loc = locations_[static_cast<std::size_t>(loc_id)];
  auto& tm = threads_[static_cast<std::size_t>(thread)];
  Store s;
  s.bits = bits;
  s.thread = thread;
  s.thread_pos = tm.clock[static_cast<std::size_t>(thread)];
  s.is_sc = is_sc(order);
  s.step = step_count_;
  if (is_releasing(order)) {
    s.is_release = true;
    s.release_clock = tm.clock;
  }
  if (rf_release != nullptr) {
    // C++17 release sequence: an RMW carries the release clock of the
    // store it read forward, whatever its own order.
    s.is_release = true;
    s.release_clock = join(s.release_clock, *rf_release);
  }
  loc.stores.push_back(s);
  const int index = static_cast<int>(loc.stores.size()) - 1;
  if (s.is_sc) loc.last_sc_store = index;
  tm.observed[static_cast<std::size_t>(loc_id)] = index;
  return index;
}

std::vector<Conflict> Execution::commit(int thread, const Candidate& cand) {
  POR_EXPECT(pending_valid_[static_cast<std::size_t>(thread)],
             "commit() with no pending op for thread", thread);
  PendingOp& op = pending_[static_cast<std::size_t>(thread)];
  auto& loc = locations_[static_cast<std::size_t>(op.loc)];
  auto& tm = threads_[static_cast<std::size_t>(thread)];

  const bool is_write =
      op.kind == OpKind::kStore ||
      (op.kind == OpKind::kRmw && (!op.is_cas || cand.cas_success));

  // DPOR: collect the earlier transitions this one is dependent with
  // (same location, at least one write, different thread), filtered by
  // the dependence order — an already-ordered pair cannot be reversed,
  // so it creates no backtrack point.
  std::vector<Conflict> conflicts;
  auto consider = [&](int c_thread, int c_step) {
    if (c_thread < 0 || c_step < 0 || c_thread == thread) return;
    if (tm.dep_clock[static_cast<std::size_t>(c_thread)] >=
        static_cast<std::uint32_t>(c_step + 1)) {
      return;  // dependence-ordered already
    }
    conflicts.push_back(Conflict{c_step, c_thread});
  };
  consider(loc.last_write_thread, loc.last_write_step);
  if (is_write) {
    for (const Conflict& r : loc.readers_since_write) {
      consider(r.thread, r.step);
    }
  }

  // Dependence clock: program order + an edge from every dependent
  // predecessor (ordered or not — they are all dependence edges).
  VectorClock dep = tm.dep_clock;
  auto absorb = [&](int c_thread, int c_step) {
    if (c_thread < 0 || c_step < 0 || c_thread == thread) return;
    dep = join(dep, step_dep_clocks_[static_cast<std::size_t>(c_step)]);
  };
  absorb(loc.last_write_thread, loc.last_write_step);
  if (is_write) {
    for (const Conflict& r : loc.readers_since_write) {
      absorb(r.thread, r.step);
    }
  }

  // Every committed op advances the thread's own hb ordinal.
  tm.clock[static_cast<std::size_t>(thread)] += 1;

  switch (op.kind) {
    case OpKind::kLoad:
      note_read(thread, op.loc, cand.store_index, op.order, op, OpKind::kLoad);
      loc.readers_since_write.push_back(Conflict{step_count_, thread});
      break;
    case OpKind::kStore: {
      append_store(thread, op.loc, op.operand, op.order, nullptr);
      Event ev;
      ev.step = step_count_;
      ev.thread = thread;
      ev.kind = OpKind::kStore;
      ev.loc = op.loc;
      ev.order = op.order;
      ev.written_bits = op.operand;
      events_.push_back(ev);
      loc.last_write_step = step_count_;
      loc.last_write_thread = thread;
      loc.readers_since_write.clear();
      break;
    }
    case OpKind::kRmw: {
      if (op.is_cas && !cand.cas_success) {
        // Failed CAS: a pure load under the failure order.
        note_read(thread, op.loc, cand.store_index, op.failure_order, op,
                  OpKind::kCasFail);
        op.cas_success = false;
        events_.back().cas_success = false;
        loc.readers_since_write.push_back(Conflict{step_count_, thread});
        break;
      }
      // RMW atomicity: always reads the latest store.
      const int last = static_cast<int>(loc.stores.size()) - 1;
      POR_EXPECT(cand.store_index == last, "RMW must read the newest store");
      // Copy: append_store reallocates loc.stores.
      const Store read = loc.stores[static_cast<std::size_t>(last)];
      op.result = read.bits;
      auto& observed = tm.observed[static_cast<std::size_t>(op.loc)];
      observed = std::max(observed, last);
      if (is_acquiring(op.order) && read.is_release) {
        tm.clock = join(tm.clock, read.release_clock);
      }
      const std::uint64_t next =
          op.is_cas ? op.operand : op.modify(read.bits, op.operand);
      append_store(thread, op.loc, next, op.order,
                   read.is_release ? &read.release_clock : nullptr);
      op.cas_success = op.is_cas;
      Event ev;
      ev.step = step_count_;
      ev.thread = thread;
      ev.kind = OpKind::kRmw;
      ev.loc = op.loc;
      ev.order = op.order;
      ev.read_bits = read.bits;
      ev.written_bits = next;
      ev.rf_step = read.step;
      ev.cas_success = op.is_cas;
      events_.push_back(ev);
      loc.last_write_step = step_count_;
      loc.last_write_thread = thread;
      loc.readers_since_write.clear();
      break;
    }
    case OpKind::kCasFail:
      POR_EXPECT(false, "kCasFail is an event kind, never pending");
      break;
  }

  dep[static_cast<std::size_t>(thread)] =
      static_cast<std::uint32_t>(step_count_ + 1);
  tm.dep_clock = dep;
  step_dep_clocks_.push_back(dep);
  ++step_count_;
  return conflicts;
}

}  // namespace por::mc
