#include "por/mc/fiber.hpp"

#include <cstdlib>
#include <exception>
#include <utility>

#include "por/util/contracts.hpp"

namespace por::mc {

namespace {
// Only one fiber runs at a time and only one is ever mid-start, so
// plain statics are enough (the whole checker is single-OS-thread).
thread_local Fiber* t_current = nullptr;
thread_local Fiber* t_starting = nullptr;
}  // namespace

Fiber* Fiber::current() { return t_current; }

Fiber::Fiber(std::size_t stack_bytes)
    : stack_bytes_(stack_bytes), stack_(new char[stack_bytes]) {}

Fiber::~Fiber() {
  // A fiber must not be destroyed mid-body: its stack would vanish
  // under live frames.  The explorer always drives bodies to
  // completion (or the process is aborting anyway).
  POR_EXPECT(finished_, "Fiber destroyed while its body is suspended");
}

void Fiber::reset(std::function<void()> body) {
  POR_EXPECT(finished_, "Fiber::reset while a body is suspended");
  body_ = std::move(body);
  started_ = false;
  finished_ = false;
}

void Fiber::trampoline() {
  Fiber* self = t_starting;
  t_starting = nullptr;
  // The body must not leak exceptions across the context switch —
  // there is no handler on the explorer's side of swapcontext, so a
  // stray throw would std::terminate with a useless stack.  Checker
  // bodies report failures through Env::expect instead.
  try {
    self->body_();
  } catch (const ExecutionAborted&) {
    // Normal unwind of a truncated execution — the body is done.
  } catch (...) {
    std::terminate();
  }
  self->finished_ = true;
  t_current = nullptr;
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable: a finished fiber is never resumed.
  std::abort();
}

bool Fiber::resume() {
  POR_EXPECT(!finished_, "resume() on a finished fiber");
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = &return_context_;
    makecontext(&context_, &Fiber::trampoline, 0);
    t_starting = this;
  }
  t_current = this;
  swapcontext(&return_context_, &context_);
  t_current = nullptr;
  return !finished_;
}

void Fiber::yield() {
  POR_EXPECT(t_current == this, "yield() from a fiber that is not running");
  t_current = nullptr;
  swapcontext(&context_, &return_context_);
  t_current = this;
}

}  // namespace por::mc
