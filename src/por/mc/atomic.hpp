// por/mc/atomic.hpp
//
// mc::atomic<T> — the instrumented std::atomic stand-in the model
// checker substitutes through the POR_MC template hooks (DESIGN.md
// §13).  Production code is templated on `template <class> class
// Atomic = std::atomic`; checker tests instantiate the same template
// with por::mc::atomic, so the protocol under test is the *identical*
// source the release build runs — only the atomic cells differ, and
// only in the checker's translation units.  Nothing here is ever
// linked into a production binary.
//
// Every load/store/RMW is routed through the active mc::Execution,
// which records it with its declared std::memory_order and lets the
// explorer decide which store a load observes (see model.hpp).
// Outside an execution (setup before Env::run, invariant checks after,
// ad-hoc unit tests) operations apply sequentially, which matches the
// happens-before the surrounding join/ctor edges provide.
//
// Restrictions, enforced at compile time where possible: T must be
// trivially copyable and at most 8 bytes (values travel as uint64
// bits); no wait/notify; weak CAS never fails spuriously (a spurious
// failure only re-runs the caller's retry loop and would unbound the
// exhaustive search).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "por/mc/model.hpp"

namespace por::mc {

namespace detail {

template <typename T>
std::uint64_t to_bits(T value) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mc::atomic values travel as 64-bit payloads");
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  return bits;
}

template <typename T>
T from_bits(std::uint64_t bits) {
  T value{};
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

template <typename T>
std::uint64_t add_bits(std::uint64_t old_bits, std::uint64_t operand) {
  return to_bits<T>(
      static_cast<T>(from_bits<T>(old_bits) + from_bits<T>(operand)));
}

template <typename T>
std::uint64_t sub_bits(std::uint64_t old_bits, std::uint64_t operand) {
  return to_bits<T>(
      static_cast<T>(from_bits<T>(old_bits) - from_bits<T>(operand)));
}

template <typename T>
std::uint64_t xchg_bits(std::uint64_t /*old_bits*/, std::uint64_t operand) {
  return operand;
}

}  // namespace detail

template <typename T>
class atomic {  // NOLINT(readability-identifier-naming): std::atomic's shape
 public:
  atomic() : atomic(T{}) {}

  explicit atomic(T initial) : value_(initial) { register_self("a"); }

  /// Named locations make traces readable; the template hooks use the
  /// default constructor, litmus tests can name their cells.
  atomic(T initial, const char* name) : value_(initial) {
    register_self(name);
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (Execution* exec = exec_for(this)) {
      return detail::from_bits<T>(exec->atomic_load(loc_, order));
    }
    return value_;
  }

  void store(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if (Execution* exec = exec_for(this)) {
      exec->atomic_store(loc_, detail::to_bits(desired), order);
      return;
    }
    value_ = desired;
  }

  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst) {
    if (Execution* exec = exec_for(this)) {
      return detail::from_bits<T>(exec->atomic_rmw(
          loc_, &detail::xchg_bits<T>, detail::to_bits(desired), order));
    }
    T old = value_;
    value_ = desired;
    return old;
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) {
    if (Execution* exec = exec_for(this)) {
      std::uint64_t expected_bits = detail::to_bits(expected);
      const bool ok = exec->atomic_cas(loc_, expected_bits,
                                       detail::to_bits(desired), success,
                                       failure);
      if (!ok) expected = detail::from_bits<T>(expected_bits);
      return ok;
    }
    if (value_ == expected) {
      value_ = desired;
      return true;
    }
    expected = value_;
    return false;
  }

  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order success = std::memory_order_seq_cst,
      std::memory_order failure = std::memory_order_seq_cst) {
    // No spurious failures (see header comment); otherwise identical.
    return compare_exchange_strong(expected, desired, success, failure);
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order order = std::memory_order_seq_cst) {
    if (Execution* exec = exec_for(this)) {
      return detail::from_bits<T>(exec->atomic_rmw(
          loc_, &detail::add_bits<T>, detail::to_bits(delta), order));
    }
    T old = value_;
    value_ = static_cast<T>(value_ + delta);
    return old;
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order order = std::memory_order_seq_cst) {
    if (Execution* exec = exec_for(this)) {
      return detail::from_bits<T>(exec->atomic_rmw(
          loc_, &detail::sub_bits<T>, detail::to_bits(delta), order));
    }
    T old = value_;
    value_ = static_cast<T>(value_ - delta);
    return old;
  }

 private:
  void register_self(const char* name) {
    if (Execution* exec = Execution::current()) {
      exec_ = exec;
      loc_ = exec->register_location(
          detail::to_bits(value_),
          std::string(name) + "#" + std::to_string(exec->location_count()));
    }
  }

  /// The execution this cell belongs to, if it is still the active
  /// one.  A cell constructed outside any execution — or surviving
  /// past its execution — degrades to plain sequential storage.
  Execution* exec_for(const atomic* self) const {
    (void)self;
    Execution* active = Execution::current();
    return (active != nullptr && active == exec_) ? active : nullptr;
  }

  T value_;            ///< sequential-mode storage; also the initial value
  Execution* exec_ = nullptr;
  int loc_ = -1;
};

}  // namespace por::mc
