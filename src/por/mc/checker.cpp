#include "por/mc/checker.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "por/mc/fiber.hpp"
#include "por/mc/model.hpp"
#include "por/util/contracts.hpp"

namespace por::mc {

namespace {

/// One scheduling decision: run `thread`, resolve its pending op with
/// candidate `cand` (-1 = "whatever prepare() lists first", expanded
/// lazily when a DPOR backtrack point is finally taken).
struct Choice {
  int thread = -1;
  int cand = -1;
};

/// One frame of the DFS stack.  Nodes persist across executions; the
/// prefix path[0..k] prescribes the replayed schedule up to depth k.
struct Node {
  int taken_thread = -1;
  int taken_cand = -1;
  /// Location / writeness of the transition committed here, for the
  /// sleep-set dependence filter when children are created.
  int taken_loc = -1;
  bool taken_is_write = false;
  std::deque<Choice> todo;
  /// Threads whose candidate lists were enumerated here — their
  /// specific (thread, cand) pairs are all scheduled, so a wildcard
  /// DPOR entry for them would be redundant.
  std::set<int> expanded_threads;
  /// Wildcard DPOR entries already queued, for dedup across the many
  /// replays that pass through this node.
  std::set<int> queued_wildcards;
  /// Sleep set (Godefroid): threads whose subtrees below this node are
  /// fully explored.  Running a sleeping thread first from here would
  /// only rebuild an already-explored Mazurkiewicz trace, so sleeping
  /// threads are never chosen (and a state whose every enabled thread
  /// sleeps is pruned outright).  A child node inherits the sleepers
  /// whose pending op is independent of the parent's transition —
  /// a dependent transition "wakes" them.  Without this, plain DPOR
  /// re-explores equivalent traces exponentially often.
  std::set<int> sleep;
};

}  // namespace

class Explorer {
 public:
  Explorer(const Options& options, const std::function<void(Env&)>& body)
      : options_(options), body_(body), rng_(options.seed) {}

  Result run();

  // ---- Env backend ------------------------------------------------------

  void add_thread(std::function<void()> body) {
    POR_EXPECT(!run_called_, "Env::thread after Env::run");
    POR_EXPECT(thread_bodies_.size() < static_cast<std::size_t>(kMaxThreads),
               "too many virtual threads (kMaxThreads =", kMaxThreads, ")");
    thread_bodies_.push_back(std::move(body));
  }

  void schedule();  // Env::run lands here

  void expect(bool condition, const std::string& message) {
    if (condition || !failure_.empty()) return;
    failure_ = message;
    Fiber* fiber = Fiber::current();
    if (fiber != nullptr) {
      // Tag the failing thread so the trace points at it.
      for (std::size_t t = 0; t < fibers_.size(); ++t) {
        if (fibers_[t].get() == fiber) {
          failure_ += " [raised by T" + std::to_string(t) + "]";
          break;
        }
      }
    }
  }

 private:
  enum class SchedMode { kDfs, kRandom, kReplay };

  void run_one_execution(SchedMode mode,
                         const std::vector<Choice>* prescribed);
  void advance(int thread);
  void drain_aborted();
  bool backtrack_path();  // false once the DFS space is exhausted
  void minimize_and_format();
  bool replay_fails(const std::vector<Choice>& choices);
  std::string format_trace() const;

  const Options& options_;
  const std::function<void(Env&)>& body_;
  std::mt19937_64 rng_;

  // Per-execution state.
  SchedMode sched_mode_ = SchedMode::kDfs;
  const std::vector<Choice>* prescribed_ = nullptr;
  std::unique_ptr<Execution> exec_;
  std::vector<std::function<void()>> thread_bodies_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::string failure_;
  std::vector<Choice> run_choices_;
  bool run_called_ = false;
  bool truncated_this_run_ = false;
  bool pruned_this_run_ = false;
  bool replay_valid_ = true;

  // DFS state (persists across executions).
  std::vector<Node> path_;

  // Totals.
  std::uint64_t executions_ = 0;
  std::uint64_t total_steps_ = 0;
  std::uint64_t truncated_ = 0;
  std::string trace_;
};

// ---- Env forwarding --------------------------------------------------------

void Env::thread(std::function<void()> body) {
  explorer_.add_thread(std::move(body));
}
void Env::run() { explorer_.schedule(); }
void Env::expect(bool condition, const std::string& message) {
  explorer_.expect(condition, message);
}

// ---- execution driving -----------------------------------------------------

void Explorer::advance(int thread) {
  exec_->clear_pending(thread);
  exec_->set_running_thread(thread);
  fibers_[static_cast<std::size_t>(thread)]->resume();
  exec_->set_running_thread(-1);
  // Post: the fiber is parked on a fresh pending op, or finished.
}

void Explorer::drain_aborted() {
  exec_->request_abort();
  for (std::size_t t = 0; t < fibers_.size(); ++t) {
    Fiber& fiber = *fibers_[t];
    while (!fiber.finished()) {
      exec_->set_running_thread(static_cast<int>(t));
      fiber.resume();
      exec_->set_running_thread(-1);
    }
  }
}

void Explorer::schedule() {
  POR_EXPECT(!run_called_, "Env::run called twice in one execution");
  run_called_ = true;

  const int nthreads = static_cast<int>(thread_bodies_.size());
  while (fibers_.size() < thread_bodies_.size()) {
    fibers_.push_back(std::make_unique<Fiber>());
  }
  for (int t = 0; t < nthreads; ++t) {
    fibers_[static_cast<std::size_t>(t)]->reset(
        thread_bodies_[static_cast<std::size_t>(t)]);
    advance(t);  // run to the first atomic op (or to completion)
  }

  int depth = 0;
  for (;;) {
    std::vector<int> enabled;
    for (int t = 0; t < nthreads; ++t) {
      if (exec_->has_pending(t)) enabled.push_back(t);
    }
    if (enabled.empty()) break;  // every thread ran to completion

    if (exec_->steps() >= options_.max_steps_per_execution) {
      truncated_this_run_ = true;
      drain_aborted();
      break;
    }

    Choice choice;
    if (sched_mode_ == SchedMode::kReplay) {
      if (depth >= static_cast<int>(prescribed_->size())) {
        // Prescribed prefix consumed: finish deterministically
        // (first enabled thread, first candidate) so block-merge
        // transformations that only permute a prefix still replay.
        choice.thread = enabled.front();
        choice.cand = 0;
      } else {
        choice = (*prescribed_)[static_cast<std::size_t>(depth)];
        const bool thread_ok =
            std::find(enabled.begin(), enabled.end(), choice.thread) !=
            enabled.end();
        if (!thread_ok) {
          replay_valid_ = false;
          drain_aborted();
          break;
        }
      }
    } else if (sched_mode_ == SchedMode::kRandom) {
      choice.thread = enabled[std::uniform_int_distribution<std::size_t>(
          0, enabled.size() - 1)(rng_)];
      choice.cand = -1;  // resolved below, uniformly
    } else if (depth < static_cast<int>(path_.size())) {
      // Replaying the DFS prefix that leads to the current frontier.
      Node& node = path_[static_cast<std::size_t>(depth)];
      choice.thread = node.taken_thread;
      choice.cand = node.taken_cand;
    } else {
      // Fresh frontier node.  Inherit the parent's sleepers whose
      // pending op is independent of the transition the parent just
      // committed (same location with at least one write = dependent,
      // which wakes the sleeper).
      std::set<int> sleep;
      if (depth > 0) {
        const Node& parent = path_[static_cast<std::size_t>(depth - 1)];
        for (int q : parent.sleep) {
          if (!exec_->has_pending(q)) continue;  // finished: moot
          const PendingOp& qop = exec_->pending(q);
          const bool q_writes = qop.kind == OpKind::kStore ||
                                qop.kind == OpKind::kRmw || qop.is_cas;
          const bool dependent = qop.loc == parent.taken_loc &&
                                 (parent.taken_is_write || q_writes);
          if (!dependent) sleep.insert(q);
        }
      }
      // Default policy: keep running the thread that just ran (fewer
      // context switches first — failing traces and the common case
      // both prefer long same-thread blocks); DPOR decides which
      // alternatives are worth queuing later.  Sleeping threads are
      // never picked.
      const int prev = depth > 0
                           ? path_[static_cast<std::size_t>(depth - 1)]
                                 .taken_thread
                           : enabled.front();
      int pick = -1;
      if (std::find(enabled.begin(), enabled.end(), prev) != enabled.end() &&
          sleep.count(prev) == 0) {
        pick = prev;
      } else {
        for (int t : enabled) {
          if (sleep.count(t) == 0) {
            pick = t;
            break;
          }
        }
      }
      if (pick < 0) {
        // Every enabled thread sleeps: any continuation from here only
        // permutes independent transitions of a trace that was already
        // explored.  Prune the execution (it is not a truncation — the
        // space stays exhaustively covered).
        pruned_this_run_ = true;
        drain_aborted();
        break;
      }
      path_.emplace_back();
      Node& node = path_.back();
      node.sleep = std::move(sleep);
      choice.thread = pick;
      choice.cand = 0;
      node.taken_thread = choice.thread;
      node.taken_cand = 0;
      node.expanded_threads.insert(choice.thread);
      const auto cands = exec_->prepare(choice.thread);
      for (int k = 1; k < static_cast<int>(cands.size()); ++k) {
        node.todo.push_back(Choice{choice.thread, k});
      }
    }

    const auto cands = exec_->prepare(choice.thread);
    if (choice.cand < 0) {
      if (sched_mode_ == SchedMode::kRandom) {
        choice.cand = static_cast<int>(
            std::uniform_int_distribution<std::size_t>(
                0, cands.size() - 1)(rng_));
      } else {
        // A wildcard DPOR entry taken from a node's todo: expand the
        // thread's candidates here, first one now, rest queued.
        choice.cand = 0;
        Node& node = path_[static_cast<std::size_t>(depth)];
        node.taken_cand = 0;
        node.expanded_threads.insert(choice.thread);
        for (int k = 1; k < static_cast<int>(cands.size()); ++k) {
          node.todo.push_back(Choice{choice.thread, k});
        }
      }
    }
    if (choice.cand >= static_cast<int>(cands.size())) {
      POR_EXPECT(sched_mode_ == SchedMode::kReplay,
                 "candidate index out of range outside replay");
      replay_valid_ = false;
      drain_aborted();
      break;
    }

    const std::vector<Conflict> conflicts =
        exec_->commit(choice.thread, cands[static_cast<std::size_t>(
                                         choice.cand)]);

    if (sched_mode_ == SchedMode::kDfs) {
      // DPOR: the current transition conflicts with earlier step s by
      // thread q — running *this* thread instead at s's pre-state may
      // reverse the pair, so queue it at that node (wildcard: its
      // candidate list only exists once the prefix is replayed).  A
      // thread sleeping at that node was already fully explored from
      // there, so re-queuing it would only rebuild known traces.
      for (const Conflict& c : conflicts) {
        Node& node = path_[static_cast<std::size_t>(c.step)];
        if (node.expanded_threads.count(choice.thread) != 0) continue;
        if (node.sleep.count(choice.thread) != 0) continue;
        if (!node.queued_wildcards.insert(choice.thread).second) continue;
        node.todo.push_back(Choice{choice.thread, -1});
      }
      // Record what was committed here for the sleep-set dependence
      // filter when children are created.
      Node& cur = path_[static_cast<std::size_t>(depth)];
      const PendingOp& op = exec_->pending(choice.thread);
      cur.taken_loc = op.loc;
      cur.taken_is_write =
          op.kind == OpKind::kStore ||
          (op.kind == OpKind::kRmw && (!op.is_cas || op.cas_success));
    }
    run_choices_.push_back(choice);
    advance(choice.thread);
    ++depth;
  }
}

void Explorer::run_one_execution(SchedMode mode,
                                 const std::vector<Choice>* prescribed) {
  sched_mode_ = mode;
  prescribed_ = prescribed;
  exec_ = std::make_unique<Execution>();
  thread_bodies_.clear();
  failure_.clear();
  run_choices_.clear();
  run_called_ = false;
  truncated_this_run_ = false;
  pruned_this_run_ = false;
  replay_valid_ = true;

  Execution::set_current(exec_.get());
  Env env(*this);
  body_(env);
  Execution::set_current(nullptr);
  POR_EXPECT(run_called_, "checker body never called Env::run");

  // A sleep-set prune abandons the execution mid-flight; whatever the
  // body's invariants saw in that partial state is not a real schedule
  // (the full interleaving is covered by an earlier explored trace).
  if (pruned_this_run_) failure_.clear();

  ++executions_;
  total_steps_ += static_cast<std::uint64_t>(exec_->steps());
  if (truncated_this_run_) ++truncated_;
}

// ---- DFS bookkeeping -------------------------------------------------------

bool Explorer::backtrack_path() {
  while (!path_.empty()) {
    Node& node = path_.back();
    if (!node.todo.empty()) {
      const Choice next = node.todo.front();
      node.todo.pop_front();
      if (next.thread != node.taken_thread) {
        // Switching threads: the old thread's candidates are all
        // explored from this state iff none remain queued — then it
        // goes to sleep for every alternative branch below this node.
        const bool more_of_old = std::any_of(
            node.todo.begin(), node.todo.end(), [&](const Choice& c) {
              return c.thread == node.taken_thread;
            });
        if (!more_of_old) node.sleep.insert(node.taken_thread);
      }
      node.taken_thread = next.thread;
      node.taken_cand = next.cand;
      return true;
    }
    // Subtree exhausted.  Deeper nodes' pending work (there is none —
    // we only get here once they are popped) and this node's history
    // go with it; DPOR entries queued at shallower nodes survive.
    path_.pop_back();
  }
  return false;
}

// ---- failing-schedule minimization and printing ----------------------------

bool Explorer::replay_fails(const std::vector<Choice>& choices) {
  run_one_execution(SchedMode::kReplay, &choices);
  return replay_valid_ && !truncated_this_run_ && !failure_.empty();
}

void Explorer::minimize_and_format() {
  std::vector<Choice> best = run_choices_;
  const std::string original_failure = failure_;
  int budget = options_.minimize_budget;

  // Greedy block merging: where the schedule runs x..x y..y x..., try
  // hoisting the second x-block before the y-block.  Every accepted
  // move removes one context switch; every candidate is replayed to
  // confirm the same class of failure survives.
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    // Block boundaries of `best`.
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // [begin,end)
    for (std::size_t i = 0; i < best.size();) {
      std::size_t j = i;
      while (j < best.size() && best[j].thread == best[i].thread) ++j;
      blocks.emplace_back(i, j);
      i = j;
    }
    for (std::size_t b = 0; b + 1 < blocks.size() && budget > 0; ++b) {
      const int left_thread = best[blocks[b].first].thread;
      const int right_thread = best[blocks[b + 1].first].thread;
      if (left_thread == right_thread) continue;
      const bool merges =
          b > 0 && best[blocks[b - 1].first].thread == right_thread;
      if (!merges) continue;
      std::vector<Choice> trial;
      trial.reserve(best.size());
      trial.insert(trial.end(), best.begin(),
                   best.begin() + static_cast<std::ptrdiff_t>(blocks[b].first));
      trial.insert(
          trial.end(),
          best.begin() + static_cast<std::ptrdiff_t>(blocks[b + 1].first),
          best.begin() + static_cast<std::ptrdiff_t>(blocks[b + 1].second));
      trial.insert(
          trial.end(),
          best.begin() + static_cast<std::ptrdiff_t>(blocks[b].first),
          best.begin() + static_cast<std::ptrdiff_t>(blocks[b].second));
      trial.insert(
          trial.end(),
          best.begin() + static_cast<std::ptrdiff_t>(blocks[b + 1].second),
          best.end());
      --budget;
      if (replay_fails(trial)) {
        best = std::move(trial);
        improved = true;
        break;  // block list changed; recompute
      }
    }
  }

  // Re-run the winner to leave its events in exec_ for printing.  The
  // original schedule always replays (the explorer is deterministic).
  const bool final_ok = replay_fails(best);
  if (!final_ok) {
    const bool fallback_ok = replay_fails(run_choices_.empty() ? best
                                                               : run_choices_);
    POR_EXPECT(fallback_ok, "failing schedule did not replay");
  }
  failure_ = original_failure;
  trace_ = format_trace();
}

namespace {

std::string format_bits(std::uint64_t bits) {
  // Small values read best in decimal; pointers/hashes in hex.
  if (bits < 1u << 20) return std::to_string(bits);
  std::ostringstream os;
  os << "0x" << std::hex << bits;
  return os.str();
}

}  // namespace

std::string Explorer::format_trace() const {
  const std::vector<Event>& events = exec_->events();
  int nthreads = 0;
  for (const Event& ev : events) nthreads = std::max(nthreads, ev.thread + 1);

  std::ostringstream os;
  os << "=== minimal failing interleaving ("
     << exec_->steps() << " steps, " << nthreads << " threads) ===\n";
  os << "violation: " << failure_ << "\n\n";

  auto describe = [&](const Event& ev) {
    std::ostringstream line;
    const std::string& loc = exec_->location_name(ev.loc);
    switch (ev.kind) {
      case OpKind::kLoad:
        line << "load  " << loc << " -> " << format_bits(ev.read_bits) << " ["
             << order_name(ev.order) << "]";
        if (ev.rf_step >= 0) {
          line << " (rf step " << ev.rf_step << ")";
        } else {
          line << " (rf init)";
        }
        break;
      case OpKind::kStore:
        line << "store " << loc << " <- " << format_bits(ev.written_bits)
             << " [" << order_name(ev.order) << "]";
        break;
      case OpKind::kRmw:
        line << (ev.cas_success ? "cas   " : "rmw   ") << loc << " "
             << format_bits(ev.read_bits) << " -> "
             << format_bits(ev.written_bits) << " [" << order_name(ev.order)
             << "]";
        break;
      case OpKind::kCasFail:
        line << "cas!  " << loc << " failed, saw "
             << format_bits(ev.read_bits) << " [" << order_name(ev.order)
             << "]";
        if (ev.rf_step >= 0) line << " (stale, rf step " << ev.rf_step << ")";
        break;
    }
    return line.str();
  };

  // Interleaved stream: one column per thread, indentation = thread.
  os << "step";
  for (int t = 0; t < nthreads; ++t) os << "  T" << t << "                ";
  os << "\n";
  for (const Event& ev : events) {
    if (ev.thread < 0) continue;  // setup ops are not schedule steps
    os << (ev.step < 10 ? "   " : (ev.step < 100 ? "  " : " ")) << ev.step;
    for (int t = 0; t < ev.thread; ++t) os << "  .                 ";
    os << "  " << describe(ev) << "\n";
  }

  // Per-thread logs: the same events, program order, for reading one
  // thread's view without the interleaving noise.
  for (int t = 0; t < nthreads; ++t) {
    os << "\nT" << t << " program order:\n";
    for (const Event& ev : events) {
      if (ev.thread != t) continue;
      os << "  [step " << ev.step << "] " << describe(ev) << "\n";
    }
  }
  return os.str();
}

// ---- top-level loop --------------------------------------------------------

Result Explorer::run() {
  Result result;
  if (options_.mode == Mode::kRandomWalk) {
    POR_EXPECT(options_.max_executions > 0,
               "random-walk mode requires max_executions > 0");
  }

  for (;;) {
    if (options_.mode == Mode::kRandomWalk) {
      if (executions_ >= options_.max_executions) break;
      run_one_execution(SchedMode::kRandom, nullptr);
    } else {
      run_one_execution(SchedMode::kDfs, nullptr);
    }

    if (!failure_.empty()) {
      result.ok = false;
      result.failure = failure_;
      minimize_and_format();
      result.trace = trace_;
      break;
    }

    if (options_.mode == Mode::kExhaustive) {
      if (!backtrack_path()) {
        result.complete = truncated_ == 0;
        break;
      }
      if (options_.max_executions != 0 &&
          executions_ >= options_.max_executions) {
        break;  // budget hit with work remaining: complete stays false
      }
    }
  }

  result.executions = executions_;
  result.total_steps = total_steps_;
  return result;
}

Result explore(const Options& options,
               const std::function<void(Env&)>& body) {
  Explorer explorer(options, body);
  return explorer.run();
}

}  // namespace por::mc
