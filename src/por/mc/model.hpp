// por/mc/model.hpp
//
// The operational weak-memory model behind por::mc (DESIGN.md §13).
//
// An Execution is one run of a checked program: a set of atomic
// locations, a per-location *modification order* (the list of every
// store, in commit order), per-thread C++11 happens-before vector
// clocks, and an event log.  The model replays the weak behaviors the
// declared std::memory_orders permit instead of the ones the host CPU
// happens to exhibit:
//
//  * A load may read ANY store in the modification order that is not
//    ruled out by coherence (a thread never re-reads something older
//    than it already observed or wrote), by happens-before (a store
//    that is hb-overwritten before the load is invisible), or — for
//    seq_cst loads — by the SC order (a seq_cst load reads no earlier
//    than the last seq_cst store to the same location).  Enumerating
//    these candidates is what reproduces store buffering and stale
//    reads on a strongly-ordered host.
//  * acquire loads that read release stores join the storer's clock
//    into the loader's (synchronizes-with); RMWs carry the release
//    clock of the store they read forward (C++17 release sequences).
//  * RMWs always read the latest store (atomicity); a failed
//    compare_exchange is a pure load under its failure order and may
//    therefore legally read a stale value.
//
// Deliberate simplifications, documented so nobody mistakes this for a
// full C11 model: modification order equals commit order (the DFS
// explores all commit orders, which recovers the lost behaviors);
// fences are not modeled (none of the checked protocols use them —
// the same restriction TSan imposes, see steal_deque.hpp); weak CAS
// never fails spuriously (a spurious failure only re-runs a retry
// loop and would make exhaustive exploration unbounded).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "por/mc/fiber.hpp"  // ExecutionAborted

namespace por::mc {

/// Virtual threads per checked program.  Small on purpose: the DFS is
/// exponential in threads, and every protocol we gate on (owner/thief,
/// producer/consumer pairs) fits comfortably.
inline constexpr int kMaxThreads = 8;

/// Per-thread happens-before clock: entry q counts thread q's
/// committed operations.  Thread id -1 (the explorer / setup context)
/// happens-before everything and needs no entry.
using VectorClock = std::array<std::uint32_t, kMaxThreads>;

VectorClock join(const VectorClock& a, const VectorClock& b);

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kRmw,      ///< fetch_add / successful compare_exchange
  kCasFail,  ///< failed compare_exchange: a pure load
};

/// What a parked virtual thread is waiting to do.  Filled by the
/// instrumented atomic, consumed and answered by the explorer.
struct PendingOp {
  OpKind kind = OpKind::kLoad;
  int loc = -1;
  std::memory_order order = std::memory_order_seq_cst;
  std::memory_order failure_order = std::memory_order_seq_cst;
  /// RMW combiner: new_bits = modify(old_bits, operand).  Null for
  /// plain loads/stores.
  std::uint64_t (*modify)(std::uint64_t, std::uint64_t) = nullptr;
  std::uint64_t operand = 0;   ///< store value / RMW operand / CAS desired
  std::uint64_t expected = 0;  ///< CAS comparand
  bool is_cas = false;
  // Results, filled by Execution::commit:
  std::uint64_t result = 0;  ///< loaded / previous value
  bool cas_success = false;
};

/// One way a pending operation may resolve: which store a load reads,
/// or whether a compare_exchange succeeds.
struct Candidate {
  int store_index = -1;      ///< index into the location's modification order
  bool cas_success = false;  ///< meaningful only for CAS ops
};

/// One committed operation, for trace printing.
struct Event {
  int step = -1;  ///< choice depth; -1 for setup/teardown ops
  int thread = -1;
  OpKind kind = OpKind::kLoad;
  int loc = -1;
  std::memory_order order = std::memory_order_seq_cst;
  std::uint64_t read_bits = 0;     ///< load/CAS/RMW: value observed
  std::uint64_t written_bits = 0;  ///< store/RMW: value left behind
  int rf_step = -1;  ///< step of the store a load read from (-1 = initial)
  bool cas_success = false;
};

/// A conflicting earlier transition discovered while committing — the
/// raw material for dynamic partial-order reduction.
struct Conflict {
  int step;    ///< depth of the earlier, dependent transition
  int thread;  ///< thread that performed it
};

class Execution {
 public:
  Execution();

  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  /// The execution the instrumented atomics talk to (one per OS
  /// thread; the checker installs itself for the body's duration).
  static Execution* current();
  static void set_current(Execution* exec);

  // ---- locations --------------------------------------------------------

  /// Register an atomic location with its initial value.  Called from
  /// mc::atomic's constructor during the (deterministic) setup phase;
  /// the creation order gives stable ids across replayed executions.
  int register_location(std::uint64_t init_bits, std::string name);

  [[nodiscard]] int location_count() const {
    return static_cast<int>(locations_.size());
  }
  [[nodiscard]] const std::string& location_name(int loc) const {
    return locations_[static_cast<std::size_t>(loc)].name;
  }

  // ---- operations (called by mc::atomic) --------------------------------
  //
  // On a fiber these park the thread and yield to the explorer, which
  // prepares candidates and commits; on the explorer's own context
  // (setup before run(), invariant checks after) they apply
  // sequentially — setup happens-before every thread, and by the time
  // the invariants read anything every thread has finished, so the
  // "read the latest store" shortcut is exactly join semantics.

  std::uint64_t atomic_load(int loc, std::memory_order order);
  void atomic_store(int loc, std::uint64_t bits, std::memory_order order);
  std::uint64_t atomic_rmw(int loc,
                           std::uint64_t (*modify)(std::uint64_t,
                                                   std::uint64_t),
                           std::uint64_t operand, std::memory_order order);
  bool atomic_cas(int loc, std::uint64_t& expected_bits,
                  std::uint64_t desired_bits, std::memory_order success,
                  std::memory_order failure);

  // ---- explorer interface ----------------------------------------------

  /// The thread id the next resumed fiber's operations belong to.
  void set_running_thread(int thread) { running_thread_ = thread; }

  [[nodiscard]] bool has_pending(int thread) const {
    return pending_valid_[static_cast<std::size_t>(thread)];
  }
  [[nodiscard]] const PendingOp& pending(int thread) const {
    return pending_[static_cast<std::size_t>(thread)];
  }

  /// Enumerate the ways `thread`'s pending operation may resolve.
  /// Stores and RMWs have exactly one candidate; loads one per
  /// readable store; CAS one per legal failure read plus at most one
  /// success.  Never empty.
  [[nodiscard]] std::vector<Candidate> prepare(int thread) const;

  /// Apply candidate `cand` of `thread`'s pending operation: update the
  /// modification order, clocks and event log, fill the pending op's
  /// result, and return the earlier transitions this one conflicts
  /// with (for DPOR backtracking).  The pending op stays valid until
  /// the fiber is resumed.
  std::vector<Conflict> commit(int thread, const Candidate& cand);

  /// After commit + resume: the fiber consumed its result.
  void clear_pending(int thread) {
    pending_valid_[static_cast<std::size_t>(thread)] = false;
  }

  /// When set, instrumented atomics on fibers raise ExecutionAborted
  /// after parking, unwinding the body so truncated executions can
  /// still run their fibers to completion.
  void request_abort() { abort_requested_ = true; }
  [[nodiscard]] bool abort_requested() const { return abort_requested_; }

  [[nodiscard]] int steps() const { return step_count_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

 private:
  struct Store {
    std::uint64_t bits = 0;
    int thread = -1;               ///< -1: setup/teardown context
    std::uint32_t thread_pos = 0;  ///< storer's op ordinal (hb checks)
    bool is_release = false;       ///< carries release_clock
    bool is_sc = false;
    int step = -1;  ///< choice depth that produced it (-1 setup)
    VectorClock release_clock{};
  };

  struct Location {
    std::string name;
    std::vector<Store> stores;  ///< modification order == commit order
    int last_sc_store = -1;     ///< mod-order index of newest seq_cst store
    // DPOR access history: the last write and the reads since it.
    int last_write_step = -1;
    int last_write_thread = -1;
    std::vector<Conflict> readers_since_write;
  };

  struct ThreadModel {
    VectorClock clock{};        ///< C++11 happens-before
    VectorClock dep_clock{};    ///< DPOR dependence order (po + conflicts)
    std::vector<int> observed;  ///< per-location coherence floor (mod index)
  };

  /// Park the calling fiber on `op`, wait for the explorer to commit,
  /// return the filled-in result.  Direct sequential application when
  /// called off-fiber.
  PendingOp& run_op(PendingOp op);
  void apply_sequential(PendingOp& op);

  [[nodiscard]] bool store_hb_before_thread(const Store& store,
                                            int thread) const;
  [[nodiscard]] int read_floor(int thread, int loc,
                               std::memory_order order) const;
  void note_read(int thread, int loc, int store_index,
                 std::memory_order order, PendingOp& op, OpKind kind);
  int append_store(int thread, int loc, std::uint64_t bits,
                   std::memory_order order, const VectorClock* rf_release);

  std::vector<Location> locations_;
  std::array<ThreadModel, kMaxThreads> threads_{};
  std::array<PendingOp, kMaxThreads> pending_{};
  std::array<bool, kMaxThreads> pending_valid_{};
  /// dep clock of each committed step, for DPOR hb filtering.
  std::vector<VectorClock> step_dep_clocks_;
  std::vector<Event> events_;
  PendingOp sequential_result_;  ///< off-fiber ops resolve through here
  int running_thread_ = -1;
  int step_count_ = 0;
  bool abort_requested_ = false;
};

/// Human-readable memory-order / op-kind names for traces.
const char* order_name(std::memory_order order);
const char* op_kind_name(OpKind kind);

}  // namespace por::mc
