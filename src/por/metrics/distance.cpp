#include "por/metrics/distance.hpp"

#include <cmath>
#include <stdexcept>

namespace por::metrics {

namespace {

void check_same_size(const em::Image<em::cdouble>& f,
                     const em::Image<em::cdouble>& c) {
  if (f.ny() != c.ny() || f.nx() != c.nx()) {
    throw std::invalid_argument("distance: spectra differ in size");
  }
}

/// Visit annulus pixels with their weight.
template <typename Fn>
void for_each_weighted(const em::Image<em::cdouble>& f,
                       const DistanceOptions& options, Fn&& fn) {
  const std::size_t ny = f.ny(), nx = f.nx();
  const double cy = std::floor(static_cast<double>(ny) / 2.0);
  const double cx = std::floor(static_cast<double>(nx) / 2.0);
  const double r_max =
      options.r_max > 0.0 ? options.r_max : std::hypot(cy, cx) + 1.0;
  for (std::size_t y = 0; y < ny; ++y) {
    const double ky = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < nx; ++x) {
      const double kx = static_cast<double>(x) - cx;
      const double radius = std::hypot(ky, kx);
      if (radius > r_max || radius < options.r_min) continue;
      const double weight = options.weighting == Weighting::kRadial
                                ? radius / r_max
                                : 1.0;
      fn(y, x, weight);
    }
  }
}

}  // namespace

double fourier_distance(const em::Image<em::cdouble>& f,
                        const em::Image<em::cdouble>& c,
                        const DistanceOptions& options) {
  check_same_size(f, c);
  double sum = 0.0;
  for_each_weighted(f, options, [&](std::size_t y, std::size_t x, double w) {
    const em::cdouble diff = f(y, x) - c(y, x);
    sum += w * std::norm(diff);
  });
  return sum / static_cast<double>(f.size());
}

double fourier_correlation(const em::Image<em::cdouble>& f,
                           const em::Image<em::cdouble>& c,
                           const DistanceOptions& options) {
  check_same_size(f, c);
  double cross = 0.0, ff = 0.0, cc = 0.0;
  for_each_weighted(f, options, [&](std::size_t y, std::size_t x, double w) {
    cross += w * (f(y, x) * std::conj(c(y, x))).real();
    ff += w * std::norm(f(y, x));
    cc += w * std::norm(c(y, x));
  });
  const double denom = std::sqrt(ff * cc);
  return denom > 0.0 ? cross / denom : 0.0;
}

double realspace_distance(const em::Image<double>& a,
                          const em::Image<double>& b) {
  if (a.ny() != b.ny() || a.nx() != b.nx()) {
    throw std::invalid_argument("realspace_distance: images differ in size");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a.storage()[i] - b.storage()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a.size());
}

double realspace_correlation(const em::Image<double>& a,
                             const em::Image<double>& b) {
  if (a.ny() != b.ny() || a.nx() != b.nx()) {
    throw std::invalid_argument("realspace_correlation: images differ in size");
  }
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a.storage()[i];
    mb += b.storage()[i];
  }
  ma /= n;
  mb /= n;
  double cross = 0.0, aa = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a.storage()[i] - ma;
    const double db = b.storage()[i] - mb;
    cross += da * db;
    aa += da * da;
    bb += db * db;
  }
  const double denom = std::sqrt(aa * bb);
  return denom > 0.0 ? cross / denom : 0.0;
}

}  // namespace por::metrics
