#include "por/metrics/power_spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/projection.hpp"

namespace por::metrics {

namespace {

/// Visit each voxel of a centered cubic spectrum with its integer
/// shell index (or skip if beyond Nyquist).
template <typename Fn>
void for_each_shell(const em::Volume<em::cdouble>& spectrum, Fn&& fn) {
  const std::size_t l = spectrum.nx();
  const double c = std::floor(static_cast<double>(l) / 2.0);
  const std::size_t max_shell = l / 2;
  for (std::size_t z = 0; z < l; ++z) {
    const double kz = static_cast<double>(z) - c;
    for (std::size_t y = 0; y < l; ++y) {
      const double ky = static_cast<double>(y) - c;
      for (std::size_t x = 0; x < l; ++x) {
        const double kx = static_cast<double>(x) - c;
        const auto shell = static_cast<std::size_t>(
            std::lround(std::sqrt(kx * kx + ky * ky + kz * kz)));
        if (shell > max_shell) continue;
        fn(z, y, x, shell);
      }
    }
  }
}

std::vector<double> shell_power(const em::Volume<em::cdouble>& spectrum) {
  const std::size_t shells = spectrum.nx() / 2 + 1;
  std::vector<double> power(shells, 0.0);
  std::vector<std::size_t> counts(shells, 0);
  for_each_shell(spectrum, [&](std::size_t z, std::size_t y, std::size_t x,
                               std::size_t shell) {
    power[shell] += std::norm(spectrum(z, y, x));
    ++counts[shell];
  });
  for (std::size_t s = 0; s < shells; ++s) {
    if (counts[s] > 0) power[s] /= static_cast<double>(counts[s]);
  }
  return power;
}

void check_cube(const em::Volume<double>& volume, const char* who) {
  if (!volume.is_cube() || volume.nx() == 0) {
    throw std::invalid_argument(std::string(who) + ": volume must be cubic");
  }
}

}  // namespace

std::vector<double> radial_power_spectrum_3d(const em::Volume<double>& volume) {
  check_cube(volume, "radial_power_spectrum_3d");
  return shell_power(em::centered_fft3(volume));
}

double estimate_b_factor(const em::Volume<double>& volume,
                         double pixel_size_a, double fit_lo_frac,
                         double fit_hi_frac) {
  check_cube(volume, "estimate_b_factor");
  if (pixel_size_a <= 0.0 || fit_lo_frac >= fit_hi_frac) {
    throw std::invalid_argument("estimate_b_factor: bad arguments");
  }
  const std::size_t l = volume.nx();
  const std::vector<double> power = radial_power_spectrum_3d(volume);
  const auto lo = static_cast<std::size_t>(
      std::max(1.0, fit_lo_frac * static_cast<double>(l) / 2.0));
  const auto hi = static_cast<std::size_t>(fit_hi_frac *
                                           static_cast<double>(l) / 2.0);
  if (hi <= lo + 2 || hi >= power.size()) {
    throw std::invalid_argument("estimate_b_factor: fit band too narrow");
  }
  // Least squares of y = ln F = a - (B/4) s^2 on x = s^2.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t count = 0;
  for (std::size_t r = lo; r <= hi; ++r) {
    if (power[r] <= 0.0) continue;
    const double s = static_cast<double>(r) /
                     (static_cast<double>(l) * pixel_size_a);
    const double x = s * s;
    const double y = 0.5 * std::log(power[r]);  // ln amplitude
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  const double n = static_cast<double>(count);
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return -4.0 * slope;  // slope = -B/4
}

em::Volume<double> apply_b_factor(const em::Volume<double>& volume,
                                  double b_factor_a2, double pixel_size_a) {
  check_cube(volume, "apply_b_factor");
  if (pixel_size_a <= 0.0) {
    throw std::invalid_argument("apply_b_factor: bad pixel size");
  }
  const std::size_t l = volume.nx();
  em::Volume<em::cdouble> spectrum = em::centered_fft3(volume);
  const double c = std::floor(static_cast<double>(l) / 2.0);
  for (std::size_t z = 0; z < l; ++z) {
    const double kz = static_cast<double>(z) - c;
    for (std::size_t y = 0; y < l; ++y) {
      const double ky = static_cast<double>(y) - c;
      for (std::size_t x = 0; x < l; ++x) {
        const double kx = static_cast<double>(x) - c;
        const double s = std::sqrt(kx * kx + ky * ky + kz * kz) /
                         (static_cast<double>(l) * pixel_size_a);
        spectrum(z, y, x) *= std::exp(b_factor_a2 * s * s / 4.0);
      }
    }
  }
  return em::centered_ifft3(spectrum);
}

em::Volume<double> match_amplitudes(const em::Volume<double>& map,
                                    const em::Volume<double>& reference) {
  check_cube(map, "match_amplitudes");
  if (map.nx() != reference.nx() || !reference.is_cube()) {
    throw std::invalid_argument("match_amplitudes: size mismatch");
  }
  em::Volume<em::cdouble> spectrum = em::centered_fft3(map);
  const std::vector<double> own = shell_power(spectrum);
  const std::vector<double> target = radial_power_spectrum_3d(reference);

  std::vector<double> gain(own.size(), 1.0);
  for (std::size_t s = 0; s < own.size(); ++s) {
    if (own[s] > 0.0 && target[s] > 0.0) {
      gain[s] = std::sqrt(target[s] / own[s]);
    }
  }
  for_each_shell(spectrum, [&](std::size_t z, std::size_t y, std::size_t x,
                               std::size_t shell) {
    spectrum(z, y, x) *= gain[shell];
  });
  return em::centered_ifft3(spectrum);
}

}  // namespace por::metrics
