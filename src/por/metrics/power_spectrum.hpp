// por/metrics/power_spectrum.hpp
//
// Structure-factor utilities — the role of the "Parallel Structure
// Factor" companion program of the paper's software suite: shell-
// averaged power spectra of maps, Guinier-style B-factor estimation,
// and per-shell amplitude scaling (map sharpening / reference-profile
// matching), all of which the iterative B<->C loop uses when pushing
// the resolution of a refined map.
#pragma once

#include <vector>

#include "por/em/grid.hpp"

namespace por::metrics {

/// Shell-averaged |F|^2 of a cubic volume: index = integer Fourier
/// radius, up to l/2.
[[nodiscard]] std::vector<double> radial_power_spectrum_3d(
    const em::Volume<double>& volume);

/// Estimate the Guinier/temperature factor B from the high-resolution
/// falloff: a least-squares fit of ln F(s) ~ const - (B/4) s^2 over
/// the shells between `fit_lo_frac` and `fit_hi_frac` of Nyquist.
/// Positive B = the map's amplitudes decay (blurring); returns the
/// fitted B in Angstrom^2.
[[nodiscard]] double estimate_b_factor(const em::Volume<double>& volume,
                                       double pixel_size_a,
                                       double fit_lo_frac = 0.3,
                                       double fit_hi_frac = 0.9);

/// Multiply the volume's spectrum by exp(+B s^2 / 4): B > 0 sharpens
/// (undoes a temperature factor), B < 0 dampens.
[[nodiscard]] em::Volume<double> apply_b_factor(const em::Volume<double>& volume,
                                                double b_factor_a2,
                                                double pixel_size_a);

/// Rescale each Fourier shell of `map` so its shell-averaged amplitude
/// matches `reference` (classic amplitude correction against a better
/// determined profile).  Shells where the map has no power are left
/// untouched.
[[nodiscard]] em::Volume<double> match_amplitudes(
    const em::Volume<double>& map, const em::Volume<double>& reference);

}  // namespace por::metrics
