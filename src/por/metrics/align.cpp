#include "por/metrics/align.hpp"

#include <cmath>
#include <stdexcept>

#include "por/em/rotate.hpp"
#include "por/metrics/fsc.hpp"

namespace por::metrics {

namespace {

em::Mat3 small_rotation(double rx, double ry, double rz) {
  return em::Mat3::rot_x(em::deg2rad(rx)) * em::Mat3::rot_y(em::deg2rad(ry)) *
         em::Mat3::rot_z(em::deg2rad(rz));
}

}  // namespace

AlignmentResult align_volume_rotation(const em::Volume<double>& map,
                                      const em::Volume<double>& reference,
                                      double max_angle_deg) {
  if (max_angle_deg <= 0.0) {
    throw std::invalid_argument("align_volume_rotation: bad max angle");
  }
  double params[3] = {0.0, 0.0, 0.0};
  auto score = [&](const double p[3]) {
    return volume_correlation(
        em::rotate_volume(map, small_rotation(p[0], p[1], p[2])), reference);
  };
  AlignmentResult result;
  result.correlation = volume_correlation(map, reference);

  double step = max_angle_deg / 2.0;
  while (step > 0.05) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (int axis = 0; axis < 3; ++axis) {
        for (double direction : {+1.0, -1.0}) {
          double trial[3] = {params[0], params[1], params[2]};
          trial[axis] += direction * step;
          if (std::abs(trial[axis]) > max_angle_deg) continue;
          const double corr = score(trial);
          if (corr > result.correlation) {
            result.correlation = corr;
            params[axis] = trial[axis];
            improved = true;
          }
        }
      }
    }
    step /= 2.0;
  }
  result.rotation = small_rotation(params[0], params[1], params[2]);
  return result;
}

double aligned_volume_correlation(const em::Volume<double>& map,
                                  const em::Volume<double>& reference,
                                  double max_angle_deg) {
  return align_volume_rotation(map, reference, max_angle_deg).correlation;
}

}  // namespace por::metrics
