// por/metrics/orientation_error.hpp
//
// Orientation-recovery error statistics.  Phantoms give us exact
// ground truth, so we can measure what the paper could only infer from
// FSC curves: how far each refined orientation is from the true one.
// For symmetric particles every symmetry mate of the truth is equally
// correct, so errors are measured with the symmetry-aware geodesic.
#pragma once

#include <vector>

#include "por/em/orientation.hpp"
#include "por/em/symmetry.hpp"

namespace por::metrics {

/// Summary statistics over a set of per-view errors (degrees).
struct ErrorStats {
  double mean = 0.0;
  double median = 0.0;
  double rms = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Per-view symmetry-aware geodesic errors (degrees).
[[nodiscard]] std::vector<double> orientation_errors_deg(
    const std::vector<em::Orientation>& estimated,
    const std::vector<em::Orientation>& truth,
    const em::SymmetryGroup& symmetry);

/// Summarize a set of error values.
[[nodiscard]] ErrorStats summarize(std::vector<double> errors);

/// Convenience: summarize(orientation_errors_deg(...)).
[[nodiscard]] ErrorStats orientation_error_stats(
    const std::vector<em::Orientation>& estimated,
    const std::vector<em::Orientation>& truth,
    const em::SymmetryGroup& symmetry);

/// Per-view errors with the common drift rotation removed: estimate
/// the mean of g_i = R_est,i * R_truth,i^T (after resolving each view
/// to its nearest symmetry mate), then report the residual scatter
/// angle(R_est,i, G * R_truth,i).  Separates "the whole frame rotated"
/// (irrelevant to map quality) from genuine per-view error.
[[nodiscard]] std::vector<double> drift_corrected_errors_deg(
    const std::vector<em::Orientation>& estimated,
    const std::vector<em::Orientation>& truth,
    const em::SymmetryGroup& symmetry);

/// The drift rotation itself (degrees from identity), for reporting.
[[nodiscard]] double estimated_drift_deg(
    const std::vector<em::Orientation>& estimated,
    const std::vector<em::Orientation>& truth,
    const em::SymmetryGroup& symmetry);

}  // namespace por::metrics
